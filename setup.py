"""Legacy setup shim.

Present only so `pip install -e .` works in offline environments whose pip
lacks the `wheel` package (editable installs then fall back to the legacy
`setup.py develop` path).  All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
