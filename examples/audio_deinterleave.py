#!/usr/bin/env python3
"""Audio channel deinterleaving with the CPU-SIMD register algorithm.

Audio APIs deliver multi-channel PCM interleaved (L R L R ... or 6-channel
5.1 frames) — an Array of Structures whose struct is one frame.  DSP wants
per-channel planes.  This example separates channels two ways:

1. `repro.simd.cpu.deinterleave` — the paper's in-register algorithm
   executed at CPU-SIMD width (8 lanes), vectorized across all lane-groups
   at once: the Section 5 "CPU instantiation";
2. `repro.aos.aos_to_soa_flat` — the in-place skinny transpose (when the
   buffer must not be duplicated).

Both are verified against each other and a reshape reference, and a tiny
DSP step (per-channel gain + polarity flip) runs on the planes.

Run:  python examples/audio_deinterleave.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.aos import aos_to_soa_flat, soa_to_aos_flat
from repro.simd.cpu import WideSimdMachine, deinterleave, interleave
from repro.simd import register_r2c

CHANNELS = 6  # 5.1 surround
RATE = 48_000
SECONDS = 4


def synth_interleaved() -> np.ndarray:
    """A few seconds of synthetic 5.1 audio, interleaved float32."""
    t = np.arange(RATE * SECONDS, dtype=np.float32) / RATE
    channels = [
        np.sin(2 * np.pi * (220 * (c + 1)) * t) * (0.9 - 0.1 * c)
        for c in range(CHANNELS)
    ]
    frames = np.stack(channels, axis=-1)  # (samples, channels)
    return np.ascontiguousarray(frames).reshape(-1)


def main() -> None:
    pcm = synth_interleaved()
    n_frames = pcm.size // CHANNELS
    print(f"{SECONDS}s of {CHANNELS}-channel float32 @ {RATE} Hz "
          f"({pcm.nbytes / 1e6:.1f} MB interleaved)")

    # --- path 1: register-algorithm deinterleave (out-of-place) ----------
    t0 = time.perf_counter()
    planes = deinterleave(pcm, CHANNELS, n_lanes=8)
    t_simd = time.perf_counter() - t0
    print(f"register-algorithm deinterleave (8 lanes): {t_simd*1e3:.1f} ms")

    # instruction budget of the underlying kernel, per 8-frame group
    mach = WideSimdMachine(1, 8)
    register_r2c(mach, [np.zeros((1, 8), dtype=np.float32)] * CHANNELS)
    print(f"  per 8-frame group: {mach.counts.shfl} shuffles, "
          f"{mach.counts.select} blends (vectorized over "
          f"{n_frames // 8} groups)")

    # --- path 2: in-place skinny transpose -------------------------------
    inplace = pcm.copy()
    t0 = time.perf_counter()
    soa = aos_to_soa_flat(inplace, n_frames, CHANNELS)
    t_inplace = time.perf_counter() - t0
    print(f"in-place skinny transpose:                 {t_inplace*1e3:.1f} ms")

    np.testing.assert_array_equal(planes, soa)
    np.testing.assert_array_equal(planes, pcm.reshape(n_frames, CHANNELS).T)
    print("both paths agree with the reshape reference")

    # --- a per-channel DSP step -------------------------------------------
    gains = np.float32([1.0, 1.0, 0.7, 0.5, 0.8, 0.8])
    for c in range(CHANNELS):
        soa[c] *= gains[c]
    soa[3] *= -1  # LFE polarity flip
    print("applied per-channel gains on contiguous planes")

    # --- back to interleaved ------------------------------------------------
    out = interleave(planes, 8)
    assert out.shape == pcm.shape
    soa_to_aos_flat(inplace, n_frames, CHANNELS)
    print("re-interleaved for playback (both paths)")


if __name__ == "__main__":
    main()
