#!/usr/bin/env python3
"""SIMD vector memory accesses through in-register transposes (Section 6.2).

Recreates the paper's coalesced_ptr<T> story on the simulated warp:

1. a warp of 32 lanes loads 32 structures the *direct* way — one strided
   pass per field — and the transaction analyzer shows the coalescing
   disaster;
2. the same load the *C2R way*: m perfectly coalesced passes + an
   in-register R2C transpose built from shuffles, branch-free barrel
   rotations and free register renaming;
3. instruction accounting: exactly m shuffles and m·ceil(log2 m) selects
   per rotation — the costs Section 6.2 derives;
4. random (gather) access with cooperative struct reads.

Run:  python examples/simd_coalesced_access.py
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import TESLA_K20C, TransactionAnalyzer
from repro.simd import CoalescedArray, SimdMachine, SimulatedMemory

STRUCT_WORDS = 8  # a 32-byte struct of 32-bit words


def analyze(mem: SimulatedMemory, label: str) -> None:
    an = TransactionAnalyzer(TESLA_K20C.line_bytes)
    summary = an.analyze(mem.trace)
    print(f"  {label}: {summary.transactions} x 128B transactions for "
          f"{summary.useful_bytes} useful bytes "
          f"(efficiency {summary.efficiency*100:.0f}%)")


def main() -> None:
    m = STRUCT_WORDS
    n_structs = 256
    print(f"Array of {n_structs} structures x {m} 32-bit words "
          f"({m*4}-byte structs), warp of 32 lanes\n")

    # ---- direct (compiler-generated) access ------------------------------
    mem = SimulatedMemory(n_structs * m, itemsize=4)
    mem.data[:] = np.arange(n_structs * m)
    arr = CoalescedArray(mem, m, SimdMachine(32))
    regs = arr.direct_load(np.arange(32))
    print("direct load: one strided pass per field")
    analyze(mem, "direct")
    assert regs[3][5] == 5 * m + 3  # lane 5 holds struct 5

    # ---- coalesced C2R access --------------------------------------------
    mem = SimulatedMemory(n_structs * m, itemsize=4)
    mem.data[:] = np.arange(n_structs * m)
    mach = SimdMachine(32)
    arr = CoalescedArray(mem, m, mach)
    regs = arr.warp_load(0)
    print("\ncoalesced load: m contiguous passes + in-register R2C")
    analyze(mem, "c2r")
    assert regs[3][5] == 5 * m + 3
    c = mach.counts
    stages = int(np.ceil(np.log2(m)))
    print(f"  instructions: {c.shfl} shfl (= m), {c.select} select "
          f"(rotations cost m*ceil(log2 m) = {m*stages} each), {c.alu} alu")

    # ---- the Fig. 10 interface: store side --------------------------------
    out = SimulatedMemory(n_structs * m, itemsize=4)
    dst = CoalescedArray(out, m, SimdMachine(32))
    dst.warp_store(0, regs)  # C2R transpose, then coalesced stores
    np.testing.assert_array_equal(out.data[: 32 * m], np.arange(32 * m))
    print("\nstore through the same path: C2R + coalesced passes verified")

    # ---- random gather -----------------------------------------------------
    mem.clear_trace()
    rng = np.random.default_rng(1)
    idx = rng.permutation(n_structs)[:32]
    regs = arr.warp_gather(idx)
    print("\nrandom gather: groups of m lanes read one struct contiguously")
    analyze(mem, "c2r gather")
    for lane in (0, 7, 31):
        np.testing.assert_array_equal(
            np.array([regs[k][lane] for k in range(m)]),
            idx[lane] * m + np.arange(m),
        )
    print("  every lane received its indexed structure")

    # direct gather, for contrast
    mem.clear_trace()
    arr.direct_load(idx)
    analyze(mem, "direct gather")


if __name__ == "__main__":
    main()
