#!/usr/bin/env python3
"""Six-step FFT on top of in-place transposition.

The classic consumer of large transposes: a 1-D DFT of size N = n1·n2
computed as small FFTs over a 2-D view — with *three matrix transpositions*
in between (Bailey's six-step algorithm).  Out-of-place transposes double
the working set; the decomposition's in-place transpose keeps the footprint
at one signal plus O(max(n1, n2)) scratch.

With j = j1 + n1·j2 and k = k2 + n2·k1:

    X[k2 + n2·k1] = Σ_{j1} e^{-2πi·j1·k1/n1}
                    · ( e^{-2πi·j1·k2/N} · FFT_{n2}(x[j1 + n1·:])[k2] )

which becomes: (1) transpose the (n2, n1) view to (n1, n2); (2) FFT each
length-n2 row; (3) multiply twiddles; (4) transpose to (n2, n1); (5) FFT
each length-n1 row; (6) transpose to (n1, n2) — the buffer then holds X in
natural order.  Verified against numpy.fft.fft.

Run:  python examples/fft_six_step.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import TransposePlan


def six_step_fft(x: np.ndarray, n1: int, n2: int, plans=None) -> np.ndarray:
    """In-place-transposing six-step FFT of a length n1*n2 complex signal.

    Returns the transformed buffer (same memory as ``x``).
    """
    N = n1 * n2
    if x.shape != (N,):
        raise ValueError("signal length must be n1 * n2")
    if plans is None:
        plans = (
            TransposePlan(n2, n1),  # steps 1 and 6 view the buffer as (n2, n1)
            TransposePlan(n1, n2),  # step 4 views it as (n1, n2)
        )
    t_21, t_12 = plans

    # step 1: (n2, n1) -> (n1, n2), in place
    t_21.execute(x)
    V = x.reshape(n1, n2)
    # step 2: FFT along rows (length n2)
    V[:] = np.fft.fft(V, axis=1)
    # step 3: twiddle factors e^{-2pi i j1 k2 / N}
    j1 = np.arange(n1)[:, None]
    k2 = np.arange(n2)[None, :]
    V *= np.exp(-2j * np.pi * j1 * k2 / N)
    # step 4: (n1, n2) -> (n2, n1), in place
    t_12.execute(x)
    U = x.reshape(n2, n1)
    # step 5: FFT along rows (length n1)
    U[:] = np.fft.fft(U, axis=1)
    # step 6: (n2, n1) -> (n1, n2): buffer index k1*n2 + k2 == k
    t_21.execute(x)
    return x


def main() -> None:
    # correctness on a moderate size
    n1, n2 = 384, 512
    N = n1 * n2
    rng = np.random.default_rng(0)
    signal = rng.standard_normal(N) + 1j * rng.standard_normal(N)
    expected = np.fft.fft(signal)
    got = six_step_fft(signal.copy(), n1, n2)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-6)
    print(f"six-step FFT of N = {n1}*{n2} = {N} verified against numpy.fft")

    # amortized plans on a batch of signals
    plans = (TransposePlan(n2, n1), TransposePlan(n1, n2))
    t0 = time.perf_counter()
    for _ in range(4):
        buf = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        six_step_fft(buf, n1, n2, plans)
    dt = time.perf_counter() - t0
    print(f"4 transforms with shared transpose plans: {dt*1e3:.0f} ms total")

    bytes_signal = N * 16
    print(f"working set: one {bytes_signal/1e6:.1f} MB signal "
          f"(+ {max(n1, n2)*16/1e3:.0f} kB transpose scratch in strict mode) —")
    print("an out-of-place transpose would need a second full copy at each of")
    print("the three transpose steps.")


if __name__ == "__main__":
    main()
