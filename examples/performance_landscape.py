#!/usr/bin/env python3
"""The C2R/R2C performance landscape and the direction heuristic (Fig. 4-5).

Evaluates the K20c cost model over a small grid to show:
* the C2R fast band at small n and the R2C fast band at small m;
* how the paper's heuristic (m > n -> C2R, else R2C) always lands on the
  fast side;
* a per-pass cost breakdown for one shape.

Run:  python examples/performance_landscape.py
"""

from __future__ import annotations

from repro import choose_algorithm
from repro.gpusim.cost import c2r_cost, r2c_cost

GRID = [1000, 4000, 8000, 14000, 20000]


def landscape(cost_fn, label: str) -> None:
    print(f"\n{label} modeled throughput (GB/s), float64, Tesla K20c model")
    print("        " + "".join(f"n={n:<7}" for n in GRID))
    for m in GRID:
        row = [cost_fn(m + 1, n + 2, 8).throughput_gbps for n in GRID]
        print(f"m={m:<6}" + "".join(f"{v:8.1f} " for v in row))


def main() -> None:
    landscape(c2r_cost, "C2R")
    landscape(r2c_cost, "R2C")

    print("\nthe heuristic picks the fast side:")
    for m, n in [(20001, 1501), (1501, 20001), (9001, 9002)]:
        algo = choose_algorithm(m, n)
        both = {
            "c2r": c2r_cost(m, n, 8).throughput_gbps,
            "r2c": r2c_cost(m, n, 8).throughput_gbps,
        }
        print(f"  {m:>6} x {n:<6}: heuristic -> {algo:3}  "
              f"(c2r {both['c2r']:5.1f}, r2c {both['r2c']:5.1f} GB/s)")

    print("\nper-pass breakdown, 9001 x 9002 float64 (C2R):")
    cost = c2r_cost(9001, 9002, 8)
    for p in cost.passes:
        print(f"  {p.name:<24} {p.useful_bytes/1e9:6.2f} GB useful, "
              f"efficiency {p.efficiency*100:5.1f}% "
              f"-> {p.dram_bytes/1e9:6.2f} GB DRAM")
    print(f"  total {cost.dram_bytes/1e9:.2f} GB DRAM, "
          f"{cost.seconds*1e3:.1f} ms -> {cost.throughput_gbps:.1f} GB/s (Eq. 37)")


if __name__ == "__main__":
    main()
