#!/usr/bin/env python3
"""Quickstart: in-place matrix transposition with the C2R/R2C decomposition.

Runs through the public API on the paper's own worked examples:

* the one-line 2-D array transpose (no copy of the data);
* the flat-buffer API with row/column-major storage;
* the three passes of Algorithm 1 on the paper's Figure 2 matrix;
* work counting (Theorem 6: at most 6 accesses per element);
* amortizing repeated transposes with a TransposePlan.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Decomposition,
    TransposePlan,
    WorkCounter,
    c2r_transpose,
    transpose,
    transpose_inplace,
)
from repro.core import steps
from repro.core.indexing import Decomposition as Dec


def demo_basic() -> None:
    print("=" * 64)
    print("1. Transpose a 2-D array in place (the buffer is permuted;")
    print("   the result is a view of the same memory)")
    print("=" * 64)
    A = np.arange(12.0).reshape(3, 4)
    print("A =\n", A)
    B = transpose(A)
    print("transpose(A) =\n", B)
    print("shares memory with A:", np.shares_memory(A, B))


def demo_flat_buffers() -> None:
    print()
    print("=" * 64)
    print("2. Flat buffers, row- and column-major")
    print("=" * 64)
    m, n = 3, 8
    A = np.arange(m * n)
    buf = A.copy()
    transpose_inplace(buf, m, n, "C")
    print(f"row-major {m}x{n} buffer transposed; view as {n}x{m}:")
    print(buf.reshape(n, m))

    buf = A.reshape(m, n).ravel(order="F").copy()
    transpose_inplace(buf, m, n, "F")
    print("column-major buffer handled identically (Theorems 2 & 7)")


def demo_figure2_passes() -> None:
    print()
    print("=" * 64)
    print("3. The three passes of Algorithm 1 (the paper's Figure 2)")
    print("=" * 64)
    start = np.arange(32).reshape(8, 4).T.copy()  # the figure's top panel
    dec = Dec.of(4, 8)
    print(f"m=4, n=8: c=gcd={dec.c}, a={dec.a}, b={dec.b}")
    V = start.copy()
    print("start:\n", V)
    steps.rotate_columns_strict(V, dec)
    print("after column rotation (column j up by j // b):\n", V)
    steps.shuffle_rows_strict(V, dec, gather=True, use_dprime=False)
    print("after row shuffle (gather d'^-1):\n", V)
    buf = start.ravel().copy()
    c2r_transpose(buf, 4, 8)
    print("after column shuffle (gather s') — the buffer is 0..31:\n",
          buf.reshape(4, 8))
    print("reinterpreted as 8x4 it is the transpose:\n", buf.reshape(8, 4))


def demo_work_bound() -> None:
    print()
    print("=" * 64)
    print("4. Theorem 6: at most 6 element accesses per element")
    print("=" * 64)
    m, n = 96, 108
    cnt = WorkCounter()
    c2r_transpose(np.arange(m * n, dtype=np.float64), m, n, aux="strict", counter=cnt)
    print(f"{m}x{n}: {cnt.reads} reads + {cnt.writes} writes "
          f"= {cnt.total / (m * n):.2f} accesses/element (bound: 6)")
    mp, nq = 97, 109  # coprime: the pre-rotation pass vanishes
    cnt = WorkCounter()
    c2r_transpose(np.arange(mp * nq, dtype=np.float64), mp, nq, aux="strict", counter=cnt)
    print(f"{mp}x{nq} (coprime): {cnt.total / (mp * nq):.2f} accesses/element "
          "(rotation skipped)")


def demo_plan() -> None:
    print()
    print("=" * 64)
    print("5. Repeated same-shape transposes: TransposePlan")
    print("=" * 64)
    plan = TransposePlan(500, 640)
    print(plan, f"- precomputed gather maps: {plan.scratch_bytes/1e6:.1f} MB")
    rng = np.random.default_rng(0)
    for k in range(3):
        A = rng.standard_normal((500, 640))
        buf = A.ravel().copy()
        plan.execute(buf)
        ok = np.array_equal(buf.reshape(640, 500), A.T)
        print(f"  batch {k}: transposed in place, correct = {ok}")


def main() -> None:
    demo_basic()
    demo_flat_buffers()
    demo_figure2_passes()
    demo_work_bound()
    demo_plan()
    print("\nDecomposition of 4x8:", Decomposition.of(4, 8))


if __name__ == "__main__":
    main()
