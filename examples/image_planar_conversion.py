#!/usr/bin/env python3
"""Interleaved -> planar image conversion, in place.

A second Section 6.1-style workload: image pipelines often receive pixels
interleaved (RGBRGB..., the AoS layout dictated by decoders and capture
APIs) while filters want planar channels (SoA).  For large frames or video
stacks, converting in place avoids a second frame-sized allocation.

The interleaved (H*W, C) pixel matrix is the AoS; the planar (C, H*W)
matrix is its transpose.  This example converts a synthetic HD frame both
ways, applies a per-channel filter in planar form, and verifies against an
out-of-place reference.

Run:  python examples/image_planar_conversion.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.aos import aos_to_soa_flat, soa_to_aos_flat

H, W, C = 1080, 1920, 3


def synthetic_frame() -> np.ndarray:
    """An interleaved float32 frame with recognizable per-channel ramps."""
    y, x = np.mgrid[0:H, 0:W].astype(np.float32)
    r = (x / W)
    g = (y / H)
    b = ((x + y) / (W + H))
    return np.stack([r, g, b], axis=-1).reshape(-1)  # interleaved flat buffer


def white_balance(planar: np.ndarray, gains=(1.1, 0.95, 1.05)) -> None:
    """A per-channel gain — one contiguous vector op per plane."""
    for ch, gain in enumerate(gains):
        planar[ch] *= np.float32(gain)


def main() -> None:
    n_pixels = H * W
    frame = synthetic_frame()
    print(f"{H}x{W} RGB float32 frame, interleaved "
          f"({frame.nbytes / 1e6:.0f} MB)")

    reference = frame.reshape(n_pixels, C).T.copy()
    for ch, gain in enumerate((1.1, 0.95, 1.05)):
        reference[ch] *= np.float32(gain)

    t0 = time.perf_counter()
    planar = aos_to_soa_flat(frame, n_pixels, C)
    t_fwd = time.perf_counter() - t0
    print(f"interleaved -> planar in place: {t_fwd*1e3:.1f} ms "
          f"({2 * frame.nbytes / t_fwd / 1e9:.2f} GB/s)")
    print(f"planar shape {planar.shape}; red plane contiguous: "
          f"{planar[0].flags['C_CONTIGUOUS']}")

    white_balance(planar)
    np.testing.assert_allclose(planar, reference, rtol=1e-6)
    print("white balance on planar data matches the out-of-place reference")

    t0 = time.perf_counter()
    interleaved = soa_to_aos_flat(frame, n_pixels, C)
    t_back = time.perf_counter() - t0
    print(f"planar -> interleaved in place: {t_back*1e3:.1f} ms")
    np.testing.assert_allclose(
        interleaved, reference.T, rtol=1e-6
    )
    print("round trip verified; the frame buffer was never duplicated")


if __name__ == "__main__":
    main()
