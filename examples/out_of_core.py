#!/usr/bin/env python3
"""Out-of-core transposition: the O(max(m, n)) space bound at work.

The decomposition's headline space property — `O(max(m, n))` auxiliary
elements instead of a second full copy — is what lets a matrix larger than
available memory be transposed directly in its file.  This example:

1. writes a matrix to disk as raw binary;
2. transposes the *file* in place (`repro.core.transpose_file_inplace`),
   with process-side scratch limited to one row/column;
3. verifies the file now holds the transpose;
4. shows the batched API on a stack of small matrices (one plan, one pass
   over the batch).

Run:  python examples/out_of_core.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import batched_transpose_inplace, transpose_file_inplace


def out_of_core_demo(tmp: Path) -> None:
    m, n = 1500, 2200
    dtype = np.float32
    A = np.arange(m * n, dtype=dtype).reshape(m, n)
    path = tmp / "big_matrix.bin"
    A.tofile(path)
    nbytes = path.stat().st_size
    print(f"wrote {m} x {n} {np.dtype(dtype).name} matrix "
          f"({nbytes / 1e6:.1f} MB) to {path.name}")

    scratch_budget = max(m, n) * np.dtype(dtype).itemsize
    print(f"transposing the file in place; algorithm scratch: "
          f"{scratch_budget / 1e3:.1f} kB (one row/column)")
    t0 = time.perf_counter()
    transpose_file_inplace(path, m, n, dtype)
    dt = time.perf_counter() - t0
    print(f"done in {dt:.2f} s ({2 * nbytes / dt / 1e9:.3f} GB/s, Eq. 37)")

    got = np.fromfile(path, dtype=dtype).reshape(n, m)
    assert np.array_equal(got, A.T)
    print("file verified: it now holds the n x m transpose\n")


def batched_demo() -> None:
    k, m, n = 64, 96, 80
    print(f"batched: {k} matrices of {m} x {n} float64, one shared plan")
    stack = np.random.default_rng(0).standard_normal((k, m, n))
    expected = stack.transpose(0, 2, 1).copy()
    flat = np.ascontiguousarray(stack).reshape(k, m * n)
    t0 = time.perf_counter()
    batched_transpose_inplace(flat, m, n)
    dt = time.perf_counter() - t0
    got = flat.reshape(k, n, m)
    assert np.array_equal(got, expected)
    gb = 2 * k * m * n * 8 / 1e9
    print(f"all {k} transposed in place in {dt*1e3:.1f} ms ({gb/dt:.2f} GB/s)")


def main() -> None:
    with tempfile.TemporaryDirectory() as td:
        out_of_core_demo(Path(td))
    batched_demo()
    print("\n(the same file transpose is available from the shell:")
    print("  python -m repro transpose big_matrix.bin 1500 2200 --dtype float32)")


if __name__ == "__main__":
    main()
