#!/usr/bin/env python3
"""In-place AoS -> SoA conversion for a particle simulation (Section 6.1).

The motivating workload from the paper's introduction: a physics code whose
interface hands over an Array of Structures (convenient for per-particle
logic), while the vectorized inner loops want a Structure of Arrays.  The
dataset is too large to hold two copies, so the conversion must be in
place.

This example:
1. builds an AoS of particles (x, y, z, vx, vy, vz) as a numpy structured
   array;
2. converts it to SoA *in place* (zero extra copies of the data, O(N)
   scratch) with the skinny-specialized decomposed transpose;
3. runs a vectorized leapfrog step on the SoA views — the operation that
   would be strided and slow on the AoS layout;
4. converts back to AoS in place and checks energies match a pure-AoS
   reference step.

Run:  python examples/particle_aos_to_soa.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.aos import aos_to_soa, field_matrix, soa_to_aos

FIELDS = ["x", "y", "z", "vx", "vy", "vz"]
DT = 1e-3


def make_particles(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dt = np.dtype([(name, "f8") for name in FIELDS])
    p = np.zeros(n, dtype=dt)
    for name in FIELDS[:3]:
        p[name] = rng.standard_normal(n)
    for name in FIELDS[3:]:
        p[name] = 0.1 * rng.standard_normal(n)
    return p


def central_force_step_aos(p: np.ndarray) -> None:
    """Reference update operating field-by-field on the AoS (strided)."""
    r2 = p["x"] ** 2 + p["y"] ** 2 + p["z"] ** 2 + 1e-3
    f = -1.0 / r2 ** 1.5
    for pos, vel in zip(("x", "y", "z"), ("vx", "vy", "vz")):
        p[vel] += DT * f * p[pos]
        p[pos] += DT * p[vel]


def central_force_step_soa(soa: np.ndarray) -> None:
    """The same update on the SoA rows (contiguous, vector-friendly)."""
    x, y, z, vx, vy, vz = soa
    r2 = x**2 + y**2 + z**2 + 1e-3
    f = -1.0 / r2 ** 1.5
    vx += DT * f * x
    vy += DT * f * y
    vz += DT * f * z
    x += DT * vx
    y += DT * vy
    z += DT * vz


def main() -> None:
    n = 400_000
    print(f"{n} particles x {len(FIELDS)} float64 fields "
          f"({n * len(FIELDS) * 8 / 1e6:.0f} MB)")

    particles = make_particles(n)
    reference = particles.copy()

    # --- in-place conversion to SoA --------------------------------------
    t0 = time.perf_counter()
    soa = aos_to_soa(particles)  # permutes particles' own buffer
    t_conv = time.perf_counter() - t0
    gbps = 2 * n * len(FIELDS) * 8 / t_conv / 1e9
    print(f"AoS -> SoA in place: {t_conv*1e3:.1f} ms ({gbps:.2f} GB/s, Eq. 37)")
    print(f"SoA rows are contiguous views: x stride = {soa[0].strides}")

    # --- simulate on the SoA ----------------------------------------------
    steps = 10
    t0 = time.perf_counter()
    for _ in range(steps):
        central_force_step_soa(soa)
    t_soa = time.perf_counter() - t0

    # --- back to AoS, verify against the AoS-layout reference -------------
    back = soa_to_aos(soa)
    t0 = time.perf_counter()
    for _ in range(steps):
        central_force_step_aos(reference)
    t_aos = time.perf_counter() - t0

    ref_mat = field_matrix(reference)
    np.testing.assert_allclose(back, ref_mat, rtol=1e-12)
    print(f"{steps} leapfrog steps: SoA {t_soa*1e3:.1f} ms, "
          f"AoS (strided) {t_aos*1e3:.1f} ms "
          f"-> layout speedup {t_aos/t_soa:.2f}x")
    print("round trip AoS -> SoA -> AoS verified against the AoS reference")


if __name__ == "__main__":
    main()
