"""GPU memory-system simulator — the evaluation substrate.

No GPU exists in this environment, so the paper's GPU results (Figures 4-9,
Table 2) are reproduced through a memory-system model with three layers:

1. :mod:`~repro.gpusim.device` — hardware constants of the NVIDIA Tesla
   K20c (peak bandwidth, transaction/sector sizes, cache sizes, instruction
   rates).  These are the *only* numbers taken from the hardware spec; no
   curve is fitted to the paper's results.
2. :mod:`~repro.gpusim.memory` — an exact 128-byte-transaction /
   32-byte-sector coalescing analyzer over address traces (the traces come
   from the real index equations and the executable SIMD machine).
3. :mod:`~repro.gpusim.cost` — per-algorithm pass models: every pass's
   traffic is its actual byte count divided by a transaction efficiency
   *measured from its own address trace*; time is traffic over achievable
   bandwidth, or instruction count over issue rate when compute-bound.
"""

from .aos_model import aos_access_throughput
from .cost import TransposeCost, auto_cost, c2r_cost, r2c_cost, skinny_cost, sung_cost
from .device import A100_SXM4, CORE_I7_950, TESLA_K20C, Device
from .kernel import execute_c2r_kernel, execute_r2c_kernel, execute_skinny_kernel
from .memory import TrafficSummary, TransactionAnalyzer
from .occupancy import bandwidth_fraction, occupancy
from .throughput import eq37_throughput, gbps

__all__ = [
    "Device",
    "TESLA_K20C",
    "A100_SXM4",
    "CORE_I7_950",
    "TransactionAnalyzer",
    "TrafficSummary",
    "eq37_throughput",
    "gbps",
    "TransposeCost",
    "auto_cost",
    "c2r_cost",
    "r2c_cost",
    "skinny_cost",
    "sung_cost",
    "aos_access_throughput",
    "execute_c2r_kernel",
    "execute_r2c_kernel",
    "execute_skinny_kernel",
    "occupancy",
    "bandwidth_fraction",
]
