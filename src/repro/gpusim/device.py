"""Device descriptions.

Only published hardware constants appear here (K20c datasheet / CUDA
programming guide values); the cost models combine them with trace-measured
transaction efficiencies.  ``achievable_fraction`` is the standard
STREAM-style derate of theoretical DRAM bandwidth — 0.87 x 208 GB/s
reproduces the ~180 GB/s the paper itself measures for perfectly coalesced
copies (Fig. 8b's plateau), so it is a hardware property, not a fit to the
transpose results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.onchip import OnChipModel

__all__ = ["Device", "TESLA_K20C", "CORE_I7_950", "A100_SXM4"]


@dataclass(frozen=True)
class Device:
    """A bandwidth/coalescing device model."""

    name: str
    n_sm: int
    clock_hz: float
    peak_bandwidth: float  # bytes/s
    achievable_fraction: float  # STREAM-style derate
    line_bytes: int  # DRAM transaction / L1 line size
    sector_bytes: int  # L2 sector granularity for scattered access
    l1_bytes: int  # per-SM data cache available for row reuse
    l2_bytes: int  # chip-wide L2
    warp_size: int
    regfile_bytes_per_sm: int
    alu_warps_per_clock_per_sm: float  # warp-wide int-ALU issue rate
    shfl_warps_per_clock_per_sm: float  # warp-wide shuffle issue rate
    onchip: OnChipModel = field(default_factory=OnChipModel)

    @property
    def achievable_bandwidth(self) -> float:
        """Practically attainable streaming bandwidth (bytes/s)."""
        return self.peak_bandwidth * self.achievable_fraction

    @property
    def alu_rate(self) -> float:
        """Aggregate warp-ALU instructions per second."""
        return self.n_sm * self.clock_hz * self.alu_warps_per_clock_per_sm

    @property
    def shfl_rate(self) -> float:
        """Aggregate warp-shuffle instructions per second."""
        return self.n_sm * self.clock_hz * self.shfl_warps_per_clock_per_sm


#: NVIDIA Tesla K20c (GK110): 13 SMX @ 706 MHz, 320-bit GDDR5 @ 5.2 GT/s
#: (208 GB/s), 128-byte L1 lines, 32-byte L2 sectors, 1.25 MB L2,
#: 256 kB register file per SMX, 192 CUDA cores + 32 shuffle units per SMX.
TESLA_K20C = Device(
    name="Tesla K20c",
    n_sm=13,
    clock_hz=706e6,
    peak_bandwidth=208e9,
    achievable_fraction=0.87,
    line_bytes=128,
    sector_bytes=32,
    l1_bytes=48 * 1024,
    l2_bytes=1280 * 1024,
    warp_size=32,
    regfile_bytes_per_sm=256 * 1024,
    alu_warps_per_clock_per_sm=6.0,  # 192 cores / 32 lanes
    shfl_warps_per_clock_per_sm=1.0,  # 32 shuffle units / 32 lanes
)

#: Intel Core i7 950 (the paper's CPU testbed): 4 cores / 8 threads,
#: 3.06 GHz, triple-channel DDR3-1066 (25.6 GB/s), 64-byte lines.
#: Used only for documentation/ceiling numbers in the CPU benches (which
#: otherwise measure real wall-clock on this machine).
CORE_I7_950 = Device(
    name="Core i7 950",
    n_sm=4,
    clock_hz=3.06e9,
    peak_bandwidth=25.6e9,
    achievable_fraction=0.6,
    line_bytes=64,
    sector_bytes=64,
    l1_bytes=32 * 1024,
    l2_bytes=8 * 1024 * 1024,
    warp_size=1,
    regfile_bytes_per_sm=16 * 64,
    alu_warps_per_clock_per_sm=4.0,
    shfl_warps_per_clock_per_sm=1.0,
)


#: NVIDIA A100-SXM4-40GB (GA100), for model-generality checks: 108 SMs @
#: ~1.41 GHz, HBM2 @ 1555 GB/s, 128-byte L1 lines / 32-byte sectors, 40 MB
#: L2, 256 kB register file per SM.  The decomposition's qualitative
#: behaviour (bands, orderings, crossovers) should persist on any
#: bandwidth-bound device; tests pin that.
A100_SXM4 = Device(
    name="A100-SXM4-40GB",
    n_sm=108,
    clock_hz=1.41e9,
    peak_bandwidth=1555e9,
    achievable_fraction=0.87,
    line_bytes=128,
    sector_bytes=32,
    l1_bytes=192 * 1024,
    l2_bytes=40 * 1024 * 1024,
    warp_size=32,
    regfile_bytes_per_sm=256 * 1024,
    alu_warps_per_clock_per_sm=2.0,  # 64 INT32 cores / 32 lanes
    shfl_warps_per_clock_per_sm=1.0,
)
