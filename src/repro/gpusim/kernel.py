"""An executed GPU transpose kernel: warp-level passes over simulated memory.

Where :mod:`repro.gpusim.cost` *models* the C2R passes, this module
*executes* them: every load and store is issued as a warp-wide access
against a :class:`~repro.simd.memory.SimulatedMemory`, mimicking the access
patterns of the CUDA kernels the paper describes —

* cache-aware rotations move line-wide sub-rows (one warp access per
  sub-row, coarse cycle following + fine residual pass with the
  zero-residual skip);
* the row shuffle gathers 32 scattered elements per warp (the ``d'^{-1}``
  pattern) and writes coalesced 32-element runs;
* the static row permutation cycle-follows whole sub-rows.

The result is (a) a *correct* transposed buffer — verified against the
array kernels — and (b) an end-to-end transaction trace that the tests
compare against the analytic cost model's DRAM-byte prediction, closing the
loop between the model and the algorithm it claims to describe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.cycles import RotationCycles, permutation_cycles
from ..cache.model import CacheModel
from ..core import equations as eq
from ..core.indexing import Decomposition
from ..simd.memory import SimulatedMemory
from .device import TESLA_K20C, Device
from .memory import TransactionAnalyzer

__all__ = [
    "KernelResult",
    "execute_c2r_kernel",
    "execute_r2c_kernel",
    "execute_skinny_kernel",
]


@dataclass
class KernelResult:
    """Outcome of one executed transpose kernel."""

    memory: SimulatedMemory
    m: int
    n: int
    itemsize: int
    device: Device

    @property
    def buffer(self) -> np.ndarray:
        return self.memory.data

    def dram_bytes(self) -> float:
        """Priced traffic of the executed trace.

        Loads are priced at sector granularity (scattered gathers fetch
        32-byte sectors), stores at line granularity (write allocation) —
        the same conventions the cost model uses.
        """
        sector = TransactionAnalyzer(self.device.sector_bytes)
        line = TransactionAnalyzer(self.device.line_bytes)
        total = 0.0
        for rec in self.memory.trace:
            if rec.kind == "load":
                tx = sector.count_warp(rec.byte_addresses, rec.access_bytes)
                total += tx * self.device.sector_bytes
            else:
                tx = line.count_warp(rec.byte_addresses, rec.access_bytes)
                total += tx * self.device.line_bytes
        return total


class _WarpMemory:
    """Issues row-segment and gather accesses as warp-wide operations."""

    def __init__(self, mem: SimulatedMemory, n: int, warp: int):
        self.mem = mem
        self.n = n  # row pitch in elements
        self.warp = warp

    def load_segment(self, row: int, col0: int, width: int) -> np.ndarray:
        base = row * self.n + col0
        return self.mem.load(base + np.arange(width, dtype=np.int64))

    def store_segment(self, row: int, col0: int, values: np.ndarray) -> None:
        base = row * self.n + col0
        self.mem.store(base + np.arange(values.size, dtype=np.int64), values)

    def gather_row(self, row: int, cols: np.ndarray) -> np.ndarray:
        return self.mem.load(row * self.n + np.asarray(cols, dtype=np.int64))


def _rotate_group_executed(
    wm: _WarpMemory, m: int, cols: slice, amounts: np.ndarray
) -> None:
    """Cache-aware rotation of one column group, issued as sub-row moves."""
    width = cols.stop - cols.start
    base = int(amounts[0])
    # coarse: cycle-follow sub-rows by the base amount
    k = base % m
    if k != 0:
        rc = RotationCycles(m, k)
        for y in range(rc.n_cycles):
            held = wm.load_segment(y, cols.start, width)
            i = y
            for _ in range(rc.cycle_length - 1):
                src = (i + k) % m
                wm.store_segment(i, cols.start, wm.load_segment(src, cols.start, width))
                i = src
            wm.store_segment(i, cols.start, held)
    # fine: per-column residuals within the group, processed on chip
    residual = (amounts - base) % m
    if not residual.any():
        return
    block = np.stack([wm.load_segment(i, cols.start, width) for i in range(m)])
    rows = np.arange(m, dtype=np.int64)[:, None]
    block = np.take_along_axis(block, (rows + residual[None, :]) % m, axis=0)
    for i in range(m):
        wm.store_segment(i, cols.start, block[i])


def execute_c2r_kernel(
    A: np.ndarray,
    device: Device = TESLA_K20C,
) -> KernelResult:
    """Execute a C2R transpose of ``A`` (2-D) through simulated memory.

    Returns the :class:`KernelResult`; ``result.buffer.reshape(n, m)`` holds
    the transpose, and ``result.dram_bytes()`` the executed traffic.

    Intended for small/medium matrices (every element access is simulated);
    the paper-scale numbers come from :mod:`repro.gpusim.cost`, which this
    kernel validates.
    """
    if A.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    m, n = A.shape
    itemsize = A.dtype.itemsize
    dec = Decomposition.of(m, n)
    cache = CacheModel(line_bytes=device.line_bytes, itemsize=itemsize)
    mem = SimulatedMemory(m * n, itemsize=itemsize, dtype=A.dtype)
    mem.data[:] = A.ravel()
    mem.clear_trace()
    wm = _WarpMemory(mem, n, device.warp_size)
    cols_all = np.arange(n, dtype=np.int64)

    # -- pass 1: pre-rotation (gcd > 1), cache-aware -------------------------
    if dec.c > 1:
        amounts = cols_all // dec.b
        for g in range(cache.n_groups(n)):
            sl = cache.group_slice(g, n)
            _rotate_group_executed(wm, m, sl, amounts[sl] % m)

    # -- pass 2: row shuffle (gather d'^{-1}, coalesced writes) --------------
    w = device.warp_size
    for i in range(m):
        row = np.empty(n, dtype=A.dtype)
        for j0 in range(0, n, w):
            j = np.arange(j0, min(j0 + w, n), dtype=np.int64)
            src = eq.dprime_inverse_v(dec, np.int64(i), j)
            row[j0 : j0 + j.size] = wm.gather_row(i, src)
        for j0 in range(0, n, w):
            hi = min(j0 + w, n)
            wm.store_segment(i, j0, row[j0:hi])

    # -- pass 3: column-shuffle rotation (amounts j), cache-aware ------------
    if m > 1:
        for g in range(cache.n_groups(n)):
            sl = cache.group_slice(g, n)
            _rotate_group_executed(wm, m, sl, (cols_all[sl] % m))

        # -- pass 4: static row permutation q, sub-row cycle following -------
        q_gather = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
        cycles = permutation_cycles(q_gather)
        for g in range(cache.n_groups(n)):
            sl = cache.group_slice(g, n)
            width = sl.stop - sl.start
            for leader, length in zip(cycles.leaders, cycles.lengths):
                held = wm.load_segment(int(leader), sl.start, width)
                i = int(leader)
                for _ in range(int(length) - 1):
                    src = int(q_gather[i])
                    wm.store_segment(
                        i, sl.start, wm.load_segment(src, sl.start, width)
                    )
                    i = src
                wm.store_segment(i, sl.start, held)

    return KernelResult(memory=mem, m=m, n=n, itemsize=itemsize, device=device)


# ---------------------------------------------------------------------------
# The skinny AoS -> SoA kernel (Fig. 7's specialization), executed
# ---------------------------------------------------------------------------

def _block_columns(wm: _WarpMemory, s_rows: int, cols: slice) -> np.ndarray:
    width = cols.stop - cols.start
    return np.stack(
        [wm.load_segment(i, cols.start, width) for i in range(s_rows)]
    )


def _store_block(wm: _WarpMemory, block: np.ndarray, cols: slice) -> None:
    for i in range(block.shape[0]):
        wm.store_segment(i, cols.start, block[i])


def execute_skinny_kernel(
    aos: np.ndarray,
    device: Device = TESLA_K20C,
) -> KernelResult:
    """Execute the specialized AoS -> SoA conversion through simulated memory.

    ``aos`` is the ``(n_structs, struct_size)`` element matrix.  The kernel
    runs the skinny R2C pass sequence on the ``(S, N)`` view exactly as the
    specialized CUDA kernel would:

    * all column operations (``q^{-1}``, ``p^{-1}``, and the post-rotation)
      are *vertical* permutations, so each 32-column block is loaded once,
      permuted on chip, and stored once — the paper's "all column
      operations in on-chip memory";
    * the row shuffle gathers within rows of length ``N`` — far beyond
      on-chip capacity — so it runs in two passes through a scratch buffer
      whose traffic is charged like any other global memory.

    ``result.buffer.reshape(S, N)`` is the SoA matrix; the executed traffic
    validates :func:`repro.gpusim.cost.skinny_cost`.
    """
    if aos.ndim != 2:
        raise ValueError("expected an (n_structs, struct_size) matrix")
    N, S = aos.shape
    itemsize = aos.dtype.itemsize
    dec = Decomposition.of(S, N)
    mem = SimulatedMemory(S * N, itemsize=itemsize, dtype=aos.dtype)
    mem.data[:] = aos.ravel()  # row-major (N, S) == row-major (S, N) after
    # the transpose steps; the view used by the passes is (S, N)
    mem.clear_trace()
    wm = _WarpMemory(mem, N, device.warp_size)
    w = device.warp_size

    rows = np.arange(S, dtype=np.int64)
    q_inv = eq.permute_q_inverse_v(dec, rows)

    # -- fused vertical pass 1: q^{-1} row permutation + p^{-1} rotation ----
    for c0 in range(0, N, w):
        cols = slice(c0, min(c0 + w, N))
        block = _block_columns(wm, S, cols)
        block = block[q_inv, :]
        j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
        i = np.arange(S, dtype=np.int64)[:, None]
        block = np.take_along_axis(block, (i - j) % S, axis=0)
        _store_block(wm, block, cols)

    # -- row shuffle (gather d'), two passes through a global scratch -------
    scratch = SimulatedMemory(N, itemsize=itemsize, dtype=aos.dtype)
    for i_row in range(S):
        # pass A: gather-read the row, write scratch coalesced
        for j0 in range(0, N, w):
            j = np.arange(j0, min(j0 + w, N), dtype=np.int64)
            src = eq.dprime_v(dec, np.int64(i_row), j)
            vals = wm.gather_row(i_row, src)
            scratch.store(j, vals)
        # pass B: read scratch coalesced, write the row coalesced
        for j0 in range(0, N, w):
            j = np.arange(j0, min(j0 + w, N), dtype=np.int64)
            wm.store_segment(i_row, j0, scratch.load(j))
    # charge the scratch traffic alongside the main memory's
    mem.trace.extend(scratch.trace)

    # -- vertical pass 2: post-rotation r^{-1} (only when gcd > 1) ----------
    if dec.c > 1:
        for c0 in range(0, N, w):
            cols = slice(c0, min(c0 + w, N))
            block = _block_columns(wm, S, cols)
            j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
            i = np.arange(S, dtype=np.int64)[:, None]
            block = np.take_along_axis(block, (i - j // dec.b) % S, axis=0)
            _store_block(wm, block, cols)

    return KernelResult(memory=mem, m=N, n=S, itemsize=itemsize, device=device)


def execute_r2c_kernel(
    A: np.ndarray,
    device: Device = TESLA_K20C,
) -> KernelResult:
    """Execute an R2C transpose of ``A`` through simulated memory.

    R2C on an ``m x n`` array induces the same buffer permutation as C2R on
    the dimension-swapped view (Theorem 2), and its pass sequence is the
    mirrored C2R skeleton — so the executed kernel runs the C2R machinery on
    the ``(n, m)`` view of the same buffer.  ``result.buffer`` afterwards
    equals what ``r2c_transpose(buf, m, n)`` produces.
    """
    if A.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    m, n = A.shape
    return execute_c2r_kernel(A.ravel().reshape(n, m), device)
