"""Exact transaction counting over warp address traces.

The GPU memory system services a warp access by fetching every distinct
memory segment the warp's lanes touch: 128-byte transactions for cached
loads/stores, 32-byte sectors for scattered (L2) traffic.  Coalescing
efficiency is simply ``useful bytes / fetched bytes``.

:class:`TransactionAnalyzer` implements this literally: expand each lane
access into the segments covering ``[addr, addr + access_bytes)``, count the
distinct segments, and accumulate.  It consumes the ``AccessRecord`` traces
produced by :class:`repro.simd.memory.SimulatedMemory` as well as raw
address arrays from the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransactionAnalyzer", "TrafficSummary"]


@dataclass
class TrafficSummary:
    """Aggregate result of analyzing a trace."""

    transactions: int = 0
    useful_bytes: int = 0
    segment_bytes: int = 128
    load_transactions: int = 0
    store_transactions: int = 0

    @property
    def fetched_bytes(self) -> int:
        return self.transactions * self.segment_bytes

    @property
    def efficiency(self) -> float:
        """Useful fraction of fetched bytes (1.0 = perfectly coalesced)."""
        if self.transactions == 0:
            return 1.0
        return self.useful_bytes / self.fetched_bytes


class TransactionAnalyzer:
    """Counts distinct memory segments touched by warp-wide accesses."""

    def __init__(self, segment_bytes: int = 128):
        if segment_bytes <= 0:
            raise ValueError("segment size must be positive")
        self.segment_bytes = segment_bytes

    def count_warp(self, byte_addrs: np.ndarray, access_bytes: int = 4) -> int:
        """Distinct segments covering one warp access.

        ``byte_addrs`` holds each active lane's starting byte address;
        ``access_bytes`` is the contiguous footprint per lane.
        """
        a = np.asarray(byte_addrs, dtype=np.int64)
        if a.size == 0:
            return 0
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        first = a // self.segment_bytes
        last = (a + access_bytes - 1) // self.segment_bytes
        if (last == first).all():
            return int(np.unique(first).size)
        segs = np.concatenate(
            [np.arange(f, l + 1) for f, l in zip(first.tolist(), last.tolist())]
        )
        return int(np.unique(segs).size)

    def analyze(self, trace) -> TrafficSummary:
        """Analyze a list of ``AccessRecord``-like objects (``kind``,
        ``byte_addresses``, ``access_bytes``)."""
        out = TrafficSummary(segment_bytes=self.segment_bytes)
        for rec in trace:
            tx = self.count_warp(rec.byte_addresses, rec.access_bytes)
            out.transactions += tx
            out.useful_bytes += int(
                np.asarray(rec.byte_addresses).size * rec.access_bytes
            )
            if rec.kind == "load":
                out.load_transactions += tx
            else:
                out.store_transactions += tx
        return out

    def warp_efficiency(
        self, byte_addrs: np.ndarray, access_bytes: int = 4
    ) -> float:
        """Coalescing efficiency of a single warp access."""
        tx = self.count_warp(byte_addrs, access_bytes)
        if tx == 0:
            return 1.0
        useful = np.asarray(byte_addrs).size * access_bytes
        return useful / (tx * self.segment_bytes)
