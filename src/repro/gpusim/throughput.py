"""Throughput accounting (Eq. 37).

    throughput(m, n, s, t) = 2 * m * n * s / t

— an ideal transpose reads and writes each of the ``m*n`` elements of size
``s`` exactly once, so ``2mns`` bytes over the elapsed time is the paper's
figure of merit everywhere.
"""

from __future__ import annotations

__all__ = ["eq37_throughput", "gbps"]


def eq37_throughput(m: int, n: int, itemsize: int, seconds: float) -> float:
    """Eq. 37 in bytes/second."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return 2.0 * m * n * itemsize / seconds


def gbps(bytes_per_second: float) -> float:
    """Bytes/s -> GB/s (decimal, as the paper reports)."""
    return bytes_per_second / 1e9
