"""Throughput model for AoS vector memory accesses (Figures 8 and 9).

Each data point executes the *real* access method on the simulated warp
(:class:`~repro.simd.coalesced.CoalescedArray`), then prices the recorded
address trace and instruction counts with the device model:

Loads
    The L2 serves repeated 32-byte sectors within a batch once (sector
    dedup), so DRAM traffic is the number of *unique* sectors touched; but
    every issued sector request still occupies the memory pipeline, so the
    effective time is the max of the traffic term and the issue term.
Stores
    Writes allocate at full line granularity and are not merged across
    store instructions (Kepler stores bypass L1); each warp store pays its
    distinct 128-byte lines.
Compute
    Shuffles retire at one warp-op per SM-cycle, selects/ALU at six; the
    access is compute-bound when that exceeds the memory time (visible as
    the C2R lines' mild droop at large structs).

throughput = useful bytes / max(memory time, instruction time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simd.coalesced import CoalescedArray
from ..simd.machine import SimdMachine
from ..simd.memory import SimulatedMemory
from .device import TESLA_K20C, Device
from .memory import TransactionAnalyzer

__all__ = ["AccessResult", "aos_access_throughput", "PATTERNS", "OPS"]

PATTERNS = ("c2r", "direct", "vector")
OPS = ("load", "store", "copy", "gather", "scatter")


@dataclass(frozen=True)
class AccessResult:
    """One modeled data point."""

    pattern: str
    op: str
    struct_bytes: int
    useful_bytes: int
    load_traffic_bytes: float
    store_traffic_bytes: float
    instr_seconds: float
    mem_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.mem_seconds, self.instr_seconds)

    @property
    def throughput(self) -> float:
        return self.useful_bytes / self.seconds

    @property
    def throughput_gbps(self) -> float:
        return self.throughput / 1e9


def _run_op(
    arr: CoalescedArray,
    pattern: str,
    op: str,
    idx: np.ndarray,
    base: int,
) -> None:
    m = arr.m
    mach = arr.machine
    regs = [np.zeros(mach.n_lanes, dtype=arr.memory.data.dtype) for _ in range(m)]
    if op in ("load", "copy", "gather"):
        if pattern == "c2r":
            regs = arr.warp_gather(idx) if op == "gather" else arr.warp_load(base)
        elif pattern == "direct":
            regs = arr.direct_load(idx if op == "gather" else base + np.arange(32))
        else:
            regs = arr.vector_load(idx if op == "gather" else base + np.arange(32))
    if op in ("store", "copy", "scatter"):
        if pattern == "c2r":
            if op == "scatter":
                arr.warp_scatter(idx, regs)
            else:
                arr.warp_store(base, regs)
        elif pattern == "direct":
            arr.direct_store(idx if op == "scatter" else base + np.arange(32), regs)
        else:
            arr.vector_store(idx if op == "scatter" else base + np.arange(32), regs)


def aos_access_throughput(
    struct_words: int,
    pattern: str,
    op: str,
    device: Device = TESLA_K20C,
    *,
    itemsize: int = 4,
    n_warps: int = 8,
    seed: int = 0,
) -> AccessResult:
    """Model one Fig. 8/9 data point.

    Parameters
    ----------
    struct_words:
        Structure size in AoS words (``struct_bytes = struct_words *
        itemsize``).
    pattern:
        ``"c2r"`` (this paper's transpose-in-registers), ``"direct"``
        (compiler element-wise) or ``"vector"`` (native 128-bit accesses).
    op:
        ``"load"``/``"store"``/``"copy"`` for unit-stride (Fig. 8),
        ``"gather"``/``"scatter"`` for random (Fig. 9).
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}")
    if op not in OPS:
        raise ValueError(f"unknown op {op!r}")
    rng = np.random.default_rng(seed)
    m = struct_words
    n_structs = max(4096, 64 * m)
    mem = SimulatedMemory(n_structs * m, itemsize=itemsize)
    mem.data[:] = np.arange(n_structs * m)
    mach = SimdMachine(device.warp_size)
    arr = CoalescedArray(mem, m, mach)

    for w in range(n_warps):
        if op in ("gather", "scatter"):
            idx = rng.choice(n_structs, size=device.warp_size, replace=False)
            base = 0
        else:
            idx = np.arange(device.warp_size) + w * device.warp_size
            base = w * device.warp_size
        _run_op(arr, pattern, op, idx.astype(np.int64), base)

    # ---- price the trace -------------------------------------------------
    sector = TransactionAnalyzer(device.sector_bytes)
    line = TransactionAnalyzer(device.line_bytes)

    load_issued_sectors = 0
    load_sector_ids: set[int] = set()
    store_line_count = 0
    for rec in mem.trace:
        if rec.kind == "load":
            load_issued_sectors += sector.count_warp(
                rec.byte_addresses, rec.access_bytes
            )
            a = np.asarray(rec.byte_addresses, dtype=np.int64)
            first = a // device.sector_bytes
            last = (a + rec.access_bytes - 1) // device.sector_bytes
            for f, l in zip(first.tolist(), last.tolist()):
                load_sector_ids.update(range(f, l + 1))
        else:
            lines = line.count_warp(rec.byte_addresses, rec.access_bytes)
            covered = np.asarray(rec.byte_addresses).size * rec.access_bytes
            if covered < lines * device.line_bytes:
                # partially covered lines: ECC read-modify-write doubles the
                # DRAM cost (the reason compiler-generated AoS stores fall up
                # to 45x below peak in Fig. 8a)
                store_line_count += 2 * lines
            else:
                store_line_count += lines

    load_traffic = len(load_sector_ids) * device.sector_bytes
    load_issue = load_issued_sectors * device.sector_bytes
    store_traffic = store_line_count * device.line_bytes
    bw = device.achievable_bandwidth
    mem_seconds = max(load_traffic, load_issue) / bw + store_traffic / bw

    c = mach.counts
    instr_seconds = c.shfl / device.shfl_rate + (c.select + c.alu) / device.alu_rate

    struct_bytes = m * itemsize
    sides = 2 if op == "copy" else 1
    useful = n_warps * device.warp_size * struct_bytes * sides
    return AccessResult(
        pattern=pattern,
        op=op,
        struct_bytes=struct_bytes,
        useful_bytes=useful,
        load_traffic_bytes=float(load_traffic),
        store_traffic_bytes=float(store_traffic),
        instr_seconds=instr_seconds,
        mem_seconds=mem_seconds,
    )
