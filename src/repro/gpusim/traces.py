"""Trace-measured pass efficiencies for the full-matrix cost models.

Each function answers one question about a pass's memory behaviour by
generating the pass's *actual* addresses (from the real index equations)
and running them through the transaction analyzer:

* :func:`row_gather_efficiency` — the row shuffle's gathered reads
  (``d'^{-1}`` within a row): sampled warps, 32-byte sector granularity.
* :func:`cached_row_gather_efficiency` — the same, with cache residency: a
  row short enough to stay resident during its own shuffle is re-read from
  cache, pushing DRAM efficiency toward compulsory traffic (this is the
  mechanism behind the fast bands of Figures 4 and 5).
* :func:`subrow_efficiency` — sub-row (cache-line-granular) column
  operations: alignment is the only loss.
* :func:`fine_rotate_fraction` — fraction of column groups whose residual
  rotation is nonzero, i.e. the share of the array needing the fine pass
  (Section 4.6's skip optimization).
"""

from __future__ import annotations

import numpy as np

from ..cache.model import CacheModel
from ..core import equations as eq
from ..core.indexing import Decomposition
from .device import Device
from .memory import TransactionAnalyzer

__all__ = [
    "row_gather_efficiency",
    "cached_row_gather_efficiency",
    "subrow_efficiency",
    "fine_rotate_fraction",
]

#: Cache-resident rows still pay some overhead (tag traffic, conflict and
#: capacity misses); 0.85 models "nearly compulsory-only" DRAM traffic.
L2_RESIDENT_EFFICIENCY = 0.85
#: Rows processed concurrently per SM (blocks in flight); divides the L2
#: into the per-row share that decides residency.  On Kepler, global loads
#: are cached in L2 only, so L2 — not L1 — is the reuse mechanism.
CONCURRENT_ROWS_PER_SM = 4


def row_gather_efficiency(
    dec: Decomposition,
    itemsize: int,
    device: Device,
    rng: np.random.Generator,
    n_warps: int = 48,
) -> float:
    """Sector-level coalescing of the ``d'^{-1}`` row gather, sampled.

    Each sampled warp reads 32 consecutive output positions of one row; the
    source addresses are ``d'^{-1}_i(j) * itemsize`` within the row.  No
    cache reuse is assumed here (see :func:`cached_row_gather_efficiency`).
    """
    analyzer = TransactionAnalyzer(device.sector_bytes)
    w = device.warp_size
    total_tx = 0
    total_useful = 0
    for _ in range(n_warps):
        i = int(rng.integers(0, dec.m))
        j0 = int(rng.integers(0, max(1, dec.n - w + 1)))
        j = np.arange(j0, min(j0 + w, dec.n), dtype=np.int64)
        src = eq.dprime_inverse_v(dec, np.int64(i), j)
        addrs = src * itemsize  # offsets within the row: alignment within a
        # row dominates; the row base is line-aligned in the kernels
        total_tx += analyzer.count_warp(addrs, itemsize)
        total_useful += j.size * itemsize
    if total_tx == 0:
        return 1.0
    return min(1.0, total_useful / (total_tx * device.sector_bytes))


def cached_row_gather_efficiency(
    dec: Decomposition,
    itemsize: int,
    device: Device,
    rng: np.random.Generator,
    n_warps: int = 48,
) -> float:
    """Row-gather efficiency including cache residency of the row.

    A row short enough that each concurrently-processed row fits its share
    of the L2 is read from DRAM once (compulsory traffic) no matter how
    scattered the gather — the mechanism behind the fast band at small
    ``n`` in Fig. 4 (and, mirrored, small ``m`` in Fig. 5).  Longer rows
    see raw sector-level coalescing.
    """
    row_bytes = dec.n * itemsize
    share = device.l2_bytes // max(1, device.n_sm * CONCURRENT_ROWS_PER_SM)
    if row_bytes <= share:
        return L2_RESIDENT_EFFICIENCY
    return row_gather_efficiency(dec, itemsize, device, rng, n_warps)


def subrow_efficiency(m: int, n: int, itemsize: int, device: Device) -> float:
    """Efficiency of cache-line-granular sub-row movement.

    A sub-row is one line wide; the only loss is boundary straddling, which
    the cache geometry computes exactly.
    """
    model = CacheModel(line_bytes=device.line_bytes, itemsize=itemsize)
    straddle = model.straddle_fraction(min(m, 64), n)
    # A straddling sub-row touches 2 lines instead of 1.
    return 1.0 / (1.0 + straddle)


def fine_rotate_fraction(dec: Decomposition, itemsize: int, device: Device) -> float:
    """Fraction of column groups whose fine rotation pass actually runs.

    For the pre-rotation (amounts ``j // b``) a group of ``w`` columns has
    zero residual iff ``j // b`` is constant across the group; the exact
    count follows from how many groups straddle a multiple of ``b``.
    """
    w = max(1, device.line_bytes // itemsize)
    n = dec.n
    n_groups = (n + w - 1) // w
    processed = 0
    for g in range(n_groups):
        lo = g * w
        hi = min(lo + w, n) - 1
        if lo // dec.b != hi // dec.b:
            processed += 1
    return processed / n_groups if n_groups else 0.0
