"""SM occupancy model — what shared-memory staging really costs.

The paper's argument for the in-register transpose is not only bank
conflicts: staging through shared memory consumes a scarce per-SM resource,
reducing the number of warps in flight, and memory latency hiding (hence
achieved bandwidth) degrades with occupancy.  This model computes the
classic occupancy calculation for a kernel's per-block resources and maps
occupancy to an achievable-bandwidth fraction.

Constants are Kepler (GK110) limits from the CUDA occupancy calculator; the
bandwidth-vs-occupancy curve is the standard Little's-law saturation shape
(latency x bandwidth product ≈ 100 kB in flight on Kepler ⇒ roughly half
the maximum resident warps are needed to saturate DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import TESLA_K20C, Device

__all__ = ["OccupancyLimits", "KEPLER_LIMITS", "occupancy", "bandwidth_fraction"]


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-SM scheduling limits."""

    max_threads: int = 2048
    max_warps: int = 64
    max_blocks: int = 16
    smem_bytes: int = 48 * 1024
    max_registers: int = 65536
    #: fraction of max warps needed to saturate DRAM bandwidth
    saturation_warps_fraction: float = 0.5


KEPLER_LIMITS = OccupancyLimits()


def occupancy(
    threads_per_block: int,
    smem_per_block: int = 0,
    regs_per_thread: int = 32,
    limits: OccupancyLimits = KEPLER_LIMITS,
) -> float:
    """Achieved occupancy (resident warps / max warps) for a kernel config.

    The binding constraint is the minimum over the thread, block, register
    and shared-memory limits — exactly the CUDA occupancy calculation.
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > limits.max_threads:
        return 0.0
    if smem_per_block > limits.smem_bytes:
        return 0.0
    if regs_per_thread * threads_per_block > limits.max_registers:
        return 0.0
    by_threads = limits.max_threads // threads_per_block
    by_blocks = limits.max_blocks
    by_smem = (
        limits.smem_bytes // smem_per_block if smem_per_block > 0 else by_blocks
    )
    by_regs = limits.max_registers // (regs_per_thread * threads_per_block)
    blocks = min(by_threads, by_blocks, by_smem, by_regs)
    warps = blocks * (threads_per_block // 32 + (threads_per_block % 32 > 0))
    return min(1.0, warps / limits.max_warps)


def bandwidth_fraction(
    occ: float, limits: OccupancyLimits = KEPLER_LIMITS
) -> float:
    """Fraction of achievable DRAM bandwidth at a given occupancy.

    Little's law saturation: bandwidth rises linearly with in-flight warps
    until the latency-bandwidth product is covered, then flattens.
    """
    if not (0.0 <= occ <= 1.0):
        raise ValueError("occupancy must be in [0, 1]")
    sat = limits.saturation_warps_fraction
    return min(1.0, occ / sat) if sat > 0 else 1.0


def staged_access_bandwidth(
    struct_words: int,
    itemsize: int = 4,
    threads_per_block: int = 256,
    device: Device = TESLA_K20C,
    limits: OccupancyLimits = KEPLER_LIMITS,
) -> float:
    """Achievable bandwidth (bytes/s) of the smem-staged AoS access.

    Each warp stages ``struct_words * 32`` elements, so a block of
    ``threads_per_block`` threads allocates
    ``struct_words * threads_per_block * itemsize`` bytes of shared memory —
    the occupancy cost the register path does not pay.
    """
    smem = struct_words * threads_per_block * itemsize
    occ = occupancy(threads_per_block, smem, limits=limits)
    return device.achievable_bandwidth * bandwidth_fraction(occ, limits)
