"""Per-algorithm GPU cost models (Figures 4-7, Table 2).

Every model follows one rule: a pass's DRAM time is its useful byte count
divided by its trace-measured coalescing efficiency, over the device's
achievable bandwidth.  The pass structures are the ones the paper's GPU
implementation describes:

C2R on an ``m x n`` view (Sections 4-5.2)
    1. pre-rotation, coarse (cache-aware sub-rows) + fine (skipped for
       groups with zero residual) — only when ``gcd > 1``;
    2. row shuffle — gathered reads (``d'^{-1}``), coalesced writes; single
       pass when a row fits on chip (Section 4.5), two passes otherwise;
    3. column-shuffle rotation, coarse + fine;
    4. static row permutation via sub-row cycle following.

R2C on an ``m x n`` array
    The mirrored pass sequence on the swapped view (Theorem 2): identical
    skeleton with the roles of ``m`` and ``n`` exchanged — which is exactly
    why Fig. 4's fast band sits at small ``n`` and Fig. 5's at small ``m``.

Skinny AoS/SoA specialization (Section 6.1)
    Column operations fused entirely on chip (the row count is the struct
    size); the row shuffle's gathered read is the only inefficient pass.

Sung [6]
    Two tiled stages (4 array passes), tile-segment coalescing measured
    exactly, derated by a serialization factor for its cycle-following
    dependencies and flag traffic — calibrated once against the author's
    published 20.8 GB/s best case, not against this paper's medians.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.sung import SungPlan
from ..core.indexing import Decomposition
from .device import TESLA_K20C, Device
from .memory import TransactionAnalyzer
from .throughput import eq37_throughput
from .traces import (
    cached_row_gather_efficiency,
    fine_rotate_fraction,
    row_gather_efficiency,
    subrow_efficiency,
)

__all__ = [
    "PassCost",
    "TransposeCost",
    "c2r_cost",
    "r2c_cost",
    "auto_cost",
    "skinny_cost",
    "sung_cost",
]

#: Sung's cycle-following stages serialize on cycle dependencies and spend
#: bandwidth on completion flags; 0.4 reproduces the 20.8-22.4 GB/s best
#: cases reported for that implementation on friendly shapes.
SUNG_SERIALIZATION = 0.4


@dataclass(frozen=True)
class PassCost:
    """One pass: useful bytes moved and its coalescing efficiency."""

    name: str
    useful_bytes: float
    efficiency: float

    @property
    def dram_bytes(self) -> float:
        return self.useful_bytes / max(self.efficiency, 1e-9)


@dataclass
class TransposeCost:
    """Aggregate cost of one transpose on a device."""

    m: int
    n: int
    itemsize: int
    device: Device
    passes: list[PassCost] = field(default_factory=list)

    @property
    def dram_bytes(self) -> float:
        return sum(p.dram_bytes for p in self.passes)

    @property
    def seconds(self) -> float:
        return self.dram_bytes / self.device.achievable_bandwidth

    @property
    def throughput(self) -> float:
        """Eq. 37 bytes/second."""
        return eq37_throughput(self.m, self.n, self.itemsize, self.seconds)

    @property
    def throughput_gbps(self) -> float:
        return self.throughput / 1e9


def _c2r_view_passes(
    vm: int,
    vn: int,
    itemsize: int,
    device: Device,
    rng: np.random.Generator,
) -> list[PassCost]:
    """The C2R pass skeleton on a ``(vm, vn)`` row-major view."""
    dec = Decomposition.of(vm, vn)
    X = float(vm * vn * itemsize)
    sub = subrow_efficiency(vm, vn, itemsize, device)
    passes: list[PassCost] = []

    if dec.c > 1:
        passes.append(PassCost("pre-rotate coarse", 2 * X, sub))
        frac = fine_rotate_fraction(dec, itemsize, device)
        if frac > 0:
            passes.append(PassCost("pre-rotate fine", 2 * X * frac, sub))

    g_eff = cached_row_gather_efficiency(dec, itemsize, device, rng)
    n_passes = device.onchip.row_shuffle_passes(vn, itemsize)
    passes.append(PassCost("row shuffle read", X, g_eff))
    passes.append(PassCost("row shuffle write", X, 1.0))
    if n_passes == 2:
        passes.append(PassCost("row shuffle extra pass", 2 * X, 1.0))

    if vm > 1:
        # column-shuffle rotation (amounts j): residuals hit every group
        passes.append(PassCost("col rotate coarse", 2 * X, sub))
        passes.append(PassCost("col rotate fine", 2 * X, sub))
        passes.append(PassCost("row permute", 2 * X, sub))
    return passes


def c2r_cost(
    m: int,
    n: int,
    itemsize: int = 8,
    device: Device = TESLA_K20C,
    rng: np.random.Generator | None = None,
) -> TransposeCost:
    """Cost of transposing a row-major ``m x n`` array with C2R."""
    rng = rng or np.random.default_rng(m * 1_000_003 + n)
    cost = TransposeCost(m, n, itemsize, device)
    cost.passes = _c2r_view_passes(m, n, itemsize, device, rng)
    return cost


def r2c_cost(
    m: int,
    n: int,
    itemsize: int = 8,
    device: Device = TESLA_K20C,
    rng: np.random.Generator | None = None,
) -> TransposeCost:
    """Cost of transposing a row-major ``m x n`` array with R2C.

    R2C runs the mirrored sequence on the dimension-swapped view
    (Theorem 2), so its skeleton is the C2R skeleton on ``(n, m)``.
    """
    rng = rng or np.random.default_rng(m * 1_000_003 + n + 1)
    cost = TransposeCost(m, n, itemsize, device)
    cost.passes = _c2r_view_passes(n, m, itemsize, device, rng)
    return cost


def auto_cost(
    m: int,
    n: int,
    itemsize: int = 8,
    device: Device = TESLA_K20C,
    rng: np.random.Generator | None = None,
) -> TransposeCost:
    """The paper's combined heuristic: C2R when ``m > n``, else R2C."""
    if m > n:
        return c2r_cost(m, n, itemsize, device, rng)
    return r2c_cost(m, n, itemsize, device, rng)


def skinny_cost(
    n_structs: int,
    struct_size: int,
    itemsize: int = 8,
    device: Device = TESLA_K20C,
    rng: np.random.Generator | None = None,
) -> TransposeCost:
    """Cost of the specialized AoS -> SoA conversion (Fig. 7).

    The view is ``(struct_size, n_structs)``: with only ``struct_size``
    rows, all column operations fuse into single on-chip streaming passes;
    the row shuffle's gathered read is the lone inefficiency.
    """
    rng = rng or np.random.default_rng(n_structs * 31 + struct_size)
    S, N = struct_size, n_structs
    dec = Decomposition.of(S, N)
    X = float(S * N * itemsize)
    cost = TransposeCost(N, S, itemsize, device)
    passes: list[PassCost] = []
    if dec.c > 1:
        # fused on-chip rotation: perfectly coalesced streaming
        passes.append(PassCost("rotate (on-chip)", 2 * X, 1.0))
    g_eff = row_gather_efficiency(dec, itemsize, device, rng)
    passes.append(PassCost("row shuffle read", X, g_eff))
    passes.append(PassCost("row shuffle write", X, 1.0))
    # rows are n_structs elements long — far beyond on-chip capacity, so
    # the shuffle runs in two passes through a scratch buffer
    passes.append(PassCost("row shuffle scratch pass", 2 * X, 1.0))
    passes.append(PassCost("column ops (on-chip)", 2 * X, 1.0))
    cost.passes = passes
    return cost


def _tile_segment_efficiency(
    seg_elems: int, itemsize: int, device: Device, n_samples: int = 64
) -> float:
    """Exact expected coalescing of reading ``seg_elems``-element row
    segments at the alignments a tiled kernel actually sees."""
    analyzer = TransactionAnalyzer(device.line_bytes)
    seg_bytes = seg_elems * itemsize
    total_tx = 0
    for k in range(n_samples):
        offset = (k * itemsize * 7) % device.line_bytes
        total_tx += analyzer.count_warp(np.array([offset]), seg_bytes)
    useful = n_samples * seg_bytes
    return min(1.0, useful / (total_tx * device.line_bytes))


def sung_cost(
    m: int,
    n: int,
    itemsize: int = 4,
    device: Device = TESLA_K20C,
) -> tuple[TransposeCost, SungPlan]:
    """Cost of Sung's tiled in-place transpose with the paper's tile
    heuristic; returns the cost and the tile plan (callers filter
    degenerate plans the way the paper reports incomplete runs)."""
    plan = SungPlan.plan(m, n)
    X = float(m * n * itemsize)
    read_eff = _tile_segment_efficiency(plan.tile_cols, itemsize, device)
    write_eff = _tile_segment_efficiency(plan.tile_rows, itemsize, device)
    cost = TransposeCost(m, n, itemsize, device)
    eff_factor = SUNG_SERIALIZATION
    cost.passes = [
        PassCost("stage 1 read", X, read_eff * eff_factor),
        PassCost("stage 1 write", X, write_eff * eff_factor),
        PassCost("stage 2 read", X, write_eff * eff_factor),
        PassCost("stage 2 write", X, read_eff * eff_factor),
    ]
    return cost, plan
