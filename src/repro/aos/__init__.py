"""Array-of-Structures <-> Structure-of-Arrays conversion (Section 6.1).

An AoS of ``N`` structs with ``S`` same-typed fields is a row-major
``N x S`` matrix; the SoA layout is its transpose.  The conversions here are
*in place* — the property that makes them practical for large datasets —
using the skinny-matrix specialization: the transpose view is chosen so the
tiny dimension is the row count, letting every column operation run as a
handful of whole-array vector moves (the numpy analogue of the paper's
"all column operations in on-chip memory").

* :mod:`~repro.aos.layout` — layout descriptors and structured-dtype
  plumbing.
* :mod:`~repro.aos.skinny` — the specialized skinny transposes with
  ``O(max(N, S))`` auxiliary space.
* :mod:`~repro.aos.convert` — user-facing ``aos_to_soa`` / ``soa_to_aos``.
"""

from .asta import aos_to_asta, asta_index, asta_to_aos, asta_to_soa, soa_to_asta
from .convert import aos_to_soa, aos_to_soa_flat, soa_to_aos, soa_to_aos_flat
from .layout import AosLayout, field_matrix, struct_view
from .skinny import skinny_transpose

__all__ = [
    "AosLayout",
    "aos_to_asta",
    "asta_to_aos",
    "asta_to_soa",
    "soa_to_asta",
    "asta_index",
    "aos_to_soa",
    "aos_to_soa_flat",
    "soa_to_aos",
    "soa_to_aos_flat",
    "skinny_transpose",
    "field_matrix",
    "struct_view",
]
