"""User-facing in-place AoS <-> SoA conversion.

An AoS buffer of ``N`` structs x ``S`` fields is the row-major ``N x S``
matrix; SoA is the transposed ``S x N`` matrix in the same bytes.  The
conversions transpose in place via the skinny specialization and return a
reshaped *view* of the same memory.
"""

from __future__ import annotations

import numpy as np

from .layout import field_matrix
from .skinny import skinny_transpose

__all__ = ["aos_to_soa", "soa_to_aos", "aos_to_soa_flat", "soa_to_aos_flat"]


def aos_to_soa_flat(buf: np.ndarray, n_structs: int, struct_size: int) -> np.ndarray:
    """Convert a flat AoS buffer to SoA in place.

    Returns the same memory viewed as the ``(struct_size, n_structs)``
    field-major matrix (row ``k`` = field ``k`` of every struct).
    """
    if buf.ndim != 1 or buf.shape[0] != n_structs * struct_size:
        raise ValueError(
            f"buffer must be flat with {n_structs * struct_size} elements"
        )
    skinny_transpose(buf, n_structs, struct_size)
    return buf.reshape(struct_size, n_structs)


def soa_to_aos_flat(buf: np.ndarray, n_structs: int, struct_size: int) -> np.ndarray:
    """Convert a flat SoA buffer back to AoS in place.

    Returns the same memory viewed as ``(n_structs, struct_size)``.
    """
    if buf.ndim != 1 or buf.shape[0] != n_structs * struct_size:
        raise ValueError(
            f"buffer must be flat with {n_structs * struct_size} elements"
        )
    skinny_transpose(buf, struct_size, n_structs)
    return buf.reshape(n_structs, struct_size)


def aos_to_soa(aos: np.ndarray) -> np.ndarray:
    """Convert an AoS array to SoA in place.

    Accepts either a 2-D ``(N, S)`` element matrix or a 1-D structured
    array with ``S`` homogeneous fields; returns the ``(S, N)`` field-major
    matrix viewing the *same* memory (row ``k`` = all values of field
    ``k``).  The input array's contents are permuted — use the returned
    view afterwards.
    """
    if aos.dtype.names is not None:
        matrix = field_matrix(aos)
    else:
        matrix = aos
    if matrix.ndim != 2:
        raise ValueError("expected (n_structs, struct_size) data")
    if not matrix.flags["C_CONTIGUOUS"]:
        raise ValueError("AoS data must be C-contiguous")
    n, s = matrix.shape
    return aos_to_soa_flat(matrix.reshape(-1), n, s)


def soa_to_aos(soa: np.ndarray) -> np.ndarray:
    """Convert an ``(S, N)`` field-major matrix back to ``(N, S)`` AoS in
    place (inverse of :func:`aos_to_soa`)."""
    if soa.ndim != 2:
        raise ValueError("expected (struct_size, n_structs) data")
    if not soa.flags["C_CONTIGUOUS"]:
        raise ValueError("SoA data must be C-contiguous")
    s, n = soa.shape
    return soa_to_aos_flat(soa.reshape(-1), n, s)
