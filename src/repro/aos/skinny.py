"""Skinny-matrix specialized in-place transposes (Section 6.1).

The general kernels parallelize expecting both dimensions to be large; for
data-layout conversion one dimension (the struct size ``S``) is tiny.  The
specialization chooses the transpose direction so the *view* has only ``S``
rows, then exploits that:

* the row shuffle loops over just ``S`` rows, each a fully vectorized
  length-``N`` gather through an ``O(N)`` scratch vector;
* the column-shuffle rotation groups columns by residue class
  (``j mod S``) — all columns in a class rotate identically, so the whole
  pass is ``S`` vectorized cyclic shifts;
* the pre/post-rotation groups columns by ``j // b`` — at most ``c <= S``
  groups, again one vectorized shift each;
* the static row permutation cycle-follows over ``S`` rows with a single
  row buffer.

Auxiliary space is ``O(N)`` — one row — honoring the ``O(max(m, n))``
bound, and every numpy operation touches ``Theta(N)`` elements, which is
what "all column operations in on-chip memory" buys the CUDA kernel.
"""

from __future__ import annotations

import numpy as np

from ..core import equations as eq
from ..core import steps
from ..core.indexing import Decomposition

__all__ = ["skinny_transpose", "skinny_r2c", "skinny_c2r"]


def _rotate_residue_classes(V: np.ndarray, dec: Decomposition, *, inverse: bool) -> None:
    """The column-shuffle rotation (Eq. 32/35) as ``m`` vectorized shifts.

    Columns with equal ``j mod m`` share a rotation amount; the slice
    ``V[:, k::m]`` is one cyclic shift along axis 0.
    """
    m = dec.m
    for k in range(1, m):
        shift = k if inverse else -k
        V[:, k::m] = np.roll(V[:, k::m], shift, axis=0)


def skinny_r2c(buf: np.ndarray, m: int, n: int) -> np.ndarray:
    """R2C transpose of the ``(m, n)`` view, specialized for small ``m``.

    Identical result to ``r2c_transpose(buf, m, n)``; all passes are
    ``O(m)`` vectorized operations over length-``n`` slices.
    """
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")
    dec = Decomposition.of(m, n)
    V = buf.reshape(m, n)
    scratch = steps.Scratch.for_shape(m, n, buf.dtype)

    # 1. static row permutation q^{-1} (cycle following, one row buffer)
    rows = np.arange(m, dtype=np.int64)
    steps.permute_rows_strict(V, eq.permute_q_inverse_v(dec, rows), scratch=scratch)
    # 2. inverse column rotation p^{-1}, grouped by residue class
    _rotate_residue_classes(V, dec, inverse=True)
    # 3. row shuffle (gather d'), one vectorized row at a time
    steps.shuffle_rows_strict(V, dec, gather=True, use_dprime=True, scratch=scratch)
    # 4. post-rotation r^{-1}: c groups of b consecutive columns
    if dec.c > 1:
        steps.rotate_columns_blocked(V, dec, inverse=True)
    return buf


def skinny_c2r(buf: np.ndarray, m: int, n: int) -> np.ndarray:
    """C2R transpose of the ``(m, n)`` view, specialized for small ``m``.

    The inverse sequence of :func:`skinny_r2c`.
    """
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")
    dec = Decomposition.of(m, n)
    V = buf.reshape(m, n)
    scratch = steps.Scratch.for_shape(m, n, buf.dtype)

    if dec.c > 1:
        steps.rotate_columns_blocked(V, dec)
    steps.shuffle_rows_strict(V, dec, gather=True, use_dprime=False, scratch=scratch)
    _rotate_residue_classes(V, dec, inverse=False)
    rows = np.arange(m, dtype=np.int64)
    steps.permute_rows_strict(V, eq.permute_q_v(dec, rows), scratch=scratch)
    return buf


def skinny_transpose(buf: np.ndarray, m: int, n: int) -> np.ndarray:
    """In-place row-major transpose of an ``m x n`` matrix, one dimension
    assumed small.

    Chooses the view so the small dimension is the row count (the paper:
    "we can guarantee that the number of rows is very small by choosing the
    C2R or R2C algorithm appropriately"): C2R on the ``(m, n)`` view when
    ``m`` is small, R2C on the swapped view when ``n`` is small.
    """
    if m <= n:
        # view (m, n): m rows (small); C2R transposes row-major directly
        return skinny_c2r(buf, m, n)
    # view (n, m): n rows (small); R2C with swapped dims (Theorem 2)
    return skinny_r2c(buf, n, m)
