"""Layout descriptors and structured-dtype plumbing for AoS data.

numpy structured arrays with homogeneous field types are the natural Python
expression of the paper's Arrays of Structures; :func:`field_matrix` exposes
such an array as the underlying ``N x S`` element matrix (zero-copy), and
:func:`struct_view` goes the other way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AosLayout", "field_matrix", "struct_view"]


@dataclass(frozen=True)
class AosLayout:
    """Shape/type description of an Array of Structures.

    ``n_structs`` structures of ``struct_size`` fields, each field one
    ``base_dtype`` element.
    """

    n_structs: int
    struct_size: int
    base_dtype: np.dtype

    def __post_init__(self):
        if self.n_structs <= 0 or self.struct_size <= 0:
            raise ValueError("layout dimensions must be positive")

    @property
    def n_elements(self) -> int:
        return self.n_structs * self.struct_size

    @property
    def nbytes(self) -> int:
        return self.n_elements * self.base_dtype.itemsize

    @classmethod
    def of_matrix(cls, arr: np.ndarray) -> "AosLayout":
        """Layout of a 2-D ``(N, S)`` element matrix."""
        if arr.ndim != 2:
            raise ValueError("expected a 2-D (n_structs, struct_size) array")
        return cls(arr.shape[0], arr.shape[1], arr.dtype)

    @classmethod
    def of_struct_array(cls, arr: np.ndarray) -> "AosLayout":
        """Layout of a 1-D structured array with homogeneous fields."""
        base = _homogeneous_base(arr.dtype)
        return cls(arr.shape[0], len(arr.dtype.names), base)


def _homogeneous_base(dtype: np.dtype) -> np.dtype:
    """The common field dtype of a structured dtype; raises if fields mix
    types (the paper's SIMD transposes assume same-width words)."""
    if dtype.names is None:
        raise ValueError("expected a structured dtype")
    bases = {dtype.fields[name][0] for name in dtype.names}
    if len(bases) != 1:
        raise ValueError(f"fields must share one dtype, got {sorted(map(str, bases))}")
    base = bases.pop()
    if base.shape:
        raise ValueError("sub-array fields are not supported")
    return base


def field_matrix(struct_arr: np.ndarray) -> np.ndarray:
    """View a 1-D homogeneous structured array as its ``(N, S)`` matrix.

    Zero-copy: mutating the matrix mutates the structured array.
    """
    if struct_arr.ndim != 1:
        raise ValueError("expected a 1-D structured array")
    base = _homogeneous_base(struct_arr.dtype)
    n = struct_arr.shape[0]
    s = len(struct_arr.dtype.names)
    if struct_arr.dtype.itemsize != base.itemsize * s:
        raise ValueError("padded structs cannot be viewed as a matrix")
    flat = struct_arr.view(base)
    return flat.reshape(n, s)


def struct_view(matrix: np.ndarray, names: list[str]) -> np.ndarray:
    """View an ``(N, S)`` element matrix as a structured array.

    Inverse of :func:`field_matrix` (zero-copy; requires C-contiguity).
    """
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if len(names) != matrix.shape[1]:
        raise ValueError("one field name per column required")
    if not matrix.flags["C_CONTIGUOUS"]:
        raise ValueError("matrix must be C-contiguous")
    dt = np.dtype([(nm, matrix.dtype) for nm in names])
    return matrix.reshape(-1).view(dt)
