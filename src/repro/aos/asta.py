"""ASTA — "Array of Structure of Tiled Array" (Sung et al. [7], Section 7).

The related-work alternative the paper contrasts with: instead of the full
AoS -> SoA transpose, Sung's DL system converts to a *hybrid* layout where
each tile of ``T`` structs is transposed locally (fields contiguous within
the tile).  Conversion is cheap — a batch of tiny ``T x S`` transposes —
but element addressing becomes two-level, which is the complexity their
compiler/runtime exists to hide ("As this introduces non-trivial complexity
to the task of addressing elements of the array...").

This module implements the layout honestly on top of the decomposition:

* AoS -> ASTA is exactly a batched in-place transpose
  (:class:`~repro.core.batched.BatchedTransposePlan` with ``k = N/T``);
* ASTA -> SoA is a transpose of the ``(N/T, S)`` *tile grid* with
  ``T``-element super-elements — performed in place by the ordinary kernel
  over a void-dtype view (the decomposition is dtype-agnostic);
* :func:`asta_index` exposes the two-level addressing the paper calls
  burdensome.

Together with the transaction analyzer this reproduces the Section 7
comparison: ASTA already fixes warp-level coalescing (tile-contiguous
fields) at a fraction of the full conversion's cost, while full SoA keeps
addressing trivial.
"""

from __future__ import annotations

import numpy as np

from ..core.batched import BatchedTransposePlan
from ..core.transpose import transpose_inplace

__all__ = [
    "aos_to_asta",
    "asta_to_aos",
    "asta_to_soa",
    "soa_to_asta",
    "asta_index",
]


def _check(buf: np.ndarray, n_structs: int, struct_size: int, tile: int) -> None:
    if tile <= 0:
        raise ValueError("tile height must be positive")
    if n_structs % tile:
        raise ValueError(
            f"ASTA requires the tile height ({tile}) to divide the struct "
            f"count ({n_structs})"
        )
    if buf.ndim != 1 or buf.shape[0] != n_structs * struct_size:
        raise ValueError(
            f"buffer must be flat with {n_structs * struct_size} elements"
        )


def aos_to_asta(
    buf: np.ndarray, n_structs: int, struct_size: int, tile: int = 32
) -> np.ndarray:
    """Convert AoS to ASTA in place: transpose every ``tile x S`` block.

    Afterwards, field ``f`` of the ``tile`` structs in block ``t`` is the
    contiguous run ``buf[(t*S + f)*tile : (t*S + f + 1)*tile]`` — exactly
    the warp-contiguous layout Sung's DL targets.
    """
    _check(buf, n_structs, struct_size, tile)
    BatchedTransposePlan(tile, struct_size).execute(
        buf.reshape(n_structs // tile, tile * struct_size)
    )
    return buf


def asta_to_aos(
    buf: np.ndarray, n_structs: int, struct_size: int, tile: int = 32
) -> np.ndarray:
    """Inverse of :func:`aos_to_asta` (transpose every ``S x tile`` block)."""
    _check(buf, n_structs, struct_size, tile)
    BatchedTransposePlan(struct_size, tile).execute(
        buf.reshape(n_structs // tile, tile * struct_size)
    )
    return buf


def _super_view(buf: np.ndarray, tile: int) -> np.ndarray:
    """View the buffer as ``tile``-element super-elements (void dtype)."""
    super_dtype = np.dtype((np.void, tile * buf.dtype.itemsize))
    return buf.view(super_dtype)


def asta_to_soa(
    buf: np.ndarray, n_structs: int, struct_size: int, tile: int = 32
) -> np.ndarray:
    """Complete the conversion: ASTA -> full SoA, in place.

    ASTA is an ``(N/T, S)`` row-major grid of ``T``-element runs; SoA is
    the ``(S, N/T)`` grid of the same runs — an ordinary in-place transpose
    over super-elements, which the decomposition handles because it never
    looks inside elements.
    """
    _check(buf, n_structs, struct_size, tile)
    sup = _super_view(buf, tile)
    transpose_inplace(sup, n_structs // tile, struct_size)
    return buf


def soa_to_asta(
    buf: np.ndarray, n_structs: int, struct_size: int, tile: int = 32
) -> np.ndarray:
    """Inverse of :func:`asta_to_soa`."""
    _check(buf, n_structs, struct_size, tile)
    sup = _super_view(buf, tile)
    transpose_inplace(sup, struct_size, n_structs // tile)
    return buf


def asta_index(
    s: int | np.ndarray, f: int | np.ndarray, struct_size: int, tile: int = 32
):
    """Linear index of field ``f`` of struct ``s`` in the ASTA layout.

    The two-level addressing (``tile`` block, then field-major within) that
    the paper's Section 7 calls out as the complexity cost of the hybrid
    format: ``(s // T) * S * T + f * T + s % T``.
    """
    s = np.asarray(s, dtype=np.int64)
    f = np.asarray(f, dtype=np.int64)
    return (s // tile) * (struct_size * tile) + f * tile + s % tile
