"""Process-wide metrics registry: per-pass timers, histograms and counters.

The paper's evaluation lives and dies on constant factors (Section 7 reports
achieved *bandwidth*, not asymptotics), so the runtime makes the two numbers
that matter — seconds per pass and bytes moved — first-class and always
available.  Every public entry point (``transpose_inplace``, ``transpose``,
``batched_transpose_inplace``, ``TransposePlan.execute``, the parallel
transposer) records into the registry by default; instrumentation collapses
to a single predicate check when disabled.  Every timer observation also
lands in a log-spaced latency histogram (:class:`HistogramStat`), so the
snapshot carries full latency *distributions* — exportable as Prometheus
histograms via :func:`repro.trace.export.to_prometheus` — rather than just
count/total/min/max.

Design constraints:

* **No repro imports.**  This module is imported lazily from ``repro.core``
  and ``repro.parallel``; depending on nothing inside the package keeps the
  import graph acyclic.
* **Thread safety.**  A single lock guards the maps; individual observations
  are O(1) dict updates, far below the cost of any pass they measure.
* **Near-zero overhead when disabled.**  Callers are expected to guard with
  ``if registry.enabled:`` so the disabled path costs one attribute read and
  one branch.

Usage::

    from repro.runtime import metrics

    metrics.registry.observe("plan.pass.gather_cols", 0.0021)
    metrics.registry.inc("bytes_moved", 2 * buf.nbytes)
    print(metrics.registry.to_json())
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_left
from time import perf_counter

__all__ = [
    "TimerStat",
    "HistogramStat",
    "HISTOGRAM_BOUNDS",
    "MetricsRegistry",
    "registry",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "snapshot",
    "to_json",
]


class TimerStat:
    """Streaming summary of one named timer: count/total/min/max.

    Means are derived at snapshot time; storing only four scalars keeps an
    observation to a handful of float ops (no per-sample allocation).
    """

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def as_dict(self) -> dict:
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": mean,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }

    def merge_dict(self, d: dict) -> None:
        """Fold another timer's :meth:`as_dict` summary into this one
        (worker-process snapshots merging into the parent registry)."""
        count = int(d.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total_s += float(d.get("total_s", 0.0))
        min_s = float(d.get("min_s", 0.0))
        if min_s < self.min_s:
            self.min_s = min_s
        max_s = float(d.get("max_s", 0.0))
        if max_s > self.max_s:
            self.max_s = max_s


#: Log-spaced latency bucket upper bounds (seconds): 3 per decade from
#: 100 ns to 10 s.  Pass latencies span ~6 decades between a 16x16 toy
#: shape and an out-of-core run; log spacing keeps relative resolution
#: constant across that range where TimerStat's four scalars collapse it.
HISTOGRAM_BOUNDS = tuple(10.0 ** (e / 3.0) for e in range(-21, 4))


class HistogramStat:
    """A histogram over log-spaced bucket bounds (latencies by default).

    ``counts[i]`` holds observations with ``value <= bounds[i]`` and
    ``value > bounds[i-1]`` (per-bucket, not cumulative; the Prometheus
    exporter accumulates at render time).  The final slot is the +Inf
    overflow bucket.  An observation is one bisect over the bounds plus two
    adds — negligible next to any pass it measures.  Value histograms
    (batch sizes, queue depths) pass their own ``bounds``.
    """

    __slots__ = ("bounds", "counts", "count", "sum_s")

    def __init__(self, bounds: tuple[float, ...] = HISTOGRAM_BOUNDS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_s = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum_s += seconds

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum_s": self.sum_s,
        }

    def merge_dict(self, d: dict) -> None:
        """Fold another histogram's :meth:`as_dict` into this one.

        Matching bounds (the normal case — both sides share the module
        constants) merge bucket-exact; mismatched bounds degrade to
        re-observing each bucket at its upper bound, which preserves count
        and sum and bounds every sample's bucket error to one position.
        """
        if int(d.get("count", 0)) <= 0:
            return
        counts = list(d.get("counts", ()))
        bounds = tuple(d.get("bounds", ()))
        if bounds == self.bounds and len(counts) == len(self.counts):
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self.count += int(d["count"])
            self.sum_s += float(d.get("sum_s", 0.0))
            return
        overflow_at = bounds[-1] * 2.0 if bounds else 0.0
        for i, c in enumerate(counts):
            c = int(c)
            if c <= 0:
                continue
            value = bounds[i] if i < len(bounds) else overflow_at
            self.counts[bisect_left(self.bounds, value)] += c
            self.count += c
            self.sum_s += value * c


class _Timer:
    """Context manager recording one observation into a registry timer.

    A fresh no-op instance is returned when the registry is disabled, so
    ``with registry.timer(name):`` is always legal.
    """

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry | None", name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        if self._registry is not None:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._registry is not None:
            self._registry.observe(self._name, perf_counter() - self._t0)


class MetricsRegistry:
    """Thread-safe named counters and timers with a JSON-able snapshot.

    Counters are monotonically increasing integers (``bytes_moved``,
    ``elements_touched``, ``*.calls``); timers are :class:`TimerStat`
    summaries keyed by pass or entry-point name.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, TimerStat] = {}
        self._histograms: dict[str, HistogramStat] = {}
        self._gauges: dict[str, float] = {}
        self._value_hists: dict[str, HistogramStat] = {}
        #: bumped by reset(); snapshots carry it so readers can tell two
        #: snapshots from different epochs apart.
        self._epoch = 0
        self.enabled = enabled

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero on first use)."""
        if not self.enabled:
            # Lock-free fast path: callers that skip the ``registry.enabled``
            # guard still must not contend on the lock (or mutate state).
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def _observe_locked(  # repro-lint: allow(lock-discipline) caller holds self._lock
        self, name: str, seconds: float
    ) -> None:
        """Record into the timer *and* the latency histogram for ``name``.

        Caller holds ``self._lock`` — keeping both updates inside one
        acquisition is what makes timer/histogram counts agree in every
        snapshot (the epoch-consistency invariant the tests pin).
        """
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        stat.observe(seconds)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = HistogramStat()
        hist.observe(seconds)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration observation under timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._observe_locked(name, seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a point-in-time ``value`` (queue depth,
        worker count, …) — last write wins, no history."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def remove_gauge(self, name: str) -> None:
        """Drop gauge ``name`` from the registry (no-op when absent).

        Gauges describe live objects; when the object goes away — a serve
        shard evicted from the router, say — its last value must not keep
        exporting as if it were still being observed.
        """
        with self._lock:
            self._gauges.pop(name, None)

    def observe_value(
        self, name: str, value: float, bounds: tuple[float, ...] | None = None
    ) -> None:
        """Record a non-latency observation (batch size, bytes, depth) into
        a value histogram.

        ``bounds`` applies on first use of ``name`` (the default log-spaced
        latency bounds are wrong for counts, so callers sizing batches pass
        e.g. ``(1, 2, 4, 8, ...)``); later calls reuse the family's bounds.
        """
        if not self.enabled:
            return
        with self._lock:
            hist = self._value_hists.get(name)
            if hist is None:
                hist = self._value_hists[name] = HistogramStat(
                    tuple(bounds) if bounds is not None else HISTOGRAM_BOUNDS
                )
            hist.observe(value)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("pass.x"):`` — no-op while disabled."""
        return _Timer(self if self.enabled else None, name)

    def record_call(
        self, name: str, seconds: float, *, nbytes: int = 0, elements: int = 0
    ) -> None:
        """One entry-point invocation: a timing plus traffic counters.

        ``nbytes``/``elements`` follow the Theorem 6 accounting used by
        :class:`repro.core.steps.WorkCounter`: reads and writes against the
        main array both count, scratch traffic does not.
        """
        if not self.enabled:
            return
        with self._lock:
            self._observe_locked(name, seconds)
            self._counters[name + ".calls"] = self._counters.get(name + ".calls", 0) + 1
            if nbytes:
                self._counters["bytes_moved"] = (
                    self._counters.get("bytes_moved", 0) + int(nbytes)
                )
            if elements:
                self._counters["elements_touched"] = (
                    self._counters.get("elements_touched", 0) + int(elements)
                )

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The serving layer's process workers record into their own
        per-process registries and ship the snapshot delta back with each
        result; merging here is what keeps ``GET /metrics`` and ``repro
        stats`` truthful with ``worker_mode=process``.  Counters and
        histogram buckets add, timers fold count/total/min/max, gauges are
        last-write-wins; the child's epoch and enabled flag are ignored.
        """
        if not self.enabled or not snap:
            return
        with self._lock:
            for name, value in (snap.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, d in (snap.get("timers") or {}).items():
                stat = self._timers.get(name)
                if stat is None:
                    stat = self._timers[name] = TimerStat()
                stat.merge_dict(d)
            for name, d in (snap.get("histograms") or {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = HistogramStat(
                        tuple(d.get("bounds") or HISTOGRAM_BOUNDS)
                    )
                hist.merge_dict(d)
            for name, d in (snap.get("value_histograms") or {}).items():
                hist = self._value_hists.get(name)
                if hist is None:
                    hist = self._value_hists[name] = HistogramStat(
                        tuple(d.get("bounds") or HISTOGRAM_BOUNDS)
                    )
                hist.merge_dict(d)
            for name, value in (snap.get("gauges") or {}).items():
                self._gauges[name] = float(value)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time copy of counters, timers and histograms.

        All three maps (and the epoch) are materialized under a *single*
        lock acquisition: a concurrent :meth:`reset` can land before or
        after a snapshot, but never between its maps, so the counter/timer/
        histogram views always describe the same epoch (regression-tested
        in ``tests/runtime/test_metrics.py``).
        """
        with self._lock:
            return {
                "metrics_enabled": self.enabled,
                "epoch": self._epoch,
                "counters": dict(self._counters),
                "timers": {k: v.as_dict() for k, v in self._timers.items()},
                "histograms": {
                    k: v.as_dict() for k, v in self._histograms.items()
                },
                "gauges": dict(self._gauges),
                "value_histograms": {
                    k: v.as_dict() for k, v in self._value_hists.items()
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()
            self._gauges.clear()
            self._value_hists.clear()
            self._epoch += 1


#: The process-wide registry used by every instrumented entry point.
#: ``REPRO_METRICS=0`` in the environment starts it disabled.
registry = MetricsRegistry(enabled=os.environ.get("REPRO_METRICS", "1") != "0")


def enable() -> None:
    registry.enabled = True


def disable() -> None:
    registry.enabled = False


def is_enabled() -> bool:
    return registry.enabled


def reset() -> None:
    registry.reset()


def snapshot() -> dict:
    """Full runtime snapshot: registry metrics plus plan-cache statistics,
    tracer ring-buffer health (``trace.dropped_spans`` and friends), and
    event-log counters."""
    snap = registry.snapshot()
    # Imported here (not at module top) to keep this module dependency-free
    # for the core modules that import it during their own initialization.
    from . import plan_cache

    snap["plan_cache"] = plan_cache.get_plan_cache().stats()

    # Both trace modules are stdlib-only, so these imports cannot cycle.
    from ..trace.spans import tracer

    snap["trace"] = {
        "enabled": tracer.enabled,
        "recorded": tracer.recorded,
        "dropped_spans": tracer.dropped,
        "buffered": len(tracer),
        "capacity": tracer.capacity,
    }
    from ..trace.events import event_log

    snap["events"] = event_log.stats()
    return snap


def to_json(indent: int | None = 2) -> str:
    return json.dumps(snapshot(), indent=indent, sort_keys=True)
