"""repro.runtime — the instrumented serving layer.

Production pipelines transpose the *same shapes over and over*; the paper's
cost model (Section 4) prices index-map construction at a full data pass, so
repeated traffic wants plans built once and reused.  This subpackage holds
the two process-wide services that make the library behave like a server
rather than a collection of kernels:

``repro.runtime.plan_cache``
    A thread-safe LRU cache of :class:`~repro.core.plan.TransposePlan` /
    :class:`~repro.core.batched.BatchedTransposePlan` objects keyed by
    ``(kind, m, n, k, order, algorithm, variant, dtype)``, with a byte
    budget (plans hold ``O(mn)`` int32 maps) and hit/miss/eviction stats.

``repro.runtime.metrics``
    Per-pass timers, bytes-moved and elements-touched counters, and a JSON
    snapshot exporter (``repro stats`` on the command line).

Both are wired into ``transpose_inplace`` / ``transpose`` /
``batched_transpose_inplace`` / ``ParallelTranspose`` by default; opt out
with ``configure_plan_cache(enabled=False)`` and ``metrics.disable()`` (or
``REPRO_PLAN_CACHE=0`` / ``REPRO_METRICS=0`` in the environment).

Submodules are loaded lazily (PEP 562): importing ``repro.runtime`` from
inside ``repro.core``'s own initialization is safe because nothing here
touches the core package until first attribute access.
"""

from __future__ import annotations

import importlib

__all__ = [
    "metrics",
    "plan_cache",
    "PlanCache",
    "PlanKey",
    "MetricsRegistry",
    "get_plan_cache",
    "configure_plan_cache",
    "clear_plan_cache",
    "plan_cache_stats",
    "metrics_snapshot",
]

_SUBMODULES = ("metrics", "plan_cache")

_LAZY = {
    "PlanCache": ("plan_cache", "PlanCache"),
    "PlanKey": ("plan_cache", "PlanKey"),
    "get_plan_cache": ("plan_cache", "get_plan_cache"),
    "configure_plan_cache": ("plan_cache", "configure"),
    "clear_plan_cache": ("plan_cache", "clear"),
    "plan_cache_stats": ("plan_cache", "stats"),
    "MetricsRegistry": ("metrics", "MetricsRegistry"),
    "metrics_snapshot": ("metrics", "snapshot"),
}


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    if name in _LAZY:
        modname, attr = _LAZY[name]
        return getattr(importlib.import_module(f".{modname}", __name__), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
