"""A thread-safe, process-wide LRU cache of transpose plans.

Section 4's cost analysis shows that materializing the gather maps
(``d'^{-1}``/``s'``) costs about as much as one pass over the data — so a
workload that transposes the same shape repeatedly (AoS/SoA conversion,
batched FFT-style pipelines, attention-head reshapes) pays the planning tax
on every call unless something amortizes it.  This module is that something:
a process-wide LRU keyed by

    ``(kind, m, n, k, order, algorithm, variant, dtype)``

mapping to fully built :class:`~repro.core.plan.TransposePlan` /
:class:`~repro.core.batched.BatchedTransposePlan` objects.  Plans are
immutable after construction (see ``tests/test_concurrency.py``), so one
instance may be executed from any number of threads concurrently.

Because each plan stores ``O(mn)`` int32 gather maps, the cache enforces a
configurable **byte budget** (default 256 MiB, env
``REPRO_PLAN_CACHE_BYTES``): least-recently-used plans are evicted once the
budget is exceeded, and a single plan larger than the whole budget is
returned to the caller but never retained.  The cache can be disabled
entirely with :func:`configure` or ``REPRO_PLAN_CACHE=0``.

Retained plans are stamped with a ``_plan_cache_binding`` back-reference so
side artifacts acquired after insertion — the native backend's compiled
``.so`` files — can be charged to the entry via :meth:`PlanCache.adjust_bytes`
and count against the same budget.  Eviction (LRU, budget shrink, or
:meth:`PlanCache.clear`) invokes the plan's ``on_cache_evict`` hook outside
the lock, which releases those artifacts.

Hit/miss/eviction counts are part of :func:`repro.runtime.metrics.snapshot`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter

__all__ = [
    "PlanKey",
    "PlanCache",
    "DEFAULT_MAX_BYTES",
    "get_plan_cache",
    "configure",
    "clear",
    "stats",
    "get_single_plan",
    "get_batched_plan",
]

DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_trace = None
_events = None


def _tracer():
    """Lazily bind the process-wide tracer (repro.trace.spans is stdlib-only,
    so this import can never recurse into package initialization)."""
    global _trace
    if _trace is None:
        from repro.trace import spans as _sp

        _trace = _sp
    return _trace.tracer


def _event_log():
    """Lazily bind the structured event log (also stdlib-only)."""
    global _events
    if _events is None:
        from repro.trace import events as _ev

        _events = _ev
    return _events.event_log


def _key_attrs(key: "PlanKey") -> dict:
    """Span attributes identifying a cached plan in ``cache.*`` events."""
    return {
        "kind": key.kind,
        "m": key.m,
        "n": key.n,
        "k": key.k,
        "order": key.order,
        "algorithm": key.algorithm,
        "dtype": key.dtype,
    }


@dataclass(frozen=True)
class PlanKey:
    """The identity of a cached plan.

    ``kind`` separates single-matrix from batched plans; ``k`` is the batch
    count (``None`` for single plans).  ``dtype`` is part of the key even
    though the int32 gather maps are dtype-independent — it keeps hit/miss
    accounting meaningful per workload and costs nothing for the one or two
    dtypes a real pipeline uses.  ``algorithm`` is stored post-heuristic
    (never ``"auto"``) so explicit and heuristic requests share entries.
    """

    kind: str
    m: int
    n: int
    k: int | None
    order: str
    algorithm: str
    variant: str
    dtype: str


class PlanCache:
    """LRU plan cache with a byte budget and hit/miss/eviction statistics.

    A single reentrant lock guards the map and the counters.  Plan
    *construction* happens outside the lock — building a plan is a full pass
    over ``O(mn)`` index data and must not serialize unrelated shapes; the
    cost is that two threads racing on the same cold key may both build, with
    one build discarded (counted under ``races``).
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES, enabled: bool = True):
        self._lock = threading.RLock()
        self._plans: OrderedDict[PlanKey, tuple[object, int]] = OrderedDict()
        self.max_bytes = int(max_bytes)
        self.enabled = enabled
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.races = 0
        self.oversize_rejects = 0
        self.build_seconds = 0.0

    # -- lookup ----------------------------------------------------------------

    def get_or_build(self, key: PlanKey, factory, size_of) -> object:
        """Return the cached plan for ``key``, building it on a miss.

        ``factory`` builds the plan; ``size_of`` maps a plan to its resident
        byte footprint (used against the budget).  When the cache is
        disabled the factory result is returned without being retained and
        no statistics move.
        """
        if not self.enabled:
            return factory()
        tr = _tracer()
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                self._plans.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        # Trace events fire outside the lock: the tracer is a leaf subsystem
        # and must never extend the cache's critical section.
        if entry is not None:
            if tr.enabled:
                tr.event("cache.hit", **_key_attrs(key))
            return entry[0]
        if tr.enabled:
            tr.event("cache.miss", **_key_attrs(key))
        t0 = perf_counter()
        plan = factory()
        dt = perf_counter() - t0
        nbytes = int(size_of(plan))
        evicted: list[tuple[PlanKey, int]] = []
        with self._lock:
            self.build_seconds += dt
            if key in self._plans:
                # Another thread built and inserted while we were building;
                # keep theirs (it is already shared) and drop ours.
                self.races += 1
                self._plans.move_to_end(key)
                return self._plans[key][0]
            if nbytes > self.max_bytes:
                self.oversize_rejects += 1
                return plan
            # The binding lets post-insertion artifacts (native kernel .so
            # files) charge their size to this entry via adjust_bytes.
            plan.__dict__["_plan_cache_binding"] = (self, key)
            self._plans[key] = (plan, nbytes)
            self.current_bytes += nbytes
            while self.current_bytes > self.max_bytes and len(self._plans) > 1:
                ekey, (eplan, evicted_bytes) = self._plans.popitem(last=False)
                self.current_bytes -= evicted_bytes
                self.evictions += 1
                evicted.append((ekey, eplan, evicted_bytes))
        self._fire_evictions(evicted)
        return plan

    def _fire_evictions(
        self, evicted: list[tuple[PlanKey, object, int]]
    ) -> None:
        """Trace events and per-plan eviction hooks, strictly outside the
        lock: hooks re-enter subsystems (artifact unlink, tracing) that must
        never extend the cache's critical section."""
        if not evicted:
            return
        tr = _tracer()
        ev = _event_log()
        for ekey, eplan, ebytes in evicted:
            if tr.enabled:
                tr.event("cache.evict", bytes=ebytes, **_key_attrs(ekey))
            if ev.enabled:
                # Attributed to whichever request's plan build triggered
                # the eviction ("" outside a traced request).
                ev.emit(
                    "evict", trace_id=tr.current_trace_id(),
                    bytes=ebytes, **_key_attrs(ekey),
                )
            hook = getattr(eplan, "on_cache_evict", None)
            if hook is not None:
                hook()

    def adjust_bytes(self, key: PlanKey, delta: int) -> None:
        """Re-account ``key``'s entry by ``delta`` bytes.

        Used when a retained plan's resident footprint changes after
        insertion — the native backend charges each compiled ``.so`` here so
        artifacts live under the same budget as the gather maps.  Unknown
        keys are ignored (the plan was evicted meanwhile, never retained,
        or the cache is disabled).  Growth runs the normal LRU eviction
        loop and may, at the margin, evict the adjusted entry itself.
        """
        evicted: list[tuple[PlanKey, object, int]] = []
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                return
            plan, nbytes = entry
            new_bytes = max(0, nbytes + int(delta))
            self._plans[key] = (plan, new_bytes)
            self.current_bytes += new_bytes - nbytes
            while self.current_bytes > self.max_bytes and len(self._plans) > 1:
                ekey, (eplan, evicted_bytes) = self._plans.popitem(last=False)
                self.current_bytes -= evicted_bytes
                self.evictions += 1
                evicted.append((ekey, eplan, evicted_bytes))
        self._fire_evictions(evicted)

    # -- management ------------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached plan (statistics are retained).

        Eviction hooks fire for each dropped plan so side artifacts are
        released; no ``cache.evict`` trace events or eviction counts are
        recorded — clearing is an explicit management action, not budget
        pressure.
        """
        with self._lock:
            dropped = [plan for plan, _ in self._plans.values()]
            self._plans.clear()
            self.current_bytes = 0
        for plan in dropped:
            hook = getattr(plan, "on_cache_evict", None)
            if hook is not None:
                hook()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0
            self.races = self.oversize_rejects = 0
            self.build_seconds = 0.0

    def configure(
        self, *, max_bytes: int | None = None, enabled: bool | None = None
    ) -> None:
        """Adjust the byte budget and/or the opt-out flag.

        Shrinking the budget evicts immediately; disabling keeps existing
        entries resident (call :meth:`clear` to release them).
        """
        evicted: list[tuple[PlanKey, object, int]] = []
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if max_bytes is not None:
                self.max_bytes = int(max_bytes)
                while self.current_bytes > self.max_bytes and self._plans:
                    ekey, (eplan, evicted_bytes) = self._plans.popitem(last=False)
                    self.current_bytes -= evicted_bytes
                    self.evictions += 1
                    evicted.append((ekey, eplan, evicted_bytes))
        self._fire_evictions(evicted)

    def stats(self) -> dict:
        """A JSON-able statistics snapshot."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "enabled": self.enabled,
                "entries": len(self._plans),
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "races": self.races,
                "oversize_rejects": self.oversize_rejects,
                "build_seconds": self.build_seconds,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans


#: The process-wide cache used by ``transpose_inplace`` and friends.
_GLOBAL = PlanCache(
    max_bytes=int(os.environ.get("REPRO_PLAN_CACHE_BYTES", DEFAULT_MAX_BYTES)),
    enabled=os.environ.get("REPRO_PLAN_CACHE", "1") != "0",
)


def get_plan_cache() -> PlanCache:
    return _GLOBAL


def configure(*, max_bytes: int | None = None, enabled: bool | None = None) -> None:
    _GLOBAL.configure(max_bytes=max_bytes, enabled=enabled)


def clear() -> None:
    _GLOBAL.clear()


def stats() -> dict:
    return _GLOBAL.stats()


# -- entry-point helpers --------------------------------------------------------
# Core imports happen inside the functions: these run strictly after package
# initialization, so the core <-> runtime import graph stays acyclic.


def get_single_plan(
    m: int, n: int, order: str, algorithm: str, dtype, *, cache: PlanCache | None = None
):
    """A (possibly cached) :class:`TransposePlan` for one matrix shape.

    ``algorithm`` may be ``"auto"``; it is resolved through the paper's
    Section 5.2 heuristic before keying.
    """
    from repro.core.plan import TransposePlan
    from repro.core.transpose import choose_algorithm

    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    key = PlanKey("single", m, n, None, order, algorithm, "gather", str(dtype))
    target = cache if cache is not None else _GLOBAL
    return target.get_or_build(
        key,
        lambda: TransposePlan(m, n, order, algorithm),
        lambda plan: plan.scratch_bytes,
    )


def get_batched_plan(
    m: int,
    n: int,
    k: int,
    order: str,
    algorithm: str,
    dtype,
    *,
    cache: PlanCache | None = None,
):
    """A (possibly cached) :class:`BatchedTransposePlan` for ``k`` matrices."""
    from repro.core.batched import BatchedTransposePlan
    from repro.core.transpose import choose_algorithm

    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    key = PlanKey("batched", m, n, int(k), order, algorithm, "gather", str(dtype))
    target = cache if cache is not None else _GLOBAL
    return target.get_or_build(
        key,
        lambda: BatchedTransposePlan(m, n, order, algorithm),
        lambda plan: plan.scratch_bytes,
    )
