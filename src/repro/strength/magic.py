"""Fixed-point reciprocal ("magic number") computation.

Division of an unsigned integer ``x < 2**nbits`` by a constant ``d`` is
replaced by ``(x * M) >> L`` where ``(M, L)`` is chosen by the round-up
method (Warren, *Hacker's Delight*, 2nd ed., ch. 10; Granlund & Montgomery,
PLDI '94):

    take ``M = ceil(2**L / d)`` and increase ``L`` until the rounding error
    ``e = M*d - 2**L`` (which satisfies ``0 <= e < d``) is small enough that
    ``e * x < 2**L`` for every representable ``x``, i.e. ``e * (2**nbits - 1)
    < 2**L``.  Then for all ``0 <= x < 2**nbits``::

        (x * M) >> L == x // d        (exactly)

The proof is the standard sandwich: ``x*M = x*(2**L + e)/d`` so
``x*M / 2**L = x/d + x*e/(d*2**L)`` and the error term is < ``1/d``,
too small to cross an integer boundary from ``floor(x/d)``.

This module computes and *verifies* the pair; the vectorized runtime lives in
:mod:`repro.strength.fastdiv`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MagicNumber", "compute_magic"]


@dataclass(frozen=True)
class MagicNumber:
    """A verified (multiplier, shift) pair for exact division by ``divisor``.

    Guarantees ``(x * multiplier) >> shift == x // divisor`` for all
    ``0 <= x < 2**nbits``.
    """

    divisor: int
    multiplier: int
    shift: int
    nbits: int

    def divide(self, x: int) -> int:
        """Scalar strength-reduced division (for tests and documentation)."""
        return (x * self.multiplier) >> self.shift

    def modulus(self, x: int) -> int:
        """Scalar strength-reduced modulus: one extra multiply + subtract."""
        return x - self.divide(x) * self.divisor


def compute_magic(divisor: int, nbits: int = 31) -> MagicNumber:
    """Compute the fixed-point reciprocal of ``divisor`` for ``nbits`` inputs.

    Parameters
    ----------
    divisor:
        The constant divisor (positive).
    nbits:
        Inputs are guaranteed exact for ``0 <= x < 2**nbits``.  The default
        31 covers every index that fits a signed 32-bit integer — the regime
        the paper's GPU kernels operate in — while keeping the product
        ``x * M`` within 64 bits (``M < 2**(nbits + 1)`` always holds, so
        ``x * M < 2**(2*nbits + 1) <= 2**63``).

    Raises
    ------
    ValueError
        For non-positive divisors or ``nbits`` outside ``[1, 31]``.
    """
    if divisor <= 0:
        raise ValueError(f"divisor must be positive, got {divisor}")
    if not (1 <= nbits <= 31):
        raise ValueError(f"nbits must be in [1, 31], got {nbits}")

    if divisor == 1:
        # x // 1 == x: multiplier 1, shift 0.
        return MagicNumber(divisor=1, multiplier=1, shift=0, nbits=nbits)

    xmax = (1 << nbits) - 1
    # Powers of two reduce to a plain shift (multiplier 1).
    if divisor & (divisor - 1) == 0:
        return MagicNumber(
            divisor=divisor,
            multiplier=1,
            shift=divisor.bit_length() - 1,
            nbits=nbits,
        )

    L = divisor.bit_length()
    while True:
        M = -(-(1 << L) // divisor)  # ceil(2**L / d)
        e = M * divisor - (1 << L)
        assert 0 <= e < divisor
        if e * xmax < (1 << L):
            break
        L += 1
    # The loop always terminates: once 2**L > e_max * xmax, i.e.
    # L >= nbits + bit_length(d), the condition holds.
    assert L <= nbits + divisor.bit_length()
    assert M < (1 << (nbits + 1)), "multiplier exceeds the 64-bit-product bound"
    return MagicNumber(divisor=divisor, multiplier=M, shift=L, nbits=nbits)
