"""Strength-reduced evaluation of the hot index equations.

This is the Section 4.4 optimization applied end-to-end: every ``//`` and
``%`` by the decomposition constants in the gather-map construction is
replaced by a :class:`~repro.strength.fastdiv.FastDivider`.  The reduced
forms are pinned to :mod:`repro.core.equations` by the test suite — the
point of this module in the reproduction is (a) to demonstrate the
technique is exact, and (b) to feed the strength-reduction ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..core.indexing import Decomposition
from ..core.numbertheory import mmi
from .fastdiv import FastDivider

__all__ = ["ReducedEquations"]


class ReducedEquations:
    """Index-equation evaluator with precomputed fixed-point reciprocals.

    One instance per matrix shape; the reciprocals for ``m``, ``n``, ``a``,
    ``b`` and ``c`` are computed once (the amortization the paper describes)
    and reused across every row/column evaluation.
    """

    #: Largest supported ``b = n / gcd(m, n)``: guarantees the reduced
    #: product ``a^{-1} * (f//c mod b) < b**2`` stays below ``2**31``, the
    #: exactness bound of the 31-bit reciprocals.
    MAX_B = 46_340

    def __init__(self, dec: Decomposition):
        if dec.m * dec.n + dec.m >= 2**31:
            raise ValueError(
                "strength-reduced equations support shapes with m*n < 2**31"
            )
        if dec.b > self.MAX_B:
            raise ValueError(
                f"strength-reduced equations support b <= {self.MAX_B}, "
                f"got b = {dec.b}"
            )
        self.dec = dec
        self._dm = FastDivider(dec.m)
        self._dn = FastDivider(dec.n)
        self._da = FastDivider(dec.a)
        self._db = FastDivider(dec.b)
        self._dc = FastDivider(dec.c)
        self._a_inv = mmi(dec.a, dec.b)

    # Each method mirrors its repro.core.equations counterpart, with all
    # div/mod by shape constants strength-reduced.

    def rotate_r(self, i, j) -> np.ndarray:
        """Eq. 23 via reciprocal multiply: ``(i + j // b) mod m``."""
        i = np.asarray(i, dtype=np.int64)
        return self._dm.mod(i + self._db.div(j))

    def dprime(self, i, j) -> np.ndarray:
        """Eq. 24: ``((i + j//b) mod m + j*m) mod n``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        return self._dn.mod(self._dm.mod(i + self._db.div(j)) + j * self.dec.m)

    def dprime_inverse(self, i, j) -> np.ndarray:
        """Eq. 31 with reciprocals for the ``c`` and ``b`` div/mods."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        dec = self.dec
        base = j + i * (dec.n - 1)
        f = np.where(i - self._dc.mod(j) + dec.c <= dec.m, base, base + dec.m)
        fq, fr = self._dc.divmod(f)
        # Reduce fq modulo b before multiplying so the product stays within
        # the 31-bit exactness bound of the reciprocals (see MAX_B).
        return self._db.mod(self._a_inv * self._db.mod(fq)) + fr * dec.b

    def sprime(self, i, j) -> np.ndarray:
        """Eq. 26: ``(j + i*n - i//a) mod m``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        return self._dm.mod(j + i * self.dec.n - self._da.div(i))

    def permute_q(self, i) -> np.ndarray:
        """Eq. 33: ``(i*n - i//a) mod m``."""
        i = np.asarray(i, dtype=np.int64)
        return self._dm.mod(i * self.dec.n - self._da.div(i))

    # Whole-matrix builders for the ablation bench -------------------------

    def dprime_inverse_matrix(self) -> np.ndarray:
        i = np.arange(self.dec.m, dtype=np.int64)[:, None]
        j = np.arange(self.dec.n, dtype=np.int64)[None, :]
        return self.dprime_inverse(i, j)

    def sprime_matrix(self) -> np.ndarray:
        i = np.arange(self.dec.m, dtype=np.int64)[:, None]
        j = np.arange(self.dec.n, dtype=np.int64)[None, :]
        return self.sprime(i, j)
