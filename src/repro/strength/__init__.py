"""Arithmetic strength reduction (Section 4.4).

The index equations divide and mod by runtime constants (``m``, ``n``, ``a``,
``b``, ``c``).  Following the paper (and Hacker's Delight, ch. 10), integer
division by a fixed divisor is replaced by a multiplication by a fixed-point
reciprocal followed by a shift; the modulus then costs one more multiply and
subtract.  The reciprocal is computed once per divisor and amortized across
every index evaluation.

* :func:`~repro.strength.magic.compute_magic` — the (multiplier, shift) pair
  with a proven exactness bound.
* :class:`~repro.strength.fastdiv.FastDivider` — vectorized drop-in div/mod.
* :mod:`~repro.strength.reduced` — strength-reduced re-implementations of the
  hot index equations, pinned to the reference forms by tests.
"""

from .fastdiv import FastDivider
from .magic import MagicNumber, compute_magic
from .reduced import ReducedEquations

__all__ = ["FastDivider", "MagicNumber", "compute_magic", "ReducedEquations"]
