"""Vectorized strength-reduced division and modulus.

:class:`FastDivider` wraps a verified :class:`~repro.strength.magic.MagicNumber`
and applies it to numpy arrays with unsigned 64-bit arithmetic — the direct
analogue of the multiply-high + shift sequence the paper's kernels emit.
"""

from __future__ import annotations

import numpy as np

from .magic import MagicNumber, compute_magic

__all__ = ["FastDivider"]


class FastDivider:
    """Exact ``x // d`` and ``x % d`` via multiply + shift.

    Valid for non-negative inputs below ``2**nbits`` (default ``2**31``).
    Inputs may be any numpy integer dtype; results are returned as ``int64``.

    >>> fd = FastDivider(7)
    >>> import numpy as np
    >>> x = np.arange(100)
    >>> bool(np.all(fd.div(x) == x // 7))
    True
    """

    __slots__ = ("magic", "_mult", "_shift", "_div")

    def __init__(self, divisor: int, nbits: int = 31):
        self.magic: MagicNumber = compute_magic(divisor, nbits)
        self._mult = np.uint64(self.magic.multiplier)
        self._shift = np.uint64(self.magic.shift)
        self._div = np.int64(divisor)

    @property
    def divisor(self) -> int:
        return self.magic.divisor

    def div(self, x) -> np.ndarray:
        """Vectorized exact floor division ``x // divisor``."""
        xu = np.asarray(x).astype(np.uint64)
        return ((xu * self._mult) >> self._shift).astype(np.int64)

    def mod(self, x) -> np.ndarray:
        """Vectorized exact modulus ``x % divisor``."""
        x64 = np.asarray(x).astype(np.int64)
        return x64 - self.div(x64) * self._div

    def divmod(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Both quotient and remainder with a single reciprocal multiply."""
        x64 = np.asarray(x).astype(np.int64)
        q = self.div(x64)
        return q, x64 - q * self._div

    def __repr__(self) -> str:
        m = self.magic
        return (
            f"FastDivider(d={m.divisor}, M={m.multiplier}, L={m.shift}, "
            f"nbits={m.nbits})"
        )
