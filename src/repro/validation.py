"""Validation harness: check any in-place transposer against the oracles.

Used by the test suite, the CLI's ``selftest`` command, and downstream
users integrating a new kernel (the paper ecosystem's equivalent is the
test driver shipped with the authors' ``inplace`` library).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["ValidationReport", "validate_transposer", "checked"]

#: A transposer: (flat_buffer, m, n) -> permutes buffer in place.
Transposer = Callable[[np.ndarray, int, int], object]


@dataclass
class ValidationReport:
    """Outcome of validating a transposer over a shape population."""

    checked: int = 0
    failures: list[tuple[int, int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        if self.ok:
            return f"OK: {self.checked} shapes verified"
        head = ", ".join(f"{m}x{n} ({why})" for m, n, why in self.failures[:5])
        return f"FAILED {len(self.failures)}/{self.checked}: {head}"


def _default_shapes(rng: np.random.Generator, count: int) -> list[tuple[int, int]]:
    shapes: list[tuple[int, int]] = [
        (1, 1), (1, 7), (7, 1), (2, 2), (5, 5),  # degenerate / square
        (4, 8), (8, 4), (3, 8),                   # the paper's figures
        (16, 16), (13, 27), (27, 13),             # coprime pairs
        (12, 18), (18, 12),                       # shared factor
    ]
    while len(shapes) < count:
        shapes.append(
            (int(rng.integers(1, 64)), int(rng.integers(1, 64)))
        )
    return shapes[:count]


def validate_transposer(
    fn: Transposer,
    *,
    shapes: Sequence[tuple[int, int]] | None = None,
    count: int = 40,
    dtype=np.int64,
    seed: int = 0,
) -> ValidationReport:
    """Run ``fn`` over a shape population and compare with the oracle.

    ``fn`` must transpose a row-major flat buffer in place.  Checks both
    the permutation (against ``A.T``) and that the buffer object itself was
    mutated (catching accidentally-out-of-place implementations).
    """
    rng = np.random.default_rng(seed)
    report = ValidationReport()
    for m, n in shapes if shapes is not None else _default_shapes(rng, count):
        A = np.arange(m * n, dtype=dtype).reshape(m, n)
        buf = A.ravel().copy()
        try:
            fn(buf, m, n)
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            report.failures.append((m, n, f"raised {type(exc).__name__}: {exc}"))
            report.checked += 1
            continue
        if not np.array_equal(buf.reshape(n, m), A.T):
            report.failures.append((m, n, "wrong permutation"))
        report.checked += 1
    return report


def checked(fn: Transposer) -> Transposer:
    """Wrap a transposer so every call verifies its own result.

    Costs one out-of-place reference transpose per call — a debugging tool,
    not a production mode.

    >>> from repro.core import c2r_transpose
    >>> import numpy as np
    >>> safe = checked(c2r_transpose)
    >>> _ = safe(np.arange(12), 3, 4)   # raises if the kernel misbehaves
    """

    def wrapper(buf: np.ndarray, m: int, n: int, **kwargs):
        expected = buf.reshape(m, n).T.copy().ravel()
        out = fn(buf, m, n, **kwargs)
        if not np.array_equal(buf, expected):
            raise AssertionError(
                f"in-place transpose of {m}x{n} produced a wrong permutation"
            )
        return out

    return wrapper
