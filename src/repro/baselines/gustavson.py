"""Gustavson et al. [1]-style cache-efficient tiled in-place transpose.

Gustavson's algorithm operates on matrices in a tiled storage format; for
standard row-major input the cost of *packing and unpacking* into that
format must be paid (the paper's Table 1 row includes this overhead, as
does ours).  Tile sizes are chosen as the largest divisors of the dimensions
not exceeding a cache-friendly bound, which is where the method's weakness
on awkwardly-factored dimensions comes from: a prime dimension forces
1-wide tiles.
"""

from __future__ import annotations

import numpy as np

from ..trace.spans import traced
from .tiling import TileStats, tiled_transpose_inplace

__all__ = ["gustavson_transpose", "best_tile"]

#: Default cache-friendly tile bound (elements per side); 64 x 64 x 8 B
#: = 32 kB, a typical L1 working set.
DEFAULT_TILE_BOUND = 64


def best_tile(dim: int, bound: int = DEFAULT_TILE_BOUND) -> int:
    """Largest divisor of ``dim`` that is at most ``bound``.

    Degrades to 1 for prime dimensions beyond the bound — the failure mode
    tiled algorithms exhibit on inconvenient shapes.
    """
    if dim <= 0:
        raise ValueError("dimension must be positive")
    best = 1
    d = 1
    while d * d <= dim:
        if dim % d == 0:
            if d <= bound:
                best = max(best, d)
            other = dim // d
            if other <= bound:
                best = max(best, other)
        d += 1
    return best


@traced("baseline.gustavson")
def gustavson_transpose(
    buf: np.ndarray,
    m: int,
    n: int,
    *,
    tile_bound: int = DEFAULT_TILE_BOUND,
    stats: TileStats | None = None,
) -> np.ndarray:
    """In-place row-major transpose, Gustavson-class (pack/tile/unpack).

    Auxiliary space: one row panel + one tile + per-tile visited bits,
    i.e. ``O(t * max(m, n))`` elements for tile side ``t``.
    """
    tr = best_tile(m, tile_bound)
    tc = best_tile(n, tile_bound)
    return tiled_transpose_inplace(buf, m, n, tr, tc, stats=stats)
