"""The out-of-place ideal: one read and one write per element.

Eq. 37's throughput definition normalizes against exactly this pattern —
an ideal transpose reads the array once and writes it once.  Measuring the
out-of-place copy gives the machine's practical ceiling for any in-place
algorithm's throughput.
"""

from __future__ import annotations

import numpy as np

from ..trace.spans import traced

__all__ = ["outofplace_transpose"]


@traced("baseline.outofplace")
def outofplace_transpose(buf: np.ndarray, m: int, n: int) -> np.ndarray:
    """Return a new buffer holding the row-major transpose of ``buf``.

    Allocates ``O(mn)`` — the cost in auxiliary space that every in-place
    algorithm in this repository exists to avoid.
    """
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")
    return np.ascontiguousarray(buf.reshape(m, n).T).ravel()
