"""Traditional cycle-following in-place transposition (Windley 1959; Knuth).

Transposing an ``m x n`` row-major array moves the element at linear index
``l`` to index ``P(l) = (l * m) mod (mn - 1)`` (with 0 and ``mn - 1`` fixed).
Cycle following walks each cycle of ``P``, shifting elements with a single
held value.

The catch the paper leans on: knowing *where cycles start* requires either

* ``aux="bitset"`` — one visited bit per element, i.e. ``O(mn)`` auxiliary
  bits; total work ``O(mn)``; or
* ``aux="recompute"`` — ``O(1)`` auxiliary space, verifying each candidate
  leader by walking its cycle first and skipping it unless it is the cycle
  minimum.  The verification walks re-traverse cycles repeatedly, giving the
  ``O(mn log mn)`` work profile the paper cites [3].

:class:`CycleStats` counts element moves and successor-map evaluations so the
work profiles are observable (see ``tests/baselines`` and the work-complexity
ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.spans import traced

__all__ = ["CycleStats", "transpose_cycle_following", "successor"]


@dataclass
class CycleStats:
    """Work counters for a cycle-following run."""

    element_moves: int = 0
    successor_evals: int = 0
    cycles: int = 0

    @property
    def total_work(self) -> int:
        """Dominant work term: successor evaluations + element moves."""
        return self.element_moves + self.successor_evals


def successor(l: int, m: int, n: int) -> int:
    """Destination of linear index ``l`` under row-major transposition.

    ``P(l) = (l * m) mod (mn - 1)`` for ``0 < l < mn - 1``; the first and
    last elements are fixed points.
    """
    mn = m * n
    if l == mn - 1:
        return l
    return (l * m) % (mn - 1)


def _predecessor(l: int, m: int, n: int) -> int:
    """Inverse successor: ``(l * n) mod (mn - 1)``."""
    mn = m * n
    if l == mn - 1:
        return l
    return (l * n) % (mn - 1)


@traced("baseline.cycle_following")
def transpose_cycle_following(
    buf: np.ndarray,
    m: int,
    n: int,
    *,
    aux: str = "bitset",
    stats: CycleStats | None = None,
) -> np.ndarray:
    """In-place row-major transposition by cycle following.

    After the call, ``buf.reshape(n, m)`` holds the transpose of the
    original ``buf.reshape(m, n)``.

    Parameters
    ----------
    aux:
        ``"bitset"`` (O(mn)-bit auxiliary, O(mn) work) or ``"recompute"``
        (O(1) auxiliary, O(mn log mn)-class work).
    stats:
        Optional counters; pass a fresh :class:`CycleStats` to observe the
        work profile.
    """
    if aux not in ("bitset", "recompute"):
        raise ValueError(f"unknown aux mode {aux!r}")
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")
    mn = m * n
    if mn <= 1 or m == 1 or n == 1:
        return buf  # transpose of a vector is the identity on the buffer

    if aux == "bitset":
        visited = np.zeros(mn, dtype=bool)
        visited[0] = visited[mn - 1] = True
        for leader in range(1, mn - 1):
            if visited[leader]:
                continue
            _rotate_cycle(buf, leader, m, n, stats)
            # mark the cycle
            visited[leader] = True
            l = successor(leader, m, n)
            if stats is not None:
                stats.successor_evals += 1
            while l != leader:
                visited[l] = True
                l = successor(l, m, n)
                if stats is not None:
                    stats.successor_evals += 1
    else:
        for leader in range(1, mn - 1):
            # Verify leader is its cycle's minimum by walking the cycle.
            l = successor(leader, m, n)
            if stats is not None:
                stats.successor_evals += 1
            is_leader = True
            while l != leader:
                if l < leader:
                    is_leader = False
                    break
                l = successor(l, m, n)
                if stats is not None:
                    stats.successor_evals += 1
            if is_leader:
                _rotate_cycle(buf, leader, m, n, stats)
    return buf


def _rotate_cycle(
    buf: np.ndarray, leader: int, m: int, n: int, stats: CycleStats | None
) -> None:
    """Shift the cycle through ``leader``: each element moves to its
    destination, walking predecessors so one held value suffices."""
    held = buf[leader]
    dst = leader
    src = _predecessor(leader, m, n)
    if stats is not None:
        stats.cycles += 1
        stats.successor_evals += 1
    while src != leader:
        buf[dst] = buf[src]
        dst = src
        src = _predecessor(src, m, n)
        if stats is not None:
            stats.element_moves += 1
            stats.successor_evals += 1
    buf[dst] = held
    if stats is not None:
        stats.element_moves += 1
