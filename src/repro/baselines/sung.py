"""Sung [6]-style tiled in-place transpose with the paper's tile heuristic.

Sung's GPU algorithm requires tile dimensions that evenly divide the array
dimensions and leaves tile choice to the user.  The paper benchmarks it with
this heuristic (Section 5.2):

    "sort the factors of the array dimension, then starting with the
    smallest factors, multiply them until the tile dimension equals or
    exceeds some threshold t" (t = 72, max tile 72 x 72)

which reproduces the paper's own examples: 7200 -> 32, 1800 -> 72,
7223 -> 31, 10368 -> 64.  Arrays whose dimensions yield degenerate
(1-wide) tiles are the ones where the method collapses — the reason its
median throughput trails C2R in Fig. 6 / Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.spans import traced
from .tiling import TileStats, tiled_transpose_inplace

__all__ = ["SungPlan", "sung_tile_heuristic", "sung_transpose"]

#: The threshold used for all experiments in the paper.
SUNG_THRESHOLD = 72


def _prime_factors(x: int) -> list[int]:
    """Prime factorization with multiplicity, ascending."""
    out: list[int] = []
    d = 2
    while d * d <= x:
        while x % d == 0:
            out.append(d)
            x //= d
        d += 1
    if x > 1:
        out.append(x)
    return out


def sung_tile_heuristic(dim: int, threshold: int = SUNG_THRESHOLD) -> int:
    """Greedy product of ascending prime factors, capped at ``threshold``.

    Returns the largest product of the smallest prime factors of ``dim``
    that does not exceed ``threshold`` (always a divisor of ``dim``).
    """
    if dim <= 0:
        raise ValueError("dimension must be positive")
    tile = 1
    for p in _prime_factors(dim):
        if tile * p > threshold:
            break
        tile *= p
    return tile


@dataclass(frozen=True)
class SungPlan:
    """The tile decision for one array.

    ``degenerate`` marks arrays where the heuristic returned a 1-wide tile
    in either dimension — the shapes on which the published implementation
    performs poorly or fails (the paper reports 2155 of 2500 arrays
    completing).
    """

    m: int
    n: int
    tile_rows: int
    tile_cols: int

    @property
    def degenerate(self) -> bool:
        return self.tile_rows == 1 or self.tile_cols == 1

    @classmethod
    def plan(cls, m: int, n: int, threshold: int = SUNG_THRESHOLD) -> "SungPlan":
        return cls(
            m=m,
            n=n,
            tile_rows=sung_tile_heuristic(m, threshold),
            tile_cols=sung_tile_heuristic(n, threshold),
        )


@traced("baseline.sung")
def sung_transpose(
    buf: np.ndarray,
    m: int,
    n: int,
    *,
    threshold: int = SUNG_THRESHOLD,
    stats: TileStats | None = None,
) -> SungPlan:
    """In-place transpose using Sung's tiling with the paper's heuristic.

    Returns the :class:`SungPlan` used (callers inspect ``degenerate`` the
    way the paper reports incomplete runs).
    """
    plan = SungPlan.plan(m, n, threshold)
    tiled_transpose_inplace(buf, m, n, plan.tile_rows, plan.tile_cols, stats=stats)
    return plan
