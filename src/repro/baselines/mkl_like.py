"""The ``mkl_dimatcopy`` stand-in for Table 1.

Intel MKL's in-place ``mkl_dimatcopy`` belongs to the sequential,
limited-auxiliary-space cycle-following class (and, as the paper observes,
is not parallelized — "likely due to the complexity of parallelizing
traditional cycle-following algorithms").  This wrapper fixes those
algorithmic properties: sequential execution, O(1) auxiliary space,
cycle recomputation.
"""

from __future__ import annotations

import numpy as np

from ..trace.spans import traced
from .cycle_following import CycleStats, transpose_cycle_following

__all__ = ["mkl_like_transpose"]


@traced("baseline.mkl_like")
def mkl_like_transpose(
    buf: np.ndarray, m: int, n: int, *, stats: CycleStats | None = None
) -> np.ndarray:
    """Sequential limited-aux in-place transpose (the Table 1 "MKL" row)."""
    return transpose_cycle_following(buf, m, n, aux="recompute", stats=stats)
