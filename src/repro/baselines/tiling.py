"""Shared tiled in-place transpose engine (Gustavson / Sung baseline core).

Tiled algorithms transpose in three stages:

1. **pack** — convert the row-major array to *block-major* layout, where each
   ``tr x tc`` tile is contiguous and tiles are ordered row-major by grid
   position.  Packing is done panel-by-panel (a row panel of ``tr`` rows is
   a contiguous buffer segment), so auxiliary space is one panel:
   ``O(tr * n)`` elements.
2. **tile transpose** — in the packed layout, transposition moves whole
   tiles: tile ``(I, J)`` travels to grid slot ``(J, I)`` and is transposed
   internally.  Whole contiguous tiles move by cycle following over grid
   slots (visited bits: one per tile, ``O(mn / (tr*tc))`` bits; one tile
   temp).
3. **unpack** — convert the now ``N x M``-grid block-major layout (tiles
   ``tc x tr``) back to row-major ``n x m``.

Tile dimensions must divide the array dimensions — the restriction the paper
highlights for Sung [6] ("the dimensions of the tile must evenly divide the
dimensions of the array"), and the reason tiled methods degrade on
inconveniently-factored arrays: awkward dimensions force thin tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TiledLayout", "TileStats", "tiled_transpose_inplace"]


@dataclass(frozen=True)
class TiledLayout:
    """Block-major layout descriptor: ``(m x n)`` array in ``tr x tc`` tiles."""

    m: int
    n: int
    tr: int
    tc: int

    def __post_init__(self):
        if self.m <= 0 or self.n <= 0 or self.tr <= 0 or self.tc <= 0:
            raise ValueError("all dimensions must be positive")
        if self.m % self.tr or self.n % self.tc:
            raise ValueError(
                f"tile {self.tr}x{self.tc} does not divide array "
                f"{self.m}x{self.n}"
            )

    @property
    def grid_rows(self) -> int:
        return self.m // self.tr

    @property
    def grid_cols(self) -> int:
        return self.n // self.tc

    @property
    def tile_elems(self) -> int:
        return self.tr * self.tc

    @property
    def n_tiles(self) -> int:
        return self.grid_rows * self.grid_cols


@dataclass
class TileStats:
    """Work counters for a tiled transpose."""

    tiles_moved: int = 0
    tile_cycles: int = 0
    panels_packed: int = 0


def pack(buf: np.ndarray, layout: TiledLayout) -> None:
    """Row-major -> block-major, panel at a time (aux = one row panel)."""
    tr, tc, n = layout.tr, layout.tc, layout.n
    N = layout.grid_cols
    for I in range(layout.grid_rows):
        panel = buf[I * tr * n : (I + 1) * tr * n]
        # (tr, n) row-major -> (N, tr, tc) tile-major
        reshaped = panel.reshape(tr, N, tc).transpose(1, 0, 2)
        panel[:] = np.ascontiguousarray(reshaped).ravel()


def unpack(buf: np.ndarray, layout: TiledLayout) -> None:
    """Block-major -> row-major; inverse of :func:`pack`."""
    tr, tc, n = layout.tr, layout.tc, layout.n
    N = layout.grid_cols
    for I in range(layout.grid_rows):
        panel = buf[I * tr * n : (I + 1) * tr * n]
        reshaped = panel.reshape(N, tr, tc).transpose(1, 0, 2)
        panel[:] = np.ascontiguousarray(reshaped).ravel()


def _transpose_tiles(
    buf: np.ndarray, layout: TiledLayout, stats: TileStats | None
) -> None:
    """Move + internally transpose tiles by cycle following over grid slots."""
    M, N = layout.grid_rows, layout.grid_cols
    te = layout.tile_elems
    tr, tc = layout.tr, layout.tc

    def tile(seg: int) -> np.ndarray:
        return buf[seg * te : (seg + 1) * te]

    def t_of(seg_data: np.ndarray) -> np.ndarray:
        return seg_data.reshape(tr, tc).T.copy().ravel()

    # Grid-slot permutation: segment s = I*N + J moves to J*M + I.
    def pred(s: int) -> int:
        # inverse map: the tile that must land in slot s
        return (s % M) * N + s // M

    visited = np.zeros(M * N, dtype=bool)
    for leader in range(M * N):
        if visited[leader]:
            continue
        visited[leader] = True
        if pred(leader) == leader:
            # fixed slot: still needs its internal transpose
            tile(leader)[:] = t_of(tile(leader))
            if stats is not None:
                stats.tiles_moved += 1
            continue
        held = t_of(tile(leader))
        cur = leader
        src = pred(cur)
        if stats is not None:
            stats.tile_cycles += 1
        while src != leader:
            tile(cur)[:] = t_of(tile(src))
            visited[src] = True
            cur = src
            src = pred(cur)
            if stats is not None:
                stats.tiles_moved += 1
        tile(cur)[:] = held
        if stats is not None:
            stats.tiles_moved += 1


def tiled_transpose_inplace(
    buf: np.ndarray,
    m: int,
    n: int,
    tr: int,
    tc: int,
    *,
    stats: TileStats | None = None,
) -> np.ndarray:
    """In-place row-major transpose via pack / tile-cycle-follow / unpack.

    ``tr`` must divide ``m`` and ``tc`` must divide ``n``.  After the call,
    ``buf.reshape(n, m)`` is the transpose of the original ``buf.reshape(m, n)``.
    """
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")
    layout = TiledLayout(m, n, tr, tc)
    pack(buf, layout)
    if stats is not None:
        stats.panels_packed += layout.grid_rows
    _transpose_tiles(buf, layout, stats)
    out_layout = TiledLayout(n, m, tc, tr)
    unpack(buf, out_layout)
    if stats is not None:
        stats.panels_packed += out_layout.grid_rows
    return buf
