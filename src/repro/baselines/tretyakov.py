"""Cost model for Tretyakov & Tyrtyshnikov [9] (Section 7 comparison).

Their algorithm achieves optimal ``O(mn)`` work with only ``O(min(m, n))``
auxiliary space, but — as the paper notes — at the price of up to 24 swaps
per element.  A swap is 2 reads + 2 writes, so each element is read and
written up to 48 times, versus 6 for the decomposed transpose.  No
experimental results were published, so (like the paper) we compare through
this access-count model rather than an implementation.
"""

from __future__ import annotations

__all__ = ["tretyakov_access_bound", "SWAPS_PER_ELEMENT", "ACCESSES_PER_ELEMENT"]

#: Worst-case swaps per element reported in Section 7.
SWAPS_PER_ELEMENT = 24
#: Each swap reads and writes the element once: 24 swaps -> 48 accesses.
ACCESSES_PER_ELEMENT = 2 * SWAPS_PER_ELEMENT


def tretyakov_access_bound(m: int, n: int) -> int:
    """Worst-case element accesses (reads + writes) for an ``m x n`` array.

    The paper: "it requires up to 24 swaps per element, which corresponds to
    reading and writing each element 48 times".  Over the whole array that is
    ``48 * m * n``, versus ``6 * m * n`` for the decomposed algorithm
    (Theorem 6) — the 8x practical gap the paper claims.
    """
    if m <= 0 or n <= 0:
        raise ValueError("dimensions must be positive")
    return ACCESSES_PER_ELEMENT * m * n
