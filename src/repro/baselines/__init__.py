"""Baseline in-place transposition algorithms the paper compares against.

======================  =======================================================
module                  role in the evaluation
======================  =======================================================
``cycle_following``     The traditional algorithm class (Knuth [3]; Windley
                        [11]): follow cycles of the transposition permutation.
                        ``aux="bitset"`` uses O(mn) visited bits;
                        ``aux="recompute"`` uses O(1) and pays the
                        O(mn log mn) work bound by re-walking cycles.
``mkl_like``            The ``mkl_dimatcopy`` stand-in (Table 1's "Intel
                        MKL" row): sequential, limited-aux cycle following.
``tiling``              The shared tiled in-place engine: pack to block-major,
                        cycle-follow whole tiles, transpose tiles, unpack.
``gustavson``           Gustavson et al. [1]: cache-efficient tiled transpose
                        including pack/unpack overhead, O(t * max(m, n)) aux.
``sung``                Sung [6]: tiled GPU transpose with the paper's
                        sorted-factor tile-size heuristic (threshold 72) and
                        its failure mode on inconvenient dimensions.
``outofplace``          The 2-pass out-of-place ideal (throughput ceiling).
``tretyakov``           Tretyakov & Tyrtyshnikov [9] cost model (<= 24 swaps
                        per element) for the related-work comparison.
======================  =======================================================
"""

from .cycle_following import CycleStats, transpose_cycle_following
from .gustavson import gustavson_transpose
from .mkl_like import mkl_like_transpose
from .outofplace import outofplace_transpose
from .sung import SungPlan, sung_tile_heuristic, sung_transpose
from .tiling import TiledLayout, tiled_transpose_inplace
from .tretyakov import tretyakov_access_bound

__all__ = [
    "CycleStats",
    "transpose_cycle_following",
    "mkl_like_transpose",
    "gustavson_transpose",
    "sung_transpose",
    "sung_tile_heuristic",
    "SungPlan",
    "TiledLayout",
    "tiled_transpose_inplace",
    "outofplace_transpose",
    "tretyakov_access_bound",
]
