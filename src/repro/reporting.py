"""Terminal-friendly reporting: histograms, heatmaps, and tables.

The evaluation figures are distributions (Figs. 3, 6, 7) and landscapes
(Figs. 4, 5); these renderers produce their terminal equivalents, shared by
the benchmark harness, the CLI, and library users inspecting their own
populations.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ascii_hist", "ascii_heatmap", "format_table"]


def ascii_hist(
    values: Iterable[float],
    bins: int = 10,
    width: int = 40,
    unit: str = "GB/s",
) -> str:
    """A terminal histogram with the median marked (the paper's dashed
    median lines in Figs. 3/6/7).

    >>> print(ascii_hist([1, 1, 2, 5], bins=2, width=4, unit="x"))
         1.000-   3.000 x | #### 3 <-- median
         3.000-   5.000 x | #    1
      median = 1.500 x   n = 4
    """
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return "(no samples)"
    lo, hi = float(values.min()), float(values.max())
    if math.isclose(lo, hi):
        hi = lo + 1e-9
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    peak = max(1, counts.max())
    med = float(np.median(values))
    lines = []
    for c, e0, e1 in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        marker = " <-- median" if e0 <= med <= e1 else ""
        lines.append(f"  {e0:8.3f}-{e1:8.3f} {unit} | {bar:<{width}} {c}{marker}")
    lines.append(f"  median = {med:.3f} {unit}   n = {values.size}")
    return "\n".join(lines)


def ascii_heatmap(
    grid: np.ndarray,
    row_labels: Sequence[int],
    col_labels: Sequence[int],
    unit: str = "GB/s",
) -> str:
    """A coarse character heatmap (the Figs. 4/5 landscapes)."""
    grid = np.asarray(grid, dtype=float)
    shades = " .:-=+*#%@"
    lo, hi = float(np.nanmin(grid)), float(np.nanmax(grid))
    span = max(hi - lo, 1e-9)
    lines = [f"  value range: {lo:.2f} .. {hi:.2f} {unit} (darker = faster)"]
    lines.append("        " + " ".join(f"{c//1000:>3}k" for c in col_labels))
    for r, row in zip(row_labels, grid):
        cells = " ".join(
            f"  {shades[min(9, int(9 * (v - lo) / span))]} " for v in row
        )
        lines.append(f"  m={r//1000:>3}k {cells}")
    return "\n".join(lines)


def format_table(
    header: Sequence[str], rows: Iterable[Sequence], widths: Sequence[int] | None = None
) -> str:
    """Right-aligned fixed-width table (the Tables 1/2 style)."""
    rows = [list(map(str, r)) for r in rows]
    header = list(map(str, header))
    if widths is None:
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
    def fmt(cells):
        return "  ".join(f"{c:>{w}}" for c, w in zip(cells, widths))

    out = [fmt(header), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in rows)
    return "\n".join(out)
