"""Process-wide structured tracer: nestable spans in a bounded ring buffer.

The paper's evaluation is entirely about constant factors — Section 7
reports *achieved bandwidth per pass*, not asymptotics — so the repo needs
to see inside one transpose: where each pass's time goes, how the parallel
workers overlap, which plans hit the cache.  The aggregate timers in
:mod:`repro.runtime.metrics` cannot answer those questions (a TimerStat is
four scalars); spans can, because each one records *when* it ran, *on which
thread*, and *under which parent*.

Design constraints (shared with the metrics registry):

* **No repro imports.**  This module is imported from ``repro.core``,
  ``repro.parallel``, ``repro.runtime`` and ``repro.baselines``; depending
  only on the stdlib keeps the import graph acyclic.
* **Near-zero disabled cost.**  ``tracer.span(...)`` returns a shared no-op
  context manager when disabled; hot paths guard with
  ``if tracer.enabled:`` so the off path is one attribute read and one
  branch (the same discipline as ``registry.enabled``).
* **Bounded memory.**  Finished spans land in a ring buffer
  (``REPRO_TRACE_CAPACITY``, default 65536 records); long-running processes
  overwrite the oldest records instead of growing without bound, and the
  number of overwritten records is kept in ``tracer.dropped``.
* **Thread safety.**  The ring buffer is guarded by one lock; span *nesting*
  is tracked per thread (thread-local stacks), so spans opened on different
  threads never parent each other — exactly the lane-per-thread layout the
  Chrome-trace exporter emits.

Span naming conventions (see docs/TRACING.md):

========== =====================================================
prefix     meaning
========== =====================================================
``op.*``   one public entry-point invocation
``pass.*`` one decomposition pass (rotate / shuffle / permute)
``worker.*`` one parallel worker chunk (carries its rectangle)
``cache.*`` plan-cache events (hit / miss / evict), zero-width
``baseline.*`` one baseline-algorithm invocation
``serve.*`` one serving-layer group execution (batch / single)
========== =====================================================

Usage::

    from repro.trace.spans import tracer

    with tracer.span("pass.row_shuffle", m=m, n=n, bytes=2 * buf.nbytes):
        ...                      # the pass

    tracer.event("cache.hit", m=m, n=n)   # zero-width instant event
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
from collections import deque
from time import perf_counter

__all__ = [
    "SpanRecord",
    "Tracer",
    "tracer",
    "traced",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "DEFAULT_CAPACITY",
]

DEFAULT_CAPACITY = 65536


class SpanRecord:
    """One finished span (or instant event, when ``t1 == t0``).

    Immutable once appended to the ring buffer; exporters receive lists of
    these.  Times are :func:`time.perf_counter` values (monotonic, arbitrary
    origin) — exporters rebase against the earliest record.
    """

    __slots__ = ("span_id", "parent_id", "name", "t0", "t1", "tid",
                 "thread_name", "attrs")

    def __init__(self, span_id: int, parent_id: int, name: str, t0: float,
                 t1: float, tid: int, thread_name: str, attrs: dict):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.tid = tid
        self.thread_name = thread_name
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    @property
    def is_event(self) -> bool:
        """True for zero-width instant events (``tracer.event``)."""
        return self.t1 == self.t0

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "duration_s": self.duration_s,
            "tid": self.tid,
            "thread_name": self.thread_name,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"tid={self.tid})")


class _NoopSpan:
    """The shared disabled-path span: enter/exit do nothing.

    A single instance is returned by every ``tracer.span`` call while the
    tracer is disabled, so the off path allocates nothing.
    """

    __slots__ = ()
    #: mirrors ``_LiveSpan.duration_s`` so instrumentation that reads the
    #: duration after the ``with`` block stays branch-free.
    duration_s = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "t0", "t1")

    def __init__(self, tr: "Tracer", name: str, attrs: dict):
        self._tracer = tr
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.t0 = 0.0
        self.t1 = 0.0

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "_LiveSpan":
        tr = self._tracer
        stack = tr._stack()
        self.parent_id = stack[-1].span_id if stack else 0
        self.span_id = tr._next_id()
        stack.append(self)
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.t1 = perf_counter()
        tr = self._tracer
        stack = tr._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (e.g. an exception unwound siblings): recover
            try:
                stack.remove(self)
            except ValueError:
                pass
        t = threading.current_thread()
        tr._append(SpanRecord(self.span_id, self.parent_id, self.name,
                              self.t0, self.t1, t.ident or 0, t.name,
                              self.attrs))
        return False


class Tracer:
    """Thread-safe span recorder with a bounded ring buffer.

    ``enabled`` is a plain attribute read by the hot-path guards; flipping
    it is safe at any time (spans already open record normally on exit).
    """

    def __init__(self, enabled: bool = False, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._buf: deque[SpanRecord] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.capacity = capacity
        self.enabled = enabled
        #: records overwritten by ring wraparound since the last reset
        self.dropped = 0
        #: records appended since the last reset (including later-dropped)
        self.recorded = 0

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs) -> "_LiveSpan | _NoopSpan":
        """Open a span: ``with tracer.span("pass.x", m=m, n=n, bytes=b):``.

        Returns the shared no-op context manager while disabled.  Hot paths
        should additionally guard with ``if tracer.enabled:`` so the keyword
        dict is never built on the off path.
        """
        if not self.enabled:
            return _NOOP
        return _LiveSpan(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-width instant event (``cache.hit`` and friends)."""
        if not self.enabled:
            return
        now = perf_counter()
        t = threading.current_thread()
        stack = self._stack()
        parent = stack[-1].span_id if stack else 0
        self._append(SpanRecord(self._next_id(), parent, name, now, now,
                                t.ident or 0, t.name, attrs))

    # -- internals -----------------------------------------------------------

    def _next_id(self) -> int:
        # itertools.count.__next__ is atomic under the GIL.
        return next(self._ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, rec: SpanRecord) -> None:
        with self._lock:
            if len(self._buf) == self._buf.maxlen:
                self.dropped += 1
            self._buf.append(rec)
            self.recorded += 1

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> list[SpanRecord]:
        """The ring buffer's current contents, oldest first (a copy)."""
        with self._lock:
            return list(self._buf)

    def drain(self) -> list[SpanRecord]:
        """Remove and return the buffered records, oldest first."""
        with self._lock:
            out = list(self._buf)
            self._buf.clear()
            return out

    def reset(self) -> None:
        """Drop all records and counters (the enabled flag is untouched)."""
        with self._lock:
            self._buf.clear()
            self.dropped = 0
            self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)


#: The process-wide tracer used by every instrumented entry point.
#: Off by default (mirroring ``REPRO_SANITIZE``); ``REPRO_TRACE=1`` enables.
tracer = Tracer(
    enabled=os.environ.get("REPRO_TRACE", "0") == "1",
    capacity=int(os.environ.get("REPRO_TRACE_CAPACITY", DEFAULT_CAPACITY)),
)


def traced(name: str):
    """Decorator tracing a ``fn(buf, m, n, ...)`` entry point.

    Used by the baseline algorithms so their traces are comparable with the
    decomposition's: one ``baseline.*`` span per call, carrying the shape
    and the 2x read+write byte volume.  Disabled cost is one attribute read
    and one branch.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(buf, m, n, *args, **kwargs):
            if not tracer.enabled:
                return fn(buf, m, n, *args, **kwargs)
            with tracer.span(name, m=m, n=n, bytes=2 * buf.nbytes):
                return fn(buf, m, n, *args, **kwargs)

        return wrapper

    return deco


def enable() -> None:
    tracer.enabled = True


def disable() -> None:
    tracer.enabled = False


def is_enabled() -> bool:
    return tracer.enabled


def reset() -> None:
    tracer.reset()
