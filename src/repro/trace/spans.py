"""Process-wide structured tracer: nestable spans in a bounded ring buffer.

The paper's evaluation is entirely about constant factors — Section 7
reports *achieved bandwidth per pass*, not asymptotics — so the repo needs
to see inside one transpose: where each pass's time goes, how the parallel
workers overlap, which plans hit the cache.  The aggregate timers in
:mod:`repro.runtime.metrics` cannot answer those questions (a TimerStat is
four scalars); spans can, because each one records *when* it ran, *on which
thread*, and *under which parent*.

Design constraints (shared with the metrics registry):

* **No repro imports.**  This module is imported from ``repro.core``,
  ``repro.parallel``, ``repro.runtime`` and ``repro.baselines``; depending
  only on the stdlib keeps the import graph acyclic.
* **Near-zero disabled cost.**  ``tracer.span(...)`` returns a shared no-op
  context manager when disabled; hot paths guard with
  ``if tracer.enabled:`` so the off path is one attribute read and one
  branch (the same discipline as ``registry.enabled``).
* **Bounded memory.**  Finished spans land in a ring buffer
  (``REPRO_TRACE_CAPACITY``, default 65536 records); long-running processes
  overwrite the oldest records instead of growing without bound, and the
  number of overwritten records is kept in ``tracer.dropped``.
* **Thread safety.**  The ring buffer is guarded by one lock; span *nesting*
  is tracked per thread (thread-local stacks), so spans opened on different
  threads never parent each other — exactly the lane-per-thread layout the
  Chrome-trace exporter emits.

Span naming conventions (see docs/TRACING.md):

========== =====================================================
prefix     meaning
========== =====================================================
``op.*``   one public entry-point invocation
``pass.*`` one decomposition pass (rotate / shuffle / permute)
``worker.*`` one parallel worker chunk (carries its rectangle)
``cache.*`` plan-cache events (hit / miss / evict), zero-width
``baseline.*`` one baseline-algorithm invocation
``serve.*`` one serving-layer group execution (batch / single)
========== =====================================================

Usage::

    from repro.trace.spans import tracer

    with tracer.span("pass.row_shuffle", m=m, n=n, bytes=2 * buf.nbytes):
        ...                      # the pass

    tracer.event("cache.hit", m=m, n=n)   # zero-width instant event

Distributed tracing (docs/TRACING.md, "Distributed tracing"): a
:class:`TraceContext` carries a request's ``trace_id`` and the span id the
next span should parent to.  ``tracer.activate(ctx)`` installs it on the
current thread; spans opened underneath are stamped with the trace_id, and
the first span (empty stack) parents to ``ctx.parent_id`` — which may be a
span id minted in *another process*.  Worker processes serialize their
span ring (:func:`spans_to_wire`) into the result channel and the parent
:meth:`Tracer.splice`\\ s them in, remapping span ids so cross-process id
collisions cannot corrupt the tree.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
from collections import deque
from time import perf_counter

__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "tracer",
    "traced",
    "new_trace_id",
    "spans_to_wire",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "DEFAULT_CAPACITY",
]

DEFAULT_CAPACITY = 65536

#: this process's pid, stamped on every record.  Cached because a span is
#: opened per pass, not per element — but refreshed after fork so records
#: from fork/forkserver children carry the *child's* pid (spawn children
#: re-import and get a fresh value).
_PID = os.getpid()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_refresh_pid)


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id (random, collision-negligible)."""
    return os.urandom(8).hex()


class TraceContext:
    """A request identity crossing thread and process boundaries.

    ``trace_id`` names the request end to end; ``parent_id`` is the span id
    the next root span should parent to (0 = none).  Wire form is a plain
    tuple so it rides through pickled task descriptors unchanged.
    """

    __slots__ = ("trace_id", "parent_id")

    def __init__(self, trace_id: str, parent_id: int = 0):
        self.trace_id = trace_id
        self.parent_id = int(parent_id)

    def as_wire(self) -> tuple:
        return (self.trace_id, self.parent_id)

    @classmethod
    def from_wire(cls, wire) -> "TraceContext":
        return cls(str(wire[0]), int(wire[1]))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, parent_id={self.parent_id})"


class SpanRecord:
    """One finished span (or instant event, when ``t1 == t0``).

    Immutable once appended to the ring buffer; exporters receive lists of
    these.  Times are :func:`time.perf_counter` values (monotonic, arbitrary
    origin) — exporters rebase against the earliest record.
    """

    __slots__ = ("span_id", "parent_id", "name", "t0", "t1", "tid",
                 "thread_name", "attrs", "trace_id", "pid")

    def __init__(self, span_id: int, parent_id: int, name: str, t0: float,
                 t1: float, tid: int, thread_name: str, attrs: dict,
                 trace_id: str = "", pid: int | None = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.tid = tid
        self.thread_name = thread_name
        self.attrs = attrs
        self.trace_id = trace_id
        self.pid = _PID if pid is None else pid

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    @property
    def is_event(self) -> bool:
        """True for zero-width instant events (``tracer.event``)."""
        return self.t1 == self.t0

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "duration_s": self.duration_s,
            "tid": self.tid,
            "thread_name": self.thread_name,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "pid": self.pid,
        }

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"tid={self.tid})")


class _NoopSpan:
    """The shared disabled-path span: enter/exit do nothing.

    A single instance is returned by every ``tracer.span`` call while the
    tracer is disabled, so the off path allocates nothing.
    """

    __slots__ = ()
    #: mirrors ``_LiveSpan.duration_s`` so instrumentation that reads the
    #: duration after the ``with`` block stays branch-free.
    duration_s = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "t0",
                 "t1", "trace_id")

    def __init__(self, tr: "Tracer", name: str, attrs: dict):
        self._tracer = tr
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.t0 = 0.0
        self.t1 = 0.0
        self.trace_id = ""

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "_LiveSpan":
        tr = self._tracer
        stack = tr._stack()
        ctx = getattr(tr._local, "ctx", None)
        if ctx is not None:
            self.trace_id = ctx.trace_id
        # A root span under an active context parents to the context's
        # parent_id — possibly a span id from another process, resolved at
        # splice time.
        if stack:
            self.parent_id = stack[-1].span_id
        elif ctx is not None:
            self.parent_id = ctx.parent_id
        self.span_id = tr._next_id()
        stack.append(self)
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.t1 = perf_counter()
        tr = self._tracer
        stack = tr._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (e.g. an exception unwound siblings): recover
            try:
                stack.remove(self)
            except ValueError:
                pass
        t = threading.current_thread()
        tr._append(SpanRecord(self.span_id, self.parent_id, self.name,
                              self.t0, self.t1, t.ident or 0, t.name,
                              self.attrs, trace_id=self.trace_id))
        return False


class _CtxScope:
    """Installs a :class:`TraceContext` on the current thread, restoring
    whatever was active before on exit (contexts nest)."""

    __slots__ = ("_local", "_ctx", "_prev")

    def __init__(self, local: threading.local, ctx: "TraceContext | None"):
        self._local = local
        self._ctx = ctx
        self._prev = None

    def __enter__(self) -> "TraceContext | None":
        self._prev = getattr(self._local, "ctx", None)
        self._local.ctx = self._ctx
        return self._ctx

    def __exit__(self, *exc) -> bool:
        self._local.ctx = self._prev
        return False


class Tracer:
    """Thread-safe span recorder with a bounded ring buffer.

    ``enabled`` is a plain attribute read by the hot-path guards; flipping
    it is safe at any time (spans already open record normally on exit).
    """

    def __init__(self, enabled: bool = False, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._buf: deque[SpanRecord] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.capacity = capacity
        self.enabled = enabled
        #: records overwritten by ring wraparound since the last reset
        self.dropped = 0
        #: records appended since the last reset (including later-dropped)
        self.recorded = 0

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs) -> "_LiveSpan | _NoopSpan":
        """Open a span: ``with tracer.span("pass.x", m=m, n=n, bytes=b):``.

        Returns the shared no-op context manager while disabled.  Hot paths
        should additionally guard with ``if tracer.enabled:`` so the keyword
        dict is never built on the off path.
        """
        if not self.enabled:
            return _NOOP
        return _LiveSpan(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-width instant event (``cache.hit`` and friends)."""
        if not self.enabled:
            return
        now = perf_counter()
        t = threading.current_thread()
        stack = self._stack()
        ctx = getattr(self._local, "ctx", None)
        if stack:
            parent = stack[-1].span_id
        else:
            parent = ctx.parent_id if ctx is not None else 0
        self._append(SpanRecord(self._next_id(), parent, name, now, now,
                                t.ident or 0, t.name, attrs,
                                trace_id=ctx.trace_id if ctx else ""))

    # -- distributed tracing ---------------------------------------------------

    def activate(self, ctx: "TraceContext | None") -> _CtxScope:
        """``with tracer.activate(ctx):`` — spans opened on this thread are
        stamped with ``ctx.trace_id`` and the first one parents to
        ``ctx.parent_id``.  Safe (and free) while disabled; ``None``
        deactivates for the scope."""
        return _CtxScope(self._local, ctx)

    def current_context(self) -> "TraceContext | None":
        """The thread's active :class:`TraceContext`, if any."""
        return getattr(self._local, "ctx", None)

    def current_trace_id(self) -> str:
        """The active context's trace id, or ``""`` outside any request."""
        ctx = getattr(self._local, "ctx", None)
        return ctx.trace_id if ctx is not None else ""

    def splice(self, records: "list[dict]", *, parent_id: int = 0,
               trace_id: str = "") -> int:
        """Fold serialized foreign spans (:func:`spans_to_wire`) into this
        ring as one coherent subtree.

        Worker processes mint span ids from their own counters, so foreign
        ids collide with local ones; every spliced record gets a fresh id
        from this tracer, internal parent links are remapped, and records
        whose parent is *not* in the batch (the worker's roots) parent to
        ``parent_id``.  The foreign ``pid``/``tid`` are preserved — that is
        what gives the Chrome export its per-process lanes.  Records
        missing a trace id inherit ``trace_id``.  Returns the number of
        records spliced; malformed input splices nothing.
        """
        if not records:
            return 0
        idmap: dict = {}
        for r in records:
            try:
                idmap[r["span_id"]] = self._next_id()
            except (TypeError, KeyError):
                return 0  # malformed wire payload: drop the batch whole
        for r in records:
            self._append(SpanRecord(
                idmap[r["span_id"]],
                idmap.get(r.get("parent_id"), parent_id),
                str(r.get("name", "")),
                float(r.get("t0", 0.0)),
                float(r.get("t1", 0.0)),
                int(r.get("tid", 0)),
                str(r.get("thread_name", "worker")),
                dict(r.get("attrs") or {}),
                trace_id=str(r.get("trace_id") or trace_id),
                pid=r.get("pid"),
            ))
        return len(records)

    # -- internals -----------------------------------------------------------

    def _next_id(self) -> int:
        # itertools.count.__next__ is atomic under the GIL.
        return next(self._ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, rec: SpanRecord) -> None:
        with self._lock:
            if len(self._buf) == self._buf.maxlen:
                self.dropped += 1
            self._buf.append(rec)
            self.recorded += 1

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> list[SpanRecord]:
        """The ring buffer's current contents, oldest first (a copy)."""
        with self._lock:
            return list(self._buf)

    def drain(self) -> list[SpanRecord]:
        """Remove and return the buffered records, oldest first."""
        with self._lock:
            out = list(self._buf)
            self._buf.clear()
            return out

    def reset(self) -> None:
        """Drop all records and counters (the enabled flag is untouched)."""
        with self._lock:
            self._buf.clear()
            self.dropped = 0
            self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)


#: The process-wide tracer used by every instrumented entry point.
#: Off by default (mirroring ``REPRO_SANITIZE``); ``REPRO_TRACE=1`` enables.
tracer = Tracer(
    enabled=os.environ.get("REPRO_TRACE", "0") == "1",
    capacity=int(os.environ.get("REPRO_TRACE_CAPACITY", DEFAULT_CAPACITY)),
)


def spans_to_wire(records: "list[SpanRecord]") -> list[dict]:
    """Serialize records for the cross-process result channel.

    Plain dicts of scalars: picklable by every start method, no live
    tracer state, and exactly what :meth:`Tracer.splice` consumes.
    """
    return [r.as_dict() for r in records]


def traced(name: str):
    """Decorator tracing a ``fn(buf, m, n, ...)`` entry point.

    Used by the baseline algorithms so their traces are comparable with the
    decomposition's: one ``baseline.*`` span per call, carrying the shape
    and the 2x read+write byte volume.  Disabled cost is one attribute read
    and one branch.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(buf, m, n, *args, **kwargs):
            if not tracer.enabled:
                return fn(buf, m, n, *args, **kwargs)
            with tracer.span(name, m=m, n=n, bytes=2 * buf.nbytes):
                return fn(buf, m, n, *args, **kwargs)

        return wrapper

    return deco


def enable() -> None:
    tracer.enabled = True


def disable() -> None:
    tracer.enabled = False


def is_enabled() -> bool:
    return tracer.enabled


def reset() -> None:
    tracer.reset()
