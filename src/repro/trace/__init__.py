"""repro.trace — structured tracing and profiling.

Where :mod:`repro.runtime.metrics` answers "how long do passes take on
average", this subpackage answers "what happened *inside this transpose*":
per-pass spans with wall time, thread id and attributes; parallel worker
chunks on their own thread lanes; plan-cache hit/miss/evict events; and a
bandwidth profiler that joins span durations with bytes moved to reproduce
the paper's per-pass achieved-GB/s breakdown.

``repro.trace.spans``
    The process-wide :data:`~repro.trace.spans.tracer`: nestable spans in a
    bounded ring buffer, near-zero cost while disabled (``REPRO_TRACE=1``
    starts it enabled, mirroring ``REPRO_SANITIZE``).  Distributed-tracing
    primitives live here too: :class:`~repro.trace.spans.TraceContext`
    activation, wire serialization and cross-process :meth:`splice`.

``repro.trace.events``
    The bounded structured event log (``REPRO_EVENTS=1``): trace_id-stamped
    admission/reject/coalesce/dispatch/retry/evict/fallback events with an
    optional JSONL sink.

``repro.trace.export``
    Chrome ``chrome://tracing`` / Perfetto JSON, Prometheus text format
    (counters + log-spaced latency histograms), and a human-readable tree.

``repro.trace.profile``
    Per-pass achieved GB/s and memcpy-normalized fraction from a traced
    run (``repro profile`` on the command line; ``repro trace`` records).

Submodules load lazily (PEP 562) so importing ``repro.trace`` from inside
instrumented core modules never recurses into package initialization.
"""

from __future__ import annotations

import importlib

__all__ = [
    "spans",
    "events",
    "export",
    "profile",
    "Tracer",
    "SpanRecord",
    "TraceContext",
    "tracer",
    "traced",
    "new_trace_id",
    "EventLog",
    "event_log",
    "to_chrome_trace",
    "from_chrome_trace",
    "to_prometheus",
    "to_tree",
    "to_request_tree",
    "filter_trace",
    "validate_chrome_trace",
    "profile_shape",
    "profile_shapes",
]

_SUBMODULES = ("spans", "events", "export", "profile")

_LAZY = {
    "Tracer": ("spans", "Tracer"),
    "SpanRecord": ("spans", "SpanRecord"),
    "TraceContext": ("spans", "TraceContext"),
    "tracer": ("spans", "tracer"),
    "traced": ("spans", "traced"),
    "new_trace_id": ("spans", "new_trace_id"),
    "EventLog": ("events", "EventLog"),
    "event_log": ("events", "event_log"),
    "to_chrome_trace": ("export", "to_chrome_trace"),
    "from_chrome_trace": ("export", "from_chrome_trace"),
    "to_prometheus": ("export", "to_prometheus"),
    "to_tree": ("export", "to_tree"),
    "to_request_tree": ("export", "to_request_tree"),
    "filter_trace": ("export", "filter_trace"),
    "validate_chrome_trace": ("export", "validate_chrome_trace"),
    "profile_shape": ("profile", "profile_shape"),
    "profile_shapes": ("profile", "profile_shapes"),
}


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    if name in _LAZY:
        modname, attr = _LAZY[name]
        return getattr(importlib.import_module(f".{modname}", __name__), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
