"""Exporters for recorded spans and metrics snapshots.

Three formats, three audiences:

``to_chrome_trace``
    Chrome ``chrome://tracing`` / Perfetto JSON (the Trace Event Format).
    Spans become ``ph: "X"`` complete events on one lane per thread, so the
    overlap of parallel worker chunks is visible directly; instant events
    (``cache.hit`` …) become ``ph: "i"`` markers.  Open the file at
    https://ui.perfetto.dev or ``chrome://tracing``.

``to_prometheus``
    Prometheus text exposition format (version 0.0.4) rendered from a
    :func:`repro.runtime.metrics.snapshot`: counters as ``counter`` families,
    the log-spaced latency histograms as real ``histogram`` families with
    cumulative ``le`` buckets, plan-cache statistics as gauges.  Suitable
    for a textfile-collector drop or a scrape endpoint.

``to_tree``
    A human-readable per-thread span tree with durations and attributes —
    the quickest way to read a trace without leaving the terminal.

All three are pure functions over plain data (no repro-internal imports
besides :mod:`repro.trace.spans` types), so they are trivially testable.
"""

from __future__ import annotations

import math
import os
import re
from typing import Iterable

from .spans import SpanRecord

__all__ = [
    "to_chrome_trace",
    "from_chrome_trace",
    "validate_chrome_trace",
    "to_prometheus",
    "validate_prometheus_text",
    "to_tree",
    "filter_trace",
    "to_request_tree",
    "FORMATS",
]

#: formats understood by ``repro trace --format``
FORMATS = ("chrome", "tree", "prometheus")


# ---------------------------------------------------------------------------
# Chrome / Perfetto trace event format
# ---------------------------------------------------------------------------

def to_chrome_trace(spans: Iterable[SpanRecord], *, pid: int | None = None) -> dict:
    """Render spans as a Trace Event Format document (JSON-able dict).

    Timestamps are microseconds relative to the earliest record, one lane
    per (process, thread): each record carries the ``pid`` it was captured
    in (spans spliced from worker processes keep theirs), so a distributed
    trace shows one process group per worker with ``process_name`` /
    ``thread_name`` metadata events labelling the lanes.  Span identity
    (``span_id``/``parent_id``) and the owning ``trace_id`` travel in
    ``args`` so the document round-trips through
    :func:`from_chrome_trace`.  Zero-width records export as instant
    events.
    """
    spans = list(spans)
    if pid is None:
        pid = os.getpid()
    t_base = min((s.t0 for s in spans), default=0.0)
    events: list[dict] = []
    thread_names: dict[tuple[int, int], str] = {}
    for s in spans:
        s_pid = getattr(s, "pid", None) or pid
        thread_names.setdefault((s_pid, s.tid), s.thread_name)
        ts = (s.t0 - t_base) * 1e6
        args = dict(s.attrs)
        args["span_id"] = s.span_id
        args["parent_id"] = s.parent_id
        trace_id = getattr(s, "trace_id", "")
        if trace_id:
            args["trace_id"] = trace_id
        ev: dict = {
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "pid": s_pid,
            "tid": s.tid,
            "ts": ts,
            "args": args,
        }
        if s.is_event:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant marker
        else:
            ev["ph"] = "X"
            ev["dur"] = (s.t1 - s.t0) * 1e6
        events.append(ev)
    for p in sorted({p for p, _ in thread_names}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": p,
            "tid": 0,
            "args": {"name": "repro" if p == pid else f"repro-worker-{p}"},
        })
    for (p, tid), name in sorted(thread_names.items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": p,
            "tid": tid,
            "args": {"name": name},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome_trace(doc: dict) -> list[SpanRecord]:
    """Reconstruct :class:`SpanRecord` objects from an exported document.

    The inverse of :func:`to_chrome_trace` for ``X``/``i`` events carrying
    ``args.span_id`` (metadata events and foreign documents' events
    without identity are skipped).  Timestamps come back as seconds
    relative to the document's base — fine for tree views and durations,
    which only ever compare records from the same document.
    """
    records: list[SpanRecord] = []
    for ev in doc.get("traceEvents", ()):
        if not isinstance(ev, dict) or ev.get("ph") not in ("X", "i"):
            continue
        args = ev.get("args") or {}
        if "span_id" not in args:
            continue
        attrs = {
            k: v for k, v in args.items()
            if k not in ("span_id", "parent_id", "trace_id")
        }
        t0 = float(ev.get("ts", 0.0)) * 1e-6
        t1 = t0 + float(ev.get("dur", 0.0)) * 1e-6
        records.append(SpanRecord(
            int(args["span_id"]), int(args.get("parent_id", 0)),
            str(ev.get("name", "")), t0, t1,
            int(ev.get("tid", 0)), "", attrs,
            trace_id=str(args.get("trace_id", "")),
            pid=int(ev.get("pid", 0)),
        ))
    # Give reconstructed records their lane labels back from metadata.
    names: dict[tuple[int, int], str] = {}
    for ev in doc.get("traceEvents", ()):
        if isinstance(ev, dict) and ev.get("ph") == "M" \
                and ev.get("name") == "thread_name":
            names[(int(ev.get("pid", 0)), int(ev.get("tid", 0)))] = \
                str((ev.get("args") or {}).get("name", ""))
    for r in records:
        r.thread_name = names.get((r.pid, r.tid), "worker")
    return records


def validate_chrome_trace(doc: dict) -> dict:
    """Check a Chrome-trace document against the exporter's schema.

    Raises :class:`ValueError` on the first structural problem; returns a
    small summary (event counts by phase) on success.  Used by the tests
    and by the CI ``trace`` step to gate the uploaded artifact.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    counts: dict[str, int] = {}
    pids: set = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event {i} ({ev.get('name')!r}) lacks {field!r}")
        ph = ev["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        pids.add(ev["pid"])
        if ph == "X":
            if "ts" not in ev or "dur" not in ev:
                raise ValueError(f"complete event {i} needs 'ts' and 'dur'")
            if ev["dur"] < 0:
                raise ValueError(f"complete event {i} has negative duration")
        elif ph == "i":
            if "ts" not in ev:
                raise ValueError(f"instant event {i} needs 'ts'")
        elif ph == "M":
            if not isinstance(ev.get("args"), dict) or "name" not in ev["args"]:
                raise ValueError(f"metadata event {i} needs args.name")
        else:
            raise ValueError(f"event {i} has unexpected phase {ph!r}")
    if counts.get("X", 0) == 0:
        raise ValueError("trace contains no complete ('X') span events")
    counts["pids"] = len(pids)
    return counts


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    out = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_bound(b: float) -> str:
    if math.isinf(b):
        return "+Inf"
    return repr(b)


def to_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus text format.

    ``snapshot`` is the dict from :func:`repro.runtime.metrics.snapshot`
    (counters + timers + histograms + gauges + value histograms, optionally
    ``plan_cache`` stats).  Counter families get a ``_total`` suffix; every
    latency histogram is one series of the shared
    ``<prefix>_latency_seconds`` family labelled by operation name, with
    cumulative ``le`` buckets as Prometheus requires.  Gauges
    (``serve.queue_depth`` …) render as ``gauge`` families and each value
    histogram (``serve.batch_size`` …) as its own ``histogram`` family,
    since its bucket bounds are not latencies.
    """
    lines: list[str] = []

    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        metric = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    for name in sorted(snapshot.get("value_histograms", {})):
        h = snapshot["value_histograms"][name]
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        bounds = list(h["bounds"]) + [math.inf]
        cumulative = 0
        for bound, count in zip(bounds, h["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt_bound(bound)}"}} {cumulative}'
            )
        lines.append(f"{metric}_sum {h['sum_s']}")
        lines.append(f"{metric}_count {h['count']}")

    hists = snapshot.get("histograms", {})
    if hists:
        metric = f"{prefix}_latency_seconds"
        lines.append(f"# TYPE {metric} histogram")
        for name in sorted(hists):
            h = hists[name]
            label = f'op="{_prom_label(name)}"'
            bounds = list(h["bounds"]) + [math.inf]
            cumulative = 0
            for bound, count in zip(bounds, h["counts"]):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{{label},le="{_fmt_bound(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{metric}_sum{{{label}}} {h['sum_s']}")
            lines.append(f"{metric}_count{{{label}}} {h['count']}")

    cache = snapshot.get("plan_cache")
    if cache:
        for key in sorted(cache):
            value = cache[key]
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, (int, float)):
                continue
            metric = f"{prefix}_plan_cache_{_prom_name(key)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")

    trace = snapshot.get("trace")
    if trace:
        for key, mtype in (("dropped_spans", "counter"), ("recorded", "counter"),
                           ("enabled", "gauge"), ("buffered", "gauge"),
                           ("capacity", "gauge")):
            if key not in trace:
                continue
            value = int(trace[key]) if isinstance(trace[key], bool) else trace[key]
            metric = f"{prefix}_trace_{_prom_name(key)}"
            if mtype == "counter":
                metric += "_total"
            lines.append(f"# TYPE {metric} {mtype}")
            lines.append(f"{metric} {value}")

    events = snapshot.get("events")
    if events:
        for key, mtype in (("emitted", "counter"), ("dropped", "counter"),
                           ("sink_errors", "counter"), ("enabled", "gauge"),
                           ("buffered", "gauge")):
            if key not in events:
                continue
            value = int(events[key]) if isinstance(events[key], bool) else events[key]
            metric = f"{prefix}_events_{_prom_name(key)}"
            if mtype == "counter":
                metric += "_total"
            lines.append(f"# TYPE {metric} {mtype}")
            lines.append(f"{metric} {value}")

    return "\n".join(lines) + "\n"


_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def validate_prometheus_text(text: str) -> dict:
    """Check a Prometheus 0.0.4 text exposition for structural validity.

    A lightweight parser covering what :func:`to_prometheus` (and the
    ``/metrics`` endpoint built on it) may emit: ``# TYPE``/``# HELP``
    comments, samples with optional ``{label="value"}`` sets, float values.
    Histogram families are additionally checked for cumulative
    (monotonically non-decreasing) ``le`` buckets ending at ``+Inf`` with
    the bucket total equal to the ``_count`` sample.  Raises
    :class:`ValueError` on the first problem; returns a summary with
    per-type family counts and the number of samples.  Used by the CI
    ``serve`` job to gate the scraped endpoint.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {lineno}: unknown comment {parts[1]!r}")
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed TYPE comment")
                name, mtype = parts[2], parts[3]
                if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: unknown metric type {mtype!r}")
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                types[name] = mtype
            continue
        m = _METRIC_NAME_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: sample lacks a metric name")
        name, rest = m.group(0), line[m.end():]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            end = rest.find("}")
            if end < 0:
                raise ValueError(f"line {lineno}: unterminated label set")
            body, rest = rest[1:end], rest[end + 1:]
            for key, val in _LABEL_PAIR_RE.findall(body):
                labels[key] = val
            if not labels and body.strip():
                raise ValueError(f"line {lineno}: malformed label set {body!r}")
        try:
            value = float(rest.strip().split()[0])
        except (ValueError, IndexError) as exc:
            raise ValueError(f"line {lineno}: bad sample value in {line!r}") from exc
        samples.append((name, labels, value))

    # Histogram invariants: per (family, non-le labels) series, buckets must
    # be cumulative, end at +Inf, and agree with _count.
    series: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in samples:
        base = None
        for suffix in ("_bucket", "_count", "_sum"):
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == "histogram":
                base = name[: -len(suffix)]
                break
        if base is None:
            continue
        ident = (base,) + tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        if name.endswith("_bucket"):
            if "le" not in labels:
                raise ValueError(f"histogram bucket for {base!r} lacks an 'le' label")
            le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
            series.setdefault(ident, []).append((le, value))
        elif name.endswith("_count"):
            counts[ident] = value
    for ident, buckets in series.items():
        buckets.sort(key=lambda b: b[0])
        if not math.isinf(buckets[-1][0]):
            raise ValueError(f"histogram {ident[0]!r} lacks a +Inf bucket")
        cum = [v for _, v in buckets]
        if any(later < earlier for earlier, later in zip(cum, cum[1:])):
            raise ValueError(f"histogram {ident[0]!r} buckets are not cumulative")
        if ident in counts and counts[ident] != cum[-1]:
            raise ValueError(
                f"histogram {ident[0]!r}: _count {counts[ident]} != "
                f"+Inf bucket {cum[-1]}"
            )
    by_type: dict[str, int] = {}
    for mtype in types.values():
        by_type[mtype] = by_type.get(mtype, 0) + 1
    return {"families": by_type, "samples": len(samples)}


# ---------------------------------------------------------------------------
# Human-readable tree dump
# ---------------------------------------------------------------------------

def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{inner}]"


def to_tree(spans: Iterable[SpanRecord]) -> str:
    """Render spans as an indented per-thread tree with durations."""
    spans = list(spans)
    if not spans:
        return "(no spans recorded)\n"
    by_thread: dict[int, list[SpanRecord]] = {}
    for s in spans:
        by_thread.setdefault(s.tid, []).append(s)

    lines: list[str] = []
    for tid in sorted(by_thread):
        records = sorted(by_thread[tid], key=lambda s: (s.t0, s.span_id))
        ids = {s.span_id for s in records}
        children: dict[int, list[SpanRecord]] = {}
        roots: list[SpanRecord] = []
        for s in records:
            if s.parent_id in ids:
                children.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)
        name = records[0].thread_name
        lines.append(f"thread {name} (tid={tid}):")

        def emit(s: SpanRecord, depth: int) -> None:
            indent = "  " * depth
            if s.is_event:
                lines.append(f"{indent}* {s.name}{_fmt_attrs(s.attrs)}")
            else:
                lines.append(
                    f"{indent}{s.name:<32} {s.duration_s * 1e3:9.3f} ms"
                    f"{_fmt_attrs(s.attrs)}"
                )
            for child in children.get(s.span_id, []):
                emit(child, depth + 1)

        for root in roots:
            emit(root, 1)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Per-request (distributed) span tree
# ---------------------------------------------------------------------------

def filter_trace(spans: Iterable[SpanRecord], trace_id: str) -> list[SpanRecord]:
    """Spans belonging to one request, across every process and thread.

    A span belongs if its own ``trace_id`` matches, or if it carries the
    request in a batched group's ``trace_ids`` attribute (the batcher
    stamps group spans with every coalesced request's id)."""
    out = []
    for s in spans:
        if getattr(s, "trace_id", "") == trace_id:
            out.append(s)
        elif trace_id in (s.attrs.get("trace_ids") or ()):
            out.append(s)
    return out


def to_request_tree(spans: Iterable[SpanRecord], trace_id: str) -> str:
    """Render one request's span tree across process boundaries.

    Unlike :func:`to_tree` (which groups by thread within one process),
    this follows ``parent_id`` links across pid/tid lanes — a spliced
    distributed trace reads as one tree from the HTTP ``serve.request``
    root down into worker-process chunk spans, each line labelled with
    the process and thread that produced it.
    """
    matched = filter_trace(spans, trace_id)
    if not matched:
        return f"(no spans recorded for trace_id={trace_id})\n"
    matched.sort(key=lambda s: (s.t0, s.span_id))
    ids = {s.span_id for s in matched}
    children: dict[int, list[SpanRecord]] = {}
    roots: list[SpanRecord] = []
    for s in matched:
        if s.parent_id in ids:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    pids = sorted({getattr(s, "pid", 0) for s in matched})
    lines = [
        f"trace {trace_id}: {len(matched)} spans across "
        f"{len(pids)} process(es) {pids}"
    ]

    def emit(s: SpanRecord, depth: int) -> None:
        indent = "  " * depth
        lane = f"pid={getattr(s, 'pid', 0)} tid={s.tid}"
        if s.is_event:
            lines.append(f"{indent}* {s.name}  ({lane}){_fmt_attrs(s.attrs)}")
        else:
            lines.append(
                f"{indent}{s.name:<28} {s.duration_s * 1e3:9.3f} ms  "
                f"({lane}){_fmt_attrs(s.attrs)}"
            )
        for child in children.get(s.span_id, []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 1)
    return "\n".join(lines) + "\n"
