"""Bounded, thread-safe structured event log (JSONL), trace_id-stamped.

Spans answer "where did the time go inside this request"; the event log
answers "what *decisions* did the serving layer make about it" — and keeps
the answer after the span ring has wrapped.  One record per decision:

=============== ======================================================
kind            emitted when
=============== ======================================================
``admit``       the HTTP front end admitted a request into a shard's
                queue (``shard``, plus ``depth`` as observed atomically
                at admission)
``reject``      admission failed (``reason``: full / closed / expired /
                quota)
``shard_down``  the router evicted a dead shard from the hash ring
                (``shard``, ``resubmitted``/``failed`` backlog counts)
``coalesce``    the batcher formed a dispatchable same-shape group
``dispatch``    a group entered execution (``mode``: batch/single/process)
``expired``     a queued request missed its deadline at claim time
``retry``       a transient group failure triggered the retry-once path
``group_failure`` the retry also failed; the group's requests got the error
``evict``       the plan cache evicted an entry under budget pressure
``fallback``    the native backend fell back to numpy
``stream``      the banded out-of-core executor started one band of one
                pass (``stage``, ``band``/``bands``, ``lo``/``hi``) —
                the progress feed for ``POST /transpose-file``
``stream_file`` a server-local file transpose started or finished
                (``phase``: start/done/error)
=============== ======================================================

Zero-copy ingress reuses ``admit``/``reject`` with ``reason`` values
``segment-missing`` and ``segment-mismatch`` (the 4xx taxonomy of
``POST /transpose`` segment requests; docs/STREAMING.md).

Every record carries ``ts`` (epoch seconds), ``kind``, and ``trace_id``
(``""`` when the event is not attributable to one request — a cache
eviction under pressure from many, say).  The trace_id requirement is
lint-enforced: REPRO007 flags any ``event_log.emit(...)`` call site that
does not pass ``trace_id=`` explicitly.

Design constraints (shared with :mod:`repro.trace.spans`):

* **No repro imports** — stdlib only, importable from anywhere.
* **Near-zero disabled cost** — ``emit`` returns after one attribute read
  and one branch while disabled; hot paths additionally guard with
  ``if event_log.enabled:`` so keyword dicts are never built.
* **Bounded memory** — a ring of ``REPRO_EVENTS_CAPACITY`` records
  (default 8192); overwrites count in ``event_log.dropped``.

Env gating mirrors ``REPRO_TRACE``: ``REPRO_EVENTS=1`` enables the
in-memory ring; ``REPRO_EVENTS_PATH=/path/events.jsonl`` additionally
streams every record to that file as one JSON object per line (and
implies enabled).  File writes happen under the ring lock — event volume
is per *decision* (admission, dispatch), not per element, so this costs
nothing measurable and keeps lines whole under concurrency.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = [
    "EventLog",
    "event_log",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "to_jsonl",
    "DEFAULT_CAPACITY",
]

DEFAULT_CAPACITY = 8192


class EventLog:
    """Thread-safe bounded event recorder with an optional JSONL sink."""

    def __init__(self, enabled: bool = False,
                 capacity: int = DEFAULT_CAPACITY,
                 path: str | None = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._buf: deque[dict] = deque(maxlen=capacity)
        self._fh = None
        self.capacity = capacity
        self.enabled = enabled
        self.path = path
        #: records overwritten by ring wraparound since the last reset
        self.dropped = 0
        #: records emitted since the last reset (including later-dropped)
        self.emitted = 0
        #: JSONL lines that failed to write (sink errors never raise)
        self.sink_errors = 0

    def emit(self, kind: str, *, trace_id: str, **fields) -> None:
        """Record one event.  ``trace_id`` is required by signature (and by
        lint rule REPRO007 at every call site); pass ``""`` when the event
        is genuinely not attributable to a request."""
        if not self.enabled:
            return
        rec = {"ts": time.time(), "kind": kind, "trace_id": trace_id}
        rec.update(fields)
        with self._lock:
            if len(self._buf) == self._buf.maxlen:
                self.dropped += 1
            self._buf.append(rec)
            self.emitted += 1
            if self.path is not None:
                self._sink_locked(rec)

    def _sink_locked(self, rec: dict) -> None:
        try:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(rec, sort_keys=True, default=str))
            self._fh.write("\n")
            self._fh.flush()
        except OSError:
            # A full disk or yanked mount must never take serving down;
            # the failure stays visible through the counter.
            self.sink_errors += 1
            self._fh = None

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """The ring's current contents, oldest first (record copies)."""
        with self._lock:
            return [dict(r) for r in self._buf]

    def drain(self) -> list[dict]:
        """Remove and return the buffered records, oldest first."""
        with self._lock:
            out = [dict(r) for r in self._buf]
            self._buf.clear()
            return out

    def stats(self) -> dict:
        """Counters for ``/statusz`` and the metrics snapshot."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "emitted": self.emitted,
                "dropped": self.dropped,
                "buffered": len(self._buf),
                "capacity": self.capacity,
                "sink_errors": self.sink_errors,
                "path": self.path,
            }

    def reset(self) -> None:
        """Drop records and counters (enabled flag and sink untouched)."""
        with self._lock:
            self._buf.clear()
            self.dropped = 0
            self.emitted = 0
            self.sink_errors = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError as exc:
                    del exc  # close failure leaves nothing to recover
                self._fh = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)


def to_jsonl(records: list[dict]) -> str:
    """Render records as JSON Lines (one object per line)."""
    return "\n".join(
        json.dumps(r, sort_keys=True, default=str) for r in records
    ) + ("\n" if records else "")


_ENV_PATH = os.environ.get("REPRO_EVENTS_PATH") or None

#: The process-wide event log.  Off by default; ``REPRO_EVENTS=1`` enables
#: the ring, ``REPRO_EVENTS_PATH`` enables it *and* streams JSONL.
event_log = EventLog(
    enabled=os.environ.get("REPRO_EVENTS", "0") == "1" or _ENV_PATH is not None,
    capacity=int(os.environ.get("REPRO_EVENTS_CAPACITY", DEFAULT_CAPACITY)),
    path=_ENV_PATH,
)


def enable() -> None:
    event_log.enabled = True


def disable() -> None:
    event_log.enabled = False


def is_enabled() -> bool:
    return event_log.enabled


def reset() -> None:
    event_log.reset()
