"""Bandwidth profiler: per-pass achieved GB/s from spans × bytes moved.

Section 7 of the paper evaluates the decomposition by *achieved bandwidth
per pass* (pre-rotate, row shuffle, column rotate, static row permute) and
by the fraction of memcpy bandwidth each pass reaches.  This module
reproduces that breakdown from a single traced run: every ``pass.*`` /
``worker.*`` / ``baseline.*`` span carries a ``bytes`` attribute (the
2x read+write volume the pass moves against the main array, the Theorem 6
accounting shared with :class:`repro.core.steps.WorkCounter`), so joining
span durations with those byte counts yields achieved GB/s directly —
no model, no estimate, just ``bytes / seconds``.

The memcpy normalization follows Eq. 37's convention: a same-size
``np.copyto`` reads and writes every element once, so its bandwidth
(``2 * nbytes / t``) is the machine ceiling any in-place pass is measured
against.  ``memcpy_frac`` near 1.0 means the pass is memory-bound and
running at speed; a low fraction points at the pass to optimize next.

Core imports happen inside the functions so ``repro.trace`` itself stays
importable before the package finishes initializing (the same lazy-binding
rule the metrics registry follows).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable

from .spans import SpanRecord, tracer

__all__ = [
    "PassProfile",
    "ShapeProfile",
    "aggregate_passes",
    "measure_memcpy_gbps",
    "profile_shape",
    "profile_shapes",
    "format_profile_table",
]


@dataclass(frozen=True)
class PassProfile:
    """Aggregated achieved bandwidth for one span name."""

    name: str
    calls: int
    seconds: float
    bytes: int
    gbps: float
    memcpy_frac: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "bytes": self.bytes,
            "gbps": self.gbps,
            "memcpy_frac": self.memcpy_frac,
        }


@dataclass(frozen=True)
class ShapeProfile:
    """The per-pass breakdown of one traced shape.

    ``backend`` records the engine that actually executed the passes
    (``"native"`` when any pass span was marked native, else ``"numpy"``) —
    a bandwidth number is meaningless without knowing which implementation
    produced it.
    """

    m: int
    n: int
    threads: int
    memcpy_gbps: float
    passes: tuple[PassProfile, ...]
    backend: str = "numpy"

    def as_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "threads": self.threads,
            "backend": self.backend,
            "memcpy_gbps": self.memcpy_gbps,
            "passes": [p.as_dict() for p in self.passes],
        }


def aggregate_passes(
    spans: Iterable[SpanRecord],
    *,
    prefixes: tuple[str, ...] = ("pass.",),
    memcpy_gbps: float = 0.0,
) -> list[PassProfile]:
    """Join span durations with their ``bytes`` attributes, per span name.

    Only spans whose name starts with one of ``prefixes`` and which carry a
    ``bytes`` attribute participate (instant events and unannotated spans
    are skipped).  Results are ordered by first appearance, matching pass
    execution order.
    """
    order: list[str] = []
    acc: dict[str, list] = {}
    for s in spans:
        if s.is_event or "bytes" not in s.attrs:
            continue
        if not any(s.name.startswith(p) for p in prefixes):
            continue
        if s.name not in acc:
            acc[s.name] = [0, 0.0, 0]
            order.append(s.name)
        entry = acc[s.name]
        entry[0] += 1
        entry[1] += s.duration_s
        entry[2] += int(s.attrs["bytes"])
    out = []
    for name in order:
        calls, seconds, nbytes = acc[name]
        gbps = nbytes / seconds / 1e9 if seconds > 0 else 0.0
        frac = gbps / memcpy_gbps if memcpy_gbps > 0 else 0.0
        out.append(PassProfile(name, calls, seconds, nbytes, gbps, frac))
    return out


def measure_memcpy_gbps(nbytes: int, *, repeats: int = 5) -> float:
    """Best-of memcpy bandwidth for a buffer of ``nbytes`` (Eq. 37 convention:
    one read + one write per element, so ``2 * nbytes / t``)."""
    import numpy as np

    elems = max(nbytes // 8, 1)
    src = np.arange(elems, dtype=np.float64)
    dst = np.empty_like(src)
    np.copyto(dst, src)  # warm-up: fault pages in
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        np.copyto(dst, src)
        best = min(best, perf_counter() - t0)
    return 2 * src.nbytes / best / 1e9


def profile_shape(
    m: int,
    n: int,
    *,
    dtype="float64",
    repeats: int = 3,
    threads: int = 1,
    algorithm: str = "auto",
    backend: str | None = None,
) -> ShapeProfile:
    """Trace ``repeats`` transposes of one shape and aggregate per pass.

    ``threads=1`` profiles the plan-cached fast path (one ``pass.*`` span
    per decomposition pass); ``threads>1`` profiles the parallel transposer
    (its ``pass.*`` spans aggregate the worker chunks beneath them).  The
    tracer's previous state (enabled flag and buffered records) is restored
    on return, so profiling composes with an ongoing ``repro trace`` run.

    ``backend`` forwards to the executors (``None``/``"auto"``/``"native"``/
    ``"numpy"``); the *reported* backend in the result reflects what
    actually ran — native spans self-identify, so a fallback shows up as
    ``backend="numpy"`` no matter what was requested.
    """
    import numpy as np

    from ..core.transpose import transpose_inplace
    from ..parallel.cpu import ParallelTranspose

    dt = np.dtype(dtype)
    proto = np.arange(m * n, dtype=dt)
    memcpy_gbps = measure_memcpy_gbps(proto.nbytes)

    was_enabled = tracer.enabled
    held = tracer.drain()
    tracer.enabled = True
    try:
        if threads > 1:
            native = "off" if backend == "numpy" else "auto"
            with ParallelTranspose(threads, native=native) as pt:
                for _ in range(repeats):
                    pt.transpose_inplace(proto.copy(), m, n)
        else:
            for _ in range(repeats):
                transpose_inplace(
                    proto.copy(), m, n, algorithm=algorithm, backend=backend
                )
        spans = tracer.drain()
    finally:
        tracer.enabled = was_enabled
        for rec in held:
            tracer._append(rec)

    ran_native = any(
        not s.is_event
        and s.name.startswith("pass.")
        and s.attrs.get("backend") == "native"
        for s in spans
    )
    passes = aggregate_passes(spans, memcpy_gbps=memcpy_gbps)
    return ShapeProfile(
        m, n, threads, memcpy_gbps, tuple(passes),
        "native" if ran_native else "numpy",
    )


def profile_shapes(
    shapes: Iterable[tuple[int, int]],
    *,
    dtype="float64",
    repeats: int = 3,
    threads: int = 1,
    algorithm: str = "auto",
    backend: str | None = None,
) -> list[ShapeProfile]:
    """Profile a shape sweep (the ``repro profile`` CLI backend)."""
    return [
        profile_shape(m, n, dtype=dtype, repeats=repeats, threads=threads,
                      algorithm=algorithm, backend=backend)
        for m, n in shapes
    ]


def format_profile_table(profiles: Iterable[ShapeProfile]) -> str:
    """The ``repro profile`` table: per-pass GB/s and memcpy fraction."""
    lines = [
        f"{'shape':>12}  {'pass':<26} {'calls':>5} {'ms':>9} "
        f"{'GB/s':>8} {'x memcpy':>9}"
    ]
    for prof in profiles:
        label = f"{prof.m}x{prof.n}"
        ceiling = f"(memcpy ceiling, {prof.backend})"
        lines.append(
            f"{label:>12}  {ceiling:<26} {'':>5} {'':>9} "
            f"{prof.memcpy_gbps:8.2f} {'1.000':>9}"
        )
        for p in prof.passes:
            lines.append(
                f"{'':>12}  {p.name:<26} {p.calls:>5} "
                f"{p.seconds * 1e3:9.3f} {p.gbps:8.2f} {p.memcpy_frac:9.3f}"
            )
    return "\n".join(lines)
