"""Open-loop load generator and serving-efficiency report.

Open-loop means arrivals are scheduled ahead of time from a Poisson
process at the offered rate and *do not* slow down when the server lags —
the honest way to measure a service under overload (a closed loop would
self-throttle and hide queueing collapse).  Latency is measured from the
*scheduled* arrival, so schedule slippage counts against the server.

The report situates the measured throughput between two in-process
reference points on the same shape/dtype:

``ceiling_rps``
    Direct ``batched_transpose_inplace`` on a resident batch — the
    hardware/kernel limit with zero serving overhead.  The acceptance
    bar is ``achieved >= 0.6 * ceiling`` on a same-shape workload.
``naive_rps``
    One-request-one-plan serving: every request builds a fresh
    :class:`~repro.core.plan.TransposePlan` (no cache) and executes it
    alone.  The coalesced path (staging copy + shared batched plan) must
    beat this by >= 2x — that is the speedup batching exists to buy.
"""

from __future__ import annotations

import http.client
import threading
from dataclasses import dataclass, field
from time import monotonic, perf_counter, sleep
from urllib.parse import urlsplit

import numpy as np

from .slo import nearest_rank

__all__ = [
    "ShapeMix",
    "parse_shape_mix",
    "poisson_arrivals",
    "measure_ceiling_rps",
    "measure_coalesced_rps",
    "measure_naive_rps",
    "LoadtestReport",
    "run_loadtest",
    "format_report",
]


@dataclass(frozen=True)
class ShapeMix:
    """One weighted shape in the workload mix."""

    m: int
    n: int
    weight: float


def parse_shape_mix(spec: str) -> list[ShapeMix]:
    """Parse ``"128x192:0.8,64x96:0.2"`` (weights optional, default 1)."""
    mix: list[ShapeMix] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        shape, _, weight = part.partition(":")
        m, _, n = shape.partition("x")
        try:
            mix.append(ShapeMix(int(m), int(n), float(weight) if weight else 1.0))
        except ValueError as exc:
            raise ValueError(
                f"bad shape-mix entry {part!r}; expected MxN[:weight]"
            ) from exc
    if not mix:
        raise ValueError("empty shape mix")
    total = sum(s.weight for s in mix)
    if total <= 0:
        raise ValueError("shape-mix weights must sum to > 0")
    return [ShapeMix(s.m, s.n, s.weight / total) for s in mix]


def poisson_arrivals(
    rate: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival offsets (seconds) of a Poisson process over ``duration_s``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    # Draw enough exponential gaps to cover the window, then trim.
    n_expect = max(int(rate * duration_s * 1.5) + 16, 16)
    gaps = rng.exponential(1.0 / rate, size=n_expect)
    arrivals = np.cumsum(gaps)
    while arrivals[-1] < duration_s:
        more = rng.exponential(1.0 / rate, size=n_expect)
        arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(more)])
    return arrivals[arrivals < duration_s]


# ---------------------------------------------------------------------------
# In-process reference points
# ---------------------------------------------------------------------------

def measure_ceiling_rps(
    m: int, n: int, dtype="float64", *, batch: int = 32, seconds: float = 0.5
) -> float:
    """Direct-call ceiling: resident-batch ``batched_transpose_inplace``."""
    from ..core.batched import batched_transpose_inplace

    dtype = np.dtype(dtype)
    staging = np.arange(batch * m * n, dtype=np.float64).astype(dtype)
    staging = staging.reshape(batch, m * n)
    batched_transpose_inplace(staging, m, n)  # warm the plan cache
    done = 0
    t0 = perf_counter()
    while perf_counter() - t0 < seconds:
        batched_transpose_inplace(staging, m, n)
        done += batch
    return done / (perf_counter() - t0)


def measure_coalesced_rps(
    m: int, n: int, dtype="float64", *, batch: int = 32, seconds: float = 0.5
) -> float:
    """The server's coalesced path: per-request staging copy + shared plan."""
    from ..core.batched import batched_transpose_inplace

    dtype = np.dtype(dtype)
    requests = [
        np.arange(m * n, dtype=np.float64).astype(dtype) for _ in range(batch)
    ]
    staging = np.empty((batch, m * n), dtype=dtype)
    batched_transpose_inplace(staging, m, n)  # warm the plan cache
    done = 0
    t0 = perf_counter()
    while perf_counter() - t0 < seconds:
        for i, r in enumerate(requests):
            staging[i] = r
        batched_transpose_inplace(staging, m, n)
        done += batch
    return done / (perf_counter() - t0)


def measure_naive_rps(
    m: int, n: int, dtype="float64", *, seconds: float = 0.5
) -> float:
    """One-request-one-plan: fresh plan build + singleton execute each time."""
    from ..core.plan import TransposePlan

    dtype = np.dtype(dtype)
    buf = np.arange(m * n, dtype=np.float64).astype(dtype)
    done = 0
    t0 = perf_counter()
    while perf_counter() - t0 < seconds:
        plan = TransposePlan(m, n)
        plan.execute(buf)
        done += 1
    return done / (perf_counter() - t0)


# ---------------------------------------------------------------------------
# The load run
# ---------------------------------------------------------------------------

@dataclass
class LoadtestReport:
    """Everything ``repro loadtest`` prints (and CI asserts on)."""

    url: str
    duration_s: float
    offered_rate: float
    shapes: list[ShapeMix]
    dtype: str
    tiles: int = 1
    completed: int = 0
    rejected: int = 0          # 429 admission rejects
    errors: int = 0            # anything else non-200
    verified: int = 0          # responses compared byte-for-byte
    verify_failures: int = 0
    achieved_rps: float = 0.0
    latencies_ms: dict = field(default_factory=dict)  # p50/p90/p99/mean/max
    #: per-shape percentiles keyed "MxN" (same p50/p90/p99/mean/max dicts)
    per_shape_latencies_ms: dict = field(default_factory=dict)
    #: the slowest 200 of the run: {"trace_id", "latency_ms", "shape"} —
    #: feed the trace_id to ``repro trace --request`` for post-hoc lookup
    worst_request: dict = field(default_factory=dict)
    ceiling_rps: float = 0.0
    coalesced_rps: float = 0.0
    naive_rps: float = 0.0

    @property
    def efficiency(self) -> float:
        """Served throughput as a fraction of the direct-call ceiling."""
        return self.achieved_rps / self.ceiling_rps if self.ceiling_rps else 0.0

    @property
    def batched_speedup(self) -> float:
        """Coalesced batched execution vs one-request-one-plan serving."""
        return self.coalesced_rps / self.naive_rps if self.naive_rps else 0.0

    def as_dict(self) -> dict:
        return {
            "url": self.url,
            "duration_s": self.duration_s,
            "offered_rate": self.offered_rate,
            "shapes": [f"{s.m}x{s.n}:{s.weight:.3f}" for s in self.shapes],
            "dtype": self.dtype,
            "tiles": self.tiles,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "verified": self.verified,
            "verify_failures": self.verify_failures,
            "achieved_rps": self.achieved_rps,
            "latencies_ms": dict(self.latencies_ms),
            "per_shape_latencies_ms": {
                k: dict(v) for k, v in self.per_shape_latencies_ms.items()
            },
            "worst_request": dict(self.worst_request),
            "ceiling_rps": self.ceiling_rps,
            "coalesced_rps": self.coalesced_rps,
            "naive_rps": self.naive_rps,
            "efficiency": self.efficiency,
            "batched_speedup": self.batched_speedup,
        }


class _Client(threading.Thread):
    """One persistent-connection worker pulling from the shared schedule."""

    def __init__(self, ctx: "_RunContext", index: int):
        super().__init__(name=f"repro-loadgen-{index}", daemon=True)
        self.ctx = ctx

    def run(self) -> None:
        ctx = self.ctx
        conn = http.client.HTTPConnection(ctx.host, ctx.port, timeout=30)
        try:
            while True:
                with ctx.lock:
                    i = ctx.next_index
                    ctx.next_index += 1
                if i >= len(ctx.arrivals):
                    return
                due = ctx.t0 + ctx.arrivals[i]
                delay = due - monotonic()
                if delay > 0:
                    sleep(delay)
                shape_i = ctx.shape_of[i]
                body, base_headers = ctx.payloads[shape_i]
                # Deterministic per-request trace id: lets the report name
                # the worst request and a later `repro trace --request`
                # find its span tree in the server's exported trace.
                trace_id = f"lt-{ctx.seed:x}-{i:06x}"
                headers = dict(base_headers)
                headers["X-Repro-Trace-Id"] = trace_id
                try:
                    conn.request("POST", "/transpose", body=body, headers=headers)
                    resp = conn.getresponse()
                    data = resp.read()
                    status = resp.status
                except (http.client.HTTPException, OSError):
                    conn.close()
                    conn = http.client.HTTPConnection(
                        ctx.host, ctx.port, timeout=30
                    )
                    with ctx.lock:
                        ctx.errors += 1
                    continue
                latency = monotonic() - due
                check = False
                with ctx.lock:
                    if status == 200:
                        ctx.completed += 1
                        ctx.latencies.append(latency)
                        ctx.latencies_by_shape[shape_i].append(latency)
                        if latency > ctx.worst[0]:
                            ctx.worst = (
                                latency, trace_id, ctx.shape_names[shape_i]
                            )
                        # Sample responses for verification across the whole
                        # run — corruption that only appears once coalesced
                        # batches form (i.e. after warm-up) must not slip
                        # past the gate.
                        seen = ctx.verify_counts[shape_i]
                        ctx.verify_counts[shape_i] = seen + 1
                        check = seen % ctx.verify_every == 0
                    elif status == 429:
                        ctx.rejected += 1
                    else:
                        ctx.errors += 1
                if check:
                    # Compare outside the lock: a body-sized memcmp per
                    # sampled response must not serialize the clients.
                    ok = data == ctx.expected[shape_i]
                    with ctx.lock:
                        ctx.verified += 1
                        if not ok:
                            ctx.verify_failures += 1
        finally:
            conn.close()


class _RunContext:
    """Shared mutable state for one load run (guarded by ``lock``)."""

    def __init__(
        self, host, port, arrivals, shape_of, payloads, expected, dtype,
        verify_every=1, shape_names=(), seed=0,
    ):
        self.host, self.port = host, port
        self.arrivals = arrivals
        self.shape_of = shape_of
        self.payloads = payloads
        self.expected = expected
        self.dtype = dtype
        self.verify_every = max(1, int(verify_every))
        self.shape_names = list(shape_names) or [
            str(i) for i in range(len(payloads))
        ]
        self.seed = int(seed)
        self.lock = threading.Lock()
        self.next_index = 0
        self.completed = 0
        self.rejected = 0
        self.errors = 0
        self.verified = 0
        self.verify_failures = 0
        #: per-shape count of 200s seen, for the every-Nth sampling
        self.verify_counts = [0] * len(payloads)
        self.latencies: list[float] = []
        self.latencies_by_shape: list[list[float]] = [
            [] for _ in payloads
        ]
        #: slowest 200 so far: (latency_s, trace_id, shape_name)
        self.worst: tuple = (0.0, "", "")
        self.t0 = 0.0


def _print_interim(line: str) -> None:
    import sys

    print(line, file=sys.stderr, flush=True)


def _percentiles(latencies: list[float]) -> dict:
    """p50/p90/p99 by the serving layer's shared nearest-rank definition
    (:func:`repro.serve.slo.nearest_rank`), so this report and ``/statusz``
    agree on the same traffic; interpolated ``np.percentile`` previously
    made them drift apart."""
    if not latencies:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    arr = [lat * 1e3 for lat in latencies]
    return {
        "p50": nearest_rank(arr, 50),
        "p90": nearest_rank(arr, 90),
        "p99": nearest_rank(arr, 99),
        "mean": float(np.mean(arr)),
        "max": float(np.max(arr)),
    }


def run_loadtest(
    url: str,
    *,
    rate: float = 900.0,
    duration_s: float = 5.0,
    shapes: list[ShapeMix] | None = None,
    dtype: str = "uint8",
    tiles: int = 4,
    connections: int = 16,
    batch: int = 32,
    seed: int = 0,
    reference: bool = True,
    verify_every: int = 1,
    interim_every_s: float = 0.0,
    interim_sink=None,
) -> LoadtestReport:
    """Drive ``url`` with an open-loop Poisson workload; return the report.

    ``rate`` is offered *matrices* per second, so it compares directly
    against the per-matrix ceiling; each HTTP request carries ``tiles``
    same-shape matrices (``X-Repro-Batch`` client-side micro-batching),
    i.e. requests arrive at ``rate / tiles`` per second.

    ``verify_every`` samples responses for byte-exact verification: every
    Nth 200 per shape is compared against the precomputed transpose,
    spread across the whole run so post-warm-up corruption (e.g. a bug
    only the coalesced batched path triggers) is caught.  The default of
    1 verifies every response.

    ``reference=True`` also measures the three in-process reference rates
    (ceiling / coalesced / naive) for the *first* shape of the mix — skip
    it for pure traffic generation.

    ``interim_every_s > 0`` prints a progress line (completed / achieved /
    p50 / p99 / rejected / errors so far) every that-many seconds during
    the run — to stderr by default, or to ``interim_sink(line)`` — so a
    long run is observable live instead of end-of-run-only.
    """
    # Default workload: 256x384 uint8 image tiles.  Narrow dtypes are the
    # interesting serving regime — the gather kernels are bound by their
    # int64 index maps, so the kernel cost per matrix barely drops while
    # the HTTP bytes shrink 8x vs float64, which is what lets a 1-core
    # box serve a large fraction of the direct-call ceiling.
    mix = shapes or [ShapeMix(256, 384, 1.0)]
    if tiles < 1:
        raise ValueError(f"tiles must be >= 1, got {tiles}")
    parts = urlsplit(url if "//" in url else f"//{url}")
    host, port = parts.hostname or "127.0.0.1", parts.port or 80
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rate / tiles, duration_s, rng)
    weights = np.array([s.weight for s in mix])
    shape_of = rng.choice(len(mix), size=len(arrivals), p=weights / weights.sum())

    np_dtype = np.dtype(dtype)
    payloads = []
    expected = []
    for s in mix:
        A = rng.random(tiles * s.m * s.n)
        A = (A * 100).astype(np_dtype).reshape(tiles, s.m, s.n)
        headers = {
            "X-Repro-Rows": str(s.m),
            "X-Repro-Cols": str(s.n),
            "X-Repro-Dtype": dtype,
            "X-Repro-Batch": str(tiles),
            "Content-Type": "application/octet-stream",
        }
        payloads.append((A.tobytes(), headers))
        expected.append(
            np.ascontiguousarray(A.transpose(0, 2, 1)).tobytes()
        )

    ctx = _RunContext(
        host, port, arrivals, shape_of, payloads, expected, dtype,
        verify_every=verify_every,
        shape_names=[f"{s.m}x{s.n}" for s in mix],
        seed=seed,
    )
    clients = [_Client(ctx, i) for i in range(connections)]
    done_evt = threading.Event()
    reporter = None
    if interim_every_s and interim_every_s > 0:
        sink = interim_sink or _print_interim

        def _report_progress() -> None:
            while not done_evt.wait(interim_every_s):
                with ctx.lock:
                    completed, rejected = ctx.completed, ctx.rejected
                    errors = ctx.errors
                    lat = list(ctx.latencies)
                elapsed_now = monotonic() - ctx.t0
                pct = _percentiles(lat)
                sink(
                    f"  [t={elapsed_now:5.1f}s] completed={completed} "
                    f"achieved={completed * tiles / elapsed_now:.0f} mat/s "
                    f"p50={pct['p50']:.2f}ms p99={pct['p99']:.2f}ms "
                    f"rejected={rejected} errors={errors}"
                )

        reporter = threading.Thread(
            target=_report_progress, name="repro-loadgen-interim", daemon=True
        )
    ctx.t0 = monotonic()
    for c in clients:
        c.start()
    if reporter is not None:
        reporter.start()
    for c in clients:
        c.join()
    done_evt.set()
    if reporter is not None:
        reporter.join(timeout=1.0)
    elapsed = monotonic() - ctx.t0

    report = LoadtestReport(
        url=url,
        duration_s=elapsed,
        offered_rate=rate,
        shapes=mix,
        dtype=dtype,
        tiles=tiles,
        completed=ctx.completed,
        rejected=ctx.rejected,
        errors=ctx.errors,
        verified=ctx.verified,
        verify_failures=ctx.verify_failures,
        # Matrices per second (tiles per request), apples-to-apples with
        # the per-matrix ceiling.
        achieved_rps=ctx.completed * tiles / elapsed if elapsed > 0 else 0.0,
        latencies_ms=_percentiles(ctx.latencies),
        per_shape_latencies_ms={
            name: _percentiles(lat)
            for name, lat in zip(ctx.shape_names, ctx.latencies_by_shape)
            if lat
        },
        worst_request=(
            {
                "trace_id": ctx.worst[1],
                "latency_ms": ctx.worst[0] * 1e3,
                "shape": ctx.worst[2],
            }
            if ctx.worst[1] else {}
        ),
    )
    if reference:
        s0 = mix[0]
        report.ceiling_rps = measure_ceiling_rps(s0.m, s0.n, dtype, batch=batch)
        report.coalesced_rps = measure_coalesced_rps(
            s0.m, s0.n, dtype, batch=batch
        )
        report.naive_rps = measure_naive_rps(s0.m, s0.n, dtype)
    return report


def format_report(report: LoadtestReport) -> str:
    """The human-readable loadtest summary (CI greps these lines)."""
    lat = report.latencies_ms
    mix = ",".join(f"{s.m}x{s.n}:{s.weight:.2f}" for s in report.shapes)
    lines = [
        f"loadtest {report.url}  shapes={mix} dtype={report.dtype} "
        f"tiles/request={report.tiles}",
        f"  offered   {report.offered_rate:8.1f} matrices/s for "
        f"{report.duration_s:.1f}s (open-loop Poisson)",
        f"  completed {report.completed} ok requests "
        f"({report.completed * report.tiles} matrices), "
        f"{report.rejected} rejected (429), "
        f"{report.errors} errors, {report.verify_failures} verify failures "
        f"({report.verified} responses verified byte-exact)",
        f"  achieved  {report.achieved_rps:8.1f} matrices/s",
        f"  latency   p50 {lat.get('p50', 0):7.2f} ms   "
        f"p90 {lat.get('p90', 0):7.2f} ms   p99 {lat.get('p99', 0):7.2f} ms   "
        f"max {lat.get('max', 0):7.2f} ms",
    ]
    for shape, pct in sorted(report.per_shape_latencies_ms.items()):
        lines.append(
            f"  shape {shape:>11}  p50 {pct.get('p50', 0):7.2f} ms   "
            f"p90 {pct.get('p90', 0):7.2f} ms   p99 {pct.get('p99', 0):7.2f} ms"
        )
    if report.worst_request:
        w = report.worst_request
        lines.append(
            f"  worst     {w['latency_ms']:7.2f} ms  shape {w['shape']}  "
            f"trace_id {w['trace_id']}"
        )
    if report.ceiling_rps:
        lines += [
            f"  ceiling   {report.ceiling_rps:8.1f} matrices/s direct "
            f"batched_transpose_inplace -> efficiency {report.efficiency:.1%}",
            f"  batching  coalesced {report.coalesced_rps:8.1f} matrices/s "
            f"vs naive one-request-one-plan {report.naive_rps:8.1f} "
            f"matrices/s -> speedup {report.batched_speedup:.2f}x",
        ]
    return "\n".join(lines)
