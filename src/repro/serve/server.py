"""Stdlib HTTP front end for the transposition service.

``http.server`` + ``socketserver`` only — the container ships no web
framework, and none is needed: one binary POST endpoint, two text GET
endpoints.

Endpoints
---------
``POST /transpose``
    Body: the raw ``m * n`` elements — or ``k`` same-shape matrices
    stacked back to back with ``X-Repro-Batch: k`` (client-side
    micro-batching: one HTTP round trip, ``k`` kernel tiles).  Headers:
    ``X-Repro-Rows`` (m), ``X-Repro-Cols`` (n), optional ``X-Repro-Dtype``
    (default float64), ``X-Repro-Order`` (C|F, default C) and
    ``X-Repro-Timeout-Ms`` (a per-request deadline).  Response: the
    ``n x m`` transpose(s), raw, with the swapped shape echoed in the
    same headers.  Optional ``X-Repro-Tenant`` names the quota tenant
    (serve/router.py).  Errors: 400 (bad shape/dtype/size), 429
    (admission control — ``kind`` distinguishes ``queue-full`` from
    ``quota``; ``Retry-After`` is *computed* from the rejecting shard's
    queue depth and recent drain rate, or from the tenant bucket's
    refill deficit), 503 (shutting down), 504 (deadline exceeded),
    500 (execution failure).

    **Zero-copy ingress** (same-host clients): send
    ``Content-Type: application/json`` with body ``{"segment": name}``
    naming a shared-memory segment (:mod:`repro.parallel.shm`) that holds
    the matrix bytes.  The server *attaches* the segment — no body copy
    over the socket in either direction — runs the same queued/batched
    execution, writes the transpose back into the segment and replies
    with a small JSON ack.  The client keeps segment ownership; the
    server never unlinks.  Extra errors: 404 (``segment-missing`` — no
    such segment), 409 (``segment-mismatch`` — segment smaller than the
    declared shape).
``POST /transpose-file``
    JSON body ``{"path", "rows", "cols", "dtype"?, "order"?,
    "algorithm"?, "window_bytes"?, "threads"?, "backend"?}``: transpose a
    *server-local* raw binary file in place through the banded streaming
    executor (:mod:`repro.stream`) under a bounded resident window.
    Synchronous: the response is the executor's stats JSON.  Progress is
    observable while it runs — the executor emits one ``stream`` event
    per band into the structured event log, tagged with this request's
    trace id, and a ``stream_file`` start/done/error envelope brackets
    the run.  Errors: 400 (bad params), 404 (file missing), 409 (file
    size does not match the declared shape), 500 (execution failure).
``GET /healthz``
    JSON liveness snapshot (queue depth, workers, counters).
``GET /metrics``
    Prometheus 0.0.4 text exposition: everything
    :func:`repro.trace.export.to_prometheus` renders from the runtime
    snapshot, which the serving layer extends with queue-depth/in-flight/
    worker gauges, admission-reject counters, the ``serve.batch_size``
    histogram and ``serve.e2e``/``serve.queue_wait``/``serve.execute``
    latency histograms.

Shutdown is graceful by contract: :meth:`TransposeServer.shutdown` stops
accepting, drains every accepted request through the worker pool, waits
for the in-flight responses to flush, and reports ``dropped`` (accepted
minus responded — zero unless the drain timed out).
"""

from __future__ import annotations

import json
import math
import re
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, sleep

import numpy as np

from ..parallel import shm
from ..runtime import metrics
from ..trace import spans
from ..trace.events import event_log
from ..trace.export import to_prometheus
from ..trace.spans import TraceContext, new_trace_id
from .queue import (
    RETRY_AFTER_MIN_S,
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    Request,
)
from .router import QuotaExceededError, ShardRouter
from .slo import SloTracker

__all__ = ["ServeConfig", "TransposeServer"]

#: cap on a single request body; a 512 MiB matrix through a Python HTTP
#: stack is a misconfiguration, not a workload
MAX_BODY_BYTES = 512 * 1024 * 1024

#: accepted shape for a client-supplied X-Repro-Trace-Id; anything else is
#: replaced with a freshly minted id (never echoed back raw)
_TRACE_ID_RE = re.compile(r"[A-Za-z0-9_.:-]{1,128}")

#: cap on JSON request bodies (segment descriptors, transpose-file params)
_MAX_JSON_BYTES = 64 * 1024

_NULL_CM = nullcontext()


def _retry_after_header(seconds: float) -> str:
    """HTTP Retry-After carries integral seconds: round up, floor at 1."""
    return str(max(1, math.ceil(seconds)))


@dataclass
class ServeConfig:
    """Tuning knobs for one server instance (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 8077
    workers: int = 2
    queue_size: int = 512
    max_batch: int = 32
    max_wait_ms: float = 2.0
    request_timeout_s: float = 30.0
    #: "thread" executes groups on the worker threads; "process" stages
    #: them through shared memory into worker processes (docs/PARALLEL.md)
    worker_mode: str = "thread"
    #: multiprocessing start method for worker_mode="process"
    #: (None = forkserver where available; REPRO_MP_START overrides)
    mp_start_method: str | None = None
    #: SLO objectives judged by the live tracker (serve/slo.py): windowed
    #: p99 latency target and the error budget the burn rate is measured
    #: against
    slo_p99_ms: float = 50.0
    slo_error_budget: float = 0.01
    #: independent serve shards behind the consistent-hash router
    #: (serve/router.py).  ``workers`` is per shard; total queue capacity
    #: stays ~``queue_size`` split across shards.
    shards: int = 1
    #: per-tenant admission quota in matrices/s for a weight-1.0 tenant
    #: (X-Repro-Tenant header selects the tenant; None disables quotas)
    tenant_rate: float | None = None
    #: token-bucket burst capacity, in seconds of refill
    tenant_burst_s: float = 2.0
    #: weighted admission: a tenant's bucket refills at
    #: ``tenant_rate x weight`` (unlisted tenants weigh 1.0)
    tenant_weights: dict = field(default_factory=dict)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # -- plumbing ------------------------------------------------------------

    @property
    def app(self) -> "TransposeServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.app.verbose:
            super().log_message(format, *args)

    def _reply(
        self, status: int, body, content_type: str, headers: dict | None = None
    ) -> None:
        self._last_status = status
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            trace_id = getattr(self, "_trace_id", "")
            if trace_id:
                self.send_header("X-Repro-Trace-Id", trace_id)
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _reply_error(
        self,
        status: int,
        message: str,
        headers: dict | None = None,
        *,
        kind: str | None = None,
    ) -> None:
        """JSON error reply; ``kind`` tags ambiguous statuses (the two 504
        flavors: ``client-deadline`` vs ``serving-timeout``)."""
        payload: dict = {"error": message}
        if kind is not None:
            payload["kind"] = kind
        body = json.dumps(payload).encode()
        self._reply(status, body, "application/json", headers)

    def _reject_unread_body(
        self, status: int, message: str, *, kind: str | None = None
    ) -> None:
        """Error reply while request-body bytes are still on the socket.

        Keep-alive would parse those unread bytes as the next request line
        and desync the connection, so force a close with the reply.
        """
        self.close_connection = True
        self._reply_error(status, message, {"Connection": "close"}, kind=kind)

    # -- GET: health + metrics -----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            body = json.dumps(self.app.health(), sort_keys=True).encode()
            self._reply(200, body, "application/json")
        elif self.path == "/statusz":
            body = json.dumps(self.app.statusz(), sort_keys=True).encode()
            self._reply(200, body, "application/json")
        elif self.path == "/metrics":
            text = self.app.render_metrics()
            self._reply(
                200, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
            )
        else:
            self._reply_error(404, f"no such path: {self.path}")

    # -- POST: the work endpoint ---------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        """Thin wrapper around :meth:`_handle_post` that feeds the SLO
        tracker: every ``/transpose`` reply counts, with 5xx statuses
        burning error budget (4xx admission pushback does not)."""
        t0 = monotonic()
        self._last_status = 0
        self._trace_id = ""
        try:
            self._handle_post()
        finally:
            status = self._last_status
            if self.path == "/transpose" and status:
                self.app.slo.observe(monotonic() - t0, ok=status < 500)

    def _handle_post(self) -> None:
        # Mint (or propagate) the request's trace identity first, so every
        # reply — including rejections — carries X-Repro-Trace-Id.
        raw_id = self.headers.get("X-Repro-Trace-Id", "")
        trace_id = raw_id if _TRACE_ID_RE.fullmatch(raw_id) else new_trace_id()
        self._trace_id = trace_id
        if self.path == "/transpose-file":
            self._handle_transpose_file(trace_id)
            return
        if self.path != "/transpose":
            self._reject_unread_body(404, f"no such path: {self.path}")
            return
        app = self.app
        try:
            m = int(self.headers.get("X-Repro-Rows", ""))
            n = int(self.headers.get("X-Repro-Cols", ""))
        except ValueError:
            self._reject_unread_body(
                400, "X-Repro-Rows and X-Repro-Cols must be integers"
            )
            return
        if m < 1 or n < 1:
            self._reject_unread_body(400, "matrix dimensions must be positive")
            return
        try:
            dtype = np.dtype(self.headers.get("X-Repro-Dtype", "float64"))
        except (TypeError, ValueError):
            self._reject_unread_body(400, "unknown X-Repro-Dtype")
            return
        # Numeric fixed-size kinds only.  Anything else — 'object' above
        # all — would let readinto() write wire bytes over PyObject
        # pointers, a remotely triggered interpreter crash.
        if dtype.kind not in "biufc" or dtype.itemsize == 0:
            self._reject_unread_body(
                400, f"X-Repro-Dtype {dtype!s} is not a numeric dtype"
            )
            return
        order = self.headers.get("X-Repro-Order", "C")
        if order not in ("C", "F"):
            self._reject_unread_body(400, "X-Repro-Order must be C or F")
            return
        try:
            tiles = int(self.headers.get("X-Repro-Batch", "1"))
        except ValueError:
            self._reject_unread_body(400, "X-Repro-Batch must be an integer")
            return
        if tiles < 1:
            self._reject_unread_body(400, "X-Repro-Batch must be >= 1")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reject_unread_body(400, "Content-Length required")
            return
        # application/json switches to zero-copy ingress: the body is a
        # tiny {"segment": name} descriptor, the matrix bytes never cross
        # the socket.
        ctype = self.headers.get("Content-Type", "")
        segment_mode = ctype.split(";")[0].strip().lower() == "application/json"
        expected = tiles * m * n * dtype.itemsize
        if segment_mode:
            if not 2 <= length <= _MAX_JSON_BYTES:
                self._reject_unread_body(
                    400, "segment descriptor must be a small JSON body"
                )
                return
        else:
            if length != expected:
                self._reject_unread_body(
                    400,
                    f"body holds {length} bytes; {tiles} x {m}x{n} {dtype} "
                    f"needs {expected}",
                )
                return
            if length > MAX_BODY_BYTES:
                self._reject_unread_body(
                    400, f"body exceeds {MAX_BODY_BYTES} bytes"
                )
                return

        deadline = None
        timeout_ms = self.headers.get("X-Repro-Timeout-Ms")
        if timeout_ms is not None:
            try:
                deadline = monotonic() + float(timeout_ms) / 1e3
            except ValueError:
                self._reject_unread_body(
                    400, "X-Repro-Timeout-Ms must be a number"
                )
                return
            if deadline <= monotonic():
                # Already expired at admission: fail fast with the
                # DeadlineExceededError taxonomy instead of enqueueing and
                # burning the +1.0 s batcher slack on a doomed request.
                metrics.registry.inc("serve.expired_at_admission")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=trace_id, reason="expired",
                    )
                self._reject_unread_body(
                    504,
                    str(DeadlineExceededError(
                        "X-Repro-Timeout-Ms deadline expired before admission"
                    )),
                    kind="client-deadline",
                )
                return

        segment_name = ""
        seg_view: np.ndarray | None = None
        if segment_mode:
            try:
                doc = json.loads(self.rfile.read(length))
                segment_name = doc["segment"]
            except (ValueError, KeyError, TypeError):
                self._reply_error(400, 'body must be JSON {"segment": name}')
                return
            if not isinstance(segment_name, str) or not segment_name:
                self._reply_error(400, "segment name must be a string")
                return
            # Attach, never copy: the request buffer *is* the client's
            # segment.  The execution path treats request buffers as
            # read-only (the batcher stages results separately), so the
            # segment stays intact until the write-back below.
            try:
                seg_view = shm.attach_array(
                    segment_name, (tiles * m * n,), dtype
                )
            except FileNotFoundError:
                metrics.registry.inc("serve.segment_missing")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=trace_id,
                        reason="segment-missing", segment=segment_name,
                    )
                self._reply_error(
                    404,
                    f"no such shared-memory segment: {segment_name}",
                    kind="segment-missing",
                )
                return
            except (TypeError, ValueError):
                # the mapped segment is smaller than the declared shape
                metrics.registry.inc("serve.segment_mismatch")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=trace_id,
                        reason="segment-mismatch", segment=segment_name,
                    )
                self._reply_error(
                    409,
                    f"segment {segment_name} is smaller than "
                    f"{tiles} x {m}x{n} {dtype}",
                    kind="segment-mismatch",
                )
                return
            buf = seg_view
        else:
            # Read the body straight into a fresh array: no intermediate
            # bytes object, and the buffer is writeable for the singleton
            # in-place path.
            buf = np.empty(tiles * m * n, dtype=dtype)
            view = memoryview(buf).cast("B")
            got = 0
            while got < length:
                read = self.rfile.readinto(view[got:])
                if not read:
                    self._reject_unread_body(
                        400, f"truncated body: {got} of {length} bytes"
                    )
                    return
                got += read

        request = Request(
            buf, m, n, order, tiles=tiles, deadline=deadline, trace_id=trace_id
        )
        # The serve.request span is the trace root: the queue/batcher/worker
        # spans (this process or a worker process) all parent under it via
        # the TraceContext the request carries.
        tr = spans.tracer
        if tr.enabled:
            ctx_cm = tr.activate(TraceContext(trace_id))
            span_cm = tr.span(
                "serve.request", request=request.id, m=m, n=n,
                tiles=tiles, dtype=str(dtype),
            )
        else:
            ctx_cm = span_cm = _NULL_CM
        tenant = self.headers.get("X-Repro-Tenant", "")
        with ctx_cm, span_cm as sp:
            if sp is not None:
                request.parent_span_id = sp.span_id
            try:
                shard_id, admit_depth = app.submit(request, tenant=tenant)
            except QuotaExceededError as exc:
                metrics.registry.inc("serve.rejected_quota")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=trace_id, reason="quota",
                        request=request.id, tenant=tenant,
                    )
                self._reply_error(
                    429, str(exc),
                    {"Retry-After": _retry_after_header(exc.retry_after_s)},
                    kind="quota",
                )
                return
            except QueueFullError as exc:
                metrics.registry.inc("serve.rejected_full")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=trace_id, reason="full",
                        request=request.id,
                    )
                # Computed, not constant: the router annotated the error
                # with depth/drain-rate-derived backoff for the shard that
                # rejected (bounded to [RETRY_AFTER_MIN_S, RETRY_AFTER_MAX_S]).
                retry_s = getattr(exc, "retry_after_s", RETRY_AFTER_MIN_S)
                self._reply_error(
                    429, str(exc),
                    {"Retry-After": _retry_after_header(retry_s)},
                    kind="queue-full",
                )
                return
            except QueueClosedError as exc:
                metrics.registry.inc("serve.rejected_closed")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=trace_id, reason="closed",
                        request=request.id,
                    )
                self._reply_error(503, str(exc))
                return
            if event_log.enabled:
                # admit_depth was observed under the shard queue's lock at
                # admission; re-reading queue.depth here would race with
                # concurrent worker drains and under-report.
                event_log.emit(
                    "admit", trace_id=trace_id, request=request.id,
                    m=m, n=n, tiles=tiles, depth=admit_depth,
                    shard=shard_id,
                )

            try:
                wait_s = app.config.request_timeout_s
                if deadline is not None:
                    # the batcher fails expired requests; the extra slack
                    # covers one in-flight batch ahead of the expiry check
                    wait_s = min(wait_s, deadline - monotonic() + 1.0)
                result = request.wait(timeout=max(wait_s, 0.001))
            except TimeoutError:
                request.cancel()
                self._reply_error(
                    504, "request timed out in the serving layer",
                    kind="serving-timeout",
                )
                return
            except DeadlineExceededError as exc:
                self._reply_error(504, str(exc), kind="client-deadline")
                return
            except Exception as exc:  # noqa: BLE001 — report execution errors
                self._reply_error(500, f"{type(exc).__name__}: {exc}")
                return
            finally:
                app.responded_one()

            shape_headers = {
                "X-Repro-Rows": str(n),
                "X-Repro-Cols": str(m),
                "X-Repro-Dtype": str(dtype),
                "X-Repro-Order": order,
                "X-Repro-Batch": str(tiles),
            }
            if seg_view is not None:
                # Write the transpose back into the client's segment and
                # ack with a descriptor — the matrix bytes never touched
                # the socket in either direction.
                seg_view[:] = np.ascontiguousarray(result).reshape(
                    seg_view.shape
                )
                body = json.dumps({
                    "segment": segment_name, "rows": n, "cols": m,
                    "dtype": str(dtype), "order": order, "tiles": tiles,
                }).encode()
                self._reply(200, body, "application/json", shape_headers)
                return
            # memoryview, not tobytes(): the socket writer consumes the
            # staging row directly, skipping one body-sized copy per response
            self._reply(
                200,
                memoryview(np.ascontiguousarray(result)).cast("B"),
                "application/octet-stream",
                shape_headers,
            )


    # -- POST /transpose-file: server-local streamed transpose ---------------

    def _handle_transpose_file(self, trace_id: str) -> None:
        """Transpose a server-local file in place through the banded
        streaming executor, synchronously in this handler thread.

        Long-running by design — progress is watched through the event
        log (one ``stream`` event per band under this trace id) rather
        than through the response, which arrives once with the stats.
        """
        import os

        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reject_unread_body(400, "Content-Length required")
            return
        if not 2 <= length <= _MAX_JSON_BYTES:
            self._reject_unread_body(400, "body must be a small JSON document")
            return
        try:
            doc = json.loads(self.rfile.read(length))
            path = doc["path"]
            rows = int(doc["rows"])
            cols = int(doc["cols"])
        except (ValueError, KeyError, TypeError):
            self._reply_error(
                400, 'body must be JSON with "path", "rows" and "cols"'
            )
            return
        if not isinstance(path, str) or not path:
            self._reply_error(400, "path must be a non-empty string")
            return
        if rows < 1 or cols < 1:
            self._reply_error(400, "matrix dimensions must be positive")
            return
        try:
            dtype = np.dtype(doc.get("dtype", "float64"))
        except (TypeError, ValueError):
            self._reply_error(400, "unknown dtype")
            return
        if dtype.kind not in "biufc" or dtype.itemsize == 0:
            self._reply_error(400, f"dtype {dtype!s} is not a numeric dtype")
            return
        order = doc.get("order", "C")
        if order not in ("C", "F"):
            self._reply_error(400, "order must be C or F")
            return
        algorithm = doc.get("algorithm", "auto")
        if algorithm not in ("auto", "c2r", "r2c"):
            self._reply_error(400, "algorithm must be auto, c2r or r2c")
            return
        backend = doc.get("backend", "threads")
        if backend not in ("threads", "mp"):
            self._reply_error(400, "backend must be threads or mp")
            return
        from ..stream import parse_bytes, transpose_file_inplace

        try:
            threads = int(doc.get("threads", 1))
            window = doc.get("window_bytes")
            window = None if window is None else parse_bytes(window)
        except (TypeError, ValueError) as exc:
            self._reply_error(400, str(exc))
            return
        if threads < 1:
            self._reply_error(400, "threads must be >= 1")
            return
        try:
            actual = os.stat(path).st_size
        except (FileNotFoundError, NotADirectoryError):
            self._reply_error(404, f"no such file: {path}")
            return
        except OSError as exc:
            self._reply_error(400, str(exc))
            return
        expected = rows * cols * dtype.itemsize
        if actual != expected:
            self._reply_error(
                409,
                f"{path} holds {actual} bytes; {rows}x{cols} {dtype} "
                f"needs {expected}",
                kind="size-mismatch",
            )
            return

        tr = spans.tracer
        ctx_cm = tr.activate(TraceContext(trace_id)) if tr.enabled else _NULL_CM
        if event_log.enabled:
            event_log.emit(
                "stream_file", trace_id=trace_id, phase="start",
                path=path, rows=rows, cols=cols, dtype=str(dtype),
            )
        try:
            with ctx_cm:
                stats = transpose_file_inplace(
                    path, rows, cols, dtype, order,
                    algorithm=algorithm, window_bytes=window,
                    backend=backend, n_threads=threads,
                )
        except Exception as exc:  # noqa: BLE001 — report execution errors
            if event_log.enabled:
                event_log.emit(
                    "stream_file", trace_id=trace_id, phase="error",
                    path=path, error=f"{type(exc).__name__}: {exc}",
                )
            self._reply_error(500, f"{type(exc).__name__}: {exc}")
            return
        metrics.registry.inc("serve.stream_file")
        if event_log.enabled:
            event_log.emit(
                "stream_file", trace_id=trace_id, phase="done",
                path=path, bands=stats["bands"],
                seconds=round(stats["seconds"], 6),
            )
        stats["trace_id"] = trace_id
        body = json.dumps(stats, sort_keys=True).encode()
        self._reply(200, body, "application/json")


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class TransposeServer:
    """The assembled service: shard router + HTTP front.

    With ``ServeConfig.shards == 1`` (the default) this is exactly the
    classic single stack — queue + batcher + worker pool — and the
    ``queue``/``batcher``/``pool`` attributes address it directly.  With
    more shards, each request is consistent-hashed by its
    ``(m, n, order, dtype)`` coalescing key onto one of N independent
    stacks so per-shape plan/kernel cache state stays shard-local
    (serve/router.py).

    Usage::

        server = TransposeServer(ServeConfig(port=0)).start()
        ...                       # serve
        summary = server.shutdown()
        assert summary["dropped"] == 0
    """

    def __init__(self, config: ServeConfig | None = None, *, verbose: bool = False):
        self.config = config or ServeConfig()
        self.verbose = verbose
        self.router = ShardRouter(
            self.config.shards,
            queue_size=self.config.queue_size,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_ms / 1e3,
            workers=self.config.workers,
            worker_mode=self.config.worker_mode,
            mp_start_method=self.config.mp_start_method,
            tenant_rate=self.config.tenant_rate,
            tenant_burst_s=self.config.tenant_burst_s,
            tenant_weights=self.config.tenant_weights or None,
        )
        # Shard-0 aliases: with the default shards=1 these ARE the whole
        # serving stack, and single-shard tests/tools keep poking them
        # directly (srv.queue.submit(...), srv.pool.alive, ...).
        shard0 = self.router.shards[0]
        self.queue = shard0.queue
        self.batcher = shard0.batcher
        self.pool = shard0.pool
        self.slo = SloTracker(
            p99_objective_ms=self.config.slo_p99_ms,
            error_budget=self.config.slo_error_budget,
        )
        self._httpd = _HTTPServer((self.config.host, self.config.port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._state_lock = threading.Lock()
        self.accepted = 0
        self.responded = 0

    # -- request accounting (called from handler threads) ---------------------

    def submit(self, request: Request, *, tenant: str = "") -> tuple[int, int]:
        """Route ``request`` through the shard router; returns
        ``(shard_id, admit_depth)`` where ``admit_depth`` is the shard
        queue's depth captured atomically at admission."""
        shard_id, admit_depth = self.router.submit(request, tenant=tenant)
        reg = metrics.registry
        with self._state_lock:
            self.accepted += 1
        if reg.enabled:
            reg.inc("serve.accepted")
            reg.set_gauge("serve.queue_depth", self.router.depth)
        return shard_id, admit_depth

    def responded_one(self) -> None:
        with self._state_lock:
            self.responded += 1

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "TransposeServer":
        self.router.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def shutdown(self, timeout: float = 30.0) -> dict:
        """Graceful: stop accepting, drain, flush responses, report.

        ``dropped`` counts accepted requests that never produced a
        response — zero unless ``timeout`` expired mid-drain.
        """
        t_end = monotonic() + timeout
        self._httpd.shutdown()  # stop the accept loop (handlers continue)
        pool_summary = self.router.shutdown(
            timeout=max(t_end - monotonic(), 0.1)
        )
        # Handler threads deliver the final responses; wait for them.
        while monotonic() < t_end:
            with self._state_lock:
                if self.responded >= self.accepted:
                    break
            sleep(0.01)
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=1.0)
        with self._state_lock:
            accepted, responded = self.accepted, self.responded
        # Close cached attachments from zero-copy ingress: the client owns
        # the segments; the server must not hold their mappings open.
        shm.detach_all()
        return {
            "accepted": accepted,
            "responded": responded,
            "dropped": accepted - responded,
            "rejected_full": self.router.rejected_full,
            "rejected_closed": self.router.rejected_closed,
            "worker_mode": self.config.worker_mode,
            # Live shared-memory segments after a full drain mean a leak;
            # the CI mp job asserts this is zero after SIGTERM.
            "shm_leaked": len(shm.owned_segments()),
            **pool_summary,
        }

    # -- introspection ---------------------------------------------------------

    def health(self) -> dict:
        # Health scraping drives shard eviction: a started shard whose
        # workers all died is removed from the ring here, with its backlog
        # failed over to the survivors.
        self.router.check_health()
        with self._state_lock:
            accepted, responded = self.accepted, self.responded
        qstats = self.router.queue_stats()
        return {
            "status": "draining" if self.router.closed else "ok",
            "queue_depth": qstats["depth"],
            "queue_maxsize": qstats["maxsize"],
            "pending_batches": self.router.pending,
            "workers_alive": self.router.workers_alive,
            "accepted": accepted,
            "responded": responded,
            "rejected_full": self.router.rejected_full,
            "shards": len(self.router.shards),
            "shards_evicted": len(self.router.evicted),
        }

    def statusz(self) -> dict:
        """One-page JSON operational status (the ``/statusz`` endpoint):
        queue + inflight state, worker health, live SLO judgment, plan-cache
        occupancy, native/fallback counters, and trace/event-log health."""
        self.router.check_health()
        with self._state_lock:
            accepted, responded = self.accepted, self.responded
        snap = metrics.snapshot()
        counters = snap.get("counters", {})
        tr = spans.tracer
        return {
            "status": "draining" if self.router.closed else "ok",
            "queue": self.router.queue_stats(),
            "router": self.router.stats(),
            "inflight": accepted - responded,
            "accepted": accepted,
            "responded": responded,
            "workers": {
                "alive": self.router.workers_alive,
                "mode": self.config.worker_mode,
                "completed": counters.get("serve.completed", 0),
                "retries": counters.get("serve.retries", 0),
                "group_failures": counters.get("serve.group_failures", 0),
            },
            "slo": self.slo.state(),
            "plan_cache": snap.get("plan_cache", {}),
            "native": {
                "calls": counters.get("native.calls", 0),
                "fallback": counters.get("native.fallback", 0),
                "compile": counters.get("native.compile", 0),
                "unsupported": counters.get("native.unsupported", 0),
            },
            "trace": {
                "enabled": tr.enabled,
                "recorded": tr.recorded,
                "dropped_spans": tr.dropped,
                "buffered": len(tr),
            },
            "events": event_log.stats(),
        }

    def render_metrics(self) -> str:
        reg = metrics.registry
        if reg.enabled:
            reg.set_gauge("serve.queue_depth", self.router.depth)
            reg.set_gauge("serve.pending_batches", self.router.pending)
            reg.set_gauge("serve.workers", self.router.workers_alive)
            self.router.publish_gauges()
            with self._state_lock:
                inflight = self.accepted - self.responded
            reg.set_gauge("serve.inflight", inflight)
            slo = self.slo.state()
            reg.set_gauge("slo.p99_objective_ms", slo["p99_objective_ms"])
            reg.set_gauge("slo.burn_rate_max", slo["burn_rate_max"])
            reg.set_gauge("slo.alerting", int(slo["alerting"]))
            for win in slo["windows"]:
                suffix = f"{int(win['window_s'])}s"
                reg.set_gauge(f"slo.burn_rate.{suffix}", win["burn_rate"])
                reg.set_gauge(f"slo.p99_ms.{suffix}", win["p99_ms"])
        return to_prometheus(metrics.snapshot())
