"""Stdlib HTTP front end for the transposition service.

``http.server`` + ``socketserver`` only — the container ships no web
framework, and none is needed: one binary POST endpoint, two text GET
endpoints.

Endpoints
---------
``POST /transpose``
    Body: the raw ``m * n`` elements — or ``k`` same-shape matrices
    stacked back to back with ``X-Repro-Batch: k`` (client-side
    micro-batching: one HTTP round trip, ``k`` kernel tiles).  Headers:
    ``X-Repro-Rows`` (m), ``X-Repro-Cols`` (n), optional ``X-Repro-Dtype``
    (default float64), ``X-Repro-Order`` (C|F, default C) and
    ``X-Repro-Timeout-Ms`` (a per-request deadline).  Response: the
    ``n x m`` transpose(s), raw, with the swapped shape echoed in the
    same headers.  Errors: 400 (bad
    shape/dtype/size), 429 (queue full — admission control), 503
    (shutting down), 504 (deadline exceeded), 500 (execution failure).
``GET /healthz``
    JSON liveness snapshot (queue depth, workers, counters).
``GET /metrics``
    Prometheus 0.0.4 text exposition: everything
    :func:`repro.trace.export.to_prometheus` renders from the runtime
    snapshot, which the serving layer extends with queue-depth/in-flight/
    worker gauges, admission-reject counters, the ``serve.batch_size``
    histogram and ``serve.e2e``/``serve.queue_wait``/``serve.execute``
    latency histograms.

Shutdown is graceful by contract: :meth:`TransposeServer.shutdown` stops
accepting, drains every accepted request through the worker pool, waits
for the in-flight responses to flush, and reports ``dropped`` (accepted
minus responded — zero unless the drain timed out).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, sleep

import numpy as np

from ..runtime import metrics
from ..trace.export import to_prometheus
from .batcher import ShapeBatcher
from .queue import (
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    Request,
    RequestQueue,
)
from .workers import WorkerPool

__all__ = ["ServeConfig", "TransposeServer"]

#: cap on a single request body; a 512 MiB matrix through a Python HTTP
#: stack is a misconfiguration, not a workload
MAX_BODY_BYTES = 512 * 1024 * 1024


@dataclass
class ServeConfig:
    """Tuning knobs for one server instance (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 8077
    workers: int = 2
    queue_size: int = 512
    max_batch: int = 32
    max_wait_ms: float = 2.0
    request_timeout_s: float = 30.0
    #: "thread" executes groups on the worker threads; "process" stages
    #: them through shared memory into worker processes (docs/PARALLEL.md)
    worker_mode: str = "thread"
    #: multiprocessing start method for worker_mode="process"
    #: (None = forkserver where available; REPRO_MP_START overrides)
    mp_start_method: str | None = None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # -- plumbing ------------------------------------------------------------

    @property
    def app(self) -> "TransposeServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.app.verbose:
            super().log_message(format, *args)

    def _reply(
        self, status: int, body, content_type: str, headers: dict | None = None
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _reply_error(
        self,
        status: int,
        message: str,
        headers: dict | None = None,
        *,
        kind: str | None = None,
    ) -> None:
        """JSON error reply; ``kind`` tags ambiguous statuses (the two 504
        flavors: ``client-deadline`` vs ``serving-timeout``)."""
        payload: dict = {"error": message}
        if kind is not None:
            payload["kind"] = kind
        body = json.dumps(payload).encode()
        self._reply(status, body, "application/json", headers)

    def _reject_unread_body(
        self, status: int, message: str, *, kind: str | None = None
    ) -> None:
        """Error reply while request-body bytes are still on the socket.

        Keep-alive would parse those unread bytes as the next request line
        and desync the connection, so force a close with the reply.
        """
        self.close_connection = True
        self._reply_error(status, message, {"Connection": "close"}, kind=kind)

    # -- GET: health + metrics -----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            body = json.dumps(self.app.health(), sort_keys=True).encode()
            self._reply(200, body, "application/json")
        elif self.path == "/metrics":
            text = self.app.render_metrics()
            self._reply(
                200, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
            )
        else:
            self._reply_error(404, f"no such path: {self.path}")

    # -- POST: the work endpoint ---------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path != "/transpose":
            self._reject_unread_body(404, f"no such path: {self.path}")
            return
        app = self.app
        try:
            m = int(self.headers.get("X-Repro-Rows", ""))
            n = int(self.headers.get("X-Repro-Cols", ""))
        except ValueError:
            self._reject_unread_body(
                400, "X-Repro-Rows and X-Repro-Cols must be integers"
            )
            return
        if m < 1 or n < 1:
            self._reject_unread_body(400, "matrix dimensions must be positive")
            return
        try:
            dtype = np.dtype(self.headers.get("X-Repro-Dtype", "float64"))
        except (TypeError, ValueError):
            self._reject_unread_body(400, "unknown X-Repro-Dtype")
            return
        # Numeric fixed-size kinds only.  Anything else — 'object' above
        # all — would let readinto() write wire bytes over PyObject
        # pointers, a remotely triggered interpreter crash.
        if dtype.kind not in "biufc" or dtype.itemsize == 0:
            self._reject_unread_body(
                400, f"X-Repro-Dtype {dtype!s} is not a numeric dtype"
            )
            return
        order = self.headers.get("X-Repro-Order", "C")
        if order not in ("C", "F"):
            self._reject_unread_body(400, "X-Repro-Order must be C or F")
            return
        try:
            tiles = int(self.headers.get("X-Repro-Batch", "1"))
        except ValueError:
            self._reject_unread_body(400, "X-Repro-Batch must be an integer")
            return
        if tiles < 1:
            self._reject_unread_body(400, "X-Repro-Batch must be >= 1")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reject_unread_body(400, "Content-Length required")
            return
        expected = tiles * m * n * dtype.itemsize
        if length != expected:
            self._reject_unread_body(
                400,
                f"body holds {length} bytes; {tiles} x {m}x{n} {dtype} "
                f"needs {expected}",
            )
            return
        if length > MAX_BODY_BYTES:
            self._reject_unread_body(400, f"body exceeds {MAX_BODY_BYTES} bytes")
            return

        deadline = None
        timeout_ms = self.headers.get("X-Repro-Timeout-Ms")
        if timeout_ms is not None:
            try:
                deadline = monotonic() + float(timeout_ms) / 1e3
            except ValueError:
                self._reject_unread_body(
                    400, "X-Repro-Timeout-Ms must be a number"
                )
                return
            if deadline <= monotonic():
                # Already expired at admission: fail fast with the
                # DeadlineExceededError taxonomy instead of enqueueing and
                # burning the +1.0 s batcher slack on a doomed request.
                metrics.registry.inc("serve.expired_at_admission")
                self._reject_unread_body(
                    504,
                    str(DeadlineExceededError(
                        "X-Repro-Timeout-Ms deadline expired before admission"
                    )),
                    kind="client-deadline",
                )
                return

        # Read the body straight into a fresh array: no intermediate bytes
        # object, and the buffer is writeable for the singleton in-place path.
        buf = np.empty(tiles * m * n, dtype=dtype)
        view = memoryview(buf).cast("B")
        got = 0
        while got < length:
            read = self.rfile.readinto(view[got:])
            if not read:
                self._reject_unread_body(
                    400, f"truncated body: {got} of {length} bytes"
                )
                return
            got += read

        request = Request(buf, m, n, order, tiles=tiles, deadline=deadline)
        try:
            app.submit(request)
        except QueueFullError as exc:
            metrics.registry.inc("serve.rejected_full")
            self._reply_error(429, str(exc), {"Retry-After": "1"})
            return
        except QueueClosedError as exc:
            metrics.registry.inc("serve.rejected_closed")
            self._reply_error(503, str(exc))
            return

        try:
            wait_s = app.config.request_timeout_s
            if deadline is not None:
                # the batcher fails expired requests; the extra slack covers
                # one in-flight batch ahead of the expiry check
                wait_s = min(wait_s, deadline - monotonic() + 1.0)
            result = request.wait(timeout=max(wait_s, 0.001))
        except TimeoutError:
            request.cancel()
            self._reply_error(
                504, "request timed out in the serving layer",
                kind="serving-timeout",
            )
            return
        except DeadlineExceededError as exc:
            self._reply_error(504, str(exc), kind="client-deadline")
            return
        except Exception as exc:  # noqa: BLE001 — report execution errors
            self._reply_error(500, f"{type(exc).__name__}: {exc}")
            return
        finally:
            app.responded_one()

        # memoryview, not tobytes(): the socket writer consumes the staging
        # row directly, skipping one body-sized copy per response
        self._reply(
            200,
            memoryview(np.ascontiguousarray(result)).cast("B"),
            "application/octet-stream",
            {
                "X-Repro-Rows": str(n),
                "X-Repro-Cols": str(m),
                "X-Repro-Dtype": str(dtype),
                "X-Repro-Order": order,
                "X-Repro-Batch": str(tiles),
            },
        )


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class TransposeServer:
    """The assembled service: queue + batcher + worker pool + HTTP front.

    Usage::

        server = TransposeServer(ServeConfig(port=0)).start()
        ...                       # serve
        summary = server.shutdown()
        assert summary["dropped"] == 0
    """

    def __init__(self, config: ServeConfig | None = None, *, verbose: bool = False):
        self.config = config or ServeConfig()
        self.verbose = verbose
        self.queue = RequestQueue(maxsize=self.config.queue_size)
        self.batcher = ShapeBatcher(
            self.queue,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_ms / 1e3,
        )
        self.pool = WorkerPool(
            self.batcher,
            self.config.workers,
            mode=self.config.worker_mode,
            start_method=self.config.mp_start_method,
        )
        self._httpd = _HTTPServer((self.config.host, self.config.port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._state_lock = threading.Lock()
        self.accepted = 0
        self.responded = 0

    # -- request accounting (called from handler threads) ---------------------

    def submit(self, request: Request) -> None:
        self.queue.submit(request)
        reg = metrics.registry
        with self._state_lock:
            self.accepted += 1
        if reg.enabled:
            reg.inc("serve.accepted")
            reg.set_gauge("serve.queue_depth", self.queue.depth)

    def responded_one(self) -> None:
        with self._state_lock:
            self.responded += 1

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "TransposeServer":
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def shutdown(self, timeout: float = 30.0) -> dict:
        """Graceful: stop accepting, drain, flush responses, report.

        ``dropped`` counts accepted requests that never produced a
        response — zero unless ``timeout`` expired mid-drain.
        """
        t_end = monotonic() + timeout
        self._httpd.shutdown()  # stop the accept loop (handlers continue)
        pool_summary = self.pool.shutdown(timeout=max(t_end - monotonic(), 0.1))
        # Handler threads deliver the final responses; wait for them.
        while monotonic() < t_end:
            with self._state_lock:
                if self.responded >= self.accepted:
                    break
            sleep(0.01)
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=1.0)
        with self._state_lock:
            accepted, responded = self.accepted, self.responded
        from ..parallel import shm

        return {
            "accepted": accepted,
            "responded": responded,
            "dropped": accepted - responded,
            "rejected_full": self.queue.rejected_full,
            "rejected_closed": self.queue.rejected_closed,
            "worker_mode": self.config.worker_mode,
            # Live shared-memory segments after a full drain mean a leak;
            # the CI mp job asserts this is zero after SIGTERM.
            "shm_leaked": len(shm.owned_segments()),
            **pool_summary,
        }

    # -- introspection ---------------------------------------------------------

    def health(self) -> dict:
        with self._state_lock:
            accepted, responded = self.accepted, self.responded
        return {
            "status": "draining" if self.queue.closed else "ok",
            "queue_depth": self.queue.depth,
            "queue_maxsize": self.queue.maxsize,
            "pending_batches": self.batcher.pending,
            "workers_alive": self.pool.alive,
            "accepted": accepted,
            "responded": responded,
            "rejected_full": self.queue.rejected_full,
        }

    def render_metrics(self) -> str:
        reg = metrics.registry
        if reg.enabled:
            reg.set_gauge("serve.queue_depth", self.queue.depth)
            reg.set_gauge("serve.pending_batches", self.batcher.pending)
            reg.set_gauge("serve.workers", self.pool.alive)
            with self._state_lock:
                inflight = self.accepted - self.responded
            reg.set_gauge("serve.inflight", inflight)
        return to_prometheus(metrics.snapshot())
