"""Bounded request queue with admission control, deadlines and cancellation.

The serving layer is open-loop: clients submit work at whatever rate they
like, so the queue — not the workers — is where overload policy lives.
Three rules, all enforced here:

* **Admission control.**  The queue holds at most ``maxsize`` requests;
  a submit against a full queue raises :class:`QueueFullError` immediately
  (the HTTP front end maps it to ``429 Too Many Requests``) instead of
  letting latency grow without bound.
* **Deadlines.**  A request may carry a deadline (:func:`time.monotonic`
  scale).  Expired requests are never executed — the batcher fails them
  with :class:`DeadlineExceededError` at claim time, so a backed-up queue
  sheds exactly the work nobody is waiting for anymore.
* **Cancellation.**  A pending request can be cancelled by its submitter;
  claim and cancel race through one per-request state machine
  (``PENDING -> CLAIMED -> terminal``), so a request is executed or
  cancelled, never both.

The queue itself stores requests in arrival order and knows nothing about
shapes; coalescing is :mod:`repro.serve.batcher`'s job.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from time import monotonic
from typing import Any

import numpy as np

__all__ = [
    "QueueFullError",
    "QueueClosedError",
    "DeadlineExceededError",
    "RequestCancelledError",
    "Request",
    "RequestQueue",
    "compute_retry_after",
    "PENDING",
    "CLAIMED",
    "DONE",
    "FAILED",
    "CANCELLED",
    "RETRY_AFTER_MIN_S",
    "RETRY_AFTER_MAX_S",
]

#: clamp range for the computed 429 Retry-After (seconds).  The floor keeps
#: clients from hammering a momentarily-full queue; the ceiling keeps a
#: stalled drain from telling clients to go away for minutes.
RETRY_AFTER_MIN_S = 1.0
RETRY_AFTER_MAX_S = 30.0


def compute_retry_after(
    depth: int,
    maxsize: int,
    drain_rate: float,
    *,
    lo: float = RETRY_AFTER_MIN_S,
    hi: float = RETRY_AFTER_MAX_S,
) -> float:
    """Seconds a 429'd client should back off, from live queue state.

    With a measured drain rate the estimate is literal queueing theory:
    ``depth / drain_rate`` is how long the current backlog takes to clear.
    With no drain observed yet (cold start, stalled workers) fall back to
    scaling the clamp range by queue fullness — deeper still means longer.
    Monotonic in ``depth`` either way, clamped to ``[lo, hi]``.
    """
    if drain_rate > 0.0:
        estimate = depth / drain_rate
    else:
        estimate = lo + (hi - lo) * (depth / maxsize if maxsize else 1.0)
    return min(max(estimate, lo), hi)


class QueueFullError(RuntimeError):
    """Admission reject: the queue is at capacity (HTTP 429)."""


class QueueClosedError(RuntimeError):
    """Submit after shutdown began (HTTP 503)."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before execution (HTTP 504)."""


class RequestCancelledError(RuntimeError):
    """The submitter cancelled the request before execution."""


#: request lifecycle states
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_ids = itertools.count(1)


class Request:
    """One transposition request travelling through the serving layer.

    ``buf`` holds ``tiles`` stacked ``m x n`` matrices (``tiles * m * n``
    elements; ``tiles`` is client-side micro-batching — one HTTP round
    trip carrying several same-shape tiles).  It is **never mutated** —
    the worker fulfills the request with a freshly produced transposed
    array (staged through the batch buffer), which keeps a retry after a
    transient failure safe: the input is still intact.

    The submitter blocks in :meth:`wait`; the worker finishes the request
    through exactly one of :meth:`fulfill` / :meth:`fail`.
    """

    __slots__ = (
        "id", "buf", "m", "n", "order", "tiles", "deadline", "t_submit",
        "t_claim", "t_done", "result", "error", "_state", "_lock", "_event",
        "trace_id", "parent_span_id", "admit_depth",
    )

    def __init__(
        self,
        buf: np.ndarray,
        m: int,
        n: int,
        order: str = "C",
        *,
        tiles: int = 1,
        deadline: float | None = None,
        trace_id: str = "",
    ):
        if tiles < 1:
            raise ValueError(f"tiles must be >= 1, got {tiles}")
        self.id = next(_ids)
        self.buf = buf
        self.m = int(m)
        self.n = int(n)
        self.order = order
        self.tiles = int(tiles)
        self.deadline = deadline
        #: distributed-tracing identity: the request's trace id (minted or
        #: propagated by the HTTP front end) and the ``serve.request`` span
        #: it should parent under.  Empty/zero when tracing is off.
        self.trace_id = trace_id
        self.parent_span_id = 0
        #: queue depth observed at admission, *including this request*,
        #: recorded atomically inside RequestQueue.submit.  A post-submit
        #: re-read of ``queue.depth`` races with concurrent drains and
        #: under-reports backpressure; event-log analysis uses this value.
        self.admit_depth = 0
        self.t_submit = 0.0
        self.t_claim = 0.0
        self.t_done = 0.0
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self._state = PENDING
        self._lock = threading.Lock()
        self._event = threading.Event()

    # -- identity ------------------------------------------------------------

    @property
    def shape_key(self) -> tuple[int, int, str, str]:
        """The coalescing identity: same key means same batched plan."""
        return (self.m, self.n, self.order, str(self.buf.dtype))

    @property
    def state(self) -> str:
        return self._state

    @property
    def expired(self) -> bool:
        return self.deadline is not None and monotonic() > self.deadline

    # -- worker side ---------------------------------------------------------

    def claim(self) -> bool:
        """Move PENDING -> CLAIMED; False if cancelled first (or terminal).

        Claiming again while already CLAIMED succeeds — a worker retrying a
        transient group failure re-claims the same requests.
        """
        with self._lock:
            if self._state == PENDING:
                self._state = CLAIMED
                self.t_claim = monotonic()
                return True
            return self._state == CLAIMED

    def fulfill(self, result: np.ndarray) -> None:
        with self._lock:
            if self._state in (DONE, FAILED, CANCELLED):
                return
            self._state = DONE
            self.result = result
            self.t_done = monotonic()
        self._event.set()

    def fail(self, error: BaseException) -> None:
        with self._lock:
            if self._state in (DONE, FAILED, CANCELLED):
                return
            self._state = FAILED
            self.error = error
            self.t_done = monotonic()
        self._event.set()

    # -- submitter side ------------------------------------------------------

    def cancel(self) -> bool:
        """Cancel a still-pending request; False once claimed or finished."""
        with self._lock:
            if self._state != PENDING:
                return False
            self._state = CANCELLED
            self.error = RequestCancelledError(f"request {self.id} cancelled")
            self.t_done = monotonic()
        self._event.set()
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> np.ndarray:
        """Block until terminal; return the transposed array or raise."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self.id} still in flight")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    def __repr__(self) -> str:
        return (
            f"Request(id={self.id}, {self.m}x{self.n} {self.buf.dtype}, "
            f"state={self._state!r})"
        )


class RequestQueue:
    """A bounded FIFO of :class:`Request` with admission control.

    ``submit`` never blocks: a full queue is a client problem (back off and
    retry), not a reason to hold the connection hostage.  Consumers use
    :meth:`get` / :meth:`drain_nowait`; :meth:`close` starts shutdown —
    further submits raise, and ``get`` returns ``None`` once the backlog is
    empty so workers can exit their drain loop.
    """

    #: sliding window (seconds) over which the drain rate is measured
    DRAIN_WINDOW_S = 10.0

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError("queue maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._items: list[Request] = []
        self._cv = threading.Condition()
        self._closed = False
        #: monotonic timestamps of recent pops, for drain_rate(); bounded
        #: so a long-lived queue never grows it without limit
        self._pops: deque[float] = deque(maxlen=4096)
        #: lifetime counters (exported through serve metrics)
        self.submitted = 0
        self.rejected_full = 0
        self.rejected_closed = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        with self._cv:
            return len(self._items)

    def submit(self, request: Request) -> Request:
        """Admit ``request`` or raise (:class:`QueueFullError` /
        :class:`QueueClosedError`).  Returns the request for chaining."""
        with self._cv:
            if self._closed:
                self.rejected_closed += 1
                raise QueueClosedError("queue is closed (server shutting down)")
            if len(self._items) >= self.maxsize:
                self.rejected_full += 1
                raise QueueFullError(
                    f"queue full ({self.maxsize} requests); retry later"
                )
            request.t_submit = monotonic()
            self._items.append(request)
            # Recorded here, under the lock, so the value is exact even
            # when a consumer pops the request before the submitter's next
            # statement runs (the admit-event race this field exists for).
            request.admit_depth = len(self._items)
            self.submitted += 1
            self._cv.notify()
        return request

    def get(self, timeout: float | None = None) -> Request | None:
        """Pop the oldest request, waiting up to ``timeout``.

        Returns ``None`` on timeout, or immediately once the queue is both
        closed and empty (the drain-complete signal).
        """
        deadline = None if timeout is None else monotonic() + timeout
        with self._cv:
            while not self._items:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cv.wait(remaining)
            item = self._items.pop(0)
            self._pops.append(monotonic())
            return item

    def drain_nowait(self, max_items: int | None = None) -> list[Request]:
        """Pop everything currently queued (up to ``max_items``), no wait."""
        with self._cv:
            if max_items is None or max_items >= len(self._items):
                out, self._items = self._items, []
            else:
                out = self._items[:max_items]
                del self._items[:max_items]
            if out:
                now = monotonic()
                self._pops.extend([now] * len(out))
            return out

    # -- backpressure estimation ---------------------------------------------

    def drain_rate(self, now: float | None = None) -> float:
        """Requests consumed per second over the recent sliding window.

        0.0 until the first pop lands inside the window — callers treat
        that as "no drain observed" and fall back to depth-proportional
        backoff (:func:`compute_retry_after`).
        """
        ts = monotonic() if now is None else now
        cutoff = ts - self.DRAIN_WINDOW_S
        with self._cv:
            recent = sum(1 for t in self._pops if t >= cutoff)
        return recent / self.DRAIN_WINDOW_S

    def retry_after_s(self, now: float | None = None) -> float:
        """Computed 429 backoff for this queue's current state."""
        return compute_retry_after(self.depth, self.maxsize, self.drain_rate(now))

    def close(self) -> None:
        """Refuse new submits; wake every waiting consumer.

        Queued requests stay queued — shutdown *drains* them ("drain, don't
        drop"); :class:`~repro.serve.workers.WorkerPool` keeps consuming
        until :meth:`get` returns ``None``.
        """
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def stats(self) -> dict[str, Any]:
        with self._cv:
            return {
                "depth": len(self._items),
                "maxsize": self.maxsize,
                "closed": self._closed,
                "submitted": self.submitted,
                "rejected_full": self.rejected_full,
                "rejected_closed": self.rejected_closed,
            }

    def __len__(self) -> int:
        return self.depth
