"""Transposition serving layer (see docs/SERVING.md).

Turns the kernel library into a service: a bounded request queue with
admission control (:mod:`~repro.serve.queue`), a shape/dtype-coalescing
batcher that amortizes plans across same-shape requests
(:mod:`~repro.serve.batcher`), a draining worker pool
(:mod:`~repro.serve.workers`), a consistent-hash shard router with
per-tenant quotas and failover (:mod:`~repro.serve.router`), a stdlib
HTTP front end (:mod:`~repro.serve.server`) and an open-loop load
generator (:mod:`~repro.serve.loadgen`).  ``repro serve`` /
``repro loadtest`` are the CLI entry points.
"""

from .batcher import Group, ShapeBatcher
from .queue import (
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    Request,
    RequestCancelledError,
    RequestQueue,
    compute_retry_after,
)
from .router import (
    HashRing,
    QuotaExceededError,
    Shard,
    ShardRouter,
    TenantQuotas,
    TokenBucket,
)
from .server import ServeConfig, TransposeServer
from .workers import WorkerPool

__all__ = [
    "Request",
    "RequestQueue",
    "QueueFullError",
    "QueueClosedError",
    "DeadlineExceededError",
    "RequestCancelledError",
    "compute_retry_after",
    "Group",
    "ShapeBatcher",
    "WorkerPool",
    "HashRing",
    "TokenBucket",
    "TenantQuotas",
    "QuotaExceededError",
    "Shard",
    "ShardRouter",
    "ServeConfig",
    "TransposeServer",
]
