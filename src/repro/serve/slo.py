"""Sliding-window SLO tracking with multi-window burn-rate alerts.

The server owns one :class:`SloTracker` and feeds it every ``/transpose``
response (latency + ok/error).  The tracker judges two objectives over
sliding time windows:

* **latency** — windowed p99 must stay under ``p99_objective_ms``;
* **availability** — the windowed error rate, expressed as a *burn rate*
  (error_rate / error_budget), must stay under ``alert_burn_rate``.

A burn rate of 1.0 means the service is consuming its error budget
exactly as fast as the budget allows; 2.0 means twice as fast.  Following
the standard multiwindow pattern, :meth:`state` reports ``alerting`` only
when the burn rate exceeds the threshold in **all** configured windows
that have samples — the short window makes the alert reset quickly once
the problem stops, the long window keeps one bad request from paging.

Everything here is stdlib-only and O(window) per :meth:`state` call; the
observation path is an append under a lock.  Samples live in a bounded
deque, so a tracker on a busy server holds at most ``capacity`` points
(oldest evicted first — with the default 65536 and the windows we use,
eviction only matters above ~100 req/s sustained for the full long
window, at which point the long window degrades gracefully to "the most
recent N samples").
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["SloTracker", "nearest_rank", "DEFAULT_WINDOWS"]

#: (short, long) alert windows in seconds — 1 min / 10 min.
DEFAULT_WINDOWS = (60.0, 600.0)


def nearest_rank(values: list, pct: float) -> float:
    """Percentile by the nearest-rank method on a sorted copy (0.0 when
    empty).

    This is THE percentile definition of the serving layer: ``/statusz``
    (this module) and the loadtest report (:mod:`repro.serve.loadgen`)
    both use it, so the two can never disagree on the same samples —
    interpolated percentiles (``np.percentile`` default) invent values
    that no request actually experienced and previously made the loadgen
    p99 drift below the SLO tracker's on identical traffic.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    return float(ordered[int(pct / 100.0 * (len(ordered) - 1))])


def _p99(latencies_ms: list) -> float:
    """p99 by the shared nearest-rank definition (0.0 when empty)."""
    return nearest_rank(latencies_ms, 99.0)


class SloTracker:
    """Rolling latency/error observations judged against SLO objectives."""

    def __init__(self, *, p99_objective_ms: float = 50.0,
                 error_budget: float = 0.01,
                 windows: tuple = DEFAULT_WINDOWS,
                 alert_burn_rate: float = 2.0,
                 capacity: int = 65536):
        if not windows:
            raise ValueError("need at least one window")
        if error_budget <= 0.0:
            raise ValueError("error_budget must be positive")
        self.p99_objective_ms = float(p99_objective_ms)
        self.error_budget = float(error_budget)
        self.windows = tuple(sorted(float(w) for w in windows))
        self.alert_burn_rate = float(alert_burn_rate)
        self._lock = threading.Lock()
        # (monotonic_ts, latency_ms, ok) triples, oldest first
        self._samples: deque = deque(maxlen=capacity)
        self.total_observed = 0
        self.total_errors = 0

    def observe(self, latency_s: float, ok: bool = True,
                now: float | None = None) -> None:
        """Record one completed request.  ``now`` overrides the clock so
        tests can replay a schedule deterministically."""
        ts = time.monotonic() if now is None else now
        with self._lock:
            self._samples.append((ts, latency_s * 1e3, ok))
            self.total_observed += 1
            if not ok:
                self.total_errors += 1

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self.total_observed = 0
            self.total_errors = 0

    def state(self, now: float | None = None) -> dict:
        """Judge every window and return the full SLO state as a dict
        (JSON-safe; rendered verbatim into ``/statusz``)."""
        ts = time.monotonic() if now is None else now
        with self._lock:
            samples = list(self._samples)
            total_observed = self.total_observed
            total_errors = self.total_errors

        win_states = []
        burn_rates = []
        for window_s in self.windows:
            cutoff = ts - window_s
            lat = []
            errors = 0
            # samples are time-ordered; scan from the newest end and stop
            # at the first point older than the window.
            for sts, lms, ok in reversed(samples):
                if sts < cutoff:
                    break
                lat.append(lms)
                if not ok:
                    errors += 1
            n = len(lat)
            error_rate = (errors / n) if n else 0.0
            burn = error_rate / self.error_budget
            p99 = _p99(lat)
            if n:
                burn_rates.append(burn)
            win_states.append({
                "window_s": window_s,
                "samples": n,
                "errors": errors,
                "error_rate": error_rate,
                "burn_rate": burn,
                "p99_ms": p99,
                "p99_ok": p99 <= self.p99_objective_ms,
            })

        alerting = bool(burn_rates) and all(
            b > self.alert_burn_rate for b in burn_rates
        )
        return {
            "p99_objective_ms": self.p99_objective_ms,
            "error_budget": self.error_budget,
            "alert_burn_rate": self.alert_burn_rate,
            "total_observed": total_observed,
            "total_errors": total_errors,
            "windows": win_states,
            "burn_rate_max": max(burn_rates) if burn_rates else 0.0,
            "alerting": alerting,
        }
