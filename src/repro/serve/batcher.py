"""Shape/dtype-coalescing batcher: queue order in, batched plans out.

The paper's batched ASTA formulation (Section 5, ``repro.core.batched``)
makes the index maps shape-properties, not request-properties: every
request with the same ``(m, n, order, dtype)`` can ride through one
:class:`~repro.core.batched.BatchedTransposePlan` execution, with the
batch dimension free.  The batcher is the piece that turns an arrival
stream into those groups:

* requests drain from the :class:`~repro.serve.queue.RequestQueue` into
  per-shape **lanes**;
* a lane dispatches when it reaches ``max_batch`` tiles (a request may
  carry several client-side-batched tiles), when its oldest request has
  waited ``max_wait_s`` (bounded added latency), or immediately once the
  queue closes (shutdown flushes, never drops);
* a dispatched group executes through the process-wide plan cache —
  ``>= 2`` tiles stage into one contiguous ``(tiles, m*n)`` buffer and
  run ``batched_transpose_inplace``; a straggler of one falls back to the
  cached singleton :class:`~repro.core.plan.TransposePlan`.

Request buffers are never mutated: results are produced in the staging
buffer (or a singleton copy), so a transient execution failure can be
retried by the worker with the inputs intact.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from time import monotonic, perf_counter

import numpy as np

from ..core.batched import batched_transpose_inplace, validate_batch_member
from ..runtime import metrics, plan_cache
from ..trace import spans
from ..trace.events import event_log
from ..trace.spans import TraceContext
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    DeadlineExceededError,
    Request,
    RequestQueue,
)

__all__ = ["Group", "ShapeBatcher", "BATCH_SIZE_BOUNDS"]

#: bucket bounds for the ``serve.batch_size`` value histogram (counts, not
#: latencies — powers of two up to the largest sane max_batch)
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()


class Group:
    """One dispatchable batch: same-shape requests claimed together."""

    __slots__ = ("key", "requests")

    def __init__(self, key: tuple, requests: list[Request]):
        self.key = key
        self.requests = requests

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def tiles(self) -> int:
        """Total matrices across the group (requests may carry several)."""
        return sum(r.tiles for r in self.requests)

    def fail_pending(self, error: BaseException) -> None:
        """Fail every request that has not reached a terminal state."""
        for r in self.requests:
            r.fail(error)

    def __repr__(self) -> str:
        m, n, order, dtype = self.key
        return (
            f"Group({m}x{n} {dtype}, k={len(self.requests)}, "
            f"tiles={self.tiles})"
        )


class ShapeBatcher:
    """Drains a :class:`RequestQueue` into same-shape groups and runs them.

    Thread-safe: any number of workers may call :meth:`next_group` /
    :meth:`execute_group` concurrently; the lanes are guarded by one lock
    and blocking waits happen against the queue, outside it.
    """

    def __init__(
        self,
        queue: RequestQueue,
        *,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._lock = threading.Lock()
        #: shape key -> FIFO of pending requests (arrival order preserved)
        self._lanes: dict[tuple, list[Request]] = {}

    # -- lane bookkeeping ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests held in lanes (drained from the queue, not yet grouped)."""
        with self._lock:
            return sum(len(v) for v in self._lanes.values())

    def _add(self, request: Request) -> None:
        with self._lock:
            self._lanes.setdefault(request.shape_key, []).append(request)

    def drain_lanes(self) -> list[Request]:
        """Pop every request currently held in lanes, arrival order per lane.

        Used by shard eviction (:mod:`repro.serve.router`): a dead shard's
        workers will never dispatch its lanes, so the router reclaims the
        requests and resubmits them to surviving shards — the "no request
        loss" half of failover.
        """
        with self._lock:
            out = [r for lane in self._lanes.values() for r in lane]
            self._lanes.clear()
            return out

    def _pop_group(self, *, flush: bool) -> Group | None:
        """Pop a dispatchable group under the lane lock.

        Preference order: a full lane, then (or with ``flush``/timeout) the
        lane whose oldest request has waited longest.
        """
        now = monotonic()
        with self._lock:
            best_key = None
            best_age = -1.0
            for key, lane in self._lanes.items():
                if sum(r.tiles for r in lane) >= self.max_batch:
                    best_key = key
                    break
                age = now - lane[0].t_submit
                if age > best_age:
                    best_key, best_age = key, age
            if best_key is None:
                return None
            lane = self._lanes[best_key]
            ripe = (
                sum(r.tiles for r in lane) >= self.max_batch
                or flush
                or (now - lane[0].t_submit) >= self.max_wait_s
            )
            if not ripe:
                return None
            # Take whole requests until the tile budget is met (always at
            # least one, even if a single request exceeds max_batch alone).
            taken_n, tiles = 0, 0
            for r in lane:
                taken_n += 1
                tiles += r.tiles
                if tiles >= self.max_batch:
                    break
            taken = lane[:taken_n]
            del lane[:taken_n]
            if not lane:
                del self._lanes[best_key]
            return Group(best_key, taken)

    def _next_lane_ripeness(self) -> float | None:
        """Monotonic time at which the oldest lane becomes age-ripe."""
        with self._lock:
            t = None
            for lane in self._lanes.values():
                ripe_at = lane[0].t_submit + self.max_wait_s
                if t is None or ripe_at < t:
                    t = ripe_at
            return t

    # -- the drain loop ------------------------------------------------------

    def next_group(self, timeout: float = 0.1) -> Group | None:
        """Block up to ``timeout`` for the next dispatchable group.

        Returns ``None`` when nothing became ripe in time (callers loop);
        once the queue is closed, remaining lanes flush immediately
        regardless of ripeness so shutdown drains at full speed.
        """
        t_end = monotonic() + timeout
        while True:
            for r in self.queue.drain_nowait(max_items=self.max_batch):
                self._add(r)
            group = self._pop_group(flush=self.queue.closed)
            if group is not None:
                self._emit_coalesce(group)
                return group
            if self.queue.closed:
                # Closed and no group: lanes are empty (a closed queue
                # flushes any lane above), so only the backlog remains —
                # get() returns None instantly once it too is empty.
                item = self.queue.get(timeout=0)
                if item is None:
                    return None
                self._add(item)
                continue
            now = monotonic()
            ripe_at = self._next_lane_ripeness()
            wait_until = t_end if ripe_at is None else min(ripe_at, t_end)
            if wait_until <= now:
                if ripe_at is not None and ripe_at <= now:
                    continue  # became age-ripe since _pop_group looked
                return None
            item = self.queue.get(timeout=wait_until - now)
            if item is not None:
                self._add(item)

    @staticmethod
    def _emit_coalesce(group: Group) -> None:
        """Event-log the formed group under its lead request's trace."""
        if event_log.enabled:
            m, n, _order, dtype = group.key
            event_log.emit(
                "coalesce", trace_id=group.requests[0].trace_id,
                m=m, n=n, dtype=dtype,
                requests=len(group.requests), tiles=group.tiles,
            )

    # -- execution -----------------------------------------------------------

    def execute_group(self, group: Group, host=None) -> int:
        """Claim, validate and execute one group; returns requests served.

        Expired requests fail with :class:`DeadlineExceededError`, cancelled
        ones are skipped, and per-request buffer problems (contiguity /
        dtype mismatch) fail that request alone with the
        :func:`~repro.core.batched.validate_batch_member` error.  Raises
        only on execution failure — with every live request still
        unfulfilled and every input buffer intact, so the caller may retry.

        ``host`` (a :class:`~repro.parallel.mp.ProcessWorkerHost`) routes
        execution to a worker process over shared-memory staging instead of
        running the kernel on this thread; the retry contract is identical
        (inputs are only read, nothing fulfills until the kernel returned).
        """
        m, n, order, dtype_str = group.key
        dtype = np.dtype(dtype_str)
        reg = metrics.registry
        live: list[Request] = []
        for r in group.requests:
            if r.state in (DONE, FAILED, CANCELLED):
                # Terminal from a previous attempt of this group (worker
                # retry path): its counter was recorded on the first
                # transition — re-counting would skew the serving metrics.
                continue
            if r.expired:
                r.fail(DeadlineExceededError(
                    f"request {r.id} missed its deadline while queued"
                ))
                reg.inc("serve.expired")
                if event_log.enabled:
                    event_log.emit(
                        "expired", trace_id=r.trace_id, request=r.id,
                    )
                continue
            if not r.claim():  # cancelled (or already terminal): skip
                reg.inc("serve.skipped_cancelled")
                continue
            try:
                validate_batch_member(
                    r.buf, m, n, dtype, count=r.tiles, require_writeable=False
                )
            except ValueError as exc:
                r.fail(exc)
                reg.inc("serve.rejected_invalid")
                if event_log.enabled:
                    event_log.emit(
                        "reject", trace_id=r.trace_id, request=r.id,
                        reason="invalid", error=str(exc),
                    )
                continue
            live.append(r)
        if not live:
            return 0

        k = len(live)
        tiles = sum(r.tiles for r in live)
        tr = spans.tracer
        # The group executes under the *lead* (first-queued) request's trace
        # context so its spans parent under that request's serve.request
        # span; every coalesced request's id rides along in the span's
        # trace_ids attribute for per-request lookup (filter_trace).
        trace_id = live[0].trace_id
        if event_log.enabled:
            event_log.emit(
                "dispatch", trace_id=trace_id,
                mode=("process" if host is not None
                      else "single" if tiles == 1 else "batch"),
                m=m, n=n, requests=k, tiles=tiles,
            )
        if tr.enabled:
            ctx_cm = tr.activate(TraceContext(trace_id, live[0].parent_span_id))
            trace_ids = [r.trace_id for r in live]
        else:
            ctx_cm = _NULL_CM
            trace_ids = ()
        t0 = perf_counter()
        with ctx_cm:
            if host is not None:
                with tr.span(
                    "serve.execute.process", m=m, n=n, batch=tiles,
                    dtype=dtype_str, requests=k, trace_ids=trace_ids,
                ) if tr.enabled else _NULL_CM as sp:
                    self._execute_process(
                        host, live, m, n, order, dtype,
                        span=sp, trace_id=trace_id,
                    )
                reg.inc("serve.batches")
            elif tiles == 1:
                with tr.span(
                    "serve.execute.single", m=m, n=n, dtype=dtype_str,
                    trace_ids=trace_ids,
                ) if tr.enabled else _NULL_CM:
                    self._execute_single(live[0], m, n, order, dtype)
                reg.inc("serve.singleton_fallbacks")
            else:
                with tr.span(
                    "serve.execute.batch", m=m, n=n, batch=tiles,
                    dtype=dtype_str, requests=k, trace_ids=trace_ids,
                ) if tr.enabled else _NULL_CM:
                    self._execute_batch(live, m, n, order, dtype)
                reg.inc("serve.batches")
        dt = perf_counter() - t0
        if reg.enabled:
            reg.observe("serve.execute", dt)
            reg.observe_value("serve.batch_size", tiles, BATCH_SIZE_BOUNDS)
            now = monotonic()
            for r in live:
                reg.observe("serve.queue_wait", r.t_claim - r.t_submit)
                reg.observe("serve.e2e", now - r.t_submit)
            reg.inc("serve.completed", k)
        return k

    @staticmethod
    def _execute_single(
        r: Request, m: int, n: int, order: str, dtype: np.dtype
    ) -> None:
        out = np.array(r.buf, dtype=dtype).reshape(-1)
        plan = plan_cache.get_single_plan(m, n, order, "auto", dtype)
        plan.execute(out)
        r.fulfill(out)

    @staticmethod
    def _execute_batch(
        live: list[Request], m: int, n: int, order: str, dtype: np.dtype
    ) -> None:
        mn = m * n
        tiles = sum(r.tiles for r in live)
        staging = np.empty((tiles, mn), dtype=dtype)
        off = 0
        for r in live:
            staging[off:off + r.tiles] = r.buf.reshape(r.tiles, mn)
            off += r.tiles
        batched_transpose_inplace(staging, m, n, order)
        # Fulfill only after the whole batch succeeded: each result is a
        # row (or row-span) view of the shared staging buffer — no
        # copy-out pass.
        off = 0
        for r in live:
            if r.tiles == 1:
                r.fulfill(staging[off])
            else:
                r.fulfill(staging[off:off + r.tiles].reshape(-1))
            off += r.tiles

    @staticmethod
    def _execute_process(
        host, live: list[Request], m: int, n: int, order: str, dtype: np.dtype,
        *, span=None, trace_id: str = "",
    ) -> None:
        """Stage the group into shared memory, run it in a worker process,
        copy the results out and merge the worker's metrics.

        When tracing, the worker receives a (trace_id, parent span id)
        descriptor, records its own spans, and ships them back inside the
        metrics snapshot; they are spliced into this process's ring here —
        parented under ``span`` — before the snapshot merges.

        Retry contract preserved: request buffers are only read, the
        segment is destroyed on every path, and nothing fulfills unless
        the worker returned success — a crash
        (:class:`~repro.parallel.mp.WorkerCrashedError`) or kernel error
        leaves every live request claimable with inputs intact.
        """
        from ..parallel.shm import SharedArray

        mn = m * n
        tiles = sum(r.tiles for r in live)
        seg = SharedArray((tiles, mn), dtype)
        try:
            off = 0
            for r in live:
                seg.array[off:off + r.tiles] = r.buf.reshape(r.tiles, mn)
                off += r.tiles
            trace = (
                (trace_id, span.span_id)
                if span is not None and trace_id else None
            )
            worker_snap = host.execute(
                seg.name, m, n, order, str(dtype), tiles, trace=trace
            )
            # Copy out before destroy: fulfilled views must not point into
            # a segment whose mapping is about to be torn down.
            out = seg.array.copy()
        finally:
            seg.destroy()
        if worker_snap:
            wire = worker_snap.pop("spans", None)
            worker_snap.pop("pid", None)
            metrics.registry.merge_snapshot(worker_snap)
            if wire and span is not None:
                spans.tracer.splice(
                    wire, parent_id=span.span_id, trace_id=trace_id
                )
        off = 0
        for r in live:
            if r.tiles == 1:
                r.fulfill(out[off])
            else:
                r.fulfill(out[off:off + r.tiles].reshape(-1))
            off += r.tiles
