"""Sharded serving tier: consistent-hash shape-affinity routing.

The paper's decomposition makes every transposition embarrassingly
parallel *within* an operation; this module applies the same move one
level up, across operations — the way the FPGA exemplar scales throughput
by feeding more independent memory banks.  A :class:`ShardRouter` fronts
``N`` independent serve shards, each a complete
queue + batcher + worker-pool stack
(:class:`~repro.serve.queue.RequestQueue`,
:class:`~repro.serve.batcher.ShapeBatcher`,
:class:`~repro.serve.workers.WorkerPool`), and routes every request by
consistent-hashing its coalescing identity ``(m, n, order, dtype)`` onto
the ring:

* **Shape affinity.**  All requests for one shape land on one shard, so
  that shard's slice of the process-wide plan/kernel cache stays hot for
  its shape slice and coalesced batches never fragment across shards —
  the router preserves exactly the batching invariant the batcher exists
  to exploit.
* **Stability.**  The ring hashes each shard through ``VNODES`` virtual
  points, so adding or removing one shard of ``N`` remaps only ``~1/N``
  of the key space; every other shape keeps its warm shard.
* **Failover without request loss.**  A shard whose workers have all died
  is *evicted*: removed from the ring, its queue closed, and everything
  it still held (queue backlog + batcher lanes) resubmitted to the
  surviving shards.  Health checks are driven by the ``/healthz`` and
  ``/statusz`` endpoints — scraping the server is what trips eviction.
* **Per-tenant quotas + weighted admission.**  An optional token bucket
  per tenant (``X-Repro-Tenant``), refilled at
  ``tenant_rate x weight(tenant)`` matrices/s, rejects over-quota
  traffic with a *computed* retry delay (`QuotaExceededError.retry_after_s`)
  before it can crowd a shard's queue; a full shard queue likewise
  rejects with a backoff derived from that queue's depth and recent
  drain rate (:func:`~repro.serve.queue.compute_retry_after`).

Everything here is stdlib + the existing serve primitives; the HTTP front
end (:mod:`repro.serve.server`) owns exactly one router and delegates
submit/health/shutdown to it.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from time import monotonic

from ..runtime import metrics
from ..trace import spans
from ..trace.events import event_log
from .batcher import ShapeBatcher
from .queue import QueueClosedError, QueueFullError, Request, RequestQueue
from .workers import WorkerPool

__all__ = [
    "QuotaExceededError",
    "TokenBucket",
    "TenantQuotas",
    "HashRing",
    "Shard",
    "ShardRouter",
    "VNODES",
]

#: virtual points per shard on the hash ring.  128 keeps the key-space
#: split within a few percent of uniform for any realistic shard count
#: while the ring stays small enough to rebuild on every membership change.
VNODES = 128


class QuotaExceededError(RuntimeError):
    """Per-tenant admission reject (HTTP 429, ``kind="quota"``).

    ``retry_after_s`` is the computed time until the tenant's token bucket
    holds enough tokens for the rejected request — the honest backoff, not
    a constant.
    """

    def __init__(self, message: str, *, tenant: str, retry_after_s: float):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    Not thread-safe on its own — :class:`TenantQuotas` serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "t_last")

    def __init__(self, rate: float, burst: float, now: float | None = None):
        if rate <= 0:
            raise ValueError("token rate must be positive")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self.tokens = self.burst
        self.t_last = monotonic() if now is None else now

    def take(self, cost: float, now: float | None = None) -> float:
        """Try to spend ``cost`` tokens.  Returns 0.0 on success, else the
        seconds until the bucket will hold ``cost`` tokens (nothing is
        spent on failure)."""
        ts = monotonic() if now is None else now
        self.tokens = min(self.burst, self.tokens + (ts - self.t_last) * self.rate)
        self.t_last = ts
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


class TenantQuotas:
    """Weighted per-tenant token buckets with lazy creation.

    ``rate`` is matrices/s for a weight-1.0 tenant; a tenant's bucket
    refills at ``rate x weight`` (weights default to 1.0), which is the
    weighted-admission policy: capacity shares follow configured weights,
    and the 429 a tenant sees when over its share carries the computed
    time until its own bucket recovers.  ``rate=None`` disables quotas.
    """

    def __init__(
        self,
        rate: float | None = None,
        *,
        burst_s: float = 2.0,
        weights: dict[str, float] | None = None,
    ):
        self.rate = None if rate is None else float(rate)
        if self.rate is not None and self.rate <= 0:
            raise ValueError("tenant rate must be positive (or None to disable)")
        #: burst capacity expressed in seconds of refill
        self.burst_s = float(burst_s)
        self.weights = dict(weights or {})
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        #: lifetime admission-reject count per tenant
        self.rejected: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def weight(self, tenant: str) -> float:
        return float(self.weights.get(tenant, 1.0))

    def admit(self, tenant: str, cost: float, now: float | None = None) -> None:
        """Spend ``cost`` tokens from ``tenant``'s bucket or raise
        :class:`QuotaExceededError` with the computed backoff."""
        if self.rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                tenant_rate = self.rate * self.weight(tenant)
                bucket = self._buckets[tenant] = TokenBucket(
                    tenant_rate, tenant_rate * self.burst_s, now
                )
            wait = bucket.take(cost, now)
            if wait > 0.0:
                self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
                raise QuotaExceededError(
                    f"tenant {tenant or '<default>'} over quota "
                    f"({bucket.rate:.1f} matrices/s); retry in {wait:.2f}s",
                    tenant=tenant,
                    retry_after_s=wait,
                )

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.rate is not None,
                "rate": self.rate,
                "burst_s": self.burst_s,
                "tenants": {
                    t: {
                        "rate": b.rate,
                        "tokens": round(b.tokens, 3),
                        "rejected": self.rejected.get(t, 0),
                    }
                    for t, b in self._buckets.items()
                },
            }


def _hash64(data: str) -> int:
    """Stable 64-bit point for ring placement and key lookup."""
    return int.from_bytes(
        hashlib.blake2b(data.encode(), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over shard ids with virtual nodes.

    Membership changes move only the keys whose arc changed hands:
    adding one shard to ``N`` claims ``~1/(N+1)`` of the space, removing
    one releases exactly its own arcs.  Lookup is a binary search.
    """

    def __init__(self, shard_ids=(), *, vnodes: int = VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: list[tuple[int, int]] = []  # (hash, shard_id), sorted
        self._hashes: list[int] = []
        self._members: set[int] = set()
        for sid in shard_ids:
            self.add(sid)

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def add(self, shard_id: int) -> None:
        if shard_id in self._members:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._members.add(shard_id)
        for v in range(self.vnodes):
            self._points.append((_hash64(f"shard-{shard_id}:vnode-{v}"), shard_id))
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def remove(self, shard_id: int) -> None:
        if shard_id not in self._members:
            raise ValueError(f"shard {shard_id} not on the ring")
        self._members.discard(shard_id)
        self._points = [(h, s) for h, s in self._points if s != shard_id]
        self._hashes = [h for h, _ in self._points]

    def lookup(self, key: tuple) -> int:
        """Shard id owning ``key`` (the first ring point at or after the
        key's hash, wrapping)."""
        if not self._points:
            raise LookupError("hash ring is empty (no shards)")
        h = _hash64(repr(key))
        i = bisect_right(self._hashes, h)
        if i == len(self._points):
            i = 0
        return self._points[i][1]


class Shard:
    """One independent serve stack: queue + batcher + worker pool.

    A shard is the unit of affinity (the router sends a whole shape slice
    here), of health (its workers live or die together) and of eviction.
    """

    def __init__(
        self,
        sid: int,
        *,
        queue_size: int,
        max_batch: int,
        max_wait_s: float,
        workers: int,
        worker_mode: str = "thread",
        mp_start_method: str | None = None,
    ):
        self.sid = sid
        self.queue = RequestQueue(maxsize=queue_size)
        self.batcher = ShapeBatcher(
            self.queue, max_batch=max_batch, max_wait_s=max_wait_s
        )
        self.pool = WorkerPool(
            self.batcher,
            workers,
            mode=worker_mode,
            start_method=mp_start_method,
            name_prefix=f"repro-serve-s{sid}-worker",
        )
        self.started = False
        #: routing counters: requests sent here, and how many hit a shape
        #: this shard had already seen (the plan/kernel-cache affinity
        #: proxy the loadtest gates on)
        self.routed = 0
        self.affinity_hits = 0
        self.shapes_seen: set[tuple] = set()

    @property
    def healthy(self) -> bool:
        """A started shard is healthy while any worker thread is alive."""
        if not self.started:
            return True
        return self.pool.alive > 0

    @property
    def affinity_rate(self) -> float:
        return self.affinity_hits / self.routed if self.routed else 0.0

    def start(self) -> "Shard":
        self.pool.start()
        self.started = True
        return self

    def stats(self) -> dict:
        return {
            "sid": self.sid,
            "depth": self.queue.depth,
            "maxsize": self.queue.maxsize,
            "closed": self.queue.closed,
            "pending": self.batcher.pending,
            "workers_alive": self.pool.alive,
            "healthy": self.healthy,
            "routed": self.routed,
            "affinity_hits": self.affinity_hits,
            "affinity_rate": round(self.affinity_rate, 4),
            "shapes": len(self.shapes_seen),
            "rejected_full": self.queue.rejected_full,
            "drain_rate": round(self.queue.drain_rate(), 3),
        }


class ShardRouter:
    """Consistent-hash front end over ``N`` :class:`Shard` stacks.

    The router owns shard lifecycle (start/evict/shutdown), per-tenant
    quotas, and the routing decision; it does **not** own HTTP or request
    accounting — that stays in :class:`~repro.serve.server.TransposeServer`.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        queue_size: int = 512,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        workers: int = 2,
        worker_mode: str = "thread",
        mp_start_method: str | None = None,
        tenant_rate: float | None = None,
        tenant_burst_s: float = 2.0,
        tenant_weights: dict[str, float] | None = None,
        vnodes: int = VNODES,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = int(n_shards)
        # Total queue capacity stays ~queue_size regardless of the shard
        # count, so sharding never silently multiplies admitted backlog.
        per_shard_queue = max(1, queue_size // self.n_shards)
        self._lock = threading.Lock()
        self.shards: dict[int, Shard] = {
            sid: Shard(
                sid,
                queue_size=per_shard_queue,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                workers=workers,
                worker_mode=worker_mode,
                mp_start_method=mp_start_method,
            )
            for sid in range(self.n_shards)
        }
        #: shards removed by eviction, kept for lifetime counters
        self.evicted: dict[int, Shard] = {}
        self.ring = HashRing(self.shards, vnodes=vnodes)
        self.quotas = TenantQuotas(
            tenant_rate, burst_s=tenant_burst_s, weights=tenant_weights
        )
        #: requests moved off a dead shard by failover (lifetime)
        self.failover_resubmitted = 0
        self.failover_failed = 0

    # -- routing -------------------------------------------------------------

    def shard_for_key(self, key: tuple) -> int:
        """Shard id the ring assigns to a coalescing key
        ``(m, n, order, dtype)`` — exposed for tests and workload tools."""
        with self._lock:
            return self.ring.lookup(key)

    def submit(self, request: Request, *, tenant: str = "") -> tuple[int, int]:
        """Admit ``request``: quota check, ring lookup, shard enqueue.

        Returns ``(shard_id, admit_depth)`` where ``admit_depth`` is the
        shard queue's depth observed atomically at admission (including
        this request).  Raises :class:`QuotaExceededError` (computed
        backoff), :class:`~repro.serve.queue.QueueFullError` (annotated
        with ``retry_after_s`` from the target shard's depth and drain
        rate) or :class:`~repro.serve.queue.QueueClosedError`.
        """
        # Quota first: over-quota traffic must not reach (and fill) a queue.
        self.quotas.admit(tenant, float(request.tiles))
        key = request.shape_key
        with self._lock:
            sid = self.ring.lookup(key)
            shard = self.shards[sid]
            shard.routed += 1
            if key in shard.shapes_seen:
                shard.affinity_hits += 1
            else:
                shard.shapes_seen.add(key)
        tr = spans.tracer
        if tr.enabled:
            # The route span parents under the caller's serve.request span
            # (per-thread nesting) and everything downstream — the shard's
            # serve.group and execute spans — re-parents under it, so the
            # trace tree reads request -> route -> shard.
            with tr.span("serve.route", shard=sid, tenant=tenant) as sp:
                request.parent_span_id = sp.span_id
                self._submit_to(shard, request)
        else:
            self._submit_to(shard, request)
        reg = metrics.registry
        if reg.enabled:
            reg.inc(f"serve.shard{sid}.routed")
        return sid, request.admit_depth

    def _submit_to(self, shard: Shard, request: Request) -> None:
        try:
            shard.queue.submit(request)
        except QueueFullError as exc:
            # Annotate with the computed backoff so the HTTP layer can send
            # an honest Retry-After without reaching into the shard.
            exc.retry_after_s = shard.queue.retry_after_s()
            raise

    # -- health + failover ---------------------------------------------------

    def check_health(self) -> list[int]:
        """Evict every started-but-dead shard; returns the evicted ids.

        Called from the ``/healthz`` and ``/statusz`` handlers — health
        scraping is what drives eviction, no dedicated thread needed.
        """
        with self._lock:
            dead = [s.sid for s in self.shards.values() if not s.healthy]
        return [sid for sid in dead if self.evict(sid)]

    def evict(self, sid: int) -> bool:
        """Remove shard ``sid`` from the ring and fail over its requests.

        Everything the shard still held — queue backlog and batcher lanes —
        is resubmitted through the ring to the surviving shards, so an
        eviction loses no admitted request.  Returns False if ``sid`` was
        already gone (concurrent eviction).
        """
        with self._lock:
            shard = self.shards.pop(sid, None)
            if shard is None:
                return False
            self.ring.remove(sid)
            self.evicted[sid] = shard
        shard.queue.close()
        stranded = shard.queue.drain_nowait() + shard.batcher.drain_lanes()
        shard.pool.shutdown(timeout=1.0)
        moved = failed = 0
        for r in stranded:
            try:
                with self._lock:
                    new_sid = self.ring.lookup(r.shape_key)
                    self.shards[new_sid].queue.submit(r)
                moved += 1
            except (QueueFullError, QueueClosedError, LookupError) as exc:
                # No healthy home: unblock the waiter with the real error
                # rather than letting it time out.
                r.fail(exc)
                failed += 1
        with self._lock:
            self.failover_resubmitted += moved
            self.failover_failed += failed
        reg = metrics.registry
        if reg.enabled:
            reg.inc("serve.shard_evictions")
            if moved:
                reg.inc("serve.failover_resubmitted", moved)
            for gauge in ("queue_depth", "pending", "workers"):
                reg.remove_gauge(f"serve.shard{sid}.{gauge}")
        if event_log.enabled:
            event_log.emit(
                "shard_down", trace_id="", shard=sid,
                resubmitted=moved, failed=failed,
            )
        return True

    # -- aggregates (the server's health/statusz/metrics views) --------------

    @property
    def closed(self) -> bool:
        """True once every live shard's queue refuses new submits."""
        with self._lock:
            live = list(self.shards.values())
        return all(s.queue.closed for s in live) if live else True

    @property
    def depth(self) -> int:
        with self._lock:
            live = list(self.shards.values())
        return sum(s.queue.depth for s in live)

    def _all(self) -> list[Shard]:
        with self._lock:
            return list(self.shards.values()) + list(self.evicted.values())

    @property
    def rejected_full(self) -> int:
        return sum(s.queue.rejected_full for s in self._all())

    @property
    def rejected_closed(self) -> int:
        return sum(s.queue.rejected_closed for s in self._all())

    @property
    def workers_alive(self) -> int:
        with self._lock:
            live = list(self.shards.values())
        return sum(s.pool.alive for s in live)

    @property
    def pending(self) -> int:
        with self._lock:
            live = list(self.shards.values())
        return sum(s.batcher.pending for s in live)

    def queue_stats(self) -> dict:
        """Aggregate of every live shard's queue (same keys as
        ``RequestQueue.stats`` so ``/statusz`` consumers see one queue)."""
        with self._lock:
            live = list(self.shards.values())
        per = [s.queue.stats() for s in live]
        return {
            "depth": sum(p["depth"] for p in per),
            "maxsize": sum(p["maxsize"] for p in per),
            "closed": all(p["closed"] for p in per) if per else True,
            "submitted": sum(p["submitted"] for p in per),
            "rejected_full": self.rejected_full,
            "rejected_closed": self.rejected_closed,
        }

    def stats(self) -> dict:
        """The router section of ``/statusz``."""
        with self._lock:
            live = list(self.shards.values())
            evicted = sorted(self.evicted)
        return {
            "shards": len(live),
            "vnodes": self.ring.vnodes,
            "evicted": evicted,
            "failover_resubmitted": self.failover_resubmitted,
            "failover_failed": self.failover_failed,
            "quotas": self.quotas.stats(),
            "per_shard": [s.stats() for s in sorted(live, key=lambda s: s.sid)],
        }

    def publish_gauges(self) -> None:
        """Refresh per-shard gauges in the metrics registry."""
        reg = metrics.registry
        if not reg.enabled:
            return
        with self._lock:
            live = list(self.shards.values())
        reg.set_gauge("serve.shards", len(live))
        for s in live:
            reg.set_gauge(f"serve.shard{s.sid}.queue_depth", s.queue.depth)
            reg.set_gauge(f"serve.shard{s.sid}.pending", s.batcher.pending)
            reg.set_gauge(f"serve.shard{s.sid}.workers", s.pool.alive)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardRouter":
        with self._lock:
            live = list(self.shards.values())
        for s in live:
            s.start()
        return self

    def close(self) -> None:
        with self._lock:
            live = list(self.shards.values())
        for s in live:
            s.queue.close()

    def shutdown(self, timeout: float = 30.0) -> dict:
        """Drain every live shard; merged pool summary (counters summed,
        ``drained`` is the conjunction)."""
        with self._lock:
            live = list(self.shards.values())
        t_end = monotonic() + timeout
        summaries = [
            s.pool.shutdown(timeout=max(t_end - monotonic(), 0.1)) for s in live
        ]
        merged = {
            "requests_served": 0,
            "groups_executed": 0,
            "retries": 0,
            "group_failures": 0,
            "drained": True,
        }
        for summary in summaries:
            merged["requests_served"] += summary["requests_served"]
            merged["groups_executed"] += summary["groups_executed"]
            merged["retries"] += summary["retries"]
            merged["group_failures"] += summary["group_failures"]
            merged["drained"] &= summary["drained"]
        merged["shards"] = len(live)
        merged["shards_evicted"] = len(self.evicted)
        return merged
