"""Worker pool: threads that turn batched groups into fulfilled requests.

Each worker loops ``next_group -> execute_group`` against the shared
:class:`~repro.serve.batcher.ShapeBatcher`.  Three behaviours matter:

* **Graceful shutdown.**  :meth:`WorkerPool.shutdown` closes the queue and
  then *joins* the workers, which keep draining until the queue and the
  batcher lanes are both empty — accepted requests are executed, never
  dropped.  The pool reports how many requests it served so the server
  can assert ``dropped == 0`` at exit.
* **Retry once on transient failure.**  ``execute_group`` only raises
  before any request in the group is fulfilled and without touching the
  input buffers, so a single retry is always safe.  A second failure
  fails the whole group with the underlying error (each waiting client
  gets it).
* **Named lanes.**  Worker threads are named ``repro-serve-worker-<i>``
  and wrap each group in a ``serve.group`` span, so a Perfetto trace from
  :mod:`repro.trace` shows the queue -> batch -> execute flow per worker
  lane, nested above the ``op.batched_transpose_inplace`` / ``pass.*``
  spans the kernels already emit.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext

from ..runtime import metrics
from ..trace import spans
from ..trace.events import event_log
from .batcher import Group, ShapeBatcher

__all__ = ["WorkerPool"]

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()


class WorkerPool:
    """A fixed pool of batch-executing threads with drain-style shutdown."""

    def __init__(
        self,
        batcher: ShapeBatcher,
        n_workers: int = 2,
        *,
        poll_s: float = 0.05,
        name_prefix: str = "repro-serve-worker",
        mode: str = "thread",
        host=None,
        start_method: str | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown worker mode {mode!r}")
        self.batcher = batcher
        self.n_workers = int(n_workers)
        self.poll_s = float(poll_s)
        self.name_prefix = name_prefix
        #: "process" executes groups in worker processes over shared-memory
        #: staging (repro.parallel.mp); the threads below still drive the
        #: batcher loop either way.
        self.mode = mode
        self._host = host
        #: only a host the pool itself created is shut down with the pool;
        #: an injected one belongs to the caller
        self._owns_host = False
        self._start_method = start_method
        self._threads: list[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()
        #: lifetime counters (reads are racy-but-monotonic, fine for stats)
        self.groups_executed = 0
        self.requests_served = 0
        self.retries = 0
        self.group_failures = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._started:
                raise RuntimeError("worker pool already started")
            self._started = True
            if self.mode == "process" and self._host is None:
                from ..parallel.mp import ProcessWorkerHost

                self._host = ProcessWorkerHost(
                    self.n_workers, start_method=self._start_method
                )
                self._owns_host = True
            for i in range(self.n_workers):
                t = threading.Thread(
                    target=self._run, name=f"{self.name_prefix}-{i}", daemon=True
                )
                self._threads.append(t)
                t.start()
        if metrics.registry.enabled:
            metrics.registry.set_gauge("serve.workers", self.n_workers)
        return self

    def shutdown(self, timeout: float | None = None) -> dict:
        """Close the queue, drain every accepted request, join the workers.

        Returns a summary dict (``requests_served``, ``groups_executed``,
        ``retries``, ``group_failures``, ``drained``).  ``drained`` is
        False only if ``timeout`` expired with a worker still running.
        """
        self.batcher.queue.close()
        drained = True
        for t in self._threads:
            t.join(timeout)
            drained &= not t.is_alive()
        if self._host is not None and self._owns_host:
            self._host.shutdown()
        return {
            "requests_served": self.requests_served,
            "groups_executed": self.groups_executed,
            "retries": self.retries,
            "group_failures": self.group_failures,
            "drained": drained,
        }

    @property
    def alive(self) -> int:
        return sum(t.is_alive() for t in self._threads)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- the worker loop -----------------------------------------------------

    def _run(self) -> None:
        batcher = self.batcher
        queue = batcher.queue
        while True:
            group = batcher.next_group(timeout=self.poll_s)
            if group is None:
                if queue.closed and queue.depth == 0 and batcher.pending == 0:
                    return
                continue
            self._process(group)

    def _process(self, group: Group) -> None:
        tr = spans.tracer
        m, n, _order, dtype = group.key
        # Run the whole group under the lead request's trace context: the
        # serve.group span then parents to that request's serve.request
        # span (recorded on the HTTP handler thread), and everything the
        # batcher/kernels open below nests under serve.group on this stack.
        if tr.enabled and group.requests and group.requests[0].trace_id:
            lead = group.requests[0]
            ctx_cm = tr.activate(
                spans.TraceContext(lead.trace_id, lead.parent_span_id)
            )
        else:
            ctx_cm = _NULL_CM
        with ctx_cm, tr.span(
            "serve.group", m=m, n=n, dtype=dtype, requests=len(group)
        ) if tr.enabled else _NULL_CM:
            for attempt in (1, 2):
                try:
                    # Keep the thread-mode call positional-free so tests
                    # stubbing execute_group(group) keep working unchanged.
                    if self._host is not None:
                        served = self.batcher.execute_group(group, host=self._host)
                    else:
                        served = self.batcher.execute_group(group)
                except Exception as exc:  # noqa: BLE001 — isolation boundary
                    if attempt == 1:
                        # execute_group raises only with every live request
                        # unfulfilled and inputs untouched: retry is safe.
                        self.retries += 1
                        metrics.registry.inc("serve.retries")
                        if event_log.enabled:
                            event_log.emit(
                                "retry",
                                trace_id=group.requests[0].trace_id,
                                m=m, n=n, attempt=attempt, error=repr(exc),
                            )
                        continue
                    self.group_failures += 1
                    metrics.registry.inc("serve.group_failures")
                    if event_log.enabled:
                        event_log.emit(
                            "group_failure",
                            trace_id=group.requests[0].trace_id,
                            m=m, n=n, error=repr(exc),
                        )
                    group.fail_pending(exc)
                    return
                self.groups_executed += 1
                self.requests_served += served
                return
