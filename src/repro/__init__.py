"""repro — reproduction of "A Decomposition for In-place Matrix Transposition".

Catanzaro, Keller, Garland; PPoPP 2014.  See README.md for the tour and
DESIGN.md for the full system inventory.

Quick start::

    import numpy as np
    from repro import transpose

    A = np.arange(12.0).reshape(3, 4)
    B = transpose(A)          # in place: B is a view of A's buffer, shape (4, 3)

Subpackages
-----------
``repro.core``
    The C2R/R2C decomposition (the paper's contribution).
``repro.strength``
    Fixed-point-reciprocal strength reduction for the index math (§4.4).
``repro.cache``
    Cache-aware rotation and row-permute kernels (§4.5-4.7).
``repro.parallel``
    Thread-parallel CPU transposition (§5.1).
``repro.baselines``
    Cycle-following, Gustavson-style, Sung-style and out-of-place baselines.
``repro.simd``
    Executable SIMD-machine substrate and the in-register transpose (§6.2).
``repro.gpusim``
    GPU memory-system simulator used by the evaluation benchmarks.
``repro.aos``
    Array-of-Structures <-> Structure-of-Arrays conversion (§6.1).
``repro.runtime``
    Instrumented serving layer: process-wide LRU plan cache + metrics
    registry with per-pass timers (see docs/RUNTIME.md).
"""

from .core import (
    Decomposition,
    Permutation,
    TransposePlan,
    WorkCounter,
    c2r_transpose,
    choose_algorithm,
    r2c_transpose,
    transpose,
    transpose_inplace,
)

__version__ = "1.0.0"

__all__ = [
    "Decomposition",
    "Permutation",
    "TransposePlan",
    "WorkCounter",
    "c2r_transpose",
    "r2c_transpose",
    "transpose",
    "transpose_inplace",
    "choose_algorithm",
    "__version__",
]
