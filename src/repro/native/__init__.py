"""Compiled per-plan native kernels (``backend="native"``).

For an eligible plan this package generates C source specialized to the
concrete ``(algorithm, m, n, itemsize)`` — gather tables, magic-division
constants and loop extents baked in as literals — compiles it once with the
system C compiler (or cffi), and exposes the resulting shared object as a
:class:`~repro.native.kernel.NativeKernel` whose entry points the plan
executors call instead of the numpy gathers.

Policy lives here; mechanism lives in the submodules:

:mod:`repro.native.codegen`
    Eligibility rules and C source generation.
:mod:`repro.native.kernel`
    Toolchain discovery, compilation, artifact caching, ctypes loading.

Resolution contract (used by :meth:`TransposePlan.execute` and friends):

* ``REPRO_NATIVE=0`` disables the backend silently — no metric, no warning.
* Buffers with fewer than ``REPRO_NATIVE_MIN_ELEMS`` (default 16384)
  elements stay on numpy silently: compile time and call overhead would
  swamp any win.
* An ineligible shape/dtype increments ``native.unsupported`` and falls
  back silently (this is a static property of the plan, not a failure).
* A missing compiler or failed compile increments ``native.fallback`` and
  emits a one-time :class:`RuntimeWarning`; execution proceeds on numpy.
  This is never an error — a machine without a toolchain runs the full
  suite, just slower.
* A successful compile increments ``native.compile`` and charges the
  artifact's on-disk size to the plan's slot in the plan cache (eviction
  then unlinks the ``.so`` via the plan's eviction hook).

Kernels are memoized on the plan object per itemsize, so a cached plan
compiles at most once per dtype width it ever sees, and the artifact is
shared content-addressed across identical plans.
"""

from __future__ import annotations

import os
import threading
import warnings

from .codegen import (
    MAX_AB,
    SUPPORTED_ITEMSIZES,
    KernelSpec,
    PassInfo,
    generate_source,
    ineligible_reason,
    pass_symbol,
)
from .kernel import (
    CompileError,
    NativeKernel,
    NativeScratchError,
    compile_spec,
    compiler_available,
    find_compiler,
    toolchain_name,
)

__all__ = [
    "MAX_AB",
    "SUPPORTED_ITEMSIZES",
    "KernelSpec",
    "PassInfo",
    "generate_source",
    "ineligible_reason",
    "pass_symbol",
    "CompileError",
    "NativeKernel",
    "NativeScratchError",
    "compile_spec",
    "compiler_available",
    "find_compiler",
    "toolchain_name",
    "enabled",
    "min_elems",
    "available",
    "unavailable_reason",
    "kernel_for_plan",
    "kernel_for_shape",
    "release_plan_kernels",
    "record_fallback",
]

#: Default element-count floor below which auto-selection stays on numpy.
DEFAULT_MIN_ELEMS = 16_384

_warned_once = False
_warn_lock = threading.Lock()


def _metrics_registry():
    from ..runtime import metrics

    return metrics.registry


def enabled() -> bool:
    """False when ``REPRO_NATIVE=0`` opts the process out entirely."""
    return os.environ.get("REPRO_NATIVE", "1") != "0"


def min_elems() -> int:
    """Auto-selection floor: buffers smaller than this stay on numpy."""
    try:
        return int(os.environ.get("REPRO_NATIVE_MIN_ELEMS", DEFAULT_MIN_ELEMS))
    except ValueError:
        return DEFAULT_MIN_ELEMS


def available() -> bool:
    """True when this process can compile native kernels at all."""
    return enabled() and toolchain_name() is not None


def unavailable_reason() -> str | None:
    """Why :func:`available` is False, or ``None`` when it is True."""
    if not enabled():
        return "disabled by REPRO_NATIVE=0"
    if toolchain_name() is None:
        return "no C compiler available"
    return None


def record_fallback(reason: str) -> None:
    """Count a numpy fallback and warn once per process.

    Used when native execution was *expected* (compiler present or backend
    explicitly requested) but could not be delivered.  The warning fires
    once; the ``native.fallback`` counter increments on every occurrence so
    CI can assert the fallback path actually ran.
    """
    global _warned_once
    _metrics_registry().inc("native.fallback")
    from ..trace.events import event_log

    if event_log.enabled:
        from ..trace.spans import tracer

        event_log.emit(
            "fallback", trace_id=tracer.current_trace_id(), reason=reason
        )
    with _warn_lock:
        if _warned_once:
            return
        _warned_once = True
    warnings.warn(
        f"native transpose backend unavailable ({reason}); "
        "falling back to numpy",
        RuntimeWarning,
        stacklevel=3,
    )


def kernel_for_plan(plan, itemsize: int) -> NativeKernel | None:
    """The compiled kernel for ``plan`` at ``itemsize``, or ``None``.

    Memoized on the plan object (one slot per itemsize), so repeated
    executes of a cached plan pay a dict lookup.  ``None`` is memoized too:
    an ineligible shape or a failed compile is not retried, though the
    fallback *metric* still fires per call so operators see the ongoing
    cost.  Never raises.
    """
    cache = plan.__dict__.get("_native_kernels")
    if cache is not None:
        hit = cache.get(itemsize, _MISS)
        if hit is not _MISS:
            if hit is None and cache.get(("why", itemsize)) == "fallback":
                _metrics_registry().inc("native.fallback")
            return hit
    lock = plan.__dict__.setdefault("_native_lock", threading.Lock())
    with lock:
        cache = plan.__dict__.setdefault("_native_kernels", {})
        hit = cache.get(itemsize, _MISS)
        if hit is not _MISS:
            return hit
        kernel, why = _build_kernel(plan, itemsize)
        cache[itemsize] = kernel
        if kernel is None:
            cache[("why", itemsize)] = why
    if kernel is not None:
        _charge_artifact(plan, kernel)
    return kernel


_MISS = object()

#: (m, n, algorithm, itemsize) -> NativeKernel | None, for plan-free callers
_shape_kernels: dict[tuple, "NativeKernel | None"] = {}
_shape_lock = threading.Lock()


def kernel_for_shape(dec, algorithm: str, itemsize: int) -> NativeKernel | None:
    """The compiled kernel for a decomposition, without a TransposePlan.

    The streaming executor must not build a full plan just to reach the
    compiler: a plan materialises ``O(m * n)`` index-map bytes, which for
    an out-of-core matrix is exactly the unbounded allocation the resident
    window exists to prevent.  Codegen needs only the decomposition
    constants, so this memoises directly on
    ``(m, n, algorithm, itemsize)``.  Failed/ineligible compiles memoise
    as ``None``; artifacts are process-lifetime (no plan-cache slot to
    charge or evict — file-shape cardinality is low).
    """
    key = (dec.m, dec.n, algorithm, itemsize)
    with _shape_lock:
        hit = _shape_kernels.get(key, _MISS)
        if hit is not _MISS:
            return hit
        from types import SimpleNamespace

        kernel, _why = _build_kernel(
            SimpleNamespace(dec=dec, algorithm=algorithm), itemsize
        )
        _shape_kernels[key] = kernel
        return kernel


def _build_kernel(plan, itemsize: int):
    """Compile the kernel for ``plan``; returns ``(kernel, why_none)``."""
    reg = _metrics_registry()
    reason = ineligible_reason(plan.dec, itemsize)
    if reason is not None:
        reg.inc("native.unsupported")
        return None, "unsupported"
    try:
        spec = generate_source(plan.dec, plan.algorithm, itemsize)
        kernel = compile_spec(spec)
    except CompileError as exc:
        record_fallback(str(exc))
        return None, "fallback"
    reg.inc("native.compile")
    return kernel, None


def _charge_artifact(plan, kernel: NativeKernel) -> None:
    """Charge the ``.so`` size to the plan's slot in the plan cache.

    A plan not held by a cache (direct construction, oversize reject) has
    no binding and nothing to charge.  Called outside the plan's native
    lock: the byte adjustment can evict plans — possibly this one — and
    eviction hooks re-enter the native layer to release kernels.
    """
    binding = plan.__dict__.get("_plan_cache_binding")
    if binding is None:
        return
    cache, key = binding
    cache.adjust_bytes(key, kernel.artifact_bytes)


def release_plan_kernels(plan) -> None:
    """Unlink every artifact compiled for ``plan`` (plan-cache eviction)."""
    lock = plan.__dict__.get("_native_lock")
    if lock is None:
        return
    with lock:
        cache = plan.__dict__.get("_native_kernels")
        if not cache:
            return
        kernels = [k for k in cache.values() if isinstance(k, NativeKernel)]
    for kernel in kernels:
        kernel.release()
