"""C source generation for compiled per-plan transpose kernels.

A cached :class:`~repro.core.plan.TransposePlan` executes three (or two)
decomposition passes as numpy gathers off precomputed ``O(mn)`` index maps.
That path is interpreter-bound: BENCH_ci.json puts it at ~20-36 ns/elem
against a ~0.2-0.6 ns/elem memcpy ceiling.  This module closes the gap the
way Section 4.4 of the paper does on the GPU — by *specializing the index
arithmetic at compile time*.  For a concrete ``(dec, algorithm, itemsize)``
it emits the gather/rotation passes as flat C loops in which every ``//``
and ``%`` by a decomposition constant is strength-reduced to the
fixed-point-reciprocal multiply of :mod:`repro.strength.magic`, with the
``(multiplier, shift)`` pairs inlined as integer literals.

The generated translation unit exports, with C linkage:

``int repro_pass_<k>(char *buf, int64_t lo, int64_t hi)``
    Pass ``k`` over the half-open range ``[lo, hi)`` of its parallel axis
    (column groups for rotations, rows for the row shuffle, columns for the
    column shuffle) — the same chunk geometry
    :mod:`repro.parallel.cpu` schedules, so the thread backend can drive a
    compiled kernel directly.  Returns 0, or 1 if scratch allocation failed
    *before any element moved* (the caller falls back to numpy).
``int repro_pass_<k>_batch(char *buf, int64_t k)``
    The same pass applied to ``k`` consecutive ``m x n`` tiles.
``int repro_pass_<k>_banded(char *buf, int64_t lo, int64_t hi,
int64_t rs, int64_t origin)``
    For the column-facing passes (rotation, column shuffle): the same
    chunk ``[lo, hi)`` in *global* coordinates, executed against a band
    buffer that holds only columns ``[origin, origin + width)`` of every
    row (column groups ``[origin, ...)`` for the rotation) at a row
    stride of ``rs`` elements.  The index arithmetic is untouched — the
    band variants share one static body with the full-width entry points
    (which are exactly ``rs = n, origin = 0``) — only the addressing is
    rebased, which is what lets the out-of-core banded executor run the
    compiled passes on its bounded-residency band copies.  The row
    shuffle needs no variant: a row band keeps the full row stride, so
    the executor hands ``repro_pass_gather_cols`` a shifted base pointer.
``int repro_run(char *buf)`` / ``int repro_run_batch(char *buf, int64_t k)``
    All passes in plan order over one tile / ``k`` tiles.

Every pass allocates its scratch up front and returns 1 without touching
the matrix when the allocation fails, so a nonzero return never leaves a
half-permuted buffer.

Eligibility
-----------
The 31-bit reciprocals are exact for operands below ``2**31``; the largest
intermediate products are ``(a - 1)**2`` and ``(b - 1)**2`` (the modular
inverse multiplies of Eqs. 31/34).  :func:`ineligible_reason` therefore
requires ``m*n + m + n < 2**31``, ``max(a, b) <= MAX_AB`` and an itemsize
the generated element type can move (1, 2, 4, 8 or 16 bytes).  Ineligible
shapes simply fall back to the numpy plan path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.indexing import Decomposition
from ..core.numbertheory import mmi
from ..strength.magic import compute_magic

__all__ = [
    "PassInfo",
    "KernelSpec",
    "ineligible_reason",
    "generate_source",
    "banded_pass_symbol",
    "SUPPORTED_ITEMSIZES",
    "MAX_AB",
]

#: itemsizes the generated element type can represent
SUPPORTED_ITEMSIZES = (1, 2, 4, 8, 16)

#: largest a or b: keeps the modular-inverse products (a-1)^2 / (b-1)^2
#: below 2**31, the exactness bound of the 31-bit reciprocals (the same
#: bound :class:`repro.strength.reduced.ReducedEquations` enforces on b)
MAX_AB = 46_340

_ELEM_TYPES = {
    1: "uint8_t",
    2: "uint16_t",
    4: "uint32_t",
    8: "uint64_t",
    16: "repro_elem16_t",
}

#: scratch ceiling for the column-shuffle block (bytes); the block width
#: shrinks for tall matrices so the temp tile stays cache-resident
_COL_BLOCK_SCRATCH = 1 << 19


@dataclass(frozen=True)
class PassInfo:
    """One generated pass: its plan-step kind, the name the parallel
    transposer schedules it under, its parallel axis, and the axis extent."""

    kind: str  # plan-step kind: rotate_groups | gather_cols | gather_rows
    parallel_name: str  # pre_rotate | row_shuffle | column_shuffle | ...
    axis: str  # groups | rows | cols
    extent: int


@dataclass(frozen=True)
class KernelSpec:
    """A generated translation unit plus the metadata needed to drive it."""

    m: int
    n: int
    algorithm: str
    itemsize: int
    passes: tuple[PassInfo, ...]
    source: str


def ineligible_reason(dec: Decomposition, itemsize: int) -> str | None:
    """Why this shape cannot be compiled, or ``None`` when it can."""
    if itemsize not in SUPPORTED_ITEMSIZES:
        return f"itemsize {itemsize} not in {SUPPORTED_ITEMSIZES}"
    if dec.m * dec.n + dec.m + dec.n >= 2**31:
        return "m*n + m + n >= 2**31 exceeds the 31-bit reciprocal range"
    if max(dec.a, dec.b) > MAX_AB:
        return (
            f"max(a, b) = {max(dec.a, dec.b)} > {MAX_AB} overflows the "
            "modular-inverse product bound"
        )
    return None


def _magic_macros(dec: Decomposition) -> str:
    """``DIV_X``/``MOD_X`` macros with the reciprocals as literals."""
    lines = [
        "/* fixed-point reciprocals (Hacker's Delight round-up method,",
        "   repro.strength.magic.compute_magic, nbits=31): exact for",
        "   0 <= x < 2**31. */",
    ]
    for name, d in (
        ("M", dec.m), ("N", dec.n), ("A", dec.a), ("B", dec.b), ("C", dec.c)
    ):
        mg = compute_magic(d, nbits=31)
        lines.append(
            f"#define DIV_{name}(x) ((int64_t)(((uint64_t)(x) * "
            f"UINT64_C({mg.multiplier})) >> {mg.shift}))"
        )
        lines.append(
            f"#define MOD_{name}(x) ((int64_t)(x) - DIV_{name}(x) * "
            f"INT64_C({d}))"
        )
    return "\n".join(lines)


def _rotate_pass(dec: Decomposition, itemsize: int, *, inverse: bool) -> str:
    """Group rotation (Eq. 23 / Eq. 36): column group ``g`` rotates by
    ``g mod m`` rows — downward for C2R's pre-rotation, upward for R2C's
    post-rotation.  Both reduce to one left-rotation of the group's ``m``
    row segments."""
    # np.roll(V, -k): out[i] = in[(i+k) % m]  -> left-rotate by k (c2r pre)
    # np.roll(V, +k): out[i] = in[(i-k) % m]  -> left-rotate by m-k (r2c post)
    keff = "(INT64_C(%d) - k)" % dec.m if inverse else "k"
    if dec.b * itemsize >= 64:
        # Wide groups: rotate the m row segments with min(k, m-k) segments
        # of scratch and row-level memcpys (each segment is b contiguous
        # elements at stride rs — the full row n, or a band copy's width).
        body = """
static int rotate_group(elem_t *g0, int64_t k, elem_t *tmp, int64_t rs) {
  int64_t i;
  if (k <= M - k) {
    for (i = 0; i < k; ++i)
      memcpy(tmp + i * B, g0 + i * rs, (size_t)B * sizeof(elem_t));
    for (i = 0; i < M - k; ++i)
      memmove(g0 + i * rs, g0 + (i + k) * rs, (size_t)B * sizeof(elem_t));
    for (i = 0; i < k; ++i)
      memcpy(g0 + (M - k + i) * rs, tmp + i * B, (size_t)B * sizeof(elem_t));
  } else {
    int64_t r = M - k;
    for (i = 0; i < r; ++i)
      memcpy(tmp + i * B, g0 + (M - r + i) * rs, (size_t)B * sizeof(elem_t));
    for (i = M - r - 1; i >= 0; --i)
      memmove(g0 + (i + r) * rs, g0 + i * rs, (size_t)B * sizeof(elem_t));
    for (i = 0; i < r; ++i)
      memcpy(g0 + i * rs, tmp + i * B, (size_t)B * sizeof(elem_t));
  }
  return 0;
}
"""
        return body + f"""
static int repro_rotate_impl(char *bufc, int64_t glo, int64_t ghi,
                             int64_t rs, int64_t gband) {{
  elem_t *V = (elem_t *) bufc;
  elem_t *tmp;
  int64_t g;
  if (glo >= ghi) return 0;
  tmp = (elem_t *) malloc((size_t)(M / 2 + 1) * (size_t)B * sizeof(elem_t));
  if (tmp == NULL) return 1;
  for (g = glo; g < ghi; ++g) {{
    int64_t k = MOD_M(g);
    if (k == 0) continue;
    k = {keff};
    if (k == 0 || k == M) continue;
    rotate_group(V + (g - gband) * B, k, tmp, rs);
  }}
  free(tmp);
  return 0;
}}

int repro_pass_rotate(char *bufc, int64_t glo, int64_t ghi) {{
  int rc = repro_rotate_impl(bufc, glo, ghi, N, 0);
  return rc;
}}

int repro_pass_rotate_banded(char *bufc, int64_t glo, int64_t ghi,
                             int64_t rs, int64_t gband) {{
  int rc = repro_rotate_impl(bufc, glo, ghi, rs, gband);
  return rc;
}}
"""
    # Narrow groups (b * itemsize below a cache line): a per-group
    # column walk would stride by the full row (4 KiB for 512 f64
    # columns — one TLB miss and one cache-set conflict per element).
    # Instead, treat the whole pass as the gather it is — in source-row
    # space it is *regular*: group g reads row (i + g) mod m (C2R) or
    # (i - g) mod m (R2C), so along a block row the source address
    # advances by a fixed stride per group, b contiguous elements per
    # group, wrapping only every m groups.  The pass is blocked over
    # GBLK whole groups, and each block's column stripe is first staged
    # into scratch with row-contiguous copies (prefetcher-friendly,
    # bandwidth-bound) so the strided gather walks cache-resident
    # scratch and the permuted rows stream straight back to the array.
    gblk = max(
        1,
        min(64, _COL_BLOCK_SCRATCH // max(dec.m * itemsize, 1)) // dec.b,
    )
    if inverse:
        s_init = "int64_t s = i - k0; if (s < 0) s += M;"
        run_cap = "s + 1"
        step = "p -= wcols - B;"
        s_reset = "s = M - 1;"
    else:
        s_init = "int64_t s = i + k0; if (s >= M) s -= M;"
        run_cap = "M - s"
        step = "p += wcols + B;"
        s_reset = "s = 0;"
    return f"""
#define GBLK {gblk}

static int repro_rotate_impl(char *bufc, int64_t glo, int64_t ghi,
                             int64_t rs, int64_t gband) {{
  elem_t *V = (elem_t *) bufc;
  elem_t *stage;
  int64_t g0, i;
  if (glo >= ghi) return 0;
  stage = (elem_t *) malloc((size_t)M * GBLK * B * sizeof(elem_t));
  if (stage == NULL) return 1;
  for (g0 = glo; g0 < ghi; g0 += GBLK) {{
    int64_t gw = (g0 + GBLK <= ghi) ? GBLK : (ghi - g0);
    int64_t wcols = gw * B;
    int64_t k0 = MOD_M(g0);
    for (i = 0; i < M; ++i)
      memcpy(stage + i * wcols, V + i * rs + (g0 - gband) * B,
             (size_t)wcols * sizeof(elem_t));
    for (i = 0; i < M; ++i) {{
      elem_t *dst = V + i * rs + (g0 - gband) * B;
      {s_init}
      {{
        int64_t g = 0;
        while (g < gw) {{
          int64_t run = {run_cap};
          const elem_t *p = stage + s * wcols + g * B;
          elem_t *to = dst + g * B;
          int64_t gg, e;
          if (run > gw - g) run = gw - g;
          for (gg = 0; gg < run; ++gg) {{
            for (e = 0; e < B; ++e) to[e] = p[e];
            to += B;
            {step}
          }}
          g += run;
          {s_reset}
        }}
      }}
    }}
  }}
  free(stage);
  return 0;
}}

int repro_pass_rotate(char *bufc, int64_t glo, int64_t ghi) {{
  int rc = repro_rotate_impl(bufc, glo, ghi, N, 0);
  return rc;
}}

int repro_pass_rotate_banded(char *bufc, int64_t glo, int64_t ghi,
                             int64_t rs, int64_t gband) {{
  int rc = repro_rotate_impl(bufc, glo, ghi, rs, gband);
  return rc;
}}
"""


def _gather_cols_pass(dec: Decomposition, *, algorithm: str) -> str:
    """Row shuffle: each row gathers along axis 1 with ``d'^{-1}`` (Eq. 31,
    C2R) or ``d'`` (Eq. 24, R2C), through an n-element scratch row.

    The per-element index equation is folded into an n-entry lookup table
    built once per pass call (n increments of the Section 4.4 reduced
    counters).  Each row then decomposes into segments on which the
    correction term is constant and the table index advances by one, so
    the inner loops are pure sequential-index gathers — no loop-carried
    counters or per-element conditionals between a load and the next."""
    if algorithm == "c2r":
        # Eq. 31 depends on f = j + i*(n-1) + corr only through f mod n
        # (n = b*c, so f//c mod b and f mod c are both functions of the
        # residue): src = T[(j - i + corr) mod n], with T[r] =
        # (a^{-1} * (r//c)) mod b + (r mod c) * b, and corr = m exactly
        # when (j mod c) < i + c - m (the f-helper of Section 4.2).
        # Within each aligned c-block of j the condition is a prefix
        # (j mod c < th), so the block is two runs of consecutive table
        # indices; repro_gcseq copies one run, splitting at the mod-n wrap.
        a_inv = mmi(dec.a, dec.b)
        m_mod_n = dec.m % dec.n
        build_table = f"""
  {{
    int64_t u = 0, rb = 0, rc = 0, r;
    for (r = 0; r < N; ++r) {{
      T[r] = (int32_t)(u + rb);
      rb += B;
      if (++rc == C) {{
        rc = 0; rb = 0;
        u += INT64_C({a_inv});
        if (u >= B) u -= B;
      }}
    }}
  }}"""
        helper = """
static void repro_gcseq(elem_t *dst, const elem_t *row, const int32_t *T,
                        int64_t t, int64_t len) {
  while (len > 0) {
    int64_t run = N - t;
    const int32_t *tp = T + t;
    int64_t e;
    if (run > len) run = len;
    for (e = 0; e < run; ++e) dst[e] = row[tp[e]];
    dst += run;
    len -= run;
    t = 0;
  }
}
"""
        inner = f"""
    int64_t th = i + C - M;
    int64_t im = MOD_N(i);
    int64_t tB = (im == 0) ? 0 : (N - im);
    int64_t jb0;
    if (th < 0) th = 0;
    for (jb0 = 0; jb0 < N; jb0 += C) {{
      int64_t tA = tB + INT64_C({m_mod_n});
      int64_t tb2 = tB + th;
      if (tA >= N) tA -= N;
      if (tb2 >= N) tb2 -= N;
      repro_gcseq(tmp + jb0, row, T, tA, th);
      repro_gcseq(tmp + jb0 + th, row, T, tb2, C - th);
      tB += C;
      if (tB >= N) tB -= N;
    }}"""
    else:
        # Eq. 24: src = ((i + j//b) mod m + j*m) mod n.  The j-only part
        # S[j] = (j//b + j*m) mod n is tabulated; the mod-m clamp of
        # (i + j//b) fires exactly when j//b >= m - i, i.e. for the row
        # suffix j >= (m - i)*b, and adds NEG = (-m) mod n.  Each row is
        # therefore two segments of t = off + T[j] with off constant; the
        # remaining per-element mod-n subtract is data-dependent but not
        # loop-carried, so loads pipeline freely.
        m_mod_n = dec.m % dec.n
        neg = (dec.n - m_mod_n) % dec.n
        build_table = f"""
  {{
    int64_t jb = 0, jm = 0, bc = 0, t, j;
    for (j = 0; j < N; ++j) {{
      t = jb + jm;
      if (t >= N) t -= N;
      T[j] = (int32_t) t;
      jm += INT64_C({m_mod_n});
      if (jm >= N) jm -= N;
      if (++bc == B) {{ bc = 0; ++jb; }}
    }}
  }}"""
        helper = """
static void repro_gcoff(elem_t *dst, const elem_t *row, const int32_t *T,
                        int64_t off, int64_t len) {
  int64_t e;
  for (e = 0; e < len; ++e) {
    int64_t t = off + T[e];
    if (t >= N) t -= N;
    dst[e] = row[t];
  }
}
"""
        inner = f"""
    int64_t im = MOD_N(i);
    int64_t jsplit = (M - i) * B;  /* first j where the mod-m clamp fires */
    int64_t off2 = im + INT64_C({neg});
    if (jsplit > N) jsplit = N;
    if (off2 >= N) off2 -= N;
    repro_gcoff(tmp, row, T, im, jsplit);
    repro_gcoff(tmp + jsplit, row, T + jsplit, off2, N - jsplit);"""
    return f"""
{helper}
int repro_pass_gather_cols(char *bufc, int64_t lo, int64_t hi) {{
  elem_t *V = (elem_t *) bufc;
  elem_t *tmp;
  int32_t *T;
  int64_t i;
  if (lo >= hi) return 0;
  tmp = (elem_t *) malloc((size_t)N * sizeof(elem_t));
  if (tmp == NULL) return 1;
  T = (int32_t *) malloc((size_t)N * sizeof(int32_t));
  if (T == NULL) {{ free(tmp); return 1; }}
{build_table}
  for (i = lo; i < hi; ++i) {{
    elem_t *row = V + i * N;
{inner}
    memcpy(row, tmp, (size_t)N * sizeof(elem_t));
  }}
  free(T);
  free(tmp);
  return 0;
}}
"""


def _gather_rows_pass(dec: Decomposition, itemsize: int, *, algorithm: str) -> str:
    """Column shuffle: each column gathers along axis 0 with ``s'``
    (Eq. 26, C2R) or the fused ``q^{-1} . p^{-1}`` (Eqs. 34-35, R2C),
    blocked over ``COLBLK`` columns.  Each block's column stripe is
    staged into scratch with row-contiguous copies first, so the
    diagonal gather runs against cache-resident scratch and the permuted
    rows stream contiguously back to the array — both DRAM-facing loops
    are sequential."""
    colblk = max(1, min(64, _COL_BLOCK_SCRATCH // max(dec.m * itemsize, 1)))
    if algorithm == "c2r":
        # s'_j(i) = (j + i*n - i//a) mod m: for a fixed output row i the
        # source row walks the diagonal src, src+1, ... (mod m).  Splitting
        # the block row at the (at most one per m elements) wraparound
        # leaves runs of constant address stride w+1 in the staged slab —
        # branch-free, dependency-free loads the compiler can pipeline.
        row_loop = """
      int64_t s = MOD_M(i * N - DIV_A(i) + j0);
      int64_t jj = 0;
      while (jj < w) {
        int64_t run = M - s;
        const elem_t *p = stage + s * w + jj;
        int64_t e;
        if (run > w - jj) run = w - jj;
        for (e = 0; e < run; ++e) {
          dst[jj + e] = *p;
          p += w + 1;
        }
        jj += run;
        s = 0;
      }"""
    else:
        # Fused q^{-1} . p^{-1} (Eqs. 34-35): with x = (i - j) mod m the
        # source row is v + s2a where v = ((c-1+x)//c * b^{-1}) mod a and
        # s2a = ((c-1)*x mod c) * a.  Along a block row x decreases by 1,
        # so s2a advances by +a (the source walks rows at fixed stride
        # a*n + 1 in element space) until one of two period-c events
        # fires: s2a wraps at m = c*a, or the quotient decrements and
        # v -= b^{-1} (mod a).  Between events the loads are pure
        # fixed-stride runs; events cost O(1) and recur every ~c elements.
        c1 = dec.c - 1
        b_inv = mmi(dec.b, dec.a)
        kadj = -(-dec.n // dec.m) * dec.m  # multiple of m >= n: keeps i-j+KADJ >= 0
        row_loop = f"""
      int64_t x0 = MOD_M(i - j0 + INT64_C({kadj}));
      int64_t w0 = INT64_C({c1}) + x0;
      int64_t qd = DIV_C(w0);
      int64_t wr = w0 - qd * C;
      int64_t v = MOD_A(qd * INT64_C({b_inv}));
      int64_t s2a = MOD_C(INT64_C({c1}) * x0) * A;
      int64_t jj = 0;
      while (jj < w) {{
        int64_t run = wr + 1;
        int64_t run2 = DIV_A(M - s2a);  /* s2a is a multiple of a: exact */
        const elem_t *p = stage + (v + s2a) * w + jj;
        int64_t e;
        if (run2 < run) run = run2;
        if (w - jj < run) run = w - jj;
        for (e = 0; e < run; ++e) {{
          dst[jj + e] = *p;
          p += A * w + 1;
        }}
        jj += run;
        s2a += run * A;
        if (s2a == M) s2a = 0;
        wr -= run;
        if (wr < 0) {{
          wr += C;
          v -= INT64_C({b_inv});
          if (v < 0) v += A;
        }}
      }}"""
    return f"""
#define COLBLK {colblk}

static int repro_gather_rows_impl(char *bufc, int64_t lo, int64_t hi,
                                  int64_t rs, int64_t c0) {{
  elem_t *V = (elem_t *) bufc;
  elem_t *stage;
  int64_t j0, i;
  if (lo >= hi) return 0;
  stage = (elem_t *) malloc((size_t)M * COLBLK * sizeof(elem_t));
  if (stage == NULL) return 1;
  for (j0 = lo; j0 < hi; j0 += COLBLK) {{
    int64_t w = (j0 + COLBLK <= hi) ? COLBLK : (hi - j0);
    for (i = 0; i < M; ++i)
      memcpy(stage + i * w, V + i * rs + (j0 - c0), (size_t)w * sizeof(elem_t));
    for (i = 0; i < M; ++i) {{
      elem_t *dst = V + i * rs + (j0 - c0);
{row_loop}
    }}
  }}
  free(stage);
  return 0;
}}

int repro_pass_gather_rows(char *bufc, int64_t lo, int64_t hi) {{
  int rc = repro_gather_rows_impl(bufc, lo, hi, N, 0);
  return rc;
}}

int repro_pass_gather_rows_banded(char *bufc, int64_t lo, int64_t hi,
                                  int64_t rs, int64_t c0) {{
  int rc = repro_gather_rows_impl(bufc, lo, hi, rs, c0);
  return rc;
}}
"""


_PASS_SYMBOLS = {
    "rotate_groups": "repro_pass_rotate",
    "gather_cols": "repro_pass_gather_cols",
    "gather_rows": "repro_pass_gather_rows",
}

#: passes with a band-rebased entry point; gather_cols (the row shuffle)
#: has none because a row band keeps the full row stride and runs through
#: the plain symbol with a shifted base pointer
_BANDED_PASS_SYMBOLS = {
    "rotate_groups": "repro_pass_rotate_banded",
    "gather_rows": "repro_pass_gather_rows_banded",
}


def pass_symbol(kind: str) -> str:
    """The exported C symbol implementing a plan-step kind."""
    return _PASS_SYMBOLS[kind]


def banded_pass_symbol(kind: str) -> str | None:
    """The band-rebased C symbol for a plan-step kind, or ``None`` when the
    full-width symbol already serves band buffers (row-axis passes)."""
    return _BANDED_PASS_SYMBOLS.get(kind)


def _pass_layout(dec: Decomposition, algorithm: str) -> tuple[PassInfo, ...]:
    """Pass order and chunk axes, mirroring ``TransposePlan._build_*`` and
    the schedule names of :mod:`repro.parallel.cpu` one-to-one."""
    if algorithm == "c2r":
        passes = []
        if dec.c > 1:
            passes.append(PassInfo("rotate_groups", "pre_rotate", "groups", dec.c))
        passes.append(PassInfo("gather_cols", "row_shuffle", "rows", dec.m))
        passes.append(PassInfo("gather_rows", "column_shuffle", "cols", dec.n))
        return tuple(passes)
    passes = [
        PassInfo("gather_rows", "inverse_column_shuffle", "cols", dec.n),
        PassInfo("gather_cols", "row_shuffle_r2c", "rows", dec.m),
    ]
    if dec.c > 1:
        passes.append(PassInfo("rotate_groups", "post_rotate", "groups", dec.c))
    return tuple(passes)


def generate_source(
    dec: Decomposition, algorithm: str, itemsize: int
) -> KernelSpec:
    """Emit the full translation unit for one ``(dec, algorithm, itemsize)``.

    Raises :class:`ValueError` for shapes :func:`ineligible_reason` rejects;
    callers are expected to have checked eligibility and fallen back.
    """
    if algorithm not in ("c2r", "r2c"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    reason = ineligible_reason(dec, itemsize)
    if reason is not None:
        raise ValueError(f"shape not compilable: {reason}")

    passes = _pass_layout(dec, algorithm)
    elem = _ELEM_TYPES[itemsize]
    parts = [
        "/* generated by repro.native.codegen -- do not edit.",
        f" * plan: {algorithm} m={dec.m} n={dec.n} "
        f"(a={dec.a} b={dec.b} c={dec.c}) itemsize={itemsize}",
        " */",
        "#include <stdint.h>",
        "#include <stdlib.h>",
        "#include <string.h>",
        "",
        "typedef struct { uint64_t lo; uint64_t hi; } repro_elem16_t;",
        f"typedef {elem} elem_t;",
        "",
        f"#define M INT64_C({dec.m})",
        f"#define N INT64_C({dec.n})",
        f"#define A INT64_C({dec.a})",
        f"#define B INT64_C({dec.b})",
        f"#define C INT64_C({dec.c})",
        "",
        _magic_macros(dec),
    ]
    emitted: set[str] = set()
    for p in passes:
        if p.kind in emitted:
            continue
        emitted.add(p.kind)
        if p.kind == "rotate_groups":
            parts.append(_rotate_pass(dec, itemsize, inverse=(algorithm == "r2c")))
        elif p.kind == "gather_cols":
            parts.append(_gather_cols_pass(dec, algorithm=algorithm))
        else:
            parts.append(_gather_rows_pass(dec, itemsize, algorithm=algorithm))

    # Whole-plan drivers: all passes over their full extents, one tile or k
    # consecutive tiles.  Failure returns are *positional* so the caller can
    # resume with numpy exactly where the kernel stopped: repro_run returns
    # ``pass_index + 1``, the batch drivers ``tile * NPASSES + pass_index + 1``
    # (a nonzero return always means "this pass on this tile moved nothing").
    # Per-pass batch wrappers let the instrumented executors time each pass
    # across the whole batch; they return ``tile + 1`` on failure.
    npasses = len(passes)
    calls = "\n".join(
        f"  if ({pass_symbol(p.kind)}(bufc, 0, INT64_C({p.extent}))) "
        f"return {i + 1};"
        for i, p in enumerate(passes)
    )
    parts.append(f"""
#define NPASSES {npasses}

int repro_run(char *bufc) {{
{calls}
  return 0;
}}

int repro_run_batch(char *bufc, int64_t k) {{
  int64_t t;
  for (t = 0; t < k; ++t) {{
    int rc = repro_run(bufc + t * (M * N * (int64_t)sizeof(elem_t)));
    if (rc) return (int)(t * NPASSES) + rc;
  }}
  return 0;
}}
""")
    for kind in emitted:
        sym = pass_symbol(kind)
        extent = next(p.extent for p in passes if p.kind == kind)
        parts.append(f"""
int {sym}_batch(char *bufc, int64_t k) {{
  int64_t t;
  for (t = 0; t < k; ++t) {{
    if ({sym}(bufc + t * (M * N * (int64_t)sizeof(elem_t)),
              0, INT64_C({extent}))) return (int)(t + 1);
  }}
  return 0;
}}
""")
    return KernelSpec(
        m=dec.m,
        n=dec.n,
        algorithm=algorithm,
        itemsize=itemsize,
        passes=passes,
        source="\n".join(parts),
    )
