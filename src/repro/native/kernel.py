"""Compile and load generated per-plan kernels.

Toolchain discovery honors ``$CC`` exclusively when it is set (so CI's
no-compiler leg can pin ``CC=/nonexistent`` and prove the fallback path),
otherwise probes ``cc``/``gcc``/``clang`` on PATH via :func:`shutil.which`.
Compilation itself has two interchangeable toolchains, selected by
``REPRO_NATIVE_TOOLCHAIN``:

``cc`` (default when a compiler binary is found)
    One ``cc -shared -O3 -fPIC`` invocation; the artifact is loaded with
    :mod:`ctypes`.
``cffi``
    ``cffi.FFI().set_source(...).compile()`` drives the same system
    compiler through distutils; the produced extension module is *also*
    loaded with ctypes (we only need the exported C symbols, not a Python
    module), so both toolchains share one calling convention.

Artifacts land in ``REPRO_NATIVE_DIR`` (or a per-process temp directory
cleaned at exit) under a content hash of the generated source, so identical
plans — across threads, plan-cache evict/rebuild cycles, or single/batched
variants of one shape — compile at most once per directory.  The compile
writes to a unique temp name and ``os.replace``-s it into place, which
keeps concurrent first-compiles (two threads, or two processes sharing a
directory) down to one visible ``.so``.

:meth:`NativeKernel.release` unlinks the artifact but never ``dlclose``-s:
on Linux unlinking a mapped shared object is safe, while unmapping code
another thread may be executing is not.  Eviction from the plan cache
therefore reclaims disk immediately and address space at process exit.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from hashlib import sha256

from .codegen import KernelSpec, banded_pass_symbol, pass_symbol

__all__ = [
    "NativeKernel",
    "CompileError",
    "NativeScratchError",
    "find_compiler",
    "compiler_available",
    "compile_spec",
    "toolchain_name",
]

#: probe order when $CC is unset
_DEFAULT_COMPILERS = ("cc", "gcc", "clang")

_CFLAGS = ("-shared", "-O3", "-fPIC", "-fno-strict-aliasing")

_lock = threading.Lock()
_which_cache: dict[tuple[str | None, str | None], str | None] = {}
_workdir: str | None = None


class CompileError(RuntimeError):
    """A toolchain was present but failed to produce a loadable object."""


class NativeScratchError(MemoryError):
    """Scratch ``malloc`` failed inside a generated pass.

    A pass that cannot allocate its staging buffer returns before moving a
    single element, so the failure position is exact: every pass before
    ``pass_index`` (and every tile before ``tile``) completed, nothing at or
    after it ran.  The numpy fallback resumes from exactly there.
    """

    def __init__(self, pass_index: int, tile: int = 0):
        super().__init__(
            "native kernel scratch allocation failed "
            f"(pass {pass_index}, tile {tile})"
        )
        self.pass_index = pass_index
        self.tile = tile


def find_compiler() -> str | None:
    """Absolute path of the C compiler to use, or ``None``.

    ``$CC``, when set, is authoritative — an unresolvable ``$CC`` means "no
    compiler", it does not fall through to the PATH probe.  Results are
    memoized per ``(CC, PATH)`` so the auto-backend check in every
    ``transpose_inplace`` call stays cheap.
    """
    env_cc = os.environ.get("CC")
    key = (env_cc, os.environ.get("PATH"))
    with _lock:
        if key in _which_cache:
            return _which_cache[key]
    if env_cc is not None:
        found = shutil.which(env_cc)
    else:
        found = None
        for cand in _DEFAULT_COMPILERS:
            found = shutil.which(cand)
            if found:
                break
    with _lock:
        _which_cache[key] = found
    return found


def compiler_available() -> bool:
    """True when a usable C compiler is on this machine."""
    return find_compiler() is not None


def _cffi_available() -> bool:
    try:
        import cffi  # noqa: F401
    except Exception:  # repro-lint: allow(exception-swallow) availability probe: any import failure just means "no cffi toolchain", there is no reason to preserve
        return False
    return True


def toolchain_name() -> str | None:
    """Which toolchain :func:`compile_spec` will use: ``cc``, ``cffi`` or
    ``None`` when neither can work.  ``REPRO_NATIVE_TOOLCHAIN`` forces the
    choice (``auto`` | ``cc`` | ``cffi``)."""
    pref = os.environ.get("REPRO_NATIVE_TOOLCHAIN", "auto")
    have_cc = compiler_available()
    if pref == "cc":
        return "cc" if have_cc else None
    if pref == "cffi":
        return "cffi" if (have_cc and _cffi_available()) else None
    # auto: the direct invocation needs no third-party package, prefer it
    if have_cc:
        return "cc"
    return None


def workdir() -> str:
    """Artifact directory: ``REPRO_NATIVE_DIR`` or a per-process tempdir
    removed at interpreter exit."""
    env_dir = os.environ.get("REPRO_NATIVE_DIR")
    if env_dir:
        os.makedirs(env_dir, exist_ok=True)
        return env_dir
    global _workdir
    with _lock:
        if _workdir is None:
            _workdir = tempfile.mkdtemp(prefix="repro-native-")
            atexit.register(shutil.rmtree, _workdir, ignore_errors=True)
        return _workdir


def _artifact_path(source: str) -> str:
    digest = sha256(source.encode()).hexdigest()[:16]
    return os.path.join(workdir(), f"repro_native_{digest}.so")


def _compile_cc(source: str, out_path: str, cc: str) -> None:
    dirpath = os.path.dirname(out_path)
    fd, c_path = tempfile.mkstemp(suffix=".c", dir=dirpath)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(source)
        fd2, tmp_so = tempfile.mkstemp(suffix=".so", dir=dirpath)
        os.close(fd2)
        try:
            proc = subprocess.run(
                [cc, *_CFLAGS, c_path, "-o", tmp_so],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise CompileError(
                    f"{cc} failed ({proc.returncode}): {proc.stderr.strip()[:500]}"
                )
            os.replace(tmp_so, out_path)  # atomic: racers see one artifact
        except BaseException:
            try:
                os.unlink(tmp_so)
            except OSError:
                pass
            raise
    finally:
        try:
            os.unlink(c_path)
        except OSError:
            pass


def _compile_cffi(source: str, out_path: str) -> None:
    import cffi

    dirpath = os.path.dirname(out_path)
    build_dir = tempfile.mkdtemp(prefix="cffi-", dir=dirpath)
    try:
        ffi = cffi.FFI()
        ffi.set_source(
            "_repro_native_cffi",
            source,
            extra_compile_args=["-O3", "-fno-strict-aliasing"],
        )
        try:
            lib_path = ffi.compile(tmpdir=build_dir)
        except Exception as exc:  # distutils raises a zoo of types
            raise CompileError(f"cffi compile failed: {exc}") from exc
        os.replace(lib_path, out_path)
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)


def compile_spec(spec: KernelSpec) -> "NativeKernel":
    """Compile (or reuse) the artifact for ``spec`` and load it.

    Raises :class:`CompileError` when no toolchain is available or the
    compile fails; callers translate that into the numpy fallback.
    """
    path = _artifact_path(spec.source)
    if not os.path.exists(path):
        tc = toolchain_name()
        if tc is None:
            raise CompileError("no C compiler available")
        cc = find_compiler()
        assert cc is not None
        if tc == "cffi":
            _compile_cffi(spec.source, path)
        else:
            _compile_cc(spec.source, path, cc)
    return NativeKernel(spec, path)


class NativeKernel:
    """A loaded per-plan shared object and its typed entry points.

    All entry points take the raw buffer address (ctypes releases the GIL
    for the duration of the call, so the thread backend gets true
    parallelism out of per-pass range calls) and return 0 on success or 1
    when scratch allocation failed before any element moved.
    """

    def __init__(self, spec: KernelSpec, path: str):
        self.spec = spec
        self.path = path
        try:
            self.artifact_bytes = os.path.getsize(path)
        except OSError:
            self.artifact_bytes = 0
        self._released = False
        self._lock = threading.Lock()
        lib = ctypes.CDLL(path)
        self._run = lib.repro_run
        self._run.argtypes = [ctypes.c_void_p]
        self._run.restype = ctypes.c_int
        self._run_batch = lib.repro_run_batch
        self._run_batch.argtypes = [ctypes.c_void_p, ctypes.c_int64]
        self._run_batch.restype = ctypes.c_int
        self._pass_fns = []
        self._pass_batch_fns = []
        self._pass_banded_fns = []
        for p in spec.passes:
            fn = getattr(lib, pass_symbol(p.kind))
            fn.argtypes = [ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64]
            fn.restype = ctypes.c_int
            self._pass_fns.append(fn)
            bfn = getattr(lib, pass_symbol(p.kind) + "_batch")
            bfn.argtypes = [ctypes.c_void_p, ctypes.c_int64]
            bfn.restype = ctypes.c_int
            self._pass_batch_fns.append(bfn)
            bsym = banded_pass_symbol(p.kind)
            if bsym is None:
                self._pass_banded_fns.append(None)
            else:
                nfn = getattr(lib, bsym)
                nfn.argtypes = [
                    ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
                    ctypes.c_int64, ctypes.c_int64,
                ]
                nfn.restype = ctypes.c_int
                self._pass_banded_fns.append(nfn)
        self._lib = lib  # keep the CDLL (and its mapping) alive

    @property
    def passes(self):
        return self.spec.passes

    # -- execution ---------------------------------------------------------

    def run(self, addr: int) -> None:
        """All passes over one ``m x n`` tile at buffer address ``addr``."""
        rc = self._run(addr)
        if rc != 0:
            raise NativeScratchError(rc - 1)

    def run_batch(self, addr: int, k: int) -> None:
        """All passes over ``k`` consecutive tiles."""
        rc = self._run_batch(addr, k)
        if rc != 0:
            npasses = len(self._pass_fns)
            gpi = rc - 1
            raise NativeScratchError(gpi % npasses, gpi // npasses)

    def run_pass(self, idx: int, addr: int, lo: int, hi: int) -> None:
        """Pass ``idx`` over ``[lo, hi)`` of its parallel axis."""
        if self._pass_fns[idx](addr, lo, hi) != 0:
            raise NativeScratchError(idx)

    def run_pass_batch(self, idx: int, addr: int, k: int) -> None:
        """Pass ``idx`` over the full axis of ``k`` consecutive tiles."""
        rc = self._pass_batch_fns[idx](addr, k)
        if rc != 0:
            raise NativeScratchError(idx, rc - 1)

    def has_banded(self, idx: int) -> bool:
        """Whether pass ``idx`` exports a band-rebased entry point."""
        return self._pass_banded_fns[idx] is not None

    def run_pass_banded(
        self, idx: int, addr: int, lo: int, hi: int,
        row_stride: int, origin: int,
    ) -> None:
        """Pass ``idx`` over global ``[lo, hi)`` against a band buffer.

        ``addr`` points at a copy holding only this pass's band — columns
        (or column groups) ``[origin, ...)`` of every row, ``row_stride``
        elements per row.  The index math runs in global coordinates;
        only the addressing is rebased, so the result is bit-identical to
        running the full-width pass on the whole matrix.
        """
        fn = self._pass_banded_fns[idx]
        if fn is None:
            raise ValueError(
                f"pass {idx} ({self.spec.passes[idx].kind}) has no banded "
                "entry point; run it on a full-stride buffer instead"
            )
        if fn(addr, lo, hi, row_stride, origin) != 0:
            raise NativeScratchError(idx)

    # -- lifecycle ---------------------------------------------------------

    def release(self) -> None:
        """Unlink the on-disk artifact (idempotent).  The mapping stays
        valid for in-flight calls; disk is reclaimed now, address space at
        process exit."""
        with self._lock:
            if self._released:
                return
            self._released = True
        try:
            os.unlink(self.path)
        except OSError:
            pass

    @property
    def released(self) -> bool:
        return self._released

    def __repr__(self) -> str:
        s = self.spec
        return (
            f"NativeKernel({s.algorithm} {s.m}x{s.n} itemsize={s.itemsize}, "
            f"{self.artifact_bytes}B @ {self.path})"
        )
