"""Out-of-core in-place transposition of file-backed matrices.

The ``O(max(m, n))`` auxiliary bound is exactly what makes the
decomposition usable when the matrix itself does not fit in RAM: the strict
kernels permute one row or column at a time through a single scratch
vector, so a memory-mapped buffer works unmodified.  This module packages
that: transpose a raw binary file of ``m x n`` elements in place, touching
only ``O(max(m, n))`` bytes of process memory beyond the page cache.

Column passes over a row-major file are seek-heavy (one element per row) —
that is inherent to the storage order, and the paper's cache-aware sub-row
grouping (``repro.cache``) is the mitigation; the blocked pre-rotation used
here already moves ``b``-column groups per operation.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .c2r import c2r_transpose
from .r2c import r2c_transpose
from .transpose import choose_algorithm

__all__ = ["transpose_file_inplace"]


def transpose_file_inplace(
    path: str | os.PathLike,
    m: int,
    n: int,
    dtype,
    order: str = "C",
    *,
    algorithm: str = "auto",
) -> None:
    """Transpose the ``m x n`` matrix stored in a raw binary file, in place.

    Parameters
    ----------
    path:
        File holding exactly ``m * n`` elements of ``dtype`` in ``order``
        storage.  Rewritten in place; afterwards it holds the ``n x m``
        transpose in the same order.
    algorithm:
        ``"auto"`` (paper heuristic), ``"c2r"`` or ``"r2c"``.

    Raises :class:`ValueError` when the file size does not match the shape.
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    expected = m * n * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path} holds {actual} bytes; {m}x{n} {dtype} needs {expected}"
        )
    if order not in ("C", "F"):
        raise ValueError(f"unknown order {order!r}")
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)

    buf = np.memmap(path, dtype=dtype, mode="r+", shape=(m * n,))
    try:
        vm, vn = (m, n) if order == "C" else (n, m)
        # strict mode: one row/column at a time through O(max(m, n)) scratch
        if algorithm == "c2r":
            c2r_transpose(buf, vm, vn, aux="strict")
        else:
            r2c_transpose(buf, vn, vm, aux="strict")
        buf.flush()
    finally:
        del buf
