"""Out-of-core in-place transposition of file-backed matrices.

The ``O(max(m, n))`` auxiliary bound is exactly what makes the
decomposition usable when the matrix itself does not fit in RAM.  This
module keeps the original public surface —
``transpose_file_inplace(path, m, n, dtype, order)`` — but the execution
now routes through :mod:`repro.stream`: the file is processed band by
band under a byte-budgeted resident window instead of one unbounded
memmap walk, each band is flushed (``msync`` + page drop) before the
next loads, and the schedule is pre-proven race-free by
:func:`repro.analysis.racecheck.check_banded_schedule`.

Observability parity with the in-RAM paths: the streamed run emits an
``op.stream.*`` span, per-pass ``pass.*`` spans and band spans, and
records ``stream.transpose`` bytes-moved metrics.  Failure semantics are
deterministic — on a pass failure every band already stored has been
synced, the mapping is flushed best-effort, and the error propagates
(the old path's ``finally: del buf`` silently skipped the flush).
"""

from __future__ import annotations

import os

__all__ = ["transpose_file_inplace"]


def transpose_file_inplace(
    path: str | os.PathLike,
    m: int,
    n: int,
    dtype,
    order: str = "C",
    *,
    algorithm: str = "auto",
    window_bytes: int | None = None,
    backend: str = "threads",
    n_threads: int = 1,
) -> None:
    """Transpose the ``m x n`` matrix stored in a raw binary file, in place.

    Parameters
    ----------
    path:
        File holding exactly ``m * n`` elements of ``dtype`` in ``order``
        storage.  Rewritten in place; afterwards it holds the ``n x m``
        transpose in the same order.
    algorithm:
        ``"auto"`` (paper heuristic), ``"c2r"`` or ``"r2c"``.
    window_bytes:
        Resident byte budget per band (default ``REPRO_STREAM_WINDOW`` or
        256 MiB); files smaller than the window run as a single band.
    backend / n_threads:
        Chunk parallelism within a band (``"threads"`` or ``"mp"``).

    Raises :class:`ValueError` when the file size does not match the shape.
    """
    # Late import: repro.stream depends on core/parallel/analysis; binding
    # it at call time keeps the core package import graph acyclic.
    from ..stream import transpose_file_inplace as _streamed

    _streamed(
        path, m, n, dtype, order,
        algorithm=algorithm,
        window_bytes=window_bytes,
        backend=backend,
        n_threads=n_threads,
    )
