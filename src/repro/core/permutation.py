"""Permutation algebra.

The paper reasons about transposition as compositions of gather and scatter
permutations; this module gives those objects a concrete, testable form used
throughout the reproduction (proofs-as-tests, the cycle-following baselines,
and the cache-aware kernels).

Conventions
-----------
A :class:`Permutation` ``P`` of size ``k`` stores the *gather map* ``g``:
applying ``P`` to a vector ``x`` produces ``y`` with ``y[i] = x[g[i]]``.
The *scatter map* is the inverse: ``y[s[i]] = x[i]`` with ``s = g^{-1}``
(the paper's Eq. 13-14 use exactly this duality).

Composition follows the paper's Section 4.2 rule for gathers: gathering with
``f`` then gathering with ``g`` equals gathering with ``f . g``
(``(f.g)(i) = f(g(i))``), so ``(P @ Q)`` means "apply ``P`` first, ``Q``
second".
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

__all__ = ["Permutation"]


class Permutation:
    """An explicit permutation of ``[0, k)`` stored as a gather map."""

    __slots__ = ("gather",)

    def __init__(self, gather: Sequence[int] | np.ndarray, *, validate: bool = True):
        g = np.asarray(gather, dtype=np.int64)
        if g.ndim != 1:
            raise ValueError("permutation must be one-dimensional")
        if validate and not self._is_bijection(g):
            raise ValueError("gather map is not a bijection")
        self.gather = g

    # -- constructors -------------------------------------------------------

    @classmethod
    def identity(cls, k: int) -> "Permutation":
        """The identity permutation of size ``k``."""
        return cls(np.arange(k, dtype=np.int64), validate=False)

    @classmethod
    def rotation(cls, k: int, amount: int) -> "Permutation":
        """Upward rotation by ``amount``: ``y[i] = x[(i + amount) mod k]``.

        Matches the paper's column-rotation convention
        (``x'[i] = x[(i + k) mod m]``, Section 3).
        """
        if k <= 0:
            raise ValueError("size must be positive")
        return cls((np.arange(k, dtype=np.int64) + amount) % k, validate=False)

    @classmethod
    def from_function(cls, k: int, fn: Callable[[int], int]) -> "Permutation":
        """Build from a scalar index function (validated)."""
        return cls(np.fromiter((fn(i) for i in range(k)), dtype=np.int64, count=k))

    @classmethod
    def random(cls, k: int, rng: np.random.Generator) -> "Permutation":
        """A uniformly random permutation (Fisher-Yates via numpy)."""
        return cls(rng.permutation(k).astype(np.int64), validate=False)

    # -- core operations ----------------------------------------------------

    @staticmethod
    def _is_bijection(g: np.ndarray) -> bool:
        k = g.shape[0]
        if k == 0:
            return True
        if g.min() < 0 or g.max() >= k:
            return False
        seen = np.zeros(k, dtype=bool)
        seen[g] = True
        return bool(seen.all())

    def __len__(self) -> int:
        return int(self.gather.shape[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply as a gather: returns ``x[gather]`` (a new array)."""
        return np.asarray(x)[self.gather]

    def apply_scatter(self, x: np.ndarray) -> np.ndarray:
        """Apply as a scatter: ``y[gather[i]] = x[i]``.

        Scattering with map ``g`` equals gathering with ``g^{-1}``.
        """
        x = np.asarray(x)
        y = np.empty_like(x)
        y[self.gather] = x
        return y

    def inverse(self) -> "Permutation":
        """The inverse permutation (gather map of the scatter form)."""
        inv = np.empty_like(self.gather)
        inv[self.gather] = np.arange(len(self), dtype=np.int64)
        return Permutation(inv, validate=False)

    def __matmul__(self, other: "Permutation") -> "Permutation":
        """Gather composition: ``(self @ other)`` applies self first.

        ``(self @ other)(x) == other(self(x))`` and the combined gather map is
        ``self.gather[other.gather]`` (Section 4.2's ``(f . g)(i) = f(g(i))``).
        """
        if len(self) != len(other):
            raise ValueError("size mismatch in permutation composition")
        return Permutation(self.gather[other.gather], validate=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return np.array_equal(self.gather, other.gather)

    def __hash__(self):  # pragma: no cover - permutations are not dict keys
        return hash(self.gather.tobytes())

    def __repr__(self) -> str:
        body = np.array2string(self.gather, threshold=16)
        return f"Permutation({body})"

    # -- structure ----------------------------------------------------------

    def cycles(self) -> Iterator[list[int]]:
        """Yield the cycles of the permutation (as index lists).

        Cycles are reported in order of their smallest element ("cycle
        leader"), matching the cycle-following literature the paper cites.
        Fixed points are yielded as length-1 cycles.
        """
        k = len(self)
        visited = np.zeros(k, dtype=bool)
        g = self.gather
        for start in range(k):
            if visited[start]:
                continue
            cyc = [start]
            visited[start] = True
            nxt = int(g[start])
            while nxt != start:
                cyc.append(nxt)
                visited[nxt] = True
                nxt = int(g[nxt])
            yield cyc

    def cycle_lengths(self) -> list[int]:
        """Lengths of all cycles (including fixed points)."""
        return [len(c) for c in self.cycles()]

    def order(self) -> int:
        """The order of the permutation (lcm of cycle lengths)."""
        out = 1
        for length in self.cycle_lengths():
            out = np.lcm(out, length)
        return int(out)

    def is_identity(self) -> bool:
        """True when every element maps to itself."""
        return bool(np.array_equal(self.gather, np.arange(len(self))))
