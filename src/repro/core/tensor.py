"""In-place axis permutations of 3-D tensors.

Two ubiquitous tensor reorderings reduce to the paper's algorithm:

* ``(k, m, n) -> (k, n, m)`` — transpose every matrix of a batch: exactly
  the batched plan (the batch axis rides along).
* ``(m, n, k) -> (n, m, k)`` — swap the two leading axes: a transpose of
  the ``m x n`` grid of ``k``-element *super-elements*.  The decomposition
  never looks inside elements, so a void-dtype view of width ``k *
  itemsize`` turns this into an ordinary in-place matrix transpose with the
  same `O(max(m, n))`-super-element scratch bound.

Both return reshaped views of the same memory.
"""

from __future__ import annotations

import numpy as np

from .batched import BatchedTransposePlan
from .transpose import transpose_inplace

__all__ = ["swap_last_axes_inplace", "swap_first_axes_inplace"]


def _require_c_contiguous(t: np.ndarray) -> None:
    if t.ndim != 3:
        raise ValueError("expected a 3-D tensor")
    if not t.flags["C_CONTIGUOUS"]:
        raise ValueError("in-place axis swaps require a C-contiguous tensor")


def swap_last_axes_inplace(t: np.ndarray) -> np.ndarray:
    """Permute ``(k, m, n) -> (k, n, m)`` in place.

    Returns a view of the same memory with the new shape.

    >>> import numpy as np
    >>> from repro.core.tensor import swap_last_axes_inplace
    >>> t = np.arange(24.0).reshape(2, 3, 4)
    >>> expected = t.transpose(0, 2, 1).copy()
    >>> out = swap_last_axes_inplace(t)
    >>> bool((out == expected).all()) and np.shares_memory(out, t)
    True
    """
    _require_c_contiguous(t)
    k, m, n = t.shape
    BatchedTransposePlan(m, n).execute(t)
    return t.reshape(k * m * n).reshape(k, n, m)


def swap_first_axes_inplace(t: np.ndarray) -> np.ndarray:
    """Permute ``(m, n, k) -> (n, m, k)`` in place.

    The trailing axis is carried as an opaque super-element.  Returns a
    view of the same memory with the new shape.

    >>> import numpy as np
    >>> from repro.core.tensor import swap_first_axes_inplace
    >>> t = np.arange(24.0).reshape(3, 4, 2)
    >>> expected = t.transpose(1, 0, 2).copy()
    >>> out = swap_first_axes_inplace(t)
    >>> bool((out == expected).all()) and np.shares_memory(out, t)
    True
    """
    _require_c_contiguous(t)
    m, n, k = t.shape
    flat = t.reshape(-1)
    super_dtype = np.dtype((np.void, k * t.dtype.itemsize))
    transpose_inplace(flat.view(super_dtype), m, n)
    return flat.reshape(n, m, k)
