"""The R2C ("Rows to Columns") in-place transposition — inverse of C2R.

R2C is derived by reversing the order of the C2R passes and inverting each
permutation (Section 4.3).  In the three-pass (gather) formulation:

1. **Column shuffle** gathering with the fused inverse
   ``s'^{-1}_j(i) = q^{-1}((i - j) mod m)`` (the gather composition of
   Eq. 34 and Eq. 35).
2. **Row shuffle** gathering with ``d'_i`` directly (Eq. 24 — no inversion
   needed in this direction, as Section 4.3 notes).
3. **Post-rotation** (only when ``gcd(m, n) > 1``) gathering with
   ``r^{-1}_j(i) = (i - j // b) mod m`` (Eq. 36).

The *restricted* formulation splits pass 1 into its two primitives — a
row permutation by ``q^{-1}`` (Eq. 34) followed by a column rotation by
``p^{-1}_j`` (Eq. 35) — the form used by the SIMD in-register transpose.

``R2C(C2R(x)) == x`` and ``C2R(R2C(x)) == x`` for every buffer (tested).
R2C implements transposition for column-major arrays (Theorem 1) and — after
swapping the dimensions — for row-major arrays (Theorem 2).

``variant``/``aux`` mirror :func:`repro.core.c2r.c2r_transpose`:
``variant="scatter"`` scatters the row shuffle with ``d'^{-1}`` instead of
gathering with ``d'`` (the two are dual).
"""

from __future__ import annotations

import numpy as np

from . import equations as eq
from . import steps
from .indexing import Decomposition
from .steps import Scratch, WorkCounter

__all__ = ["r2c_transpose"]

VARIANTS = ("gather", "scatter", "restricted")
AUX_MODES = ("strict", "blocked")


def _strict_inverse_column_shuffle(
    V: np.ndarray,
    dec: Decomposition,
    scratch: Scratch,
    counter: WorkCounter | None,
) -> None:
    """Pass 1: gather each column with the fused ``s'^{-1}_j``."""
    m = dec.m
    tmp = scratch.buf[:m]
    rows = np.arange(m, dtype=np.int64)
    for j in range(dec.n):
        idx = eq.sprime_inverse_v(dec, rows, j)
        tmp[:] = V[idx, j]
        V[:, j] = tmp
        if counter is not None:
            counter.add(m, m)


def r2c_transpose(
    buf: np.ndarray,
    m: int,
    n: int,
    *,
    variant: str = "gather",
    aux: str = "blocked",
    counter: WorkCounter | None = None,
) -> np.ndarray:
    """Perform the R2C transposition in place on a linear buffer.

    Parameters mirror :func:`repro.core.c2r.c2r_transpose`.  The dimensions
    ``(m, n)`` describe the same logical view the matching C2R call would
    use; the buffer is interpreted as the row-major ``m x n`` view during the
    passes.

    Returns the same ``buf``; ``R2C`` inverts ``C2R`` exactly.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if aux not in AUX_MODES:
        raise ValueError(f"unknown aux mode {aux!r}; expected one of {AUX_MODES}")
    if counter is not None and aux != "strict":
        raise ValueError("work counting is only meaningful in strict mode")
    if not buf.flags["C_CONTIGUOUS"]:
        raise ValueError(
            "in-place transposition requires a contiguous buffer "
            "(a non-contiguous view would be silently copied, not permuted)"
        )
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")

    dec = Decomposition.of(m, n)
    V = buf.reshape(m, n)

    if aux == "strict":
        scratch = Scratch.for_shape(m, n, buf.dtype)
        if variant == "restricted":
            rows = np.arange(m, dtype=np.int64)
            q_inv = eq.permute_q_inverse_v(dec, rows)
            steps.permute_rows_strict(V, q_inv, scratch=scratch, counter=counter)
            steps.rotate_p_strict(
                V, dec, inverse=True, scratch=scratch, counter=counter
            )
        else:
            _strict_inverse_column_shuffle(V, dec, scratch, counter)
        if variant == "scatter":
            steps.shuffle_rows_strict(
                V,
                dec,
                gather=False,
                use_dprime=False,
                scratch=scratch,
                counter=counter,
            )
        else:
            steps.shuffle_rows_strict(
                V, dec, gather=True, use_dprime=True, scratch=scratch, counter=counter
            )
        if dec.c > 1:
            steps.rotate_columns_strict(
                V, dec, inverse=True, scratch=scratch, counter=counter
            )
    else:
        if variant == "restricted":
            rows = np.arange(m, dtype=np.int64)
            steps.permute_rows_blocked(V, eq.permute_q_inverse_v(dec, rows))
            steps.rotate_p_blocked(V, dec, inverse=True)
        else:
            V[:] = np.take_along_axis(V, eq.sprime_inverse_matrix(dec), axis=0)
        if variant == "scatter":
            out = np.empty_like(V)
            np.put_along_axis(out, eq.dprime_inverse_matrix(dec), V, axis=1)
            V[:] = out
        else:
            steps.shuffle_rows_blocked(V, dec, use_dprime=True)
        if dec.c > 1:
            steps.rotate_columns_blocked(V, dec, inverse=True)
    return buf
