"""Linearization and index maps from Section 2 of the paper.

The paper (Catanzaro, Keller, Garland; PPoPP 2014) defines transposition in
terms of four index functions over a logical ``m x n`` array:

* row-major linearization ``lrm`` and its inverse pair ``irm``/``jrm``
  (Eq. 1-3),
* column-major linearization ``lcm`` and its inverse pair ``icm``/``jcm``
  (Eq. 4-6),
* the C2R gather source ``s``/``c`` (Eq. 7-8), and
* the R2C gather source ``t``/``d`` (Eq. 9-10).

Every function exists in two forms: a scalar form that mirrors the paper's
equations one-to-one (used in tests and documentation), and a vectorized form
operating on numpy integer arrays (used by the production kernels).  The
vectorized forms accept and return ``numpy.int64`` arrays and are safe for the
matrix sizes benchmarked in the paper (``m, n < 2**31``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Decomposition",
    "lrm",
    "irm",
    "jrm",
    "lcm",
    "icm",
    "jcm",
    "s_index",
    "c_index",
    "t_index",
    "d_index",
    "lrm_v",
    "irm_v",
    "jrm_v",
    "lcm_v",
    "icm_v",
    "jcm_v",
    "s_index_v",
    "c_index_v",
    "t_index_v",
    "d_index_v",
]


@dataclass(frozen=True)
class Decomposition:
    """The gcd decomposition of a matrix shape (Section 3).

    For an ``m x n`` matrix the paper defines ``c = gcd(m, n)``, ``a = m / c``
    and ``b = n / c``.  These constants control the entire algorithm:

    * ``c == 1`` (coprime dimensions) means the row shuffle is naturally
      bijective and the pre-rotation step can be skipped entirely;
    * otherwise columns are pre-rotated in groups of ``b`` (Lemma 1 shows the
      destination-column map ``d_i`` is periodic with period ``b``).

    Attributes mirror the paper's notation exactly.
    """

    m: int
    n: int
    c: int
    a: int
    b: int

    @classmethod
    def of(cls, m: int, n: int) -> "Decomposition":
        """Build the decomposition for an ``m x n`` matrix.

        Raises :class:`ValueError` for non-positive dimensions.
        """
        if m <= 0 or n <= 0:
            raise ValueError(f"matrix dimensions must be positive, got {m} x {n}")
        c = math.gcd(m, n)
        return cls(m=m, n=n, c=c, a=m // c, b=n // c)

    @property
    def coprime(self) -> bool:
        """True when ``gcd(m, n) == 1`` and the pre-rotation is unnecessary."""
        return self.c == 1

    @property
    def size(self) -> int:
        """Total number of elements ``m * n``."""
        return self.m * self.n


# ---------------------------------------------------------------------------
# Scalar forms (Eq. 1-10)
# ---------------------------------------------------------------------------

def lrm(i: int, j: int, n: int) -> int:
    """Row-major linear index (Eq. 1): ``l = j + i * n``."""
    return j + i * n


def irm(l: int, n: int) -> int:
    """Row index of row-major linear index ``l`` (Eq. 2)."""
    return l // n


def jrm(l: int, n: int) -> int:
    """Column index of row-major linear index ``l`` (Eq. 3)."""
    return l % n


def lcm(i: int, j: int, m: int) -> int:
    """Column-major linear index (Eq. 4): ``l = i + j * m``."""
    return i + j * m


def icm(l: int, m: int) -> int:
    """Row index of column-major linear index ``l`` (Eq. 5)."""
    return l % m


def jcm(l: int, m: int) -> int:
    """Column index of column-major linear index ``l`` (Eq. 6)."""
    return l // m


def s_index(i: int, j: int, m: int, n: int) -> int:
    """C2R gather source row (Eq. 7): ``s(i, j) = lrm(i, j) mod m``."""
    return lrm(i, j, n) % m


def c_index(i: int, j: int, m: int, n: int) -> int:
    """C2R gather source column (Eq. 8): ``c(i, j) = floor(lrm(i, j) / m)``."""
    return lrm(i, j, n) // m


def t_index(i: int, j: int, m: int, n: int) -> int:
    """R2C gather source row (Eq. 9): ``t(i, j) = floor(lcm(i, j) / n)``."""
    return lcm(i, j, m) // n


def d_index(i: int, j: int, m: int, n: int) -> int:
    """R2C gather source column (Eq. 10): ``d(i, j) = lcm(i, j) mod n``."""
    return lcm(i, j, m) % n


# ---------------------------------------------------------------------------
# Vectorized forms
# ---------------------------------------------------------------------------

def _as_i64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int64)


def lrm_v(i, j, n: int) -> np.ndarray:
    """Vectorized Eq. 1."""
    return _as_i64(j) + _as_i64(i) * np.int64(n)


def irm_v(l, n: int) -> np.ndarray:
    """Vectorized Eq. 2."""
    return _as_i64(l) // np.int64(n)


def jrm_v(l, n: int) -> np.ndarray:
    """Vectorized Eq. 3."""
    return _as_i64(l) % np.int64(n)


def lcm_v(i, j, m: int) -> np.ndarray:
    """Vectorized Eq. 4."""
    return _as_i64(i) + _as_i64(j) * np.int64(m)


def icm_v(l, m: int) -> np.ndarray:
    """Vectorized Eq. 5."""
    return _as_i64(l) % np.int64(m)


def jcm_v(l, m: int) -> np.ndarray:
    """Vectorized Eq. 6."""
    return _as_i64(l) // np.int64(m)


def s_index_v(i, j, m: int, n: int) -> np.ndarray:
    """Vectorized Eq. 7."""
    return lrm_v(i, j, n) % np.int64(m)


def c_index_v(i, j, m: int, n: int) -> np.ndarray:
    """Vectorized Eq. 8."""
    return lrm_v(i, j, n) // np.int64(m)


def t_index_v(i, j, m: int, n: int) -> np.ndarray:
    """Vectorized Eq. 9."""
    return lcm_v(i, j, m) // np.int64(n)


def d_index_v(i, j, m: int, n: int) -> np.ndarray:
    """Vectorized Eq. 10."""
    return lcm_v(i, j, m) % np.int64(n)
