"""The permutation index equations of Sections 3 and 4.

This module is the algorithmic heart of the reproduction.  It implements, in
both scalar (paper-mirroring) and vectorized (production) form, every index
equation used by the decomposed transposition:

=====================  ======  ====================================================
name                   paper   role
=====================  ======  ====================================================
``rotate_r``           Eq. 23  C2R pre-rotation gather (columns rotated by ``j//b``)
``dprime``             Eq. 24  row-shuffle destination column (scatter form)
``dprime_inverse``     Eq. 31  row-shuffle gather form (via ``mmi(a, b)``)
``sprime``             Eq. 26  column-shuffle gather source row
``rotate_p``           Eq. 32  column-rotation factor of the column shuffle
``permute_q``          Eq. 33  static row-permutation factor of the column shuffle
``permute_q_inverse``  Eq. 34  gather form of the row permutation (via ``mmi(b, a)``)
``rotate_p_inverse``   Eq. 35  inverse column rotation (R2C)
``rotate_r_inverse``   Eq. 36  inverse pre-rotation (R2C post-rotation)
=====================  ======  ====================================================

The decomposition identity proved in Section 4.2 — ``(p_j . q)(i) == s'_j(i)``
for gather composition — and the inversion identities are covered by the
property tests in ``tests/core/test_equations.py``.

All vectorized functions take a :class:`~repro.core.indexing.Decomposition`
and numpy index arrays; they return ``int64`` arrays and never touch matrix
data.  Whole-matrix index-plan builders used by the blocked kernels live here
too (``rotate_r_matrix`` and friends).
"""

from __future__ import annotations

import numpy as np

from .indexing import Decomposition
from .numbertheory import mmi

__all__ = [
    "rotate_r",
    "rotate_r_inverse",
    "d_dest",
    "dprime",
    "dprime_inverse",
    "sprime",
    "sprime_inverse",
    "rotate_p",
    "rotate_p_inverse",
    "permute_q",
    "permute_q_inverse",
    "rotate_r_v",
    "rotate_r_inverse_v",
    "dprime_v",
    "dprime_inverse_v",
    "sprime_v",
    "sprime_inverse_v",
    "rotate_p_v",
    "rotate_p_inverse_v",
    "permute_q_v",
    "permute_q_inverse_v",
    "rotate_r_matrix",
    "rotate_r_inverse_matrix",
    "dprime_matrix",
    "dprime_inverse_matrix",
    "sprime_matrix",
    "sprime_inverse_matrix",
    "rotate_p_matrix",
    "rotate_p_inverse_matrix",
]


# ---------------------------------------------------------------------------
# Scalar forms
# ---------------------------------------------------------------------------

def d_dest(dec: Decomposition, i: int, j: int) -> int:
    """Unrotated destination column ``d_i(j) = (i + j*m) mod n`` (Eq. 22).

    Periodic with period ``b`` (Lemma 1); bijective only when ``c == 1``.
    """
    return (i + j * dec.m) % dec.n


def rotate_r(dec: Decomposition, i: int, j: int) -> int:
    """Pre-rotation gather row (Eq. 23): ``r_j(i) = (i + j//b) mod m``.

    Column ``j`` of the rotated array gathers from row ``r_j(i)`` of the
    source, i.e. column ``j`` is rotated upward by ``j // b`` positions.
    """
    return (i + j // dec.b) % dec.m


def rotate_r_inverse(dec: Decomposition, i: int, j: int) -> int:
    """Inverse pre-rotation gather row (Eq. 36): ``(i - j//b) mod m``."""
    return (i - j // dec.b) % dec.m


def dprime(dec: Decomposition, i: int, j: int) -> int:
    """Post-rotation destination column (Eq. 24).

    ``d'_i(j) = (((i + j//b) mod m) + j*m) mod n`` — the scatter target of
    element ``j`` in row ``i`` during the row shuffle.  Theorem 3 proves this
    is a bijection on ``[0, n)`` for every fixed row ``i``.
    """
    return ((i + j // dec.b) % dec.m + j * dec.m) % dec.n


def _f_helper(dec: Decomposition, i: int, j: int) -> int:
    """The helper ``f(i, j)`` from Section 4.2 (used by Eq. 31)."""
    base = j + i * (dec.n - 1)
    if i - (j % dec.c) + dec.c <= dec.m:
        return base
    return base + dec.m


def dprime_inverse(dec: Decomposition, i: int, j: int) -> int:
    """Gather form of the row shuffle (Eq. 31).

    ``d'^{-1}_i(j) = (a^{-1} * floor(f(i,j)/c)) mod b + (f(i,j) mod c) * b``
    with ``a^{-1} = mmi(a, b)``.  Satisfies
    ``dprime(dec, i, dprime_inverse(dec, i, j)) == j``.
    """
    a_inv = mmi(dec.a, dec.b)
    f = _f_helper(dec, i, j)
    return (a_inv * (f // dec.c)) % dec.b + (f % dec.c) * dec.b


def sprime(dec: Decomposition, i: int, j: int) -> int:
    """Column-shuffle gather source row (Eq. 26).

    ``s'_j(i) = (j + i*n - i//a) mod m`` — corrects the plain C2R source row
    ``s_j(i) = (j + i*n) mod m`` (Eq. 25) for the pre-rotation (Theorem 5).
    """
    return (j + i * dec.n - i // dec.a) % dec.m


def rotate_p(dec: Decomposition, i: int, j: int) -> int:
    """Column-rotation factor of the column shuffle (Eq. 32).

    ``p_j(i) = (i + j) mod m``; column ``j`` rotates upward by ``j``.
    """
    return (i + j) % dec.m


def rotate_p_inverse(dec: Decomposition, i: int, j: int) -> int:
    """Inverse column rotation (Eq. 35): ``(i - j) mod m``."""
    return (i - j) % dec.m


def permute_q(dec: Decomposition, i: int) -> int:
    """Static row permutation (Eq. 33): ``q(i) = (i*n - i//a) mod m``.

    Identical for every column, hence implementable as register renaming on a
    SIMD machine (Section 6.2.3).  ``(p_j . q)(i) == s'_j(i)`` under gather
    composition.
    """
    return (i * dec.n - i // dec.a) % dec.m


def permute_q_inverse(dec: Decomposition, i: int) -> int:
    """Gather form of the row permutation (Eq. 34).

    ``q^{-1}(i) = (floor((c - 1 + i)/c) * b^{-1}) mod a + (((c-1)*i) mod c) * a``
    with ``b^{-1} = mmi(b, a)``.
    """
    b_inv = mmi(dec.b, dec.a)
    return (((dec.c - 1 + i) // dec.c) * b_inv) % dec.a + (
        ((dec.c - 1) * i) % dec.c
    ) * dec.a


def sprime_inverse(dec: Decomposition, i: int, j: int) -> int:
    """Inverse column shuffle, fused: ``s'^{-1}_j(i) = q^{-1}((i - j) mod m)``.

    Not numbered in the paper but implied by Section 4.3: the inverse of the
    column shuffle ``s'_j = p_j . q`` under gather composition is
    ``q^{-1} . p^{-1}_j``, which fuses into a single per-column gather.  This
    keeps the R2C transpose at three passes, preserving the Theorem 6 bound.
    """
    return permute_q_inverse(dec, rotate_p_inverse(dec, i, j))


# ---------------------------------------------------------------------------
# Vectorized forms (int64 index arrays; no matrix data touched)
# ---------------------------------------------------------------------------

def _i64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int64)


def rotate_r_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 23."""
    return (_i64(i) + _i64(j) // dec.b) % dec.m


def rotate_r_inverse_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 36."""
    return (_i64(i) - _i64(j) // dec.b) % dec.m


def dprime_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 24."""
    j = _i64(j)
    return ((_i64(i) + j // dec.b) % dec.m + j * dec.m) % dec.n


def dprime_inverse_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 31."""
    i = _i64(i)
    j = _i64(j)
    a_inv = mmi(dec.a, dec.b)
    base = j + i * (dec.n - 1)
    f = np.where(i - (j % dec.c) + dec.c <= dec.m, base, base + dec.m)
    return (a_inv * (f // dec.c)) % dec.b + (f % dec.c) * dec.b


def sprime_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 26."""
    i = _i64(i)
    return (_i64(j) + i * dec.n - i // dec.a) % dec.m


def rotate_p_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 32."""
    return (_i64(i) + _i64(j)) % dec.m


def rotate_p_inverse_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized Eq. 35."""
    return (_i64(i) - _i64(j)) % dec.m


def permute_q_v(dec: Decomposition, i) -> np.ndarray:
    """Vectorized Eq. 33."""
    i = _i64(i)
    return (i * dec.n - i // dec.a) % dec.m


def permute_q_inverse_v(dec: Decomposition, i) -> np.ndarray:
    """Vectorized Eq. 34."""
    i = _i64(i)
    b_inv = mmi(dec.b, dec.a)
    return (((dec.c - 1 + i) // dec.c) * b_inv) % dec.a + (
        ((dec.c - 1) * i) % dec.c
    ) * dec.a


def sprime_inverse_v(dec: Decomposition, i, j) -> np.ndarray:
    """Vectorized fused inverse column shuffle (see :func:`sprime_inverse`)."""
    return permute_q_inverse_v(dec, rotate_p_inverse_v(dec, i, j))


# ---------------------------------------------------------------------------
# Whole-matrix index plans (used by the blocked kernels)
# ---------------------------------------------------------------------------

def _grid(dec: Decomposition) -> tuple[np.ndarray, np.ndarray]:
    i = np.arange(dec.m, dtype=np.int64)[:, None]
    j = np.arange(dec.n, dtype=np.int64)[None, :]
    return i, j


def rotate_r_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-row matrix for the pre-rotation (Eq. 23)."""
    i, j = _grid(dec)
    return rotate_r_v(dec, i, j)


def rotate_r_inverse_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-row matrix for the inverse pre-rotation (Eq. 36)."""
    i, j = _grid(dec)
    return rotate_r_inverse_v(dec, i, j)


def dprime_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` destination-column matrix ``d'_i(j)`` (Eq. 24)."""
    i, j = _grid(dec)
    return dprime_v(dec, i, j)


def dprime_inverse_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-column matrix ``d'^{-1}_i(j)`` (Eq. 31)."""
    i, j = _grid(dec)
    return dprime_inverse_v(dec, i, j)


def sprime_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-row matrix ``s'_j(i)`` (Eq. 26)."""
    i, j = _grid(dec)
    return sprime_v(dec, i, j)


def sprime_inverse_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-row matrix for the fused inverse column shuffle."""
    i, j = _grid(dec)
    return sprime_inverse_v(dec, i, j)


def rotate_p_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-row matrix for the column rotation (Eq. 32)."""
    i, j = _grid(dec)
    return rotate_p_v(dec, i, j)


def rotate_p_inverse_matrix(dec: Decomposition) -> np.ndarray:
    """``(m, n)`` gather-row matrix for the inverse rotation (Eq. 35)."""
    i, j = _grid(dec)
    return rotate_p_inverse_v(dec, i, j)
