"""The C2R ("Columns to Rows") in-place transposition — Algorithm 1.

The C2R transpose rearranges the linear buffer of an ``m x n`` array so that,
reinterpreted with transposed dimensions, it holds the matrix transpose
(Theorem 1: row-major arrays; Theorem 2: column-major arrays after a
dimension swap).  It runs in three passes, each permuting single rows or
columns out-of-place through an ``O(max(m, n))`` scratch vector:

1. **Pre-rotation** (only when ``gcd(m, n) > 1``): column ``j`` rotates
   upward by ``j // b`` (Eq. 23), making the row-shuffle destination map
   ``d'_i`` bijective (Theorem 3).
2. **Row shuffle**: each row independently permuted — scatter by ``d'_i``
   (Eq. 24) or equivalently gather by ``d'^{-1}_i`` (Eq. 31).
3. **Column shuffle**: gather by ``s'_j`` (Eq. 26), or — in the *restricted*
   formulation of Section 4.1/4.2 — a column rotation by ``j`` (Eq. 32)
   followed by a static row permutation ``q`` (Eq. 33).

Variants
--------
``variant="gather"``
    Fully gather-based (the paper's optimized CPU/GPU formulation):
    pre-rotate, gather rows with ``d'^{-1}``, gather columns with ``s'``.
``variant="scatter"``
    Algorithm 1 verbatim: pre-rotate, scatter rows with ``d'``, gather
    columns with ``s'``.
``variant="restricted"``
    Restricted column operations: pre-rotate, gather rows with ``d'^{-1}``,
    rotate columns by ``p_j``, row-permute by ``q``.  This is the form that
    maps onto SIMD register files (Section 6) and cache-aware kernels
    (Sections 4.6-4.7).

Auxiliary-space modes
---------------------
``aux="strict"`` honours ``O(max(m, n))`` scratch exactly (and can count
work for the Theorem 6 bound); ``aux="blocked"`` is the vectorized numpy
fast path.  Both orderings produce identical buffers.
"""

from __future__ import annotations

import numpy as np

from . import equations as eq
from . import steps
from .indexing import Decomposition
from .steps import Scratch, WorkCounter

__all__ = ["c2r_transpose", "VARIANTS", "AUX_MODES"]

VARIANTS = ("gather", "scatter", "restricted")
AUX_MODES = ("strict", "blocked")


def _strict_column_shuffle(
    V: np.ndarray,
    dec: Decomposition,
    scratch: Scratch,
    counter: WorkCounter | None,
) -> None:
    """Step 3 of Algorithm 1: gather each column with ``s'_j`` (Eq. 26)."""
    m, n = dec.m, dec.n
    tmp = scratch.buf[:m]
    rows = np.arange(m, dtype=np.int64)
    for j in range(n):
        idx = eq.sprime_v(dec, rows, j)
        tmp[:] = V[idx, j]
        V[:, j] = tmp
        if counter is not None:
            counter.add(m, m)


def _blocked_column_shuffle(V: np.ndarray, dec: Decomposition) -> None:
    V[:] = np.take_along_axis(V, eq.sprime_matrix(dec), axis=0)


def c2r_transpose(
    buf: np.ndarray,
    m: int,
    n: int,
    *,
    variant: str = "gather",
    aux: str = "blocked",
    counter: WorkCounter | None = None,
) -> np.ndarray:
    """Perform the C2R transposition in place on a linear buffer.

    Parameters
    ----------
    buf:
        Flat, contiguous array of ``m * n`` elements.  Modified in place and
        also returned for convenience.
    m, n:
        Logical dimensions of the array being transposed.  The buffer is
        interpreted as the row-major ``m x n`` view during the passes
        (legal regardless of the data's native storage order — Theorem 7).
    variant:
        One of :data:`VARIANTS`; see the module docstring.
    aux:
        ``"strict"`` or ``"blocked"``; see the module docstring.
    counter:
        Optional :class:`WorkCounter` filled with main-array element
        reads/writes (strict mode only — blocked mode raises if given one,
        since numpy's internal traffic is not observable).

    Returns
    -------
    The same ``buf``.  After the call, ``buf.reshape(n, m)`` is the transpose
    of the original ``buf.reshape(m, n)``.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if aux not in AUX_MODES:
        raise ValueError(f"unknown aux mode {aux!r}; expected one of {AUX_MODES}")
    if counter is not None and aux != "strict":
        raise ValueError("work counting is only meaningful in strict mode")
    if not buf.flags["C_CONTIGUOUS"]:
        raise ValueError(
            "in-place transposition requires a contiguous buffer "
            "(a non-contiguous view would be silently copied, not permuted)"
        )
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")

    dec = Decomposition.of(m, n)
    V = buf.reshape(m, n)

    if aux == "strict":
        scratch = Scratch.for_shape(m, n, buf.dtype)
        if dec.c > 1:
            steps.rotate_columns_strict(V, dec, scratch=scratch, counter=counter)
        if variant == "scatter":
            steps.shuffle_rows_strict(
                V, dec, gather=False, use_dprime=True, scratch=scratch, counter=counter
            )
        else:
            steps.shuffle_rows_strict(
                V, dec, gather=True, use_dprime=False, scratch=scratch, counter=counter
            )
        if variant == "restricted":
            steps.rotate_p_strict(V, dec, scratch=scratch, counter=counter)
            qg = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
            steps.permute_rows_strict(V, qg, scratch=scratch, counter=counter)
        else:
            _strict_column_shuffle(V, dec, scratch, counter)
    else:
        if dec.c > 1:
            steps.rotate_columns_blocked(V, dec)
        if variant == "scatter":
            out = np.empty_like(V)
            np.put_along_axis(out, eq.dprime_matrix(dec), V, axis=1)
            V[:] = out
        else:
            steps.shuffle_rows_blocked(V, dec, use_dprime=False)
        if variant == "restricted":
            steps.rotate_p_blocked(V, dec)
            qg = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
            steps.permute_rows_blocked(V, qg)
        else:
            _blocked_column_shuffle(V, dec)
    return buf
