"""Precomputed transpose plans.

Index-matrix construction (the ``d'^{-1}``/``s'`` gather maps) costs as much
as a pass over the data; applications that repeatedly transpose same-shaped
buffers (e.g. the AoS/SoA conversions of Section 6.1, or batched FFT-style
pipelines) amortize it by building a :class:`TransposePlan` once and calling
:meth:`TransposePlan.execute` per buffer.

The plan captures the direction decision (C2R vs R2C, honoring the paper's
``m > n`` heuristic), the dimension/order folding of Theorems 1-2-7, and the
fully materialized gather maps of the blocked fast path.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from . import equations as eq
from .indexing import Decomposition
from .transpose import choose_algorithm

__all__ = ["TransposePlan"]

_metrics = None
_racecheck = None
_trace = None
_native_mod = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


def _tracer():
    """Lazily bind the process-wide structured tracer (repro.trace.spans)."""
    global _trace
    if _trace is None:
        from ..trace import spans

        _trace = spans
    return _trace.tracer


def _sanitizer():
    """Lazily bind the shadow-memory sanitizer (repro.analysis.racecheck)."""
    global _racecheck
    if _racecheck is None:
        from ..analysis import racecheck

        _racecheck = racecheck
    return _racecheck.sanitizer


def _native():
    """Lazily bind the compiled-kernel backend (repro.native)."""
    global _native_mod
    if _native_mod is None:
        from .. import native

        _native_mod = native
    return _native_mod


_BACKENDS = (None, "auto", "native", "numpy")


class TransposePlan:
    """A reusable, shape-specialized in-place transpose.

    Parameters
    ----------
    m, n:
        Logical matrix dimensions before the transpose.
    order:
        ``"C"`` or ``"F"`` storage order of the buffers this plan will see.
    algorithm:
        ``"auto"``, ``"c2r"`` or ``"r2c"``.

    Notes
    -----
    The plan stores ``O(mn)`` int32 gather maps — a deliberate space/time
    trade (the strict kernels exist for the ``O(max(m, n))`` regime).
    ``plan.scratch_bytes`` reports the footprint.
    """

    def __init__(self, m: int, n: int, order: str = "C", algorithm: str = "auto"):
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        if algorithm == "auto":
            algorithm = choose_algorithm(m, n)
        if algorithm not in ("c2r", "r2c"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.m, self.n, self.order, self.algorithm = m, n, order, algorithm

        vm, vn = (m, n) if order == "C" else (n, m)
        if algorithm == "c2r":
            dec = Decomposition.of(vm, vn)
            self._steps = self._build_c2r(dec)
        else:
            dec = Decomposition.of(vn, vm)
            self._steps = self._build_r2c(dec)
        self.dec = dec

    # -- plan construction ---------------------------------------------------

    @staticmethod
    def _shrink(idx: np.ndarray) -> np.ndarray:
        """Gather indices are bounded by max(m, n) < 2**31: int32 halves the
        plan's memory footprint (and cache traffic) at no loss."""
        return idx.astype(np.int32, copy=False)

    def _build_c2r(self, dec: Decomposition):
        plan = []
        if dec.c > 1:
            plan.append(("rotate_groups", self._rotation_shifts(dec, inverse=False)))
        plan.append(("gather_cols", self._shrink(eq.dprime_inverse_matrix(dec))))
        plan.append(("gather_rows", self._shrink(eq.sprime_matrix(dec))))
        return plan

    def _build_r2c(self, dec: Decomposition):
        plan = [
            ("gather_rows", self._shrink(eq.sprime_inverse_matrix(dec))),
            ("gather_cols", self._shrink(eq.dprime_matrix(dec))),
        ]
        if dec.c > 1:
            plan.append(("rotate_groups", self._rotation_shifts(dec, inverse=True)))
        return plan

    @staticmethod
    def _rotation_shifts(dec: Decomposition, *, inverse: bool) -> list[tuple[slice, int]]:
        """Per-group ``np.roll`` shifts for the (inverse) pre-rotation."""
        out = []
        for g in range(dec.c):
            k = g % dec.m  # repro-lint: allow(raw-divmod) O(c) plan construction, not per-element
            if k == 0:
                continue
            shift = k if inverse else -k
            out.append((slice(g * dec.b, (g + 1) * dec.b), shift))
        return out

    # -- execution -------------------------------------------------------------

    @property
    def scratch_bytes(self) -> int:
        """Bytes held by the precomputed gather maps."""
        total = 0
        for kind, payload in self._steps:
            if kind == "rotate_groups":
                continue
            total += payload.nbytes
        return total

    def __reduce__(self):
        # Ship the identity, not the O(mn) gather maps: a plan crossing a
        # process boundary rebuilds from its plan-cache key on the other
        # side (each worker process owns its own cache).
        return (self.__class__, (self.m, self.n, self.order, self.algorithm))

    @staticmethod
    def _apply_step(V: np.ndarray, kind: str, payload) -> None:
        if kind == "rotate_groups":
            for cols, shift in payload:
                V[:, cols] = np.roll(V[:, cols], shift, axis=0)
        elif kind == "gather_cols":
            V[:] = np.take_along_axis(V, payload, axis=1)
        elif kind == "gather_rows":
            V[:] = np.take_along_axis(V, payload, axis=0)
        elif kind == "permute_rows":
            V[:] = V[payload, :]

    @staticmethod
    def _apply_step_sanitized(V: np.ndarray, kind: str, payload, san) -> None:
        """One step under the shadow-memory sanitizer: report the flat read
        and write footprints (reads logically precede writes in a gather)
        before mutating, so clobbers/double-writes carry pass provenance."""
        m, n = V.shape
        rows = np.arange(m, dtype=np.int64)[:, None]
        cols = np.arange(n, dtype=np.int64)[None, :]
        if kind == "rotate_groups":
            # Zero-shift groups are skipped by construction, so the pass
            # covers at most (not exactly) the whole matrix.
            with san.pass_scope(f"plan.{kind}", m * n, full_coverage=False):
                for csl, shift in payload:
                    flat = (rows * n + np.arange(csl.start, csl.stop)).ravel()  # repro-lint: allow(implicit-copy) flat index array, not a matrix view
                    san.record(
                        reads=flat, writes=flat,
                        where=f"cols[{csl.start}:{csl.stop}]",
                    )
                    V[:, csl] = np.roll(V[:, csl], shift, axis=0)
            return
        if kind == "gather_cols":
            reads = rows * n + payload.astype(np.int64)
        elif kind == "gather_rows":
            reads = payload.astype(np.int64) * n + cols
        else:  # permute_rows
            reads = payload.astype(np.int64)[:, None] * n + cols
        with san.pass_scope(f"plan.{kind}", m * n):
            san.record(reads=reads, writes=rows * n + cols, where="full matrix")
            TransposePlan._apply_step(V, kind, payload)

    def _resolve_native(self, buf: np.ndarray, backend: str | None):
        """The compiled kernel this execute should use, or ``None`` for numpy.

        ``None``/``"auto"`` engage the native backend opportunistically
        (toolchain present, buffer large enough, shape eligible);
        ``"native"`` asks for it unconditionally and reports every reason it
        could not be honored (fallback metric + one-time warning) — it still
        returns ``None`` rather than raising, per the backend's
        never-an-error contract.
        """
        if backend == "numpy":
            return None
        native = _native()
        if not native.enabled():
            if backend == "native":
                native.record_fallback("disabled by REPRO_NATIVE=0")
            return None
        if not buf.flags.writeable:
            # The numpy path surfaces its own clean error; never hand a
            # read-only buffer to C code.
            if backend == "native":
                native.record_fallback("read-only buffer")
            return None
        if backend != "native" and buf.shape[0] < native.min_elems():
            return None
        return native.kernel_for_plan(self, buf.dtype.itemsize)

    def _execute_native(self, buf: np.ndarray, V: np.ndarray, kernel) -> None:
        """Run the compiled kernel with span/metric parity to the numpy path.

        A scratch allocation failure inside a pass is positional (nothing at
        or after the failing pass moved), so the numpy gathers finish the
        plan from exactly that step.
        """
        rt = _runtime_metrics()
        tr = _tracer()
        reg = rt.registry
        addr = buf.ctypes.data
        passes = kernel.passes
        dec = self.dec
        try:
            if tr.enabled:
                pass_bytes = 2 * buf.nbytes
                for idx, p in enumerate(passes):
                    with tr.span(
                        f"pass.{p.kind}", m=dec.m, n=dec.n,
                        algorithm=self.algorithm, bytes=pass_bytes,
                        backend="native",
                    ) as sp:
                        kernel.run_pass(idx, addr, 0, p.extent)
                    if reg.enabled:
                        reg.observe(f"plan.pass.{p.kind}", sp.duration_s)
                if reg.enabled:
                    reg.inc("native.calls")
                    reg.inc("bytes_moved", len(passes) * pass_bytes)
                    reg.inc("elements_touched", len(passes) * buf.shape[0])
            elif reg.enabled:
                for idx, p in enumerate(passes):
                    t0 = perf_counter()
                    kernel.run_pass(idx, addr, 0, p.extent)
                    reg.observe(f"plan.pass.{p.kind}", perf_counter() - t0)
                reg.inc("native.calls")
                reg.inc("bytes_moved", 2 * len(passes) * buf.nbytes)
                reg.inc("elements_touched", len(passes) * buf.shape[0])
            else:
                kernel.run(addr)
        except MemoryError as exc:
            pass_index = getattr(exc, "pass_index", 0)
            _native().record_fallback(
                f"scratch allocation failed at pass {pass_index}"
            )
            for kind, payload in self._steps[pass_index:]:
                self._apply_step(V, kind, payload)

    def on_cache_evict(self) -> None:
        """Plan-cache eviction hook: unlink any compiled kernel artifacts."""
        _native().release_plan_kernels(self)

    def execute(self, buf: np.ndarray, *, backend: str | None = None) -> np.ndarray:
        """Transpose ``buf`` in place using the precomputed maps.

        ``buf`` must be flat and contiguous with ``m * n`` elements; after the
        call it holds the ``n x m`` transpose in the plan's storage order.
        Per-pass timings land in :mod:`repro.runtime.metrics` when enabled,
        and one ``pass.*`` span per step in :mod:`repro.trace` when tracing.

        ``backend`` selects the execution engine: ``None``/``"auto"`` use a
        compiled native kernel when one is (or can be made) available and
        the buffer is large enough, ``"native"`` insists on it (falling back
        to numpy with a warning when impossible), ``"numpy"`` forces the
        numpy gathers.  The sanitizer always runs on numpy — shadow-memory
        checking needs to see every index.
        """
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        if buf.ndim != 1 or buf.shape[0] != self.m * self.n:
            raise ValueError(f"buffer must be flat with {self.m * self.n} elements")
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        dec = self.dec
        V = buf.reshape(dec.m, dec.n)
        rt = _runtime_metrics()
        san = _sanitizer()
        tr = _tracer()
        if san.enabled:
            if backend == "native":
                _native().record_fallback("sanitizer active")
            for kind, payload in self._steps:
                self._apply_step_sanitized(V, kind, payload, san)
            return buf
        kernel = self._resolve_native(buf, backend)
        if kernel is not None:
            self._execute_native(buf, V, kernel)
            return buf
        if tr.enabled:
            # One span per decomposition pass, carrying the 2x read+write
            # byte volume so the profiler can join duration with traffic.
            pass_bytes = 2 * buf.nbytes
            reg = rt.registry
            for kind, payload in self._steps:
                with tr.span(
                    f"pass.{kind}", m=dec.m, n=dec.n,
                    algorithm=self.algorithm, bytes=pass_bytes,
                ) as sp:
                    self._apply_step(V, kind, payload)
                if reg.enabled:
                    reg.observe(f"plan.pass.{kind}", sp.duration_s)
            if reg.enabled:
                reg.inc("bytes_moved", len(self._steps) * pass_bytes)
                reg.inc("elements_touched", len(self._steps) * buf.shape[0])
        elif rt.registry.enabled:
            for kind, payload in self._steps:
                t0 = perf_counter()
                self._apply_step(V, kind, payload)
                rt.registry.observe(f"plan.pass.{kind}", perf_counter() - t0)
            rt.registry.inc("bytes_moved", 2 * len(self._steps) * buf.nbytes)
            rt.registry.inc("elements_touched", len(self._steps) * buf.shape[0])
        else:
            for kind, payload in self._steps:
                self._apply_step(V, kind, payload)
        return buf

    def __repr__(self) -> str:
        return (
            f"TransposePlan(m={self.m}, n={self.n}, order={self.order!r}, "
            f"algorithm={self.algorithm!r})"
        )
