"""Public entry points for in-place matrix transposition.

This module stitches the C2R and R2C kernels into the user-facing API:

* :func:`transpose_inplace` — transpose a linear buffer holding an ``m x n``
  matrix in row- or column-major order, selecting C2R versus R2C with the
  paper's heuristic (Section 5.2: *"if m > n, use the C2R algorithm,
  otherwise use the R2C algorithm"*) or by explicit request.
* :func:`transpose` — convenience wrapper for 2-D numpy arrays: transposes
  the underlying buffer in place and returns a reshaped view of the same
  memory with transposed dimensions.

How the direction choice works
------------------------------
For a row-major buffer, the C2R permutation *is* the transposition
(Theorem 1); running R2C instead requires swapping the dimensions first
(Theorem 2), i.e. the buffer is viewed as ``n x m`` during the passes.  For
column-major buffers the roles of C2R and R2C swap.  Theorem 7 guarantees
that the row-major view used internally by the kernels is legal regardless of
the data's native order.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter

import numpy as np

from .c2r import c2r_transpose
from .r2c import r2c_transpose
from .steps import WorkCounter

__all__ = ["transpose_inplace", "transpose", "choose_algorithm"]

_ALGORITHMS = ("auto", "c2r", "r2c")
_ORDERS = ("C", "F")

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()

_metrics = None
_trace = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


def _tracer():
    """Lazily bind the process-wide structured tracer (repro.trace.spans)."""
    global _trace
    if _trace is None:
        from ..trace import spans

        _trace = spans
    return _trace.tracer


def choose_algorithm(m: int, n: int) -> str:
    """The paper's Section 5.2 heuristic: C2R when ``m > n``, else R2C.

    C2R's row shuffle operates on rows of length ``n``; when ``n`` is the
    smaller dimension a whole row fits in on-chip memory (the fast band of
    Fig. 4).  R2C's analogous band appears when ``m`` is small (Fig. 5).
    """
    return "c2r" if m > n else "r2c"


def transpose_inplace(
    buf: np.ndarray,
    m: int,
    n: int,
    order: str = "C",
    *,
    algorithm: str = "auto",
    variant: str = "gather",
    aux: str = "blocked",
    counter: WorkCounter | None = None,
    use_plan_cache: bool | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Transpose the ``m x n`` matrix stored in ``buf``, in place.

    Parameters
    ----------
    buf:
        Flat contiguous array of ``m * n`` elements.
    m, n:
        Logical matrix dimensions *before* the transpose.
    order:
        ``"C"`` (row-major) or ``"F"`` (column-major) storage of the matrix
        in ``buf``.  After the call ``buf`` holds the ``n x m`` transpose in
        the same storage order.
    algorithm:
        ``"auto"`` (paper heuristic), ``"c2r"`` or ``"r2c"``.
    variant, aux, counter:
        Forwarded to the kernels; see :mod:`repro.core.c2r`.
    use_plan_cache:
        The default fast path (``variant="gather"``, ``aux="blocked"``, no
        counter) executes through a :class:`~repro.core.plan.TransposePlan`
        held in the process-wide :mod:`repro.runtime.plan_cache`, so repeated
        same-shape calls skip index-map construction entirely.  Pass
        ``False`` to force per-call planning; ``True`` on a non-default
        configuration raises (strict/scatter paths have no cached form).
        The cached and uncached paths run the same blocked gather passes and
        produce identical buffers (pinned by ``tests/runtime``).
    backend:
        Execution engine for the cached plan path (see
        :meth:`~repro.core.plan.TransposePlan.execute` and
        :mod:`repro.native`).  ``None``/``"auto"`` use a compiled per-plan C
        kernel when a toolchain is available and the buffer is large enough,
        falling back to the numpy gathers otherwise; ``"native"`` insists on
        the compiled kernel (numpy fallback with a ``RuntimeWarning`` and a
        ``native.fallback`` metric when impossible — never an error);
        ``"numpy"`` forces the numpy gathers.  Requesting ``"native"`` on a
        configuration with no cached-plan form (strict/scatter variants, a
        ``WorkCounter``, or ``use_plan_cache=False``) raises ``ValueError``
        because those paths have no compiled equivalent.  ``REPRO_NATIVE=0``
        disables auto-selection process-wide.

    Returns the same ``buf``.  Wall time per call is recorded into
    :mod:`repro.runtime.metrics` under ``transpose_inplace``.
    """
    if backend not in (None, "auto", "native", "numpy"):
        raise ValueError(f"unknown backend {backend!r}")
    if algorithm not in _ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; expected {_ALGORITHMS}")
    if order not in _ORDERS:
        raise ValueError(f"unknown order {order!r}; expected one of {_ORDERS}")
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)

    cacheable = variant == "gather" and aux == "blocked" and counter is None
    if use_plan_cache is None:
        use_plan_cache = cacheable
    elif use_plan_cache and not cacheable:
        raise ValueError(
            "use_plan_cache=True requires the default gather/blocked "
            "configuration with no WorkCounter"
        )
    if backend == "native" and not use_plan_cache:
        raise ValueError(
            "backend='native' requires the cached-plan path (default "
            "gather/blocked configuration, use_plan_cache not disabled); "
            "the strict/scatter kernels have no compiled equivalent"
        )

    rt = _runtime_metrics()
    t0 = perf_counter() if rt.registry.enabled else 0.0

    if use_plan_cache:
        from ..runtime import plan_cache

        # TransposePlan folds order/algorithm exactly like the kernel path
        # below and runs the identical blocked gather passes off precomputed
        # int32 maps.  Guard contiguity here as the kernels do: reshape of a
        # strided view would silently copy instead of permuting.
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        plan = plan_cache.get_single_plan(m, n, order, algorithm, buf.dtype)
        tr = _tracer()
        if tr.enabled:
            with tr.span(
                "op.transpose_inplace", m=m, n=n, order=order,
                algorithm=algorithm, cached=True, dtype=str(buf.dtype),
            ):
                plan.execute(buf, backend=backend)
        else:
            plan.execute(buf, backend=backend)
        if rt.registry.enabled:
            rt.registry.record_call("transpose_inplace", perf_counter() - t0)
        return buf

    # A column-major m x n buffer is byte-identical to a row-major n x m
    # buffer of the transposed matrix, so fold the order into a dimension
    # swap and treat everything as row-major below.
    vm, vn = (m, n) if order == "C" else (n, m)

    tr = _tracer()
    with tr.span(
        "op.transpose_inplace", m=m, n=n, order=order, algorithm=algorithm,
        cached=False, variant=variant, aux=aux,
    ) if tr.enabled else _NULL_CM:
        if algorithm == "c2r":
            # Theorem 1: C2R on the row-major (vm, vn) view transposes it.
            c2r_transpose(buf, vm, vn, variant=variant, aux=aux, counter=counter)
        else:
            # Theorem 2: R2C transposes a row-major array after swapping
            # dimensions, i.e. running the passes on the (vn, vm) view of the
            # same buffer.
            r2c_transpose(buf, vn, vm, variant=variant, aux=aux, counter=counter)
    if rt.registry.enabled:
        rt.registry.record_call("transpose_inplace", perf_counter() - t0)
    return buf


def transpose(
    A: np.ndarray,
    *,
    algorithm: str = "auto",
    variant: str = "gather",
    aux: str = "blocked",
) -> np.ndarray:
    """Transpose a 2-D contiguous numpy array in place.

    The array's own buffer is permuted; the returned array is a *view* of
    that same memory with transposed shape (no copy).  Works for C- and
    F-contiguous inputs.

    >>> import numpy as np
    >>> from repro.core.transpose import transpose
    >>> A = np.arange(12, dtype=np.float64).reshape(3, 4)
    >>> B = transpose(A)
    >>> B.shape
    (4, 3)
    >>> np.shares_memory(A, B)
    True
    """
    if A.ndim != 2:
        raise ValueError("transpose expects a 2-D array")
    m, n = A.shape
    if A.flags["C_CONTIGUOUS"]:
        order = "C"
    elif A.flags["F_CONTIGUOUS"]:
        order = "F"
    else:
        raise ValueError("transpose requires a contiguous array")
    flat = A.reshape(-1, order=order)
    transpose_inplace(
        flat, m, n, order, algorithm=algorithm, variant=variant, aux=aux
    )
    return flat.reshape(n, m, order=order)
