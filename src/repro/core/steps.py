"""The three pass primitives of Algorithm 1, in strict and blocked variants.

Algorithm 1 (C2R) is built from exactly three kinds of data movement, each of
which this module implements as a standalone primitive operating on the
row-major ``(m, n)`` view ``V`` of the linear buffer:

* **column rotation** — every column ``j`` rotated upward by some amount
  (``j // b`` for the pre-rotation, ``j`` for the column-shuffle rotation);
* **row shuffle** — every row independently permuted (scatter ``d'_i``,
  gather ``d'^{-1}_i``);
* **row permutation** — all rows moved identically (``q`` / ``q^{-1}``),
  i.e. the "static" column operation of Section 4.1.

Each primitive comes in two variants:

``strict``
    Honors the paper's ``O(max(m, n))`` auxiliary-space bound literally: one
    scratch vector of ``max(m, n)`` elements, processing a single row or
    column at a time (row permutations use cycle following with a single row
    buffer, as in Section 4.7).  The strict variants optionally maintain a
    :class:`WorkCounter` so the Theorem 6 work bound (each element read and
    written at most 6 times over the full transpose) is checkable.

``blocked``
    The production fast path: whole-array numpy gathers
    (``np.take_along_axis``) trading scratch space for vectorization.  Both
    variants compute identical results (pinned to each other by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import equations as eq
from .indexing import Decomposition

__all__ = [
    "WorkCounter",
    "Scratch",
    "rotate_columns_strict",
    "rotate_columns_blocked",
    "shuffle_rows_strict",
    "shuffle_rows_blocked",
    "rotate_p_strict",
    "rotate_p_blocked",
    "permute_rows_strict",
    "permute_rows_blocked",
]


@dataclass
class WorkCounter:
    """Counts element reads/writes against the *main* array.

    Scratch-buffer traffic is excluded, matching the accounting in the proof
    of Theorem 6 ("the algorithm reads and writes each element 6 times,
    performing row and column permutations out-of-place").
    """

    reads: int = 0
    writes: int = 0

    def add(self, reads: int, writes: int) -> None:
        self.reads += int(reads)
        self.writes += int(writes)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def bytes_moved(self, itemsize: int) -> int:
        """Main-array traffic in bytes for elements of ``itemsize`` bytes."""
        return self.total * int(itemsize)

    def as_dict(self, itemsize: int | None = None) -> dict:
        """JSON-able summary; includes ``bytes_moved`` when given an itemsize."""
        out = {"reads": self.reads, "writes": self.writes, "total": self.total}
        if itemsize is not None:
            out["bytes_moved"] = self.bytes_moved(itemsize)
        return out

    def publish(self, name: str = "strict") -> None:
        """Fold this tally into the process-wide metrics registry
        (:mod:`repro.runtime.metrics`) under ``<name>.reads``/``.writes``."""
        from ..runtime import metrics

        if metrics.registry.enabled:
            metrics.registry.inc(f"{name}.reads", self.reads)
            metrics.registry.inc(f"{name}.writes", self.writes)
            metrics.registry.inc("elements_touched", self.total)


@dataclass
class Scratch:
    """A reusable ``O(max(m, n))`` scratch allocation for the strict path."""

    buf: np.ndarray
    visited: np.ndarray = field(default=None)  # type: ignore[assignment]

    @classmethod
    def for_shape(cls, m: int, n: int, dtype) -> "Scratch":
        return cls(
            buf=np.empty(max(m, n), dtype=dtype),
            visited=np.zeros(m, dtype=bool),
        )


# ---------------------------------------------------------------------------
# Column rotation (Eq. 23 / 36 amounts: j // b; Eq. 32 / 35 amounts: j)
# ---------------------------------------------------------------------------

def _rotate_one_column(
    V: np.ndarray, j: int, k: int, scratch: np.ndarray, counter: WorkCounter | None
) -> None:
    """Rotate column ``j`` upward by ``k`` using the scratch vector.

    ``new[i] = old[(i + k) mod m]``; implemented as two contiguous slice
    copies through the scratch (one read + one write per element).
    """
    m = V.shape[0]
    k %= m
    if k == 0:
        return
    scratch[: m - k] = V[k:, j]
    scratch[m - k : m] = V[:k, j]
    V[:, j] = scratch[:m]
    if counter is not None:
        counter.add(m, m)


def rotate_columns_strict(
    V: np.ndarray,
    dec: Decomposition,
    *,
    inverse: bool = False,
    scratch: Scratch | None = None,
    counter: WorkCounter | None = None,
) -> None:
    """Pre-rotation pass (Eq. 23), or its inverse (Eq. 36), column at a time.

    Column ``j`` rotates upward by ``j // b`` (downward when ``inverse``).
    """
    m, n = dec.m, dec.n
    sc = scratch or Scratch.for_shape(m, n, V.dtype)
    for j in range(n):
        k = j // dec.b
        _rotate_one_column(V, j, -k % m if inverse else k, sc.buf, counter)


def rotate_columns_blocked(
    V: np.ndarray, dec: Decomposition, *, inverse: bool = False
) -> None:
    """Blocked pre-rotation: groups of ``b`` columns share a rotation amount.

    Lemma 1's periodicity means columns ``[g*b, (g+1)*b)`` all rotate by the
    same ``g``, so each group is one vectorized ``np.roll``.
    """
    m = dec.m
    for g in range(dec.c):
        k = g % m
        if k == 0:
            continue
        shift = k if inverse else -k
        cols = slice(g * dec.b, (g + 1) * dec.b)
        V[:, cols] = np.roll(V[:, cols], shift, axis=0)


def rotate_p_strict(
    V: np.ndarray,
    dec: Decomposition,
    *,
    inverse: bool = False,
    scratch: Scratch | None = None,
    counter: WorkCounter | None = None,
) -> None:
    """Column-shuffle rotation (Eq. 32), or its inverse (Eq. 35).

    Column ``j`` rotates upward by ``j`` (downward when ``inverse``).
    """
    m, n = dec.m, dec.n
    sc = scratch or Scratch.for_shape(m, n, V.dtype)
    for j in range(n):
        _rotate_one_column(V, j, (-j) % m if inverse else j % m, sc.buf, counter)


def rotate_p_blocked(
    V: np.ndarray, dec: Decomposition, *, inverse: bool = False
) -> None:
    """Blocked column-shuffle rotation via a whole-array gather."""
    idx = (
        eq.rotate_p_inverse_matrix(dec) if inverse else eq.rotate_p_matrix(dec)
    )
    V[:] = np.take_along_axis(V, idx, axis=0)


# ---------------------------------------------------------------------------
# Row shuffle (Eq. 24 scatter / Eq. 31 gather)
# ---------------------------------------------------------------------------

def shuffle_rows_strict(
    V: np.ndarray,
    dec: Decomposition,
    *,
    gather: bool = True,
    use_dprime: bool = False,
    scratch: Scratch | None = None,
    counter: WorkCounter | None = None,
) -> None:
    """Row shuffle, one row at a time through the scratch vector.

    Parameters
    ----------
    gather:
        When True the row is gathered (``tmp[j] = row[idx[j]]``), when False
        scattered (``tmp[idx[j]] = row[j]``).
    use_dprime:
        Selects the index function: ``d'_i`` (Eq. 24, R2C gather form /
        C2R scatter form) when True, ``d'^{-1}_i`` (Eq. 31, C2R gather form /
        R2C scatter form) when False.

    The C2R forward pass is either ``gather=True, use_dprime=False`` (the
    optimized gather formulation of Section 4.2) or
    ``gather=False, use_dprime=True`` (the scatter formulation of
    Algorithm 1); both produce the same row contents.
    """
    m, n = dec.m, dec.n
    sc = scratch or Scratch.for_shape(m, n, V.dtype)
    tmp = sc.buf[:n]
    cols = np.arange(n, dtype=np.int64)
    for i in range(m):
        idx = (
            eq.dprime_v(dec, i, cols)
            if use_dprime
            else eq.dprime_inverse_v(dec, i, cols)
        )
        if gather:
            tmp[:] = V[i, idx]
        else:
            tmp[idx] = V[i, :]
        V[i, :] = tmp
        if counter is not None:
            counter.add(n, n)


def shuffle_rows_blocked(
    V: np.ndarray, dec: Decomposition, *, use_dprime: bool = False
) -> None:
    """Blocked row shuffle as a single whole-array gather.

    Always gather-based; ``use_dprime`` selects ``d'`` (R2C direction) versus
    ``d'^{-1}`` (C2R direction).
    """
    idx = eq.dprime_matrix(dec) if use_dprime else eq.dprime_inverse_matrix(dec)
    V[:] = np.take_along_axis(V, idx, axis=1)


# ---------------------------------------------------------------------------
# Row permutation (Eq. 33 / 34): all rows move identically
# ---------------------------------------------------------------------------

def permute_rows_strict(
    V: np.ndarray,
    gather_rows: np.ndarray,
    *,
    scratch: Scratch | None = None,
    counter: WorkCounter | None = None,
) -> None:
    """Row permutation via cycle following with a single row buffer.

    Implements ``V[i, :] = V_old[gather_rows[i], :]`` touching each row once:
    for every cycle of the gather map, one row is parked in the scratch row
    buffer and the remaining rows shift along the cycle (the single-set-of-
    cycles structure exploited by Section 4.7).  Auxiliary space is one row
    (``n`` elements) plus ``m`` visited bits.
    """
    m, n = V.shape
    g = np.asarray(gather_rows, dtype=np.int64)
    if g.shape != (m,):
        raise ValueError("gather_rows must have one entry per row")
    sc = scratch or Scratch.for_shape(m, n, V.dtype)
    visited = sc.visited
    visited[:] = False
    tmp = sc.buf[:n]
    for leader in range(m):
        if visited[leader] or g[leader] == leader:
            visited[leader] = True
            continue
        tmp[:] = V[leader, :]
        if counter is not None:
            counter.add(n, 0)
        i = leader
        while int(g[i]) != leader:
            V[i, :] = V[int(g[i]), :]
            if counter is not None:
                counter.add(n, n)
            visited[i] = True
            i = int(g[i])
        V[i, :] = tmp
        if counter is not None:
            counter.add(0, n)
        visited[i] = True


def permute_rows_blocked(V: np.ndarray, gather_rows: np.ndarray) -> None:
    """Row permutation as one fancy-indexed gather (copies the array once)."""
    V[:] = V[np.asarray(gather_rows, dtype=np.int64), :]
