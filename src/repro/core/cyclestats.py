"""Cycle statistics of transposition permutations — the parallelization
argument of Section 1.

Traditional in-place transposition follows the cycles of ``P(l) = l*m mod
(mn-1)``, and those cycles are "poorly distributed": a few enormous cycles
plus many tiny ones, so assigning cycles to processors load-balances badly.
The decomposition replaces them with ``m + 2n`` independent permutations of
identical cost.

This module computes the exact cycle structure and the resulting
parallel-imbalance metrics, feeding the cycle-balance benchmark and giving
library users a diagnosis tool ("why is cycle-following slow on my shape?").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cycle_following import successor

__all__ = ["CycleProfile", "transposition_cycle_profile", "decomposition_task_profile"]


@dataclass(frozen=True)
class CycleProfile:
    """The cycle/task structure of a parallel work decomposition.

    ``lengths[k]`` is the size (element moves) of independent work unit
    ``k``.  For cycle following the units are permutation cycles; for the
    decomposition they are row/column permutations.
    """

    lengths: np.ndarray

    @property
    def n_units(self) -> int:
        return int(self.lengths.size)

    @property
    def total(self) -> int:
        return int(self.lengths.sum())

    @property
    def largest_fraction(self) -> float:
        """Fraction of all work inside the single largest unit.

        This lower-bounds the serial fraction: with ``p`` processors the
        makespan is at least ``max(total/p, largest)``, so a large value
        caps speedup regardless of processor count.
        """
        if self.total == 0:
            return 0.0
        return float(self.lengths.max()) / self.total

    def speedup_bound(self, p: int) -> float:
        """Best achievable speedup on ``p`` processors (greedy bound)."""
        if self.total == 0 or self.n_units == 0:
            return 1.0
        makespan = max(self.total / p, float(self.lengths.max()))
        return self.total / makespan

    def imbalance(self, p: int) -> float:
        """Makespan of a greedy longest-first schedule over the ideal
        ``total / p`` (1.0 = perfect balance)."""
        if self.n_units == 0:
            return 1.0
        loads = np.zeros(p)
        for length in sorted(self.lengths.tolist(), reverse=True):
            loads[int(np.argmin(loads))] += length
        ideal = self.total / p
        return float(loads.max() / ideal) if ideal else 1.0


def transposition_cycle_profile(m: int, n: int) -> CycleProfile:
    """Exact cycle lengths of the row-major transposition permutation.

    Fixed points (which move nothing) are excluded — they are not work.
    """
    mn = m * n
    if mn <= 1 or m == 1 or n == 1:
        return CycleProfile(lengths=np.zeros(0, dtype=np.int64))
    visited = np.zeros(mn, dtype=bool)
    visited[0] = visited[mn - 1] = True
    lengths = []
    for start in range(1, mn - 1):
        if visited[start]:
            continue
        visited[start] = True
        length = 1
        l = successor(start, m, n)
        while l != start:
            visited[l] = True
            l = successor(l, m, n)
            length += 1
        if length > 1:
            lengths.append(length)
    return CycleProfile(lengths=np.asarray(lengths, dtype=np.int64))


def decomposition_task_profile(m: int, n: int) -> CycleProfile:
    """The decomposition's work units: independent row/column permutations.

    One unit of ``m`` moves per column for each column pass (pre-rotation
    when ``gcd > 1``, column shuffle) and one unit of ``n`` moves per row
    for the row shuffle — all units within a pass identical, which is the
    "perfect load balancing" the paper claims.
    """
    from math import gcd

    units = []
    if gcd(m, n) > 1:
        units.extend([m] * n)  # pre-rotation columns
    units.extend([n] * m)  # row shuffle rows
    units.extend([m] * n)  # column shuffle columns
    return CycleProfile(lengths=np.asarray(units, dtype=np.int64))
