"""Out-of-place reference transposes — the oracle for every test and bench.

These are deliberately simple: numpy's own transpose plus explicit
linearization bookkeeping.  Every in-place kernel in the repository is tested
against these functions, and the "ideal" throughput ceiling used in the
evaluation (one read + one write per element, Eq. 37) is measured on them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "transpose_rowmajor_oracle",
    "transpose_colmajor_oracle",
    "c2r_oracle",
    "r2c_oracle",
]


def transpose_rowmajor_oracle(buf: np.ndarray, m: int, n: int) -> np.ndarray:
    """Transpose a row-major linearized ``m x n`` array, out of place.

    Returns a new linear buffer holding the row-major linearization of the
    ``n x m`` transpose.
    """
    if buf.shape != (m * n,):
        raise ValueError(f"buffer must be flat with {m * n} elements")
    return buf.reshape(m, n).T.copy().ravel()


def transpose_colmajor_oracle(buf: np.ndarray, m: int, n: int) -> np.ndarray:
    """Transpose a column-major linearized ``m x n`` array, out of place."""
    if buf.shape != (m * n,):
        raise ValueError(f"buffer must be flat with {m * n} elements")
    A = buf.reshape(m, n, order="F")
    return A.T.copy(order="F").ravel(order="F")


def c2r_oracle(A: np.ndarray) -> np.ndarray:
    """The C2R permutation as a 2-D gather (Eq. 11): ``B[i,j] = A[s, c]``.

    Returns the ``m x n`` array ``A_C2R`` (same shape as ``A``); Theorem 1
    says its row-major linearization equals the row-major linearization of
    ``A^T``.
    """
    m, n = A.shape
    i = np.arange(m, dtype=np.int64)[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    lin = j + i * n
    return A[lin % m, lin // m]


def r2c_oracle(A: np.ndarray) -> np.ndarray:
    """The R2C permutation as a 2-D gather (Eq. 12): ``B[i,j] = A[t, d]``."""
    m, n = A.shape
    i = np.arange(m, dtype=np.int64)[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    lin = i + j * m
    return A[lin // n, lin % n]
