"""Batched in-place transposition.

Data-layout pipelines rarely transpose one matrix: they transpose a batch
of same-shaped matrices (attention heads, image tiles, per-timestep state).
Because the decomposition's gather maps depend only on the shape, a batch
shares one :class:`~repro.core.plan.TransposePlan`-style set of index maps,
and the passes apply to all matrices at once as 3-D gathers — the batch
dimension rides along for free.

The buffer layout is the standard batched one: ``k`` matrices of ``m x n``
stored consecutively (``buf[b * m * n : (b + 1) * m * n]`` is matrix ``b``).
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter

import numpy as np

from . import equations as eq
from .indexing import Decomposition
from .transpose import choose_algorithm

__all__ = [
    "BatchedTransposePlan",
    "batched_transpose_inplace",
    "validate_batch_member",
]

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()

_metrics = None
_trace = None
_native_mod = None
_racecheck = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


def _sanitizer():
    """Lazily bind the shadow-memory sanitizer (repro.analysis.racecheck)."""
    global _racecheck
    if _racecheck is None:
        from ..analysis import racecheck

        _racecheck = racecheck
    return _racecheck.sanitizer


def _native():
    """Lazily bind the compiled-kernel backend (repro.native)."""
    global _native_mod
    if _native_mod is None:
        from .. import native

        _native_mod = native
    return _native_mod


_BACKENDS = (None, "auto", "native", "numpy")


def _tracer():
    """Lazily bind the process-wide structured tracer (repro.trace.spans)."""
    global _trace
    if _trace is None:
        from ..trace import spans

        _trace = spans
    return _trace.tracer


def validate_batch_member(
    buf: np.ndarray,
    m: int,
    n: int,
    dtype: np.dtype | None = None,
    *,
    count: int = 1,
    require_writeable: bool = True,
) -> None:
    """Check one request buffer is safe to coalesce into an ``m x n`` batch.

    The batched gather path shares a single staging buffer across requests,
    so every member must be exactly ``count`` stacked ``m * n``-element
    matrices with the batch's dtype; a strided view or a byte-swapped/
    foreign dtype would be silently *copied* into the batch and the
    caller's buffer left untouched — the same latent bug class the PR-1
    contiguity guards close for the single-matrix paths.  Raises
    :class:`ValueError` naming the offending property instead.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if buf.ndim not in (1, 2):
        raise ValueError(
            f"batch member must be a flat or 2-D array, got {buf.ndim}-D"
        )
    if buf.size != count * m * n:
        raise ValueError(
            f"batch member has {buf.size} elements; {count} stacked "
            f"{m}x{n} matrices need {count * m * n}"
        )
    if buf.ndim == 2 and buf.shape not in ((m, n), (count, m * n)):
        raise ValueError(
            f"batch member shape {buf.shape} matches neither ({m}, {n}) "
            f"nor ({count}, {m * n})"
        )
    if not buf.flags["C_CONTIGUOUS"]:
        raise ValueError(
            "batch member must be C-contiguous (a strided view would be "
            "silently copied into the batch, not transposed in place)"
        )
    if require_writeable and not buf.flags.writeable:
        raise ValueError(
            "batch member is read-only; in-place transposition must be "
            "able to write the result back"
        )
    if dtype is not None and buf.dtype != np.dtype(dtype):
        raise ValueError(
            f"batch member dtype {buf.dtype} does not match the batch "
            f"dtype {np.dtype(dtype)} (mixed-dtype groups cannot share a "
            "staging buffer without a silent conversion copy)"
        )


class BatchedTransposePlan:
    """Shape-specialized in-place transpose applied across a batch axis.

    Parameters mirror :class:`~repro.core.plan.TransposePlan`; ``execute``
    takes either a flat buffer of ``k * m * n`` elements or a ``(k, m*n)`` /
    ``(k, m, n)`` array, and transposes every matrix in place.
    """

    def __init__(self, m: int, n: int, order: str = "C", algorithm: str = "auto"):
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        if algorithm == "auto":
            algorithm = choose_algorithm(m, n)
        if algorithm not in ("c2r", "r2c"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.m, self.n, self.order, self.algorithm = m, n, order, algorithm

        vm, vn = (m, n) if order == "C" else (n, m)
        if algorithm == "c2r":
            dec = Decomposition.of(vm, vn)
            self._steps = self._build_c2r(dec)
        else:
            dec = Decomposition.of(vn, vm)
            self._steps = self._build_r2c(dec)
        self.dec = dec

    def _build_c2r(self, dec: Decomposition):
        plan = []
        if dec.c > 1:
            plan.append(("rows3", eq.rotate_r_matrix(dec)[None, :, :]))
        plan.append(("cols3", eq.dprime_inverse_matrix(dec)[None, :, :]))
        plan.append(("rows3", eq.sprime_matrix(dec)[None, :, :]))
        return plan

    def _build_r2c(self, dec: Decomposition):
        plan = [
            ("rows3", eq.sprime_inverse_matrix(dec)[None, :, :]),
            ("cols3", eq.dprime_matrix(dec)[None, :, :]),
        ]
        if dec.c > 1:
            plan.append(("rows3", eq.rotate_r_inverse_matrix(dec)[None, :, :]))
        return plan

    @property
    def scratch_bytes(self) -> int:
        """Bytes held by the precomputed gather maps."""
        return sum(idx.nbytes for _, idx in self._steps)

    def __reduce__(self):
        # Ship the identity, not the O(mn) gather maps: a plan crossing a
        # process boundary rebuilds from its plan-cache key on the other
        # side (each worker process owns its own cache).
        return (self.__class__, (self.m, self.n, self.order, self.algorithm))

    @staticmethod
    def _apply_np(V: np.ndarray, kind: str, idx: np.ndarray) -> None:
        axis = 1 if kind == "rows3" else 2
        V[:] = np.take_along_axis(V, np.broadcast_to(idx, V.shape), axis=axis)

    def _execute_sanitized(self, V: np.ndarray, san) -> None:
        """Run the 3-D gathers under the shadow-memory sanitizer.

        Every batched pass is a full-coverage gather, so each tile's flat
        reads (resolved through the pass's index map) and writes are
        recorded before mutating; tiles are disjoint slices of the shadow,
        so per-tile records carry tile provenance without false clobbers.
        """
        k, m, n = V.shape
        mn = m * n
        rows = np.arange(m, dtype=np.int64)[:, None]
        cols = np.arange(n, dtype=np.int64)[None, :]
        tile_writes = (rows * n + cols).ravel()  # repro-lint: allow(implicit-copy) flat index array, not a matrix view
        for kind, idx in self._steps:
            if kind == "rows3":
                tile_reads = idx[0].astype(np.int64) * n + cols
            else:  # cols3
                tile_reads = rows * n + idx[0].astype(np.int64)
            tile_reads = tile_reads.ravel()  # repro-lint: allow(implicit-copy) flat index array, not a matrix view
            with san.pass_scope(f"batched.{kind}", k * mn):
                for t in range(k):
                    base = t * mn
                    san.record(
                        reads=base + tile_reads,
                        writes=base + tile_writes,
                        where=f"tile {t}",
                    )
                self._apply_np(V, kind, idx)

    def _resolve_native(self, buf: np.ndarray, backend: str | None):
        """The compiled kernel to batch over, or ``None`` for numpy.

        Batched and single plans for one ``(algorithm, shape, itemsize)``
        generate identical C source, so the on-disk artifact is shared; only
        the per-plan memoization slot is separate.
        """
        if backend == "numpy":
            return None
        native = _native()
        if not native.enabled():
            if backend == "native":
                native.record_fallback("disabled by REPRO_NATIVE=0")
            return None
        if backend != "native" and buf.size < native.min_elems():
            return None
        return native.kernel_for_plan(self, buf.dtype.itemsize)

    def _execute_native(self, buf: np.ndarray, V: np.ndarray, kernel) -> None:
        """Run the compiled kernel across the batch.

        Scratch failures are positional (see the kernel's return-code
        contract): the numpy gathers finish exactly the tiles and passes the
        kernel did not reach.
        """
        rt = _runtime_metrics()
        tr = _tracer()
        reg = rt.registry
        addr = buf.ctypes.data
        k = V.shape[0]
        steps = self._steps
        dec = self.dec
        if tr.enabled or reg.enabled:
            pass_bytes = 2 * buf.nbytes
            for i, (kind, idx) in enumerate(steps):
                try:
                    if tr.enabled:
                        with tr.span(
                            f"pass.{kind}", m=dec.m, n=dec.n, batch=k,
                            algorithm=self.algorithm, bytes=pass_bytes,
                            backend="native",
                        ) as sp:
                            kernel.run_pass_batch(i, addr, k)
                        if reg.enabled:
                            reg.observe(f"batched.pass.{kind}", sp.duration_s)
                    else:
                        t0 = perf_counter()
                        kernel.run_pass_batch(i, addr, k)
                        reg.observe(f"batched.pass.{kind}", perf_counter() - t0)
                except MemoryError as exc:
                    # Pass ``i`` reached tiles < tile; finish it, then run
                    # the remaining passes entirely on numpy.
                    tile = getattr(exc, "tile", 0)
                    _native().record_fallback(
                        f"scratch allocation failed at batched pass {i}"
                    )
                    self._apply_np(V[tile:], kind, idx)
                    for rest_kind, rest_idx in steps[i + 1:]:
                        self._apply_np(V, rest_kind, rest_idx)
                    break
            if reg.enabled:
                reg.inc("native.calls")
                reg.inc("bytes_moved", len(steps) * 2 * buf.nbytes)
                reg.inc("elements_touched", len(steps) * buf.size)
        else:
            try:
                kernel.run_batch(addr, k)
            except MemoryError as exc:
                pi = getattr(exc, "pass_index", 0)
                tile = getattr(exc, "tile", 0)
                _native().record_fallback(
                    f"scratch allocation failed at tile {tile}, pass {pi}"
                )
                sub = V[tile:tile + 1]
                for kind, idx in steps[pi:]:
                    self._apply_np(sub, kind, idx)
                if tile + 1 < k:
                    rest = V[tile + 1:]
                    for kind, idx in steps:
                        self._apply_np(rest, kind, idx)

    def on_cache_evict(self) -> None:
        """Plan-cache eviction hook: unlink any compiled kernel artifacts."""
        _native().release_plan_kernels(self)

    def execute(self, buf: np.ndarray, *, backend: str | None = None) -> np.ndarray:
        """Transpose every matrix of the batch in place; returns ``buf``.

        ``backend`` follows :meth:`TransposePlan.execute`: ``None``/
        ``"auto"`` use a compiled kernel opportunistically, ``"native"``
        insists (warns and falls back when impossible), ``"numpy"`` forces
        the 3-D gathers.
        """
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        dec = self.dec
        mn = self.m * self.n
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "batched buffers must be C-contiguous "
                "(a strided view would be silently copied, not permuted)"
            )
        if not buf.flags.writeable:
            raise ValueError(
                "batched buffers must be writeable "
                "(in-place transposition writes the result back)"
            )
        if buf.ndim == 1:
            if buf.shape[0] % mn:
                raise ValueError("flat batch length must be a multiple of m*n")
            V = buf.reshape(-1, dec.m, dec.n)
        elif buf.ndim == 2 and buf.shape[1] == mn:
            V = buf.reshape(buf.shape[0], dec.m, dec.n)
        elif buf.ndim == 3 and buf.shape[1] * buf.shape[2] == mn:
            V = buf.reshape(buf.shape[0], dec.m, dec.n)
        else:
            raise ValueError(
                f"cannot interpret shape {buf.shape} as a batch of "
                f"{self.m}x{self.n} matrices"
            )
        san = _sanitizer()
        if san.enabled:
            # Native kernels bypass the shadow hooks: a sanitized run must
            # see every index, so force the numpy gathers (and make the
            # refusal observable when the caller insisted on native).
            if backend == "native":
                _native().record_fallback("sanitizer active")
            self._execute_sanitized(V, san)
            return buf
        kernel = self._resolve_native(buf, backend)
        if kernel is not None:
            self._execute_native(buf, V, kernel)
            return buf
        rt = _runtime_metrics()
        tr = _tracer()
        if tr.enabled:
            # One span per batched pass; the batch dimension rides along, so
            # the byte volume scales with the whole batch buffer.
            pass_bytes = 2 * buf.nbytes
            reg = rt.registry
            for kind, idx in self._steps:
                axis = 1 if kind == "rows3" else 2
                with tr.span(
                    f"pass.{kind}", m=dec.m, n=dec.n, batch=V.shape[0],
                    algorithm=self.algorithm, bytes=pass_bytes,
                ) as sp:
                    V[:] = np.take_along_axis(
                        V, np.broadcast_to(idx, V.shape), axis=axis
                    )
                if reg.enabled:
                    reg.observe(f"batched.pass.{kind}", sp.duration_s)
            if reg.enabled:
                reg.inc("bytes_moved", len(self._steps) * pass_bytes)
                reg.inc("elements_touched", len(self._steps) * buf.size)
        elif rt.registry.enabled:
            for kind, idx in self._steps:
                axis = 1 if kind == "rows3" else 2
                t0 = perf_counter()
                V[:] = np.take_along_axis(V, np.broadcast_to(idx, V.shape), axis=axis)
                rt.registry.observe(f"batched.pass.{kind}", perf_counter() - t0)
            rt.registry.inc("bytes_moved", 2 * len(self._steps) * buf.nbytes)
            rt.registry.inc("elements_touched", len(self._steps) * buf.size)
        else:
            for kind, idx in self._steps:
                axis = 1 if kind == "rows3" else 2
                V[:] = np.take_along_axis(V, np.broadcast_to(idx, V.shape), axis=axis)
        return buf

    def __repr__(self) -> str:
        return (
            f"BatchedTransposePlan(m={self.m}, n={self.n}, "
            f"order={self.order!r}, algorithm={self.algorithm!r})"
        )


def batched_transpose_inplace(
    buf: np.ndarray,
    m: int,
    n: int,
    order: str = "C",
    *,
    algorithm: str = "auto",
    use_plan_cache: bool = True,
    backend: str | None = None,
) -> np.ndarray:
    """One-shot batched transpose (see :class:`BatchedTransposePlan`).

    After the call, every ``m x n`` matrix in the batch holds its ``n x m``
    transpose in the same storage order.  Repeated calls on the same
    ``(k, m, n, order, dtype)`` reuse the gather maps through the process-wide
    :mod:`repro.runtime.plan_cache` (disable per call with
    ``use_plan_cache=False``, or globally via the cache's own opt-out); each
    call is timed into :mod:`repro.runtime.metrics`.  ``backend`` follows
    :meth:`BatchedTransposePlan.execute`.
    """
    rt = _runtime_metrics()
    mn = m * n
    if use_plan_cache and mn and buf.size % mn == 0:
        from ..runtime import plan_cache

        plan = plan_cache.get_batched_plan(
            m, n, buf.size // mn, order, algorithm, buf.dtype
        )
    else:
        plan = BatchedTransposePlan(m, n, order, algorithm)
    tr = _tracer()
    with tr.span(
        "op.batched_transpose_inplace", m=m, n=n,
        batch=buf.size // mn if mn else 0, order=order,
        algorithm=plan.algorithm, dtype=str(buf.dtype),
    ) if tr.enabled else _NULL_CM:
        if rt.registry.enabled:
            t0 = perf_counter()
            plan.execute(buf, backend=backend)
            rt.registry.record_call(
                "batched_transpose_inplace", perf_counter() - t0
            )
        else:
            plan.execute(buf, backend=backend)
    return buf
