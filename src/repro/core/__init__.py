"""Core algorithm: the C2R/R2C decomposition for in-place transposition.

Public surface of the paper's primary contribution:

* :class:`~repro.core.indexing.Decomposition` — the ``(c, a, b)`` gcd
  decomposition of a matrix shape.
* :mod:`~repro.core.equations` — every index equation of Sections 3-4.
* :func:`~repro.core.c2r.c2r_transpose` / :func:`~repro.core.r2c.r2c_transpose`
  — Algorithm 1 and its inverse.
* :func:`~repro.core.transpose.transpose_inplace` /
  :func:`~repro.core.transpose.transpose` — user-facing entry points.
* :class:`~repro.core.plan.TransposePlan` — amortized repeated transposes.
* :class:`~repro.core.permutation.Permutation` — permutation algebra.
"""

from .batched import BatchedTransposePlan, batched_transpose_inplace
from .c2r import c2r_transpose
from .cyclestats import (
    CycleProfile,
    decomposition_task_profile,
    transposition_cycle_profile,
)
from .indexing import Decomposition
from .outofcore import transpose_file_inplace
from .permutation import Permutation
from .plan import TransposePlan
from .r2c import r2c_transpose
from .reference import (
    c2r_oracle,
    r2c_oracle,
    transpose_colmajor_oracle,
    transpose_rowmajor_oracle,
)
from .steps import WorkCounter
from .tensor import swap_first_axes_inplace, swap_last_axes_inplace
from .transpose import choose_algorithm, transpose, transpose_inplace

__all__ = [
    "BatchedTransposePlan",
    "batched_transpose_inplace",
    "CycleProfile",
    "transposition_cycle_profile",
    "decomposition_task_profile",
    "transpose_file_inplace",
    "swap_first_axes_inplace",
    "swap_last_axes_inplace",
    "Decomposition",
    "Permutation",
    "TransposePlan",
    "WorkCounter",
    "c2r_transpose",
    "r2c_transpose",
    "transpose",
    "transpose_inplace",
    "choose_algorithm",
    "c2r_oracle",
    "r2c_oracle",
    "transpose_rowmajor_oracle",
    "transpose_colmajor_oracle",
]
