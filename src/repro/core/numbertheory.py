"""Number-theoretic helpers used by the gather-form index equations.

The gather formulations of the row shuffle (Eq. 31) and row permutation
(Eq. 34) require modular multiplicative inverses of the decomposition
constants ``a`` and ``b`` (which are coprime by construction).  This module
provides the extended Euclidean algorithm and ``mmi`` exactly as the paper
uses it:

    ``(x * mmi(x, y)) mod y == 1``  for coprime ``x`` and ``y``.
"""

from __future__ import annotations

import math

__all__ = ["extended_gcd", "mmi", "are_coprime"]


def extended_gcd(x: int, y: int) -> tuple[int, int, int]:
    """Return ``(g, u, v)`` such that ``u*x + v*y == g == gcd(x, y)``.

    Iterative extended Euclid; works for non-negative inputs (the paper only
    needs it for positive matrix-dimension factors).
    """
    if x < 0 or y < 0:
        raise ValueError("extended_gcd expects non-negative integers")
    old_r, r = x, y
    old_u, u = 1, 0
    old_v, v = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_u, u = u, old_u - q * u
        old_v, v = v, old_v - q * v
    return old_r, old_u, old_v


def are_coprime(x: int, y: int) -> bool:
    """True when ``gcd(x, y) == 1``."""
    return math.gcd(x, y) == 1


def mmi(x: int, y: int) -> int:
    """Modular multiplicative inverse of ``x`` modulo ``y``.

    Defined (as in the paper) only for coprime ``x`` and ``y``.  The result is
    normalized into ``[0, y)``.  ``y == 1`` is the degenerate modulus: every
    integer is congruent to 0, and the inverse is 0 (this arises for matrices
    whose decomposition yields ``b == 1``, i.e. ``n`` divides ``m``).
    """
    if y <= 0:
        raise ValueError(f"modulus must be positive, got {y}")
    if y == 1:
        return 0
    g, u, _ = extended_gcd(x % y, y)
    if g != 1:
        raise ValueError(f"mmi({x}, {y}) undefined: gcd is {g}, not 1")
    return u % y
