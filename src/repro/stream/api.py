"""Public out-of-core entry points: streamed in-place transpose + baseline.

:func:`transpose_file_inplace` is the windowed replacement for the old
unbounded-memmap file path: same signature and error taxonomy, plus the
streaming knobs (``window_bytes``, ``backend``, ``n_threads``).  The
in-RAM wrapper :func:`repro.core.outofcore.transpose_file_inplace`
delegates here, so every consumer of the old API inherits the bounded
resident set.

:func:`naive_transpose_copy` is the comparison baseline the streaming
benchmark gates against: the obvious two-file out-of-place transpose
(read row blocks, write them as column slabs of a second file).  It moves
each element once but pays a strided scatter per block — the bandwidth
the decomposition's sequential passes have to beat is *this*, not an
in-RAM copy.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .executor import BandedExecutor
from .window import drop_pages, sync_pages_async

__all__ = ["transpose_file_inplace", "naive_transpose_copy"]


def transpose_file_inplace(
    path: str | os.PathLike,
    m: int,
    n: int,
    dtype,
    order: str = "C",
    *,
    algorithm: str = "auto",
    window_bytes: int | None = None,
    io_block_bytes: int | None = None,
    backend: str = "threads",
    n_threads: int = 1,
    native: str = "auto",
    strength_reduced: bool = True,
    start_method: str | None = None,
) -> dict:
    """Transpose the ``m x n`` matrix stored in a raw binary file, in place,
    through the banded windowed executor.

    Parameters
    ----------
    path:
        File holding exactly ``m * n`` elements of ``dtype`` in ``order``
        storage.  Rewritten in place; afterwards it holds the ``n x m``
        transpose in the same order.
    algorithm:
        ``"auto"`` (paper heuristic), ``"c2r"`` or ``"r2c"``.
    window_bytes:
        Resident byte budget per band (default ``REPRO_STREAM_WINDOW`` or
        256 MiB).
    backend / n_threads:
        Chunk parallelism *within* a band: ``"threads"`` or ``"mp"``.

    Returns the executor's stats dict (passes, bands, bytes moved,
    seconds).  Raises :class:`ValueError` when the file size does not
    match the shape and
    :class:`~repro.stream.executor.BandedScheduleError` when the banded
    race proof fails (nothing is touched in either case).
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    expected = m * n * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path} holds {actual} bytes; {m}x{n} {dtype} needs {expected}"
        )
    with BandedExecutor(
        n_threads,
        backend=backend,
        window_bytes=window_bytes,
        io_block_bytes=io_block_bytes,
        strength_reduced=strength_reduced,
        native=native,
        start_method=start_method,
    ) as ex:
        return ex.transpose_file(
            path, m, n, dtype, order, algorithm=algorithm
        )


def naive_transpose_copy(
    src: str | os.PathLike,
    dst: str | os.PathLike,
    m: int,
    n: int,
    dtype,
    *,
    block_bytes: int = 64 * 1024 * 1024,
) -> dict:
    """Out-of-place two-file transpose baseline: ``dst = src.T``.

    Reads ``src`` (``m x n``, row-major) in row blocks and writes each
    block as a column slab of ``dst`` (``n x m``) — the straightforward
    approach when a second file's worth of disk is acceptable.  Per block,
    writeback is initiated and the pages are dropped on both sides — the
    same residency/flush discipline the streamed path uses — so the
    baseline runs with a bounded resident set and the comparison measures
    the algorithms, not two different page-management policies.  The
    final ``flush()`` is the durability barrier.

    Returns ``{"seconds": ..., "bytes": ...}`` for the benchmark.
    """
    from time import perf_counter

    src, dst = Path(src), Path(dst)
    dtype = np.dtype(dtype)
    expected = m * n * dtype.itemsize
    if src.stat().st_size != expected:
        raise ValueError(
            f"{src} holds {src.stat().st_size} bytes; "
            f"{m}x{n} {dtype} needs {expected}"
        )
    t0 = perf_counter()
    with open(dst, "wb") as fh:
        fh.truncate(expected)
    a = np.memmap(src, dtype=dtype, mode="r", shape=(m, n))
    b = np.memmap(dst, dtype=dtype, mode="r+", shape=(n, m))
    src_row = n * dtype.itemsize
    dst_row = m * dtype.itemsize
    step = max(1, block_bytes // src_row)
    try:
        for i0 in range(0, m, step):
            i1 = min(m, i0 + step)
            b[:, i0:i1] = a[i0:i1].T
            drop_pages(a._mmap, i0 * src_row, i1 * src_row)
            # The written slab spans every dst row; initiate writeback
            # and drop across the whole mapping so the resident set
            # stays one slab.
            sync_pages_async(b._mmap, 0, n * dst_row)
            drop_pages(b._mmap, 0, n * dst_row)
        b.flush()
    finally:
        del a, b
    return {"seconds": perf_counter() - t0, "bytes": 2 * expected}
