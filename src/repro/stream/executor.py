"""Banded out-of-core executor: pass-by-pass, band-by-band, proof-gated.

Runs the decomposition's pass schedule against a :class:`ResidentWindow`
instead of an in-RAM buffer.  Each pass's iteration range (rows, columns,
or rotation column-groups) is split into sequential *bands* sized to the
window byte budget; inside a band the usual ``n_threads`` chunk schedule
runs — threads (:class:`~repro.parallel.executor.ParallelExecutor`) or
processes (:class:`~repro.parallel.mp.MpExecutor` against a per-band
shared-memory segment) — and the band is flushed before the next one
loads.

Safety is not asserted, it is *proven*: before anything executes, every
band count this call will use goes through
:func:`repro.analysis.racecheck.check_banded_schedule`, which shows the
band x chunk write rectangles of every pass are pairwise disjoint and
covering and that reads stay inside the writing chunk's own rectangle.
That last property is exactly why the band copies are sound: a chunk of a
band permutes only data the band itself holds, so a RAM copy of the band
is indistinguishable from the mapped file.  A failed proof raises
:class:`BandedScheduleError` and nothing is touched.

Native kernels: every pass runs through the compiled per-plan kernel when
one is available.  Row-axis passes (``row_shuffle`` / ``row_shuffle_r2c``)
keep the full row stride in their band copy, so the plain
``run_pass(lo, hi)`` entry point sees them at ``base - r0 * n * itemsize``
and is handed the *global* ``[lo, hi)`` chunk range.  Column and rotation
bands are narrower than a row, so they go through the band-rebased
``run_pass_banded(lo, hi, row_stride, origin)`` entry points the codegen
emits alongside the full-width ones — same index arithmetic in global
coordinates, addressing rebased to the band copy's stride and first
column.  A scratch-allocation failure inside a native chunk falls back to
the numpy gather for exactly that chunk, the same contract as the in-RAM
path.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter

import numpy as np

from ..core.indexing import Decomposition
from ..core.transpose import choose_algorithm
from ..parallel.executor import ParallelExecutor
from ..parallel.partition import balanced_chunks
from ..strength.reduced import ReducedEquations
from .window import ResidentWindow, default_window_bytes, parse_bytes

__all__ = [
    "BandedExecutor",
    "BandedScheduleError",
    "band_rotate_chunk",
    "band_row_gather_chunk",
    "band_col_gather_chunk",
]

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()

_metrics = None
_trace = None
_events = None
_racecheck = None
_native_mod = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


def _tracer():
    """Lazily bind the process-wide structured tracer (repro.trace.spans)."""
    global _trace
    if _trace is None:
        from ..trace import spans

        _trace = spans
    return _trace.tracer


def _event_log():
    """Lazily bind the structured event log (repro.trace.events)."""
    global _events
    if _events is None:
        from ..trace import events

        _events = events
    return _events.event_log


def _racecheck_mod():
    """Lazily bind the race checker (proof gate + sanitizer)."""
    global _racecheck
    if _racecheck is None:
        from ..analysis import racecheck

        _racecheck = racecheck
    return _racecheck


def _native():
    """Lazily bind the compiled-kernel backend (repro.native)."""
    global _native_mod
    if _native_mod is None:
        from .. import native

        _native_mod = native
    return _native_mod


class BandedScheduleError(RuntimeError):
    """The banded race proof failed; nothing was executed."""


#: process-wide memo of proven (M, N, n_bands, n_threads, algorithm)
#: schedules — the proof is pure in those five ints, so one-shot entry
#: points (`transpose_file_inplace`) share it across executor instances.
_PROVEN: set[tuple] = set()


# -- band-aware chunk kernels --------------------------------------------------
#
# Same gather/rotate bodies as repro.parallel.cpu, addressed in *global*
# matrix coordinates but storing into a band-local buffer.  Module-level so
# the thread backend calls them through closures and the mp backend ships
# them by descriptor (repro.stream.executor is importable from a worker).


def band_rotate_chunk(
    B: np.ndarray, dec: Decomposition, sign: int, g0: int, groups: slice
) -> None:
    """Rotate column groups ``groups`` (global ids) of a band that starts
    at group ``g0`` by ``sign * (g mod m)`` (Lemma 1)."""
    m = dec.m
    for g in range(groups.start, groups.stop):
        k = g % m  # repro-lint: allow(raw-divmod) O(c) per-group setup, not per-element
        if k == 0:
            continue
        cols = slice((g - g0) * dec.b, (g - g0 + 1) * dec.b)
        B[:, cols] = np.roll(B[:, cols], sign * k, axis=0)


def band_row_gather_chunk(
    B: np.ndarray, dec: Decomposition, index_map, r0: int, rows: slice
) -> None:
    """Gather global rows ``rows`` of a band starting at row ``r0`` along
    axis 1 with ``index_map(i, cols)`` — a row reads only itself, so the
    band copy sees exactly the data the gather needs."""
    i = np.arange(rows.start, rows.stop, dtype=np.int64)[:, None]
    cols = np.arange(dec.n, dtype=np.int64)[None, :]
    idx = index_map(i, cols)
    local = slice(rows.start - r0, rows.stop - r0)
    B[local] = np.take_along_axis(B[local], idx, axis=1)


def band_col_gather_chunk(
    B: np.ndarray, dec: Decomposition, index_map, c0: int, cols: slice
) -> None:
    """Gather global columns ``cols`` of a band starting at column ``c0``
    along axis 0 with ``index_map(rows, j)`` — a column reads only itself."""
    rows = np.arange(dec.m, dtype=np.int64)[:, None]
    j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
    idx = index_map(rows, j)
    local = slice(cols.start - c0, cols.stop - c0)
    B[:, local] = np.take_along_axis(B[:, local], idx, axis=0)


def _run_band_chunk(
    B: np.ndarray,
    dec: Decomposition,
    red,
    pass_name: str,
    band_start: int,
    chunk: slice,
) -> None:
    """Dispatch one global-coordinate chunk of a band to its kernel."""
    from ..parallel import cpu

    if pass_name in ("pre_rotate", "post_rotate"):
        sign = -1 if pass_name == "pre_rotate" else 1
        band_rotate_chunk(B, dec, sign, band_start, chunk)
    elif pass_name in ("row_shuffle", "row_shuffle_r2c"):
        band_row_gather_chunk(
            B, dec, cpu.pass_index_map(pass_name, dec, red), band_start, chunk
        )
    elif pass_name in ("column_shuffle", "inverse_column_shuffle"):
        band_col_gather_chunk(
            B, dec, cpu.pass_index_map(pass_name, dec, red), band_start, chunk
        )
    else:
        raise ValueError(f"unknown pass {pass_name!r}")


def _band_chunk_task(
    shm_name: str,
    band_shape: tuple,
    vm: int,
    vn: int,
    dtype_str: str,
    pass_name: str,
    band_start: int,
    start: int,
    stop: int,
    strength_reduced: bool,
) -> None:
    """Child-side mp task: run one chunk of one band against the band's
    shared segment.  Mirrors ``repro.parallel.mp._pass_chunk_task`` but the
    segment holds only the band; ``band_start`` anchors the global
    coordinates the index maps need."""
    from ..parallel import mp as mp_mod
    from ..parallel import shm as shm_mod

    B = shm_mod.attach_array(shm_name, tuple(band_shape), dtype_str)
    dec, red = mp_mod._shape_setup(vm, vn, strength_reduced)
    _run_band_chunk(B, dec, red, pass_name, band_start, slice(int(start), int(stop)))


#: pass name -> band geometry on the (M, N) view:
#: (window axis, per-iteration unit rows/cols, whether units are colgroups)
_ROW_PASSES = ("row_shuffle", "row_shuffle_r2c")
_ROTATE_PASSES = ("pre_rotate", "post_rotate")


class BandedExecutor:
    """Runs the decomposition band-by-band over a memmapped file.

    Parameters
    ----------
    n_threads:
        Chunk parallelism *within* a band (bands themselves are strictly
        sequential — that is what bounds the resident set).
    backend:
        ``"threads"`` (default) or ``"mp"`` (per-band shared-memory
        segment + persistent process pool).
    window_bytes:
        Resident byte budget per band (default ``REPRO_STREAM_WINDOW`` or
        256 MiB).
    native:
        ``"auto"`` (default) runs every pass through the compiled kernel
        on band buffers when available (row passes via a shifted base,
        column/rotation passes via the band-rebased entry points);
        ``"off"`` keeps every chunk on numpy.
    """

    def __init__(
        self,
        n_threads: int = 1,
        *,
        backend: str = "threads",
        window_bytes: int | None = None,
        io_block_bytes: int | None = None,
        strength_reduced: bool = True,
        native: str = "auto",
        start_method: str | None = None,
    ):
        if backend not in ("threads", "mp"):
            raise ValueError(f"unknown backend {backend!r}; use 'threads' or 'mp'")
        if native not in ("auto", "off"):
            raise ValueError(f"unknown native mode {native!r}; use 'auto' or 'off'")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = int(n_threads)
        self.backend = backend
        self.window_bytes = (
            default_window_bytes() if window_bytes is None
            else parse_bytes(window_bytes)
        )
        self.io_block_bytes = io_block_bytes
        self.strength_reduced = strength_reduced
        self.native = native
        if backend == "mp":
            from ..parallel.mp import MpExecutor

            self._mp = MpExecutor(self.n_threads, start_method)
            self.executor = None
        else:
            self._mp = None
            self.executor = ParallelExecutor(self.n_threads)

    # -- band planning -------------------------------------------------------

    def _unit_bytes(self, axis: str, dec: Decomposition, itemsize: int) -> int:
        """Bytes one iteration unit of ``axis`` keeps resident."""
        if axis == "rows":
            return dec.n * itemsize
        if axis == "cols":
            return dec.m * itemsize
        if axis == "colgroups":
            return dec.m * dec.b * itemsize
        raise ValueError(f"unknown axis {axis!r}")

    def _n_bands(self, total: int, unit_bytes: int) -> int:
        """Fewest bands whose largest band fits the window budget (a single
        unit larger than the window degenerates to one unit per band)."""
        per_band = max(1, self.window_bytes // unit_bytes)
        return min(total, -(-total // per_band))

    def _prove(self, M: int, N: int, n_bands: int, algorithm: str) -> None:
        """Gate execution on the banded race proof (memoised per shape)."""
        key = (M, N, n_bands, self.n_threads, algorithm)
        if key in _PROVEN:
            return
        report = _racecheck_mod().check_banded_schedule(
            M, N, n_bands, self.n_threads, algorithm
        )
        if not report.ok:
            raise BandedScheduleError(
                f"banded schedule {M}x{N} bands={n_bands} "
                f"threads={self.n_threads} [{algorithm}] failed its race "
                f"proof: {'; '.join(str(f) for f in report.failures[:3])}"
            )
        _PROVEN.add(key)

    # -- native kernel plumbing ----------------------------------------------

    def _native_passes(self, M: int, N: int, algorithm: str, dtype) -> dict:
        """``{pass_name: (kernel, pass_idx)}`` for every pass the compiled
        kernel can run on a band buffer (row passes via the shifted base,
        column/rotation passes via the banded entry points), or empty."""
        if self.native == "off" or self._mp is not None:
            return {}
        if _racecheck_mod().sanitizer.enabled:
            return {}
        native = _native()
        if not native.enabled() or M * N < native.min_elems():
            return {}
        # kernel_for_shape, NOT get_single_plan: a TransposePlan would
        # materialise O(M*N) index-map bytes — the codegen needs only the
        # decomposition constants.  (M, N) is already the executing view
        # for both algorithms; codegen takes the executing dec directly.
        kernel = native.kernel_for_shape(
            Decomposition.of(M, N), algorithm, np.dtype(dtype).itemsize
        )
        if kernel is None:
            return {}
        return {
            p.parallel_name: (kernel, i)
            for i, p in enumerate(kernel.passes)
            if p.parallel_name in _ROW_PASSES or kernel.has_banded(i)
        }

    # -- band execution ------------------------------------------------------

    def _run_band_threads(
        self, name: str, B: np.ndarray, dec: Decomposition, red,
        band: slice, nk, san,
    ) -> None:
        """Chunk-parallel execution of one band on the thread executor."""
        tr = _tracer()
        itemsize = B.itemsize
        r0 = band.start

        def work(local: slice) -> None:
            chunk = slice(band.start + local.start, band.start + local.stop)
            if san is not None:
                _record_sanitizer_chunk(san, name, dec, chunk)
            _run_band_chunk(B, dec, red, name, band.start, chunk)

        if nk is not None:
            kernel, pass_idx = nk
            if name in _ROW_PASSES:
                # row band: full row stride, shifted base, plain entry point
                base = B.ctypes.data - r0 * dec.n * itemsize
                native_call = lambda lo, hi: kernel.run_pass(
                    pass_idx, base, lo, hi
                )
            else:
                # column/rotation band: banded entry point against the
                # band copy's own stride, anchored at the band origin
                addr = B.ctypes.data
                stride = B.shape[1]
                native_call = lambda lo, hi: kernel.run_pass_banded(
                    pass_idx, addr, lo, hi, stride, r0
                )

            def run(local: slice) -> None:
                lo, hi = band.start + local.start, band.start + local.stop
                try:
                    native_call(lo, hi)
                except MemoryError:
                    _native().record_fallback(
                        f"scratch allocation failed in stream pass {name}"
                    )
                    work(local)
        else:
            run = work

        def body(local: slice) -> None:
            if tr.enabled:
                lo, hi = band.start + local.start, band.start + local.stop
                with tr.span(
                    "worker.chunk", stage=name, start=lo, stop=hi,
                    backend="stream",
                ):
                    run(local)
            else:
                run(local)

        self.executor.parallel_for(band.stop - band.start, body, name=name)

    def _run_band_mp(
        self, name: str, window: ResidentWindow, dec: Decomposition,
        band: slice, load, store,
    ) -> None:
        """Run one band on the process pool via a per-band shared segment.

        The band stages straight into the segment (``load(out=...)``), the
        chunk tasks permute it in place, and the segment stores straight
        back — the same two staging traversals as the in-RAM mp backend,
        but sized to the band, not the matrix.
        """
        from ..parallel.shm import SharedArray

        shape = _band_shape(name, dec, band)
        seg = SharedArray(shape, window.dtype)
        try:
            load(out=seg.array)
            tasks = [
                (
                    slice(band.start + ch.start, band.start + ch.stop),
                    (
                        seg.name, shape, dec.m, dec.n, window.dtype.str, name,
                        band.start, band.start + ch.start, band.start + ch.stop,
                        self.strength_reduced,
                    ),
                )
                for ch in balanced_chunks(band.stop - band.start, self.n_threads)
            ]
            self._mp.run_chunks(name, _band_chunk_task, tasks)
            store(seg.array)
        finally:
            seg.destroy()

    def _run_pass(
        self, name: str, axis: str, window: ResidentWindow,
        dec: Decomposition, red, n_bands: int, nk,
    ) -> int:
        """Run one pass band-by-band; returns the number of bands run."""
        total = dec.c if axis == "colgroups" else (
            dec.m if axis == "rows" else dec.n
        )
        bands = balanced_chunks(total, n_bands)
        tr = _tracer()
        ev = _event_log()
        rc = _racecheck_mod()
        san = rc.sanitizer if rc.sanitizer.enabled else None
        scope = (
            san.pass_scope(
                f"stream.{name}", dec.m * dec.n,
                full_coverage=name not in _ROTATE_PASSES,
            )
            if san is not None and self._mp is None else _NULL_CM
        )
        with scope:
            for bi, band in enumerate(bands):
                self._run_one_band(
                    name, axis, window, dec, red, band, bi, len(bands),
                    nk, tr, ev, san,
                )
        return len(bands)

    def _run_one_band(
        self, name, axis, window, dec, red, band, bi, nb, nk, tr, ev, san,
    ) -> None:
        """Load, permute and flush a single band (spans + progress event)."""
        if axis == "rows":
            load = lambda out=None: window.load_rows(band.start, band.stop, out)
            store = lambda B: window.store_rows(band.start, band.stop, B)
            nbytes = (band.stop - band.start) * dec.n * window.dtype.itemsize
        elif axis == "cols":
            load = lambda out=None: window.load_cols(band.start, band.stop, out)
            store = lambda B: window.store_cols(band.start, band.stop, B)
            nbytes = dec.m * (band.stop - band.start) * window.dtype.itemsize
        else:  # colgroups
            c0, c1 = band.start * dec.b, band.stop * dec.b
            load = lambda out=None: window.load_cols(c0, c1, out)
            store = lambda B: window.store_cols(c0, c1, B)
            nbytes = dec.m * (c1 - c0) * window.dtype.itemsize
        if ev.enabled:
            ev.emit(
                "stream",
                trace_id=tr.current_trace_id() if tr.enabled else "",
                stage=name, band=bi, bands=nb,
                lo=band.start, hi=band.stop, bytes=nbytes,
            )
        with tr.span(
            "stream.band", stage=name, band=bi, bands=nb,
            lo=band.start, hi=band.stop, bytes=2 * nbytes,
        ) if tr.enabled else _NULL_CM:
            if self._mp is not None:
                self._run_band_mp(name, window, dec, band, load, store)
            else:
                B = load()
                self._run_band_threads(name, B, dec, red, band, nk, san)
                store(B)
        reg = _runtime_metrics().registry
        if reg.enabled:
            reg.inc("stream.bands")

    # -- entry point ---------------------------------------------------------

    def transpose_file(
        self,
        path,
        m: int,
        n: int,
        dtype,
        order: str = "C",
        *,
        algorithm: str = "auto",
        mode: str = "r+",
    ) -> dict:
        """Transpose the ``m x n`` matrix stored in ``path`` in place,
        band-by-band, and return a stats dict (passes, bands, bytes moved,
        window budget, elapsed seconds).

        Raises :class:`ValueError` on shape/size/order problems (before the
        file is opened for writing beyond validation) and
        :class:`BandedScheduleError` when the race proof fails (before any
        band executes).  On a pass failure the already-flushed bands are
        durable and the mapping is synced best-effort before the error
        propagates — there is no silently-skipped flush.
        """
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        if algorithm not in ("auto", "c2r", "r2c"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if algorithm == "auto":
            algorithm = choose_algorithm(m, n)
        vm, vn = (m, n) if order == "C" else (n, m)
        # Same view folding as the in-RAM entry points: C2R runs on the
        # (vm, vn) view, R2C on the (vn, vm) view (Theorem 7).
        M, N = (vm, vn) if algorithm == "c2r" else (vn, vm)
        dec = Decomposition.of(M, N)
        red = None
        if self.strength_reduced:
            try:
                red = ReducedEquations(dec)
            except ValueError:
                red = None
        itemsize = np.dtype(dtype).itemsize
        passes = _racecheck_mod().pass_order(algorithm, dec.c)
        plan = []
        for name in passes:
            axis, extent_attr = _racecheck_mod().PASS_AXES[name]
            total = getattr(dec, extent_attr)
            k = self._n_bands(total, self._unit_bytes(axis, dec, itemsize))
            plan.append((name, axis, k))
        for k in sorted({k for _, _, k in plan}):
            self._prove(M, N, k, algorithm)

        nks = self._native_passes(M, N, algorithm, dtype)
        rt = _runtime_metrics()
        tr = _tracer()
        t0 = perf_counter()
        bands_run = 0
        with ResidentWindow(
            path, M, N, dtype,
            window_bytes=self.window_bytes,
            io_block_bytes=self.io_block_bytes,
            mode=mode,
        ) as window:
            with tr.span(
                f"op.stream.{algorithm}", m=m, n=n, order=order,
                threads=self.n_threads, backend=self.backend,
                window=self.window_bytes, dtype=str(np.dtype(dtype)),
            ) if tr.enabled else _NULL_CM:
                try:
                    for name, axis, k in plan:
                        bands_run += self._timed_pass(
                            name, axis, window, dec, red, k, nks.get(name)
                        )
                except BaseException:
                    # flush-or-raise: make what *was* stored durable, but
                    # never let an msync error mask the pass failure.
                    try:
                        window.flush()
                    except OSError:
                        if rt.registry.enabled:
                            rt.registry.inc("stream.flush_failed")
                    raise
                window.flush()
            stats = {
                "m": m, "n": n, "order": order, "algorithm": algorithm,
                "passes": len(plan), "bands": bands_run,
                "window_bytes": self.window_bytes,
                "backend": self.backend, "threads": self.n_threads,
                "bytes_read": window.bytes_read,
                "bytes_written": window.bytes_written,
            }
        dt = perf_counter() - t0
        stats["seconds"] = dt
        if rt.registry.enabled:
            rt.registry.record_call(
                "stream.transpose", dt,
                nbytes=stats["bytes_read"] + stats["bytes_written"],
                elements=len(plan) * M * N,
            )
        return stats

    def _timed_pass(
        self, name, axis, window, dec, red, n_bands, nk,
    ) -> int:
        """Run one pass, recording ``stream.pass.<name>`` and a
        ``pass.<name>`` span exactly like the in-RAM backends."""
        rt = _runtime_metrics()
        tr = _tracer()
        bk = "native" if nk is not None else self.backend
        if tr.enabled:
            with tr.span(
                f"pass.{name}", m=dec.m, n=dec.n, bands=n_bands, backend=bk,
                bytes=2 * dec.m * dec.n * window.dtype.itemsize,
            ) as sp:
                out = self._run_pass(name, axis, window, dec, red, n_bands, nk)
            if rt.registry.enabled:
                rt.registry.observe(f"stream.pass.{name}", sp.duration_s)
            return out
        if rt.registry.enabled:
            t0 = perf_counter()
            out = self._run_pass(name, axis, window, dec, red, n_bands, nk)
            rt.registry.observe(f"stream.pass.{name}", perf_counter() - t0)
            return out
        return self._run_pass(name, axis, window, dec, red, n_bands, nk)

    def close(self) -> None:
        if self._mp is not None:
            self._mp.shutdown()
        if self.executor is not None:
            self.executor.shutdown()

    def __enter__(self) -> "BandedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _band_shape(name: str, dec: Decomposition, band: slice) -> tuple[int, int]:
    """RAM/segment shape of one band of pass ``name``."""
    extent = band.stop - band.start
    if name in _ROW_PASSES:
        return (extent, dec.n)
    if name in _ROTATE_PASSES:
        return (dec.m, extent * dec.b)
    return (dec.m, extent)


def _record_sanitizer_chunk(san, name: str, dec: Decomposition, chunk: slice) -> None:
    """Shadow-memory accounting for one global-coordinate chunk (the same
    index algebra the in-RAM sanitized path records)."""
    if name in _ROTATE_PASSES:
        for g in range(chunk.start, chunk.stop):
            if g % dec.m == 0:  # repro-lint: allow(raw-divmod) O(c) per-group setup, not per-element
                continue
            flat = (
                np.arange(dec.m, dtype=np.int64)[:, None] * dec.n
                + np.arange(g * dec.b, (g + 1) * dec.b, dtype=np.int64)
            ).ravel()  # repro-lint: allow(implicit-copy) flat index array, not a view
            san.record(reads=flat, writes=flat, where=f"group[{g}]")
        return
    from ..parallel import cpu

    # Rebuild the raw (non-reduced) index map: the sanitizer wants plain
    # integer algebra, and this path is opt-in debugging, not hot.
    index_map = cpu.pass_index_map(name, dec, None)
    if name in _ROW_PASSES:
        i = np.arange(chunk.start, chunk.stop, dtype=np.int64)[:, None]
        cols = np.arange(dec.n, dtype=np.int64)[None, :]
        idx = index_map(i, cols)
        san.record(
            reads=i * dec.n + idx, writes=i * dec.n + cols,
            where=f"rows[{chunk.start}:{chunk.stop}]",
        )
    else:
        rows = np.arange(dec.m, dtype=np.int64)[:, None]
        j = np.arange(chunk.start, chunk.stop, dtype=np.int64)[None, :]
        idx = index_map(rows, j)
        san.record(
            reads=idx * dec.n + j, writes=rows * dec.n + j,
            where=f"cols[{chunk.start}:{chunk.stop}]",
        )
