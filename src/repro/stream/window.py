"""Byte-budgeted resident window over a memory-mapped matrix file.

Out-of-core execution needs one invariant the raw ``np.memmap`` path cannot
give: a *bound* on how much of the file is resident at once.  The
:class:`ResidentWindow` provides it.  The file is mapped once, but the
mapping is only ever *touched* through band-granular load/store calls, and
every call ends by handing the touched pages back to the kernel
(``msync`` + ``madvise(MADV_DONTNEED)``), so the process's resident set
stays at (band buffer) + (one I/O block) + interpreter baseline regardless
of file size.

Flush ordering — the contract the banded race proof
(:func:`repro.analysis.racecheck.check_banded_schedule`) depends on:

1. a band is **loaded** (copied out of the mapping into a RAM buffer, the
   touched pages dropped immediately — they are clean);
2. the band is permuted entirely in RAM;
3. the band is **stored** (written through the mapping), its writeback
   initiated (``msync(MS_ASYNC)``) and its pages dropped (``madvise``)
   *before the next band loads*; the op-end ``flush()`` (``MS_SYNC``) is
   the durability barrier.

Because the proof guarantees all band rectangles of a pass are pairwise
disjoint, no later band can observe — or clobber — a flushed band's
elements within the pass, so step 3 is safe to run eagerly.  The
*resident* set (RSS) never exceeds band buffer + one I/O block; dirty
page-cache pages between the async initiation and the barrier are the
kernel writeback system's to schedule (and throttle), which is what lets
a scattered column-band store coalesce into sequential device writes
instead of stalling on per-page random ``msync``.

Two band geometries cover every decomposition pass:

* **row bands** ``[r0, r1)`` — contiguous byte ranges of a row-major file;
  one straight copy each way;
* **column bands** ``[c0, c1)`` — strided; materialised via row-block
  sub-copies, each sub-copy's pages dropped before the next faults in, so
  even the gather of a column band respects the byte budget.

Environment knobs (see docs/STREAMING.md):

* ``REPRO_STREAM_WINDOW`` — default window byte budget (suffixes k/m/g
  accepted); the library default is 256 MiB.
* ``REPRO_STREAM_IO_BLOCK`` — byte budget of one strided sub-copy while
  (de)materialising a column band; defaults to window/4.
"""

from __future__ import annotations

import mmap
import os
import sys
from pathlib import Path

import numpy as np

__all__ = [
    "ResidentWindow",
    "DEFAULT_WINDOW_BYTES",
    "WINDOW_ENV",
    "IO_BLOCK_ENV",
    "default_window_bytes",
    "parse_bytes",
    "drop_pages",
    "sync_pages",
    "sync_pages_async",
]

#: library default for the resident-window byte budget
DEFAULT_WINDOW_BYTES = 256 * 1024 * 1024

#: environment override for the default window budget
WINDOW_ENV = "REPRO_STREAM_WINDOW"

#: environment override for the strided-copy I/O block budget
IO_BLOCK_ENV = "REPRO_STREAM_IO_BLOCK"

_PAGE = mmap.PAGESIZE

_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}

#: madvise(MADV_DONTNEED) availability (Linux; absent on some platforms —
#: the window then degrades to msync-only and the RSS bound is advisory)
_HAS_MADVISE = hasattr(mmap.mmap, "madvise") and hasattr(mmap, "MADV_DONTNEED")


def parse_bytes(text: str | int) -> int:
    """Parse a byte count: plain int or int with a k/m/g suffix."""
    if isinstance(text, int):
        value = text
    else:
        s = str(text).strip().lower()
        mult = 1
        if s and s[-1] in _SUFFIXES:
            mult = _SUFFIXES[s[-1]]
            s = s[:-1]
        try:
            value = int(s) * mult
        except ValueError:
            raise ValueError(f"unparseable byte count {text!r}") from None
    if value < 1:
        raise ValueError(f"byte count must be >= 1, got {value}")
    return value


def default_window_bytes() -> int:
    """The resident-window budget: ``REPRO_STREAM_WINDOW`` or 256 MiB."""
    env = os.environ.get(WINDOW_ENV)
    if env:
        return parse_bytes(env)
    return DEFAULT_WINDOW_BYTES


def _page_span(lo: int, hi: int, limit: int) -> tuple[int, int]:
    """Page-align ``[lo, hi)`` outward and clamp it to ``[0, limit)``."""
    start = (max(0, lo) // _PAGE) * _PAGE
    stop = min(limit, ((hi + _PAGE - 1) // _PAGE) * _PAGE)
    return start, stop


def drop_pages(mapping: mmap.mmap, lo: int, hi: int) -> None:
    """Hand the pages backing bytes ``[lo, hi)`` back to the kernel.

    For a shared file mapping ``MADV_DONTNEED`` only drops residency —
    dirty pages are still written back and re-faults read the file — so
    this is always safe; it is what keeps the RSS bounded by the window.
    """
    if not _HAS_MADVISE:
        return
    start, stop = _page_span(lo, hi, len(mapping))
    if stop > start:
        mapping.madvise(mmap.MADV_DONTNEED, start, stop - start)


def sync_pages(mapping: mmap.mmap, lo: int, hi: int) -> None:
    """``msync`` the pages backing bytes ``[lo, hi)`` (then droppable)."""
    start, stop = _page_span(lo, hi, len(mapping))
    if stop > start:
        mapping.flush(start, stop - start)


# msync(2) MS_ASYNC on Linux.  Python's mmap.flush() is MS_SYNC-only; a
# column band's dirty pages are *scattered* (one slice per row), and a
# synchronous msync of scattered 4 KiB pages degrades a sequential-capable
# device to random-write bandwidth.  MS_ASYNC marks them for writeback and
# returns; the kernel's flusher coalesces across bands, and the op-end
# ``flush()`` (MS_SYNC) remains the durability barrier.
_MS_ASYNC = 1

_libc = None
_async_broken = False


def _msync_fn():
    global _libc
    if _libc is None:
        import ctypes

        _libc = ctypes.CDLL(None, use_errno=True)
    return _libc.msync


def sync_pages_async(mapping: mmap.mmap, lo: int, hi: int) -> None:
    """Initiate writeback of bytes ``[lo, hi)`` without blocking on it.

    Residency is unaffected (the caller still drops the pages); only the
    durability point moves — from per-call to the next full
    :func:`sync_pages` / ``flush()``.  Falls back to the synchronous
    :func:`sync_pages` on platforms without a callable ``msync``.
    """
    global _async_broken
    if _async_broken or not sys.platform.startswith("linux"):
        sync_pages(mapping, lo, hi)
        return
    start, stop = _page_span(lo, hi, len(mapping))
    if stop <= start:
        return
    import ctypes

    buf = (ctypes.c_char * 0).from_buffer(mapping)
    try:
        addr = ctypes.addressof(buf)
    finally:
        del buf
    try:
        rc = _msync_fn()(
            ctypes.c_void_p(addr + start),
            ctypes.c_size_t(stop - start),
            ctypes.c_int(_MS_ASYNC),
        )
    except (OSError, AttributeError):
        _async_broken = True
        sync_pages(mapping, lo, hi)
        return
    if rc != 0:
        _async_broken = True
        sync_pages(mapping, lo, hi)


class ResidentWindow:
    """Band-granular, byte-budgeted access to an ``rows x cols`` file matrix.

    Parameters
    ----------
    path:
        Raw binary file of exactly ``rows * cols`` elements of ``dtype``
        (row-major with respect to the ``(rows, cols)`` view).
    window_bytes:
        Resident byte budget for one band (default:
        :func:`default_window_bytes`).  A band never exceeds it except
        when a single row/column already does — the effective budget is
        ``max(window_bytes, one iteration unit)``.
    io_block_bytes:
        Transient page budget of one strided sub-copy (default:
        ``window_bytes // 4``, at least one page).
    mode:
        ``"r+"`` (default) or ``"r"`` for read-only consumers.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        rows: int,
        cols: int,
        dtype,
        *,
        window_bytes: int | None = None,
        io_block_bytes: int | None = None,
        mode: str = "r+",
    ):
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid matrix shape {rows}x{cols}")
        self.path = Path(path)
        self.rows = int(rows)
        self.cols = int(cols)
        self.dtype = np.dtype(dtype)
        expected = self.rows * self.cols * self.dtype.itemsize
        actual = self.path.stat().st_size
        if actual != expected:
            raise ValueError(
                f"{self.path} holds {actual} bytes; "
                f"{rows}x{cols} {self.dtype} needs {expected}"
            )
        self.window_bytes = (
            default_window_bytes() if window_bytes is None
            else parse_bytes(window_bytes)
        )
        if io_block_bytes is None:
            env = os.environ.get(IO_BLOCK_ENV)
            # Floor at 4 MiB: the block only bounds *transient* residency
            # (pages are dropped before the next block), and sub-page
            # blocks would turn a column-band copy into a per-row syscall
            # storm without tightening the band budget at all.
            io_block_bytes = (
                parse_bytes(env) if env
                else max(4 * 1024 * 1024, self.window_bytes // 4)
            )
        self.io_block_bytes = max(_PAGE, int(io_block_bytes))
        self._mm = np.memmap(
            self.path, dtype=self.dtype, mode=mode, shape=(self.rows * self.cols,)
        )
        self.view = self._mm.reshape(self.rows, self.cols)
        self._row_bytes = self.cols * self.dtype.itemsize
        #: lifetime accounting (exported through stream metrics)
        self.bytes_read = 0
        self.bytes_written = 0
        self.loads = 0
        self.stores = 0

    # -- residency plumbing --------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * self.dtype.itemsize

    def _drop_rows(self, r0: int, r1: int) -> None:
        drop_pages(self._mm._mmap, r0 * self._row_bytes, r1 * self._row_bytes)

    def _sync_rows(self, r0: int, r1: int) -> None:
        sync_pages_async(
            self._mm._mmap, r0 * self._row_bytes, r1 * self._row_bytes
        )

    def _block_rows(self, band_cols: int) -> int:
        """Rows per strided sub-copy so one block's touched pages (one
        ``band_cols`` span plus page-granularity slop per row) fit the
        I/O block budget."""
        per_row = band_cols * self.dtype.itemsize + _PAGE
        return max(1, self.io_block_bytes // per_row)

    # -- row bands (contiguous byte ranges) ----------------------------------

    def load_rows(self, r0: int, r1: int, out: np.ndarray | None = None) -> np.ndarray:
        """Materialise rows ``[r0, r1)`` into a RAM band buffer."""
        band = (
            np.empty((r1 - r0, self.cols), dtype=self.dtype)
            if out is None else out
        )
        np.copyto(band.reshape(r1 - r0, self.cols), self.view[r0:r1])
        self._drop_rows(r0, r1)  # clean pages: drop costs nothing
        self.bytes_read += (r1 - r0) * self._row_bytes
        self.loads += 1
        return band

    def store_rows(self, r0: int, r1: int, band: np.ndarray) -> None:
        """Write a row band back, initiate its writeback and drop its
        pages (flush step 3 of the module contract) before the caller
        loads the next band."""
        self.view[r0:r1] = band.reshape(r1 - r0, self.cols)
        self._sync_rows(r0, r1)
        self._drop_rows(r0, r1)
        self.bytes_written += (r1 - r0) * self._row_bytes
        self.stores += 1

    # -- column bands (strided, materialised via row blocks) -----------------

    def load_cols(self, c0: int, c1: int, out: np.ndarray | None = None) -> np.ndarray:
        """Materialise columns ``[c0, c1)`` (all rows) into a RAM band."""
        width = c1 - c0
        band = (
            np.empty((self.rows, width), dtype=self.dtype)
            if out is None else out
        )
        bview = band.reshape(self.rows, width)
        step = self._block_rows(width)
        for i0 in range(0, self.rows, step):
            i1 = min(self.rows, i0 + step)
            bview[i0:i1] = self.view[i0:i1, c0:c1]
            self._drop_rows(i0, i1)
        self.bytes_read += self.rows * width * self.dtype.itemsize
        self.loads += 1
        return band

    def store_cols(self, c0: int, c1: int, band: np.ndarray) -> None:
        """Write a column band back block-by-block; each block's writeback
        is initiated and its pages dropped before the next one faults in,
        so the *resident* set never exceeds one I/O block (the scattered
        dirty pages drain through kernel writeback, not a blocking
        per-block msync)."""
        width = c1 - c0
        bview = band.reshape(self.rows, width)
        step = self._block_rows(width)
        for i0 in range(0, self.rows, step):
            i1 = min(self.rows, i0 + step)
            self.view[i0:i1, c0:c1] = bview[i0:i1]
            self._sync_rows(i0, i1)
            self._drop_rows(i0, i1)
        self.bytes_written += self.rows * width * self.dtype.itemsize
        self.stores += 1

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Full ``msync`` of the mapping (the end-of-op durability point)."""
        self._mm.flush()

    def close(self) -> None:
        """Flush and release the mapping (idempotent)."""
        if self._mm is not None:
            self._mm.flush()
            drop_pages(self._mm._mmap, 0, self.nbytes)
            self.view = None
            self._mm = None

    def __enter__(self) -> "ResidentWindow":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Already unwinding: close best-effort so an msync error cannot
            # mask the pass failure (the executor records it instead).
            try:
                self.close()
            except OSError:
                pass
            return
        self.close()
