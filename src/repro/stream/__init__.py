"""Out-of-core streaming subsystem: bounded-window banded execution.

The paper's ``O(max(m, n))`` auxiliary bound makes the decomposition
viable on matrices that do not fit in RAM; this package makes that real
for file-backed matrices:

* :class:`~repro.stream.window.ResidentWindow` — byte-budgeted band
  access over an ``np.memmap`` with explicit per-band flush ordering
  (``REPRO_STREAM_WINDOW`` sets the default budget);
* :class:`~repro.stream.executor.BandedExecutor` — runs each
  decomposition pass band-by-band through schedules pre-proven by
  :func:`repro.analysis.racecheck.check_banded_schedule`, with
  thread/process chunk parallelism inside a band and compiled native
  row-pass kernels when available;
* :func:`~repro.stream.api.transpose_file_inplace` — the end-to-end
  entry point (the CLI's ``repro transpose-file --stream`` and the
  serving layer's ``POST /transpose-file`` both route here);
* :func:`~repro.stream.api.naive_transpose_copy` — the two-file
  out-of-place baseline the streaming benchmark gates against.

See docs/STREAMING.md for the window model, the flush-ordering contract
and the zero-copy ingress protocol.
"""

from .api import naive_transpose_copy, transpose_file_inplace
from .executor import BandedExecutor, BandedScheduleError
from .window import (
    DEFAULT_WINDOW_BYTES,
    ResidentWindow,
    default_window_bytes,
    parse_bytes,
)

__all__ = [
    "ResidentWindow",
    "BandedExecutor",
    "BandedScheduleError",
    "transpose_file_inplace",
    "naive_transpose_copy",
    "default_window_bytes",
    "parse_bytes",
    "DEFAULT_WINDOW_BYTES",
]
