"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info M N``
    Decomposition analysis of a shape: constants, algorithm choice, work
    bound, cycle-following comparison and modeled K20c throughput.
``transpose FILE M N``
    Transpose a raw binary matrix file in place (out of core,
    ``O(max(m, n))`` scratch).
``convert FILE N S``
    Convert a raw AoS binary file to SoA (or back, or to the ASTA hybrid)
    in place.
``bench M N``
    Quick wall-clock of the in-place transpose on this machine.
``landscape``
    Print the modeled C2R/R2C throughput landscape (Figures 4-5).
``selftest``
    Run the validation harness over every transposer in the library.
``stats``
    Print a JSON snapshot of the instrumented runtime (per-pass timings,
    bytes moved, plan-cache hit/miss/eviction counts), optionally after
    exercising a small repeated-shape workload.
``analyze``
    Prove the permutation algebra over a shape lattice (bijectivity,
    inversion, composition, fast division), the race-freedom of the
    parallel schedules, and the repo lint invariants; emit a JSON report
    and exit non-zero on any failure.
``trace``
    Run a traced workload and export the structured spans as a
    Chrome/Perfetto trace, a Prometheus text snapshot, or a readable
    per-thread tree.
``profile``
    Per-pass bandwidth breakdown (achieved GB/s and memcpy fraction) from
    a traced run — the Section 7 per-pass evaluation, on this machine.
``transpose-file``
    Out-of-core in-place transpose of a raw binary matrix file through
    ``O(max(m, n))`` scratch (alias of ``transpose``, kept under the
    explicit name).
``serve``
    Run the HTTP transposition service: bounded queue with admission
    control, shape-coalescing batcher, draining worker pool,
    ``/transpose`` + ``/healthz`` + ``/metrics`` endpoints.  SIGINT/
    SIGTERM shut down gracefully (drain, never drop) and print a summary.
``loadtest``
    Open-loop Poisson load generator against a running server (or an
    in-process one with ``--inproc``): p50/p99 latency, throughput vs the
    direct-call ceiling, coalesced-vs-naive batching speedup, optional
    threshold assertions for CI.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main"]


def _cmd_info(args: argparse.Namespace) -> int:
    from .core.cyclestats import (
        decomposition_task_profile,
        transposition_cycle_profile,
    )
    from .core.indexing import Decomposition
    from .core.transpose import choose_algorithm
    from .gpusim.cost import auto_cost

    m, n = args.m, args.n
    dec = Decomposition.of(m, n)
    print(f"shape: {m} x {n}  ({m * n} elements)")
    print(f"decomposition: c = gcd = {dec.c}, a = m/c = {dec.a}, b = n/c = {dec.b}")
    print(f"pre-rotation pass needed: {not dec.coprime}")
    print(f"heuristic algorithm: {choose_algorithm(m, n).upper()}")
    passes = 2 if dec.coprime else 3
    print(f"work bound: {2 * passes} accesses/element "
          f"({passes} passes); aux space: {max(m, n)} elements")
    if m * n <= args.cycle_limit:
        prof = transposition_cycle_profile(m, n)
        task = decomposition_task_profile(m, n)
        if prof.n_units:
            print(f"cycle following: {prof.n_units} cycles, largest holds "
                  f"{prof.largest_fraction * 100:.1f}% of all work "
                  f"(8-way speedup bound {prof.speedup_bound(8):.2f}x)")
        print(f"decomposition: {task.n_units} equal-cost units "
              f"(8-way speedup bound {task.speedup_bound(8):.2f}x)")
    cost = auto_cost(m, n, args.itemsize)
    print(f"modeled Tesla K20c throughput ({args.itemsize}-byte elements): "
          f"{cost.throughput_gbps:.1f} GB/s")
    if args.breakdown:
        print("pass breakdown:")
        for p in cost.passes:
            print(f"  {p.name:<24} {p.useful_bytes/1e9:7.3f} GB useful @ "
                  f"{p.efficiency*100:5.1f}% -> {p.dram_bytes/1e9:7.3f} GB DRAM")
        print(f"  total {cost.dram_bytes/1e9:.3f} GB DRAM, "
              f"{cost.seconds*1e3:.2f} ms")
    return 0


def _cmd_transpose(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    detail = ""
    try:
        if getattr(args, "stream", True):
            # Streamed path (default): band-by-band through the bounded
            # resident window, so peak RSS honors --window-bytes no matter
            # how large the file is.  --threads > 1 parallelizes chunks
            # *within* a band (threads or the mp shared-memory backend)
            # under the pre-proven banded schedule — the old whole-file
            # memmap walk is gone.
            from .stream import parse_bytes, transpose_file_inplace

            window = (
                parse_bytes(args.window_bytes) if args.window_bytes else None
            )
            stats = transpose_file_inplace(
                args.file, args.m, args.n, args.dtype, args.order,
                algorithm=args.algorithm,
                window_bytes=window,
                backend=args.backend,
                n_threads=args.threads,
            )
            detail = (
                f", {stats['bands']} band(s) @ "
                f"{stats['window_bytes'] / 1e6:.0f} MB window, "
                f"{stats['threads']} {stats['backend']} worker(s)"
            )
        else:
            # --no-stream: the strict in-RAM reference path.  Loads the
            # whole file; useful only for debugging the streamed path
            # against the core library on files that fit in memory.
            import os

            from .core import transpose_inplace

            dtype = np.dtype(args.dtype)
            expected = args.m * args.n * dtype.itemsize
            actual = os.stat(args.file).st_size
            if actual != expected:
                raise ValueError(
                    f"{args.file} holds {actual} bytes; "
                    f"{args.m} x {args.n} {args.dtype} needs {expected}"
                )
            buf = np.fromfile(args.file, dtype=dtype)
            transpose_inplace(
                buf, args.m, args.n, args.order, algorithm=args.algorithm
            )
            buf.tofile(args.file)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    dt = time.perf_counter() - t0
    nbytes = args.m * args.n * np.dtype(args.dtype).itemsize
    print(f"transposed {args.file} ({args.m} x {args.n} {args.dtype}, "
          f"{nbytes / 1e6:.1f} MB) in {dt:.2f}s "
          f"({2 * nbytes / dt / 1e9:.3f} GB/s){detail}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .aos import aos_to_asta, aos_to_soa_flat, asta_to_aos, soa_to_aos_flat

    path = Path(args.file)
    dtype = np.dtype(args.dtype)
    expected = args.n * args.s * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        print(f"error: {path} holds {actual} bytes; "
              f"{args.n} x {args.s} {args.dtype} needs {expected}")
        return 1
    buf = np.memmap(  # repro-lint: allow(whole-file-memmap) AoS convert is not yet streamed
        path, dtype=dtype, mode="r+", shape=(args.n * args.s,)
    )
    t0 = time.perf_counter()
    try:
        if args.to == "soa":
            aos_to_soa_flat(buf, args.n, args.s)
        elif args.to == "aos":
            soa_to_aos_flat(buf, args.n, args.s)
        elif args.to == "asta":
            aos_to_asta(buf, args.n, args.s, args.tile)
        else:
            asta_to_aos(buf, args.n, args.s, args.tile)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    buf.flush()
    dt = time.perf_counter() - t0
    print(f"converted {path} to {args.to} in {dt:.2f}s "
          f"({2 * expected / dt / 1e9:.3f} GB/s)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .parallel import ParallelTranspose, default_worker_count

    m, n = args.m, args.n
    threads = args.threads or default_worker_count()
    best = float("inf")
    with ParallelTranspose(threads, backend=args.backend) as pt:
        for _ in range(args.repeats):
            buf = np.arange(m * n, dtype=np.float64)
            t0 = time.perf_counter()
            pt.transpose_inplace(buf, m, n)
            best = min(best, time.perf_counter() - t0)
    print(f"{m} x {n} float64, {threads} {args.backend} worker(s): best "
          f"{best * 1e3:.2f} ms = {2 * m * n * 8 / best / 1e9:.3f} GB/s (Eq. 37)")
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    from .gpusim.cost import c2r_cost, r2c_cost

    cost_fn = c2r_cost if args.algorithm == "c2r" else r2c_cost
    grid = np.linspace(args.lo, args.hi, args.cells, dtype=np.int64)
    print(f"{args.algorithm.upper()} modeled throughput (GB/s), "
          f"{args.itemsize}-byte elements")
    print("        " + "".join(f"n={int(n):<8}" for n in grid))
    for m in grid:
        row = [
            cost_fn(int(m) + 1, int(n) + 2, args.itemsize).throughput_gbps
            for n in grid
        ]
        print(f"m={int(m):<7}" + "".join(f"{v:9.1f} " for v in row))
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .aos.skinny import skinny_transpose
    from .baselines import (
        gustavson_transpose,
        sung_transpose,
        transpose_cycle_following,
    )
    from .cache import c2r_cache_aware
    from .core import c2r_transpose, transpose_inplace
    from .parallel import ParallelTranspose, default_worker_count
    from .validation import validate_transposer

    threads = args.threads or default_worker_count()
    # One persistent transposer for the whole run: the mp backend's process
    # pool costs real startup time, far too much to pay per validation call.
    pt = ParallelTranspose(threads, backend=args.backend)
    candidates = {
        "transpose_inplace (auto)": lambda b, m, n: transpose_inplace(b, m, n),
        "c2r strict": lambda b, m, n: c2r_transpose(b, m, n, aux="strict"),
        "c2r restricted": lambda b, m, n: c2r_transpose(b, m, n, variant="restricted"),
        "cache-aware c2r": lambda b, m, n: c2r_cache_aware(b, m, n),
        f"parallel ({threads} {args.backend})":
            lambda b, m, n: pt.transpose_inplace(b, m, n),
        "skinny": skinny_transpose,
        "cycle following": lambda b, m, n: transpose_cycle_following(b, m, n),
        "gustavson": lambda b, m, n: gustavson_transpose(b, m, n),
        "sung": lambda b, m, n: sung_transpose(b, m, n),
    }
    failed = False
    try:
        for name, fn in candidates.items():
            report = validate_transposer(fn, count=args.count, seed=args.seed)
            print(f"{name:<24} {report}")
            failed |= not report.ok
    finally:
        pt.close()
    return 1 if failed else 0


def _parse_shapes(spec: str) -> list[tuple[int, int]]:
    """Parse ``"64x96,128x128"`` into shape tuples."""
    shapes = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        m, _, n = part.partition("x")
        try:
            shapes.append((int(m), int(n)))
        except ValueError as exc:
            raise ValueError(f"bad shape {part!r}; expected MxN") from exc
    if not shapes:
        raise ValueError("no shapes given")
    return shapes


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .core import batched_transpose_inplace, transpose_inplace
    from .runtime import metrics

    if args.reset:
        from .runtime import plan_cache

        metrics.reset()
        plan_cache.clear()
        plan_cache.get_plan_cache().reset_stats()
    if args.exercise:
        try:
            shapes = _parse_shapes(args.shapes)
        except ValueError as exc:
            print(f"error: {exc}")
            return 1
        # Repeated same-shape traffic: first call per shape builds and caches
        # the plan, the remaining repeats hit it — the amortization the
        # runtime exists to provide, visible in the snapshot below.
        for m, n in shapes:
            for _ in range(args.repeats):
                transpose_inplace(np.arange(m * n, dtype=np.float64), m, n)
            batch = np.arange(2 * m * n, dtype=np.float64)
            batched_transpose_inplace(batch, m, n)
    text = json.dumps(metrics.snapshot(), indent=args.indent, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .analysis import analyze
    from .analysis.driver import DEFAULT_THREAD_COUNTS

    threads = DEFAULT_THREAD_COUNTS
    if args.threads:
        try:
            threads = tuple(int(t) for t in args.threads.split(","))
        except ValueError:
            print(f"error: bad thread list {args.threads!r}; expected e.g. 1,2,4")
            return 1
        if not threads or any(t < 1 for t in threads):
            print("error: thread counts must be positive")
            return 1

    native_configs = None
    if args.native_shapes:
        native_configs = []
        for token in args.native_shapes.split(","):
            parts = token.strip().split(":")
            try:
                m, n = (int(v) for v in parts[0].split("x"))
                order = parts[1].upper() if len(parts) > 1 else "C"
                itemsize = int(parts[2]) if len(parts) > 2 else 8
            except (ValueError, IndexError):
                print(
                    f"error: bad native shape {token!r}; "
                    "expected MxN[:ORDER[:ITEMSIZE]], e.g. 256x384:F:8"
                )
                return 1
            if order not in ("C", "F"):
                print(f"error: bad order {order!r} in {token!r}")
                return 1
            native_configs.append((m, n, order, itemsize))

    progress = None
    message = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"  lattice: {done}/{total} shapes", file=sys.stderr)

        def message(line: str) -> None:
            print(f"  {line}", file=sys.stderr)

    report = analyze(
        args.m_max,
        args.n_max,
        thread_counts=threads,
        run_lint=not args.no_lint,
        fastdiv=not args.no_fastdiv,
        plan_objects=args.plan_objects,
        native=args.native or native_configs is not None,
        native_configs=native_configs,
        mutation=args.mutation,
        progress=progress,
        message=message,
    )
    text = json.dumps(report, indent=args.indent, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    lattice = report["lattice"]
    races = report["racecheck"]
    print(
        f"algebra: {lattice['shapes']} shapes, {lattice['checks']} checks, "
        f"{len(lattice['failures'])} failed shape(s) ({lattice['seconds']:.1f}s)"
    )
    print(
        f"racecheck: {races['schedules']} schedules over threads "
        f"{races['thread_counts']}, {len(races['failures'])} failed "
        f"({races['seconds']:.1f}s)"
    )
    if "lint" in report:
        nv = len(report["lint"]["violations"])
        print(f"lint: {nv} violation(s)")
        for v in report["lint"]["violations"]:
            print(f"  {v['path']}:{v['line']}: {v['rule']} {v['message']}")
    if "kernelcheck" in report:
        kc = report["kernelcheck"]
        bad = [r for r in kc["reports"] if not r["ok"]]
        print(
            f"kernelcheck: {kc['kernels']} kernels, {kc['checks']} checks, "
            f"{len(bad)} failed, {len(kc['skipped'])} skipped "
            f"({kc['seconds']:.1f}s)"
        )
        for r in bad:
            for c in r["failures"]:
                print(
                    f"  {r['m']}x{r['n']} {r['order']} {r['algorithm']}: "
                    f"{c['name']}: {c['detail']}"
                )
    if "mutation" in report:
        mu = report["mutation"]
        print(
            f"mutation: {mu['killed']}/{mu['applied']} mutants killed across "
            f"{len(mu['classes_applied'])} fault classes "
            f"(min {mu['min_classes']}) ({mu['seconds']:.1f}s)"
        )
        for s in mu["survivors"]:
            print(
                f"  SURVIVED: {s['fault']} on {s['m']}x{s['n']} "
                f"{s['order']} {s['algorithm']}"
            )
    if args.output:
        print(f"wrote {args.output}")
    elif not report["ok"] or args.verbose:
        print(text)
    print("ok" if report["ok"] else "FAILED")
    return 0 if report["ok"] else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .runtime import metrics
    from .trace import spans
    from .trace.export import (
        from_chrome_trace,
        to_chrome_trace,
        to_prometheus,
        to_request_tree,
        to_tree,
        validate_chrome_trace,
    )

    if args.input:
        # Post-hoc inspection of an exported trace (e.g. the artifact a
        # loadtest --trace-out wrote): reconstruct the records and print
        # either one request's cross-process tree or the whole thing.
        with open(args.input, encoding="utf-8") as fh:
            doc = json.load(fh)
        recs = from_chrome_trace(doc)
        if args.request:
            print(to_request_tree(recs, args.request), end="")
        else:
            print(to_tree(recs), end="")
        return 0
    if args.request:
        print("error: --request requires --input FILE (an exported Chrome trace)")
        return 1

    try:
        shapes = _parse_shapes(args.shape)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1

    spans.tracer.reset()
    spans.enable()
    from .core.transpose import transpose_inplace

    # The cached single-matrix path emits one pass.* span per decomposition
    # pass plus cache.hit/miss events; the parallel path adds worker.chunk
    # spans on distinct thread lanes (--backend mp makes those lanes whole
    # worker *processes*, spliced back into this ring).  Run both so one
    # trace shows the whole story.
    for m, n in shapes:
        proto = np.arange(m * n, dtype=np.float64)
        for _ in range(args.repeats):
            transpose_inplace(proto.copy(), m, n, algorithm=args.algorithm)
        if args.threads > 1:
            if args.backend == "mp":
                from .parallel.mp import MpTranspose

                with MpTranspose(args.threads) as pt:
                    for _ in range(args.repeats):
                        pt.transpose_inplace(proto.copy(), m, n)
            else:
                from .parallel import ParallelTranspose

                with ParallelTranspose(args.threads) as pt:
                    for _ in range(args.repeats):
                        pt.transpose_inplace(proto.copy(), m, n)

    recs = spans.tracer.snapshot()
    if args.format == "chrome":
        doc = to_chrome_trace(recs)
        validate_chrome_trace(doc)
        text = json.dumps(doc, indent=args.indent)
    elif args.format == "tree":
        text = to_tree(recs)
    else:  # prometheus
        text = to_prometheus(metrics.snapshot())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out} ({len(recs)} spans, "
              f"{spans.tracer.dropped} dropped)")
    else:
        print(text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .trace.profile import format_profile_table, profile_shapes

    try:
        shapes = _parse_shapes(args.shape)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    profiles = profile_shapes(
        shapes,
        dtype=args.dtype,
        repeats=args.repeats,
        threads=args.threads,
        algorithm=args.algorithm,
        backend=args.backend,
    )
    if args.json:
        print(json.dumps([p.as_dict() for p in profiles], indent=args.indent))
    else:
        print(format_profile_table(profiles))
        # One summary line per shape naming the backend that actually ran:
        # a fraction without its engine is unactionable.
        for prof in profiles:
            frac = max((p.memcpy_frac for p in prof.passes), default=0.0)
            print(
                f"{prof.m}x{prof.n}: backend={prof.backend} "
                f"best-pass memcpy fraction {frac:.3f}"
            )
    return 0


def _parse_tenant_weights(spec: str) -> dict:
    """Parse ``"gold=4,free=1"`` into a tenant-weight mapping."""
    weights: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        if not _ or not name:
            raise ValueError(
                f"tenant weight {part!r} is not name=weight"
            )
        weights[name] = float(value)
    return weights


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .parallel import default_worker_count
    from .serve import ServeConfig, TransposeServer

    try:
        tenant_weights = _parse_tenant_weights(args.tenant_weights)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers or default_worker_count(),
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        request_timeout_s=args.request_timeout,
        worker_mode=args.worker_mode,
        mp_start_method=args.mp_start_method,
        slo_p99_ms=args.slo_p99_ms,
        slo_error_budget=args.slo_error_budget,
        shards=args.shards,
        tenant_rate=args.tenant_rate,
        tenant_burst_s=args.tenant_burst_s,
        tenant_weights=tenant_weights,
    )
    if args.trace_out:
        from .trace import spans

        spans.tracer.reset()
        spans.enable()
    server = TransposeServer(config, verbose=args.verbose).start()
    host, port = server.address
    quota = (f"{config.tenant_rate:.0f} matrices/s/tenant"
             if config.tenant_rate else "off")
    print(f"repro-serve listening on http://{host}:{port} "
          f"({config.shards} shard(s) x {config.workers} "
          f"{config.worker_mode} workers, "
          f"queue {config.queue_size}, "
          f"max batch {config.max_batch}, max wait {config.max_wait_ms}ms, "
          f"quotas {quota})")
    print("endpoints: POST /transpose (raw or zero-copy segment), "
          "POST /transpose-file, GET /healthz, GET /metrics, GET /statusz")
    stop = {"signal": None}

    def _on_signal(signum, frame):
        stop["signal"] = signum

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    t0 = time.monotonic()
    try:
        while stop["signal"] is None:
            time.sleep(0.2)
            if args.max_seconds and time.monotonic() - t0 > args.max_seconds:
                break
    except KeyboardInterrupt:
        pass
    print("shutting down (draining accepted requests)...")
    summary = server.shutdown()
    if args.trace_out:
        import json

        from .trace import spans
        from .trace.export import to_chrome_trace, validate_chrome_trace

        doc = to_chrome_trace(spans.tracer.snapshot())
        counts = validate_chrome_trace(doc)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        print(f"wrote trace {args.trace_out} "
              f"({counts.get('X', 0)} spans, {counts.get('pids', 1)} pids, "
              f"{spans.tracer.dropped} dropped)")
    print(
        "shutdown summary: "
        f"accepted={summary['accepted']} responded={summary['responded']} "
        f"dropped={summary['dropped']} rejected_full={summary['rejected_full']} "
        f"retries={summary['retries']} drained={summary['drained']} "
        f"worker_mode={summary['worker_mode']} "
        f"shards={summary['shards']} "
        f"shards_evicted={summary['shards_evicted']} "
        f"shm_leaked={summary['shm_leaked']}"
    )
    ok = (
        summary["dropped"] == 0
        and summary["drained"]
        and summary["shm_leaked"] == 0
    )
    return 0 if ok else 1


def _shard_aligned_shapes(router, base_m: int, base_n: int, dtype: str):
    """One shape per shard: walk ``n`` outward from ``base_n`` until every
    shard on the ring owns exactly one of the generated shapes.

    The sharded loadtest measures aggregate scaling, which is only
    meaningful when the workload spreads across all shards; deriving the
    mix from the ring makes balance deterministic instead of hoping N
    arbitrary shapes hash onto N distinct shards.
    """
    import numpy as np

    from .serve.loadgen import ShapeMix

    dtype_str = str(np.dtype(dtype))
    want = set(router.shards)
    shapes = []
    for delta in range(0, 4096):
        for n in ((base_n + delta,) if delta == 0
                  else (base_n + delta, base_n - delta)):
            if n < 2 or not want:
                continue
            sid = router.shard_for_key((base_m, n, "C", dtype_str))
            if sid in want:
                want.discard(sid)
                shapes.append(ShapeMix(base_m, n, 1.0))
        if not want:
            break
    if want:  # pragma: no cover - 4096 probes always cover a sane ring
        raise RuntimeError(f"could not cover shards {sorted(want)}")
    return shapes


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from .serve.loadgen import format_report, parse_shape_mix, run_loadtest

    try:
        shapes = parse_shape_mix(args.shapes)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1

    if args.trace_out and not args.inproc:
        print("error: --trace-out requires --inproc (the trace ring lives "
              "in the server process)")
        return 1
    if args.shards > 1 and not args.inproc:
        print("error: --shards requires --inproc (it configures the "
              "in-process server's router)")
        return 1
    if args.min_shard_scaling is not None and args.shards < 2:
        print("error: --min-shard-scaling needs --shards >= 2")
        return 1
    if args.trace_out:
        from .trace import spans

        spans.tracer.reset()
        spans.enable()

    server = None
    url = args.url
    reference_rps = None
    if args.inproc:
        from .parallel import default_worker_count
        from .serve import ServeConfig, TransposeServer

        workers = args.workers or default_worker_count()

        def _make_server(n_shards: int) -> TransposeServer:
            return TransposeServer(ServeConfig(
                port=0,
                workers=workers,
                queue_size=args.queue_size,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                worker_mode=args.worker_mode,
                mp_start_method=args.mp_start_method,
                shards=n_shards,
            )).start()

        server = _make_server(args.shards)
        url = server.url
        if args.shards > 1 and args.shapes == "256x384":
            # Default workload + shards: spread one shape per shard so the
            # aggregate number measures all N stacks, not whichever shard
            # the single default shape happens to hash to.
            shapes = _shard_aligned_shapes(server.router, 256, 384, args.dtype)
            mix = ",".join(f"{s.m}x{s.n}" for s in shapes)
            print(f"sharded workload: one shape per shard ({mix})")
        if args.min_shard_scaling is not None:
            # Single-shard reference first: same workload, same budget.
            ref_server = _make_server(1)
            try:
                ref_report = run_loadtest(
                    ref_server.url,
                    rate=args.rate,
                    duration_s=args.duration,
                    shapes=shapes,
                    dtype=args.dtype,
                    tiles=args.tiles,
                    connections=args.connections,
                    batch=args.max_batch,
                    seed=args.seed,
                    reference=False,
                    verify_every=args.verify_every,
                    interim_every_s=0.0,
                )
            finally:
                ref_server.shutdown()
            reference_rps = ref_report.achieved_rps
            print(f"single-shard reference: {reference_rps:.1f} matrices/s")
    elif not url:
        print("error: pass --url or --inproc")
        return 1

    try:
        report = run_loadtest(
            url,
            rate=args.rate,
            duration_s=args.duration,
            shapes=shapes,
            dtype=args.dtype,
            tiles=args.tiles,
            connections=args.connections,
            batch=args.max_batch,
            seed=args.seed,
            reference=not args.no_reference,
            verify_every=args.verify_every,
            interim_every_s=args.interim_every,
        )
        router_stats = server.router.stats() if server is not None else None
    finally:
        summary = server.shutdown() if server is not None else None

    if args.trace_out:
        from .trace import spans
        from .trace.export import to_chrome_trace, validate_chrome_trace

        doc = to_chrome_trace(spans.tracer.snapshot())
        counts = validate_chrome_trace(doc)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        print(f"wrote trace {args.trace_out} "
              f"({counts.get('X', 0)} spans, {counts.get('pids', 1)} pids, "
              f"{spans.tracer.dropped} dropped)")

    print(format_report(report))
    if router_stats is not None and args.shards > 1:
        for s in router_stats["per_shard"]:
            print(
                f"  shard {s['sid']}  routed={s['routed']} "
                f"shapes={s['shapes']} affinity={s['affinity_rate']:.1%} "
                f"rejected_full={s['rejected_full']}"
            )
    if summary is not None:
        print(
            f"  shutdown  accepted={summary['accepted']} "
            f"responded={summary['responded']} dropped={summary['dropped']} "
            f"shm_leaked={summary['shm_leaked']}"
        )
    if args.json:
        doc = report.as_dict()
        if router_stats is not None:
            doc["router"] = router_stats
        print(json.dumps(doc, indent=2, sort_keys=True))

    failed = []
    if reference_rps:
        import os

        cores = os.cpu_count() or 1
        scaling = report.achieved_rps / reference_rps
        target = args.min_shard_scaling * args.shards * reference_rps
        print(
            f"  scaling   {scaling:.2f}x over single shard "
            f"(floor {args.min_shard_scaling:.2f} x {args.shards} shards)"
        )
        if cores < args.shards:
            # A 4-shard scaling floor is unfalsifiable on fewer cores than
            # shards; report, don't gate (same policy as the mp bench floor).
            print(
                f"  scaling floor skipped: {cores} core(s) < "
                f"{args.shards} shards"
            )
        elif report.achieved_rps < target:
            failed.append(
                f"sharded throughput {report.achieved_rps:.0f} matrices/s < "
                f"{target:.0f} ({args.min_shard_scaling:.2f} x {args.shards} "
                f"x single-shard {reference_rps:.0f})"
            )
    if args.min_shard_affinity is not None and router_stats is not None:
        for s in router_stats["per_shard"]:
            if s["routed"] and s["affinity_rate"] < args.min_shard_affinity:
                failed.append(
                    f"shard {s['sid']} affinity {s['affinity_rate']:.1%} < "
                    f"floor {args.min_shard_affinity:.1%}"
                )
    if report.verify_failures:
        failed.append(f"{report.verify_failures} responses failed verification")
    if report.errors:
        failed.append(f"{report.errors} requests errored")
    if summary is not None and summary["dropped"]:
        failed.append(f"{summary['dropped']} accepted requests dropped")
    if summary is not None and summary["shm_leaked"]:
        failed.append(
            f"{summary['shm_leaked']} shared-memory segment(s) leaked"
        )
    if args.min_efficiency is not None and report.efficiency < args.min_efficiency:
        failed.append(
            f"efficiency {report.efficiency:.1%} < floor {args.min_efficiency:.1%}"
        )
    if (
        args.min_batch_speedup is not None
        and report.batched_speedup < args.min_batch_speedup
    ):
        failed.append(
            f"batched speedup {report.batched_speedup:.2f}x < floor "
            f"{args.min_batch_speedup:.2f}x"
        )
    for reason in failed:
        print(f"FAILED: {reason}")
    if not failed:
        print("ok")
    return 1 if failed else 0


def _add_file_transpose_args(p: argparse.ArgumentParser) -> None:
    """Shared flags of ``transpose`` and its explicit alias ``transpose-file``."""
    p.add_argument("file")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("--dtype", default="float64")
    p.add_argument("--order", choices=["C", "F"], default="C")
    p.add_argument("--algorithm", choices=["auto", "c2r", "r2c"], default="auto")
    p.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run band-by-band under a bounded resident window (default: "
        "on); --no-stream loads the whole file into RAM (reference path)",
    )
    p.add_argument(
        "--window-bytes",
        default="",
        help="resident byte budget per band for --stream, k/m/g suffixes "
        "accepted (default: $REPRO_STREAM_WINDOW or 256m)",
    )
    p.add_argument("--threads", type=int, default=1,
                   help=">1 runs the chunked passes in parallel within "
                   "each band")
    p.add_argument("--backend", choices=["threads", "mp"], default="threads",
                   help="parallel execution backend for --threads > 1")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-place matrix transposition (PPoPP 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="analyze a matrix shape")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("--itemsize", type=int, default=8)
    p.add_argument(
        "--cycle-limit",
        type=int,
        default=1_000_000,
        help="max elements for exact cycle-profile computation",
    )
    p.add_argument(
        "--breakdown", action="store_true", help="print the per-pass cost model"
    )
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("transpose", help="transpose a raw binary file in place")
    _add_file_transpose_args(p)
    p.set_defaults(fn=_cmd_transpose)

    p = sub.add_parser(
        "convert", help="convert an AoS binary file between layouts in place"
    )
    p.add_argument("file")
    p.add_argument("n", type=int, help="number of structs")
    p.add_argument("s", type=int, help="fields per struct")
    p.add_argument(
        "--to", choices=["soa", "aos", "asta", "unasta"], default="soa"
    )
    p.add_argument("--dtype", default="float64")
    p.add_argument("--tile", type=int, default=32)
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser(
        "transpose-file",
        help="out-of-core in-place transpose of a raw binary matrix file",
    )
    _add_file_transpose_args(p)
    p.set_defaults(fn=_cmd_transpose)

    p = sub.add_parser("bench", help="quick wall-clock benchmark")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("--threads", type=int, default=None,
                   help="worker count (default: os.cpu_count(), capped)")
    p.add_argument("--backend", choices=["threads", "mp"], default="threads")
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "landscape", help="print the modeled throughput landscape (Fig. 4-5)"
    )
    p.add_argument("--algorithm", choices=["c2r", "r2c"], default="c2r")
    p.add_argument("--lo", type=int, default=1000)
    p.add_argument("--hi", type=int, default=25000)
    p.add_argument("--cells", type=int, default=6)
    p.add_argument("--itemsize", type=int, default=8)
    p.set_defaults(fn=_cmd_landscape)

    p = sub.add_parser("selftest", help="validate every transposer")
    p.add_argument("--count", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threads", type=int, default=None,
                   help="parallel-candidate worker count "
                   "(default: os.cpu_count(), capped)")
    p.add_argument("--backend", choices=["threads", "mp"], default="threads",
                   help="backend for the parallel candidate")
    p.set_defaults(fn=_cmd_selftest)

    p = sub.add_parser(
        "stats", help="print a JSON snapshot of the instrumented runtime"
    )
    p.add_argument(
        "--exercise",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run a small repeated-shape workload first so the snapshot "
        "shows live per-pass timings and cache hits (default: on)",
    )
    p.add_argument(
        "--shapes",
        default="64x96,96x64,128x128",
        help="comma-separated MxN shapes for --exercise",
    )
    p.add_argument(
        "--repeats", type=int, default=4, help="calls per shape for --exercise"
    )
    p.add_argument(
        "--reset",
        action="store_true",
        help="clear metrics and the plan cache before exercising",
    )
    p.add_argument("--indent", type=int, default=2)
    p.add_argument("--output", help="write the snapshot to a file instead of stdout")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "analyze",
        help="prove plan bijectivity, schedule race-freedom and lint invariants",
    )
    p.add_argument("--m-max", type=int, default=64, help="lattice rows bound")
    p.add_argument("--n-max", type=int, default=64, help="lattice cols bound")
    p.add_argument(
        "--threads",
        default="",
        help="comma-separated thread counts for the race sweep (default 1,2,4,8)",
    )
    p.add_argument(
        "--no-lint", action="store_true", help="skip the AST lint pass"
    )
    p.add_argument(
        "--no-fastdiv",
        action="store_true",
        help="skip the magic-number division cross-check",
    )
    p.add_argument(
        "--plan-objects",
        action="store_true",
        help="also execute a real TransposePlan per shape (slower)",
    )
    p.add_argument(
        "--native",
        action="store_true",
        help="abstractly interpret the generated native kernels for the CI "
        "config sweep (source-level: no compiler needed)",
    )
    p.add_argument(
        "--native-shapes",
        default="",
        help="comma-separated kernel configs MxN[:ORDER[:ITEMSIZE]] "
        "(e.g. 256x384,256x384:F,12x18:C:4); implies --native",
    )
    p.add_argument(
        "--mutation",
        action="store_true",
        help="run the codegen mutation-testing harness (the verifier must "
        "kill every injected fault)",
    )
    p.add_argument(
        "--progress", action="store_true", help="print lattice progress to stderr"
    )
    p.add_argument("--verbose", action="store_true", help="print the full JSON report")
    p.add_argument("--indent", type=int, default=2)
    p.add_argument("--output", help="write the JSON report to a file")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "trace", help="run a traced workload and export the structured spans"
    )
    p.add_argument(
        "--shape",
        default="512x768",
        help="comma-separated MxN shapes to transpose under tracing",
    )
    p.add_argument(
        "--format",
        choices=["chrome", "tree", "prometheus"],
        default="chrome",
        help="chrome = Perfetto-loadable JSON, tree = per-thread text tree, "
        "prometheus = text-format counters and latency histograms",
    )
    p.add_argument("--threads", type=int, default=1,
                   help="also run the parallel transposer (worker.chunk lanes)")
    p.add_argument("--backend", choices=["threads", "mp"], default="threads",
                   help="parallel backend for --threads > 1; mp splices "
                   "worker-process spans into per-process trace lanes")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--algorithm", choices=["auto", "c2r", "r2c"], default="auto"
    )
    p.add_argument("--indent", type=int, default=None)
    p.add_argument("--out", help="write the export to a file instead of stdout")
    p.add_argument("--input",
                   help="read an exported Chrome trace instead of running a "
                   "workload (for --request lookup or a tree dump)")
    p.add_argument("--request",
                   help="print one request's cross-process span tree by "
                   "trace_id (requires --input)")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="per-pass achieved bandwidth (GB/s and memcpy fraction)",
    )
    p.add_argument(
        "--shape",
        default="512x768,768x512",
        help="comma-separated MxN shapes to profile",
    )
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--dtype", default="float64")
    p.add_argument(
        "--algorithm", choices=["auto", "c2r", "r2c"], default="auto"
    )
    p.add_argument(
        "--backend", choices=["auto", "native", "numpy"], default=None,
        help="execution engine: compiled native kernels or numpy gathers "
             "(default: auto-select)",
    )
    p.add_argument("--json", action="store_true",
                   help="emit the profiles as JSON instead of a table")
    p.add_argument("--indent", type=int, default=2)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "serve", help="run the HTTP transposition service (drains on SIGTERM)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8077,
                   help="0 picks an ephemeral port (printed at startup)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count (default: os.cpu_count(), capped)")
    p.add_argument("--worker-mode", choices=["thread", "process"],
                   default="thread",
                   help="process = execute batches in worker processes over "
                   "shared-memory staging")
    p.add_argument("--mp-start-method", default=None,
                   help="multiprocessing start method for --worker-mode "
                   "process (default: forkserver)")
    p.add_argument("--shards", type=int, default=1,
                   help="independent serve shards behind the consistent-hash "
                   "router (workers are per shard; queue capacity is split)")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="per-tenant admission quota in matrices/s for a "
                   "weight-1.0 tenant (X-Repro-Tenant header; unset = "
                   "quotas off)")
    p.add_argument("--tenant-burst-s", type=float, default=2.0,
                   help="tenant token-bucket burst, in seconds of refill")
    p.add_argument("--tenant-weights", default="",
                   help='weighted admission shares, e.g. "gold=4,free=1" '
                   "(unlisted tenants weigh 1.0)")
    p.add_argument("--queue-size", type=int, default=512,
                   help="admission-control bound; full -> HTTP 429 with a "
                   "depth/drain-rate-computed Retry-After")
    p.add_argument("--max-batch", type=int, default=32,
                   help="largest same-shape group one dispatch coalesces")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="longest a request waits for batch-mates")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="server-side cap on one request's total time (s)")
    p.add_argument("--max-seconds", type=float, default=0.0,
                   help="exit (gracefully) after this long; 0 = run until signal")
    p.add_argument("--slo-p99-ms", type=float, default=50.0,
                   help="windowed p99 latency objective for /statusz + /metrics")
    p.add_argument("--slo-error-budget", type=float, default=0.01,
                   help="error budget the SLO burn rate is measured against")
    p.add_argument("--trace-out", default="",
                   help="enable tracing and write the Chrome trace (with "
                   "worker-process lanes) to this file at shutdown")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "loadtest",
        help="open-loop Poisson load generator + serving-efficiency report",
    )
    p.add_argument("--url", default="",
                   help="target server, e.g. http://127.0.0.1:8077")
    p.add_argument("--inproc", action="store_true",
                   help="spin up an in-process server on an ephemeral port")
    p.add_argument("--rate", type=float, default=900.0,
                   help="offered request rate (Poisson arrivals)")
    p.add_argument("--duration", type=float, default=5.0, help="seconds of load")
    p.add_argument("--shapes", default="256x384",
                   help="workload mix, e.g. 256x384:0.8,128x192:0.2")
    p.add_argument("--dtype", default="uint8",
                   help="element dtype (uint8 = image-tile workload)")
    p.add_argument("--tiles", type=int, default=4,
                   help="matrices per request (X-Repro-Batch client-side "
                   "micro-batching)")
    p.add_argument("--connections", type=int, default=16,
                   help="persistent client connections")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=None,
                   help="--inproc: worker count (default: os.cpu_count(), "
                   "capped)")
    p.add_argument("--worker-mode", choices=["thread", "process"],
                   default="thread", help="--inproc: worker execution mode")
    p.add_argument("--mp-start-method", default=None,
                   help="--inproc: start method for --worker-mode process")
    p.add_argument("--shards", type=int, default=1,
                   help="--inproc: serve shards behind the consistent-hash "
                   "router; the default workload is respread one shape "
                   "per shard")
    p.add_argument("--min-shard-scaling", type=float, default=None,
                   help="with --shards N: run a single-shard reference "
                   "first and fail unless aggregate throughput >= "
                   "floor * N * reference (skipped on fewer cores than "
                   "shards)")
    p.add_argument("--min-shard-affinity", type=float, default=None,
                   help="fail unless every shard's routing affinity rate "
                   "(requests hitting an already-seen shape) >= this "
                   "fraction")
    p.add_argument("--queue-size", type=int, default=512, help="--inproc: queue bound")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=0.5)
    p.add_argument("--no-reference", action="store_true",
                   help="skip the in-process ceiling/naive reference runs")
    p.add_argument("--verify-every", type=int, default=1,
                   help="byte-verify every Nth response per shape "
                   "(1 = verify all)")
    p.add_argument("--min-efficiency", type=float, default=None,
                   help="fail unless achieved/ceiling >= this fraction")
    p.add_argument("--min-batch-speedup", type=float, default=None,
                   help="fail unless coalesced/naive >= this factor")
    p.add_argument("--interim-every", type=float, default=2.0,
                   help="seconds between live progress lines on stderr "
                   "during the run (0 disables)")
    p.add_argument("--trace-out", default="",
                   help="--inproc: enable tracing and write the combined "
                   "Chrome trace (client+server+workers) at shutdown")
    p.add_argument("--json", action="store_true",
                   help="also print the report as JSON")
    p.set_defaults(fn=_cmd_loadtest)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
