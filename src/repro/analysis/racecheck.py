"""Static race detection and the opt-in shadow-memory sanitizer.

Two layers, both centred on the same invariant: every parallel pass writes a
*static partition* of the matrix ("perfect load balancing due to the regular
structure", Section 1), so write-set disjointness is decidable from
``(m, n, n_threads)`` alone.

**Static layer** — :func:`check_schedule` reconstructs the exact chunk
footprints that :class:`~repro.parallel.cpu.ParallelTranspose` hands its
workers (the same :func:`~repro.parallel.partition.balanced_chunks` schedule
over the same pass structure) and proves, per pass:

* the chunks tile the iteration range exactly (no gap, no overlap),
* the per-chunk write rectangles are pairwise disjoint,
* the rectangles cover the whole matrix, and
* every chunk's reads stay inside its own rectangle, so no chunk can observe
  another chunk's in-flight writes.

:func:`check_mp_schedule` extends the same proof to the multiprocess
shared-memory backend by reconstructing the picklable task descriptors
``MpTranspose._run_pass`` ships (segment name, view dims, sub-range) and
checking descriptor consistency on top of the rectangle proof.
:func:`check_banded_schedule` proves banded (sub-range) schedules safe for
out-of-core execution: bands tile each pass's iteration range, per-band
chunks tile the band, and all band x chunk write rectangles are globally
disjoint and covering, so a band can be flushed before the next faults in.

**Runtime layer** — :class:`Sanitizer` is a shadow memory tracking one pass
at a time: each recorded write increments a per-element counter, each
recorded read checks the element has not already been written *this pass*
(gather passes read pre-pass state by contract — a read of an
already-written element is a read-after-clobber hazard).  At pass end every
element must have been written exactly once (for full-coverage passes).
Violations raise :class:`SanitizerError` carrying pass name, chunk
provenance and sample indices.  Enable with ``REPRO_SANITIZE=1`` or
:func:`enable`; the disabled path costs one attribute read at each hook.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..core.indexing import Decomposition
from ..core.transpose import choose_algorithm
from ..parallel.partition import balanced_chunks

__all__ = [
    "Rect",
    "ChunkFootprint",
    "PassFootprints",
    "RaceReport",
    "BandedRaceReport",
    "MpTaskDescriptor",
    "schedule_footprints",
    "mp_schedule_footprints",
    "banded_footprints",
    "pass_order",
    "PASS_AXES",
    "check_partition",
    "check_schedule",
    "check_mp_schedule",
    "check_banded_schedule",
    "SanitizerError",
    "Sanitizer",
    "sanitizer",
    "enable",
    "disable",
    "is_enabled",
]


# ---------------------------------------------------------------------------
# Static write-footprint analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rect:
    """A half-open rectangle ``[r0, r1) x [c0, c1)`` of matrix elements."""

    r0: int
    r1: int
    c0: int
    c1: int

    @property
    def area(self) -> int:
        return max(0, self.r1 - self.r0) * max(0, self.c1 - self.c0)

    def intersects(self, other: "Rect") -> bool:
        return (
            self.r0 < other.r1
            and other.r0 < self.r1
            and self.c0 < other.c1
            and other.c0 < self.c1
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.r0 <= other.r0
            and other.r1 <= self.r1
            and self.c0 <= other.c0
            and other.c1 <= self.c1
        )

    def as_dict(self) -> dict:
        return {"rows": [self.r0, self.r1], "cols": [self.c0, self.c1]}


@dataclass(frozen=True)
class ChunkFootprint:
    """One worker's read and write rectangles within a pass."""

    label: str
    writes: Rect
    reads: Rect


@dataclass(frozen=True)
class PassFootprints:
    """The full static schedule of one parallel pass."""

    name: str
    #: iteration-space extent handed to ``parallel_for``
    total: int
    chunks: tuple[ChunkFootprint, ...]


def _axis_rect(axis: str, m: int, n: int, total: int, lo: int, hi: int) -> Rect:
    """The element rectangle touched by iterations ``[lo, hi)`` of a pass
    parallelised over ``axis`` (the other axis is always full)."""
    if axis == "rows":
        return Rect(lo, hi, 0, n)
    if axis == "cols":
        return Rect(0, m, lo, hi)
    if axis == "colgroups":
        b = n // total
        return Rect(0, m, lo * b, hi * b)
    raise ValueError(f"unknown axis {axis!r}")


def _chunk_rects(
    name: str, m: int, n: int, total: int, parts: int, axis: str
) -> PassFootprints:
    """Footprints for a pass chunked over ``axis`` (the other axis is full).

    ``axis`` is ``"rows"`` (row shuffle), ``"cols"`` (column shuffles) or
    ``"colgroups"`` (rotation passes: iteration g covers columns
    ``[g*b, (g+1)*b)`` where ``b = n // total``).
    """
    chunks = []
    for ch in balanced_chunks(total, parts):
        rect = _axis_rect(axis, m, n, total, ch.start, ch.stop)
        # Every pass is a gather confined to its own rows/columns: reads and
        # writes share the rectangle.  (The per-element gather indices stay
        # in range by the bijectivity certificates of analysis.algebra.)
        chunks.append(ChunkFootprint(f"{axis}[{ch.start}:{ch.stop}]", rect, rect))
    return PassFootprints(name=name, total=total, chunks=tuple(chunks))


#: pass name -> (iteration axis, extent attribute on the decomposition)
_PASS_AXES: dict[str, tuple[str, str]] = {
    "pre_rotate": ("colgroups", "c"),
    "row_shuffle": ("rows", "m"),
    "column_shuffle": ("cols", "n"),
    "inverse_column_shuffle": ("cols", "n"),
    "row_shuffle_r2c": ("rows", "m"),
    "post_rotate": ("colgroups", "c"),
}


def _pass_order(algorithm: str, c: int) -> list[str]:
    """The barrier-ordered pass names both parallel backends execute."""
    if algorithm == "c2r":
        return (["pre_rotate"] if c > 1 else []) + [
            "row_shuffle",
            "column_shuffle",
        ]
    if algorithm == "r2c":
        return ["inverse_column_shuffle", "row_shuffle_r2c"] + (
            ["post_rotate"] if c > 1 else []
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")


#: public aliases — the banded out-of-core executor (`repro.stream`) iterates
#: the *same* tables the proofs above are built from, so schedule and proof
#: cannot drift apart.
pass_order = _pass_order
PASS_AXES = _PASS_AXES


def schedule_footprints(
    m: int, n: int, n_threads: int, algorithm: str = "auto"
) -> list[PassFootprints]:
    """The static schedule :class:`ParallelTranspose` would execute.

    ``m``/``n`` are the row-major *view* dimensions the passes run on (the
    same view ``ParallelTranspose.c2r``/``r2c`` reshape to).
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    dec = Decomposition.of(m, n)
    passes = []
    for name in _pass_order(algorithm, dec.c):
        axis, extent_attr = _PASS_AXES[name]
        total = getattr(dec, extent_attr)
        passes.append(_chunk_rects(name, m, n, total, n_threads, axis))
    return passes


def check_partition(total: int, parts: int) -> tuple[bool, str]:
    """Prove ``balanced_chunks(total, parts)`` tiles ``range(total)`` exactly:
    contiguous, gap-free, non-empty, sizes differing by at most one."""
    chunks = balanced_chunks(total, parts)
    pos = 0
    sizes = []
    for ch in chunks:
        if ch.start != pos:
            return False, f"gap/overlap at {pos}: chunk starts at {ch.start}"
        if ch.stop <= ch.start:
            return False, f"empty or inverted chunk {ch}"
        sizes.append(ch.stop - ch.start)
        pos = ch.stop
    if pos != total:
        return False, f"chunks end at {pos}, not {total}"
    if len(chunks) > max(parts, 0):
        return False, f"{len(chunks)} chunks exceed parts={parts}"
    if sizes and max(sizes) - min(sizes) > 1:
        return False, f"imbalanced sizes {min(sizes)}..{max(sizes)}"
    return True, f"{len(chunks)} chunks tile range({total})"


@dataclass
class RaceReport:
    """Disjointness/coverage verdict for one ``(m, n, n_threads)`` schedule."""

    m: int
    n: int
    n_threads: int
    algorithm: str
    passes: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "n_threads": self.n_threads,
            "algorithm": self.algorithm,
            "passes": self.passes,
            "ok": self.ok,
            "failures": self.failures,
        }


def _prove_rects(p: PassFootprints, m: int, n: int) -> list[str]:
    """The rectangle side of the race proof for one pass: write rectangles
    pairwise disjoint, covering the whole matrix, reads self-contained.

    Chunks are contiguous along one axis, so sorting is unnecessary:
    pairwise disjointness would reduce to adjacent-interval checks, but the
    explicit rectangle test keeps the proof independent of that observation
    (O(chunks^2) with chunks bounded by bands x threads).
    """
    failures: list[str] = []
    for x in range(len(p.chunks)):
        for y in range(x + 1, len(p.chunks)):
            if p.chunks[x].writes.intersects(p.chunks[y].writes):
                failures.append(
                    f"{p.name}: write overlap between {p.chunks[x].label} "
                    f"and {p.chunks[y].label}"
                )
    covered = sum(ch.writes.area for ch in p.chunks)
    full = Rect(0, m, 0, n)
    if covered != m * n or not all(full.contains(ch.writes) for ch in p.chunks):
        failures.append(f"{p.name}: writes cover {covered} of {m * n} elements")
    for ch in p.chunks:
        if not ch.writes.contains(ch.reads):
            failures.append(
                f"{p.name}: {ch.label} reads outside its write rectangle"
            )
    return failures


def check_schedule(
    m: int, n: int, n_threads: int, algorithm: str = "auto"
) -> RaceReport:
    """Prove the parallel schedule for ``(m, n, n_threads)`` is race-free.

    Per pass: chunks tile the iteration range, write rectangles are pairwise
    disjoint and cover the full matrix, and reads stay within the writing
    chunk's own rectangle.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    report = RaceReport(m=m, n=n, n_threads=n_threads, algorithm=algorithm)
    for p in schedule_footprints(m, n, n_threads, algorithm):
        report.passes += 1
        ok, detail = check_partition(p.total, n_threads)
        if not ok:
            report.failures.append(f"{p.name}: partition: {detail}")
        report.failures.extend(_prove_rects(p, m, n))
    return report


# ---------------------------------------------------------------------------
# Multiprocess shared-memory schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MpTaskDescriptor:
    """One worker-process task exactly as ``MpTranspose._run_pass`` ships it:
    ``(segment, vm, vn, pass name, lo, hi)`` — the picklable fields that
    determine which elements of the shared segment the process touches."""

    segment: str
    vm: int
    vn: int
    pass_name: str
    lo: int
    hi: int


def mp_schedule_footprints(
    m: int, n: int, n_workers: int, algorithm: str = "auto", *,
    segment: str = "shm"
) -> list[tuple[PassFootprints, tuple[MpTaskDescriptor, ...]]]:
    """The static schedule :class:`~repro.parallel.mp.MpTranspose` would run.

    Reconstructs the task descriptors ``_run_pass`` builds — one
    ``balanced_chunks(extent, n_workers)`` sub-range per worker, all naming
    the same shared segment and the same ``(vm, vn)`` view — alongside the
    element footprints those descriptors induce on the segment.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    dec = Decomposition.of(m, n)
    out = []
    for name in _pass_order(algorithm, dec.c):
        axis, extent_attr = _PASS_AXES[name]
        total = getattr(dec, extent_attr)
        descriptors = tuple(
            MpTaskDescriptor(segment, m, n, name, ch.start, ch.stop)
            for ch in balanced_chunks(total, n_workers)
        )
        footprints = _chunk_rects(name, m, n, total, n_workers, axis)
        out.append((footprints, descriptors))
    return out


def check_mp_schedule(
    m: int, n: int, n_workers: int, algorithm: str = "auto"
) -> RaceReport:
    """Prove the multiprocess shared-memory schedule is race-free.

    The mp backend has no shared Python state between workers — every task
    reopens the named segment and slices it by descriptor — so the proof
    obligations are the thread proof *plus* descriptor consistency: every
    task in a pass must name the same segment and the same ``(vm, vn)``
    view (a task with a stale view would reinterpret the buffer with the
    wrong stride), and the descriptor sub-ranges must be exactly the chunk
    intervals the footprint proof covers.  Pass barriers are inherited from
    ``MpExecutor.run_chunks`` blocking until every task returns.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    report = RaceReport(m=m, n=n, n_threads=n_workers, algorithm=algorithm)
    expected_order = _pass_order(algorithm, Decomposition.of(m, n).c)
    seen_order = []
    for p, descriptors in mp_schedule_footprints(m, n, n_workers, algorithm):
        report.passes += 1
        seen_order.append(p.name)
        ok, detail = check_partition(p.total, n_workers)
        if not ok:
            report.failures.append(f"{p.name}: partition: {detail}")
        segments = {d.segment for d in descriptors}
        views = {(d.vm, d.vn) for d in descriptors}
        if len(segments) != 1:
            report.failures.append(
                f"{p.name}: tasks target {len(segments)} distinct segments"
            )
        if views != {(m, n)}:
            report.failures.append(
                f"{p.name}: task views {sorted(views)} != [({m}, {n})]"
            )
        if any(d.pass_name != p.name for d in descriptors):
            report.failures.append(f"{p.name}: descriptor pass-name mismatch")
        ranges = [(d.lo, d.hi) for d in descriptors]
        expected = [
            (ch.start, ch.stop) for ch in balanced_chunks(p.total, n_workers)
        ]
        if ranges != expected:
            report.failures.append(
                f"{p.name}: descriptor ranges {ranges} != chunks {expected}"
            )
        report.failures.extend(_prove_rects(p, m, n))
    if seen_order != expected_order:
        report.failures.append(
            f"pass order {seen_order} != barrier order {expected_order}"
        )
    return report


# ---------------------------------------------------------------------------
# Banded (sub-range) schedules for out-of-core execution
# ---------------------------------------------------------------------------

def banded_footprints(
    m: int, n: int, n_bands: int, n_threads: int, algorithm: str = "auto"
) -> list[PassFootprints]:
    """Footprints for band-by-band execution with a bounded resident window.

    Out-of-core execution splits each pass's iteration range into
    ``n_bands`` sequential bands (only one band's rows/columns need be
    resident) and runs ``n_threads`` chunks inside each band.  The chunk
    labels carry band provenance so failures name the offending band.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    dec = Decomposition.of(m, n)
    passes = []
    for name in _pass_order(algorithm, dec.c):
        axis, extent_attr = _PASS_AXES[name]
        total = getattr(dec, extent_attr)
        chunks = []
        for bi, band in enumerate(balanced_chunks(total, n_bands)):
            extent = band.stop - band.start
            for ch in balanced_chunks(extent, n_threads):
                lo = band.start + ch.start
                hi = band.start + ch.stop
                rect = _axis_rect(axis, m, n, total, lo, hi)
                chunks.append(
                    ChunkFootprint(f"band{bi}/{axis}[{lo}:{hi}]", rect, rect)
                )
        passes.append(PassFootprints(name=name, total=total, chunks=tuple(chunks)))
    return passes


@dataclass
class BandedRaceReport(RaceReport):
    """Race verdict for a banded schedule (adds the band count)."""

    n_bands: int = 1

    def as_dict(self) -> dict:
        out = super().as_dict()
        out["n_bands"] = self.n_bands
        return out


def check_banded_schedule(
    m: int, n: int, n_bands: int, n_threads: int, algorithm: str = "auto"
) -> BandedRaceReport:
    """Prove a banded (sub-range) schedule safe for out-of-core execution.

    Per pass: the bands tile the iteration range, each band's thread chunks
    tile the band, and — across *all* bands together — the write rectangles
    are pairwise disjoint, cover the whole matrix, and every chunk's reads
    stay inside its own rectangle.  Cross-band disjointness is what lets a
    band be flushed to backing store before the next band is faulted in:
    no later chunk can touch a flushed band's elements within the pass.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(m, n)
    report = BandedRaceReport(
        m=m, n=n, n_threads=n_threads, algorithm=algorithm, n_bands=n_bands
    )
    for p in banded_footprints(m, n, n_bands, n_threads, algorithm):
        report.passes += 1
        ok, detail = check_partition(p.total, n_bands)
        if not ok:
            report.failures.append(f"{p.name}: band partition: {detail}")
        for band in balanced_chunks(p.total, n_bands):
            ok, detail = check_partition(band.stop - band.start, n_threads)
            if not ok:
                report.failures.append(
                    f"{p.name}: band [{band.start}:{band.stop}] "
                    f"chunk partition: {detail}"
                )
        report.failures.extend(_prove_rects(p, m, n))
    return report


# ---------------------------------------------------------------------------
# Shadow-memory sanitizer
# ---------------------------------------------------------------------------

class SanitizerError(RuntimeError):
    """A shadow-memory invariant violation, with pass/index provenance."""

    def __init__(self, kind: str, pass_name: str, where: str, indices: np.ndarray):
        self.kind = kind
        self.pass_name = pass_name
        self.where = where
        self.indices = np.asarray(indices)[:8]
        sample = ", ".join(str(int(v)) for v in self.indices)
        super().__init__(
            f"{kind} in pass {pass_name!r}"
            + (f" ({where})" if where else "")
            + f": flat indices [{sample}]"
            + ("..." if np.asarray(indices).size > 8 else "")
        )


class _PassShadow:
    """Per-pass write counters over a flat buffer of ``size`` elements."""

    __slots__ = ("name", "size", "full_coverage", "writes")

    def __init__(self, name: str, size: int, full_coverage: bool):
        self.name = name
        self.size = size
        self.full_coverage = full_coverage
        self.writes = np.zeros(size, dtype=np.int64)


class Sanitizer:
    """Tracks one executing pass at a time across all worker threads.

    Hooks in the plan executor and the parallel transposer call
    :meth:`record` with the flat indices each chunk is about to read and
    write (reads recorded before the chunk's own writes, mirroring gather
    semantics).  Violations raise immediately in the offending thread so the
    executor's barrier propagates them to the caller.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        # Serializes whole passes: concurrent plan executions from separate
        # user threads take turns, TSAN-style, instead of sharing one shadow.
        # Reentrant so a same-thread nested scope fails loudly, not deadlocks.
        self._exec_lock = threading.RLock()
        self._shadow: _PassShadow | None = None
        self.passes_checked = 0
        self.elements_checked = 0

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def pass_scope(self, name: str, size: int, *, full_coverage: bool = True):
        """Scope one pass: zero the shadow, collect records, check coverage.

        ``full_coverage=False`` relaxes the exactly-once check to at-most-once
        (rotation passes legitimately skip zero-shift column groups).  Worker
        threads record into the scope; whole passes from *different* user
        threads serialize on an execution lock.
        """
        self._exec_lock.acquire()
        if self._shadow is not None:
            held = self._shadow.name
            self._exec_lock.release()
            raise SanitizerError(
                "nested pass", name, f"inside {held!r}", np.empty(0, dtype=np.int64)
            )
        with self._lock:
            self._shadow = _PassShadow(name, size, full_coverage)
        try:
            yield self
            shadow = self._shadow
            if shadow is not None and shadow.full_coverage:
                missed = np.flatnonzero(shadow.writes == 0)
                if missed.size:
                    raise SanitizerError("missed write", name, "pass end", missed)
        finally:
            with self._lock:
                self._shadow = None
            self._exec_lock.release()
        self.passes_checked += 1
        self.elements_checked += size

    def record(
        self,
        *,
        reads: np.ndarray | None = None,
        writes: np.ndarray | None = None,
        where: str = "",
    ) -> None:
        """Record one chunk's accesses, in execution order (reads first)."""
        with self._lock:
            shadow = self._shadow
            if shadow is None:
                return  # hooks outside a pass scope are inert
            if reads is not None:
                r = np.asarray(reads, dtype=np.int64).ravel()
                if r.size and (r.min() < 0 or r.max() >= shadow.size):
                    oob = r[(r < 0) | (r >= shadow.size)]
                    raise SanitizerError("out-of-bounds read", shadow.name, where, oob)
                clobbered = r[shadow.writes[r] != 0]
                if clobbered.size:
                    raise SanitizerError(
                        "read-after-clobber", shadow.name, where, clobbered
                    )
            if writes is not None:
                w = np.asarray(writes, dtype=np.int64).ravel()
                if w.size and (w.min() < 0 or w.max() >= shadow.size):
                    oob = w[(w < 0) | (w >= shadow.size)]
                    raise SanitizerError("out-of-bounds write", shadow.name, where, oob)
                shadow.writes += np.bincount(w, minlength=shadow.size)
                doubled = np.flatnonzero(shadow.writes > 1)
                if doubled.size:
                    raise SanitizerError("double write", shadow.name, where, doubled)

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "passes_checked": self.passes_checked,
            "elements_checked": self.elements_checked,
        }


#: The process-wide sanitizer consulted by the execution hooks.
#: ``REPRO_SANITIZE=1`` in the environment starts it enabled.
sanitizer = Sanitizer(enabled=os.environ.get("REPRO_SANITIZE", "0") not in ("0", ""))


def enable() -> None:
    sanitizer.enable()


def disable() -> None:
    sanitizer.disable()


def is_enabled() -> bool:
    return sanitizer.enabled
