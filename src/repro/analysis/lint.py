"""AST-based custom lint pass enforcing repo invariants over ``src/repro``.

Eight rules, each born from a class of bug this codebase has actually hit
or explicitly defends against:

``raw-divmod`` (REPRO001)
    Designated hot-path modules must not use raw ``//`` or ``%`` — index
    division routes through :mod:`repro.strength` so the Section 4.4
    strength reduction stays load-bearing.  Setup-time uses are annotated.

``implicit-copy`` (REPRO002)
    In plan-execution modules, ``.ravel()`` is banned (it may silently copy
    a non-contiguous view) and ``.reshape(...)`` must appear in a function
    that also checks contiguity — the latent silently-copied-view bug class
    that PR 1's contiguity guards fixed.

``entry-guard`` (REPRO003)
    Each configured public entry point must contain an explicit contiguity
    guard (a ``C_CONTIGUOUS``/``F_CONTIGUOUS`` flags check).  A missing
    function is itself a violation, so the configuration cannot drift.

``lock-discipline`` (REPRO004)
    In ``runtime/`` modules, any method of a class owning ``self._lock``
    may mutate shared attributes only inside ``with self._lock:`` (mutation
    = attribute/subscript assignment, augmented assignment, or a mutating
    container-method call; ``__init__`` is exempt).

``trace-granularity`` (REPRO005)
    Span/metric recording calls (``.span``/``.event``/``.observe``/
    ``.inc``/``.record_call``) must not sit inside doubly-nested loops —
    one record per *pass* is the contract; per-element recording would
    swamp both the workload and the ring buffer.  Loop depth resets at
    nested ``def`` boundaries (a worker closure runs per chunk, not per
    iteration of the loop that spawned it).

``exception-swallow`` (REPRO006)
    In ``native/``, ``serve/`` and ``trace/`` modules, a broad handler
    (bare ``except``, ``except Exception``/``BaseException``) must either
    bind the exception (``as exc`` — so fallback/resolution paths can
    carry the failure reason into the ``native.fallback`` counter context
    or the error reply) or re-raise.  An unbound, non-re-raising broad
    handler silently drops the reason a kernel or worker fell over.

``event-trace-id`` (REPRO007)
    Every structured-event emission (``event_log.emit(...)``) must pass
    ``trace_id`` as a keyword so each event joins a request's distributed
    trace.  An emission without it produces an orphaned event that cannot
    be correlated with the spans of the request that caused it.

``whole-file-memmap`` (REPRO008)
    ``np.memmap(...)`` is banned outside ``stream/``: a raw whole-file
    mapping has an unbounded resident set — exactly the bug class the
    byte-budgeted :class:`repro.stream.window.ResidentWindow` exists to
    prevent.  File-backed matrices go through :mod:`repro.stream`;
    genuinely exempt uses (e.g. a not-yet-streamed subsystem) carry an
    explicit suppression with rationale.

Suppressions
------------
Append ``# repro-lint: allow(<rule>[, <rule>...])`` to the offending line,
or put it on the enclosing ``def`` line to suppress for a whole function.
Anything after the closing parenthesis is free-form rationale.  Every
suppression should say *why*.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "RULES",
    "LintViolation",
    "check_source",
    "check_file",
    "run_lint",
    "default_root",
]

#: rule name -> (code, summary)
RULES = {
    "raw-divmod": ("REPRO001", "raw // or % in a strength-reduced hot path"),
    "implicit-copy": ("REPRO002", "possible silent-copy reshape/ravel in an execution path"),
    "entry-guard": ("REPRO003", "public entry point lacks a contiguity guard"),
    "lock-discipline": ("REPRO004", "shared runtime state mutated outside its lock"),
    "trace-granularity": ("REPRO005", "span/metric recording inside a per-element inner loop"),
    "exception-swallow": ("REPRO006", "broad except drops the failure reason in a fallback path"),
    "event-trace-id": ("REPRO007", "structured event emitted without a trace_id keyword"),
    "whole-file-memmap": ("REPRO008", "unbounded np.memmap outside the streaming window"),
}

#: Modules (relative to the package root) where raw ``//``/``%`` is banned.
HOT_DIVMOD_MODULES = {
    "strength/reduced.py",
    "parallel/cpu.py",
    "core/plan.py",
}

#: Modules whose functions execute plans (reshape/ravel scrutiny).
PLAN_EXECUTION_MODULES = {
    "core/plan.py",
    "core/batched.py",
    "parallel/cpu.py",
    "core/transpose.py",
}

#: (module, qualified function) pairs that must contain a contiguity guard.
ENTRY_POINT_GUARDS = [
    ("core/transpose.py", "transpose_inplace"),
    ("core/transpose.py", "transpose"),
    ("core/plan.py", "TransposePlan.execute"),
    ("core/batched.py", "BatchedTransposePlan.execute"),
    ("parallel/cpu.py", "ParallelTranspose.c2r"),
    ("parallel/cpu.py", "ParallelTranspose.r2c"),
]

#: Directory prefix where lock discipline is enforced.
LOCK_MODULE_PREFIX = "runtime/"

#: Directory prefixes where broad exception handlers must preserve the
#: failure reason (the native fallback/resolution, serving and tracing
#: paths).
EXCEPTION_SWALLOW_PREFIXES = ("native/", "serve/", "trace/")

#: Exception names considered "broad" for the exception-swallow rule.
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}

#: Directory prefix exempt from the whole-file-memmap rule: the streaming
#: window is the one place allowed to hold the mapping, because it is the
#: component that bounds its residency.
MEMMAP_EXEMPT_PREFIX = "stream/"

_CONTIGUITY_MARKERS = ("C_CONTIGUOUS", "F_CONTIGUOUS")
#: Recording calls whose receivers are tracers/registries; flagged when the
#: call sits at loop depth >= 2 (per-element granularity).
_RECORDING_METHODS = {"span", "event", "emit", "observe", "inc", "record_call"}
#: Receiver names treated as the structured event log for REPRO007
#: (``event_log.emit(...)`` and lazily-bound aliases).
_EVENT_LOG_NAMES = {"event_log", "ev", "_event_log"}
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "move_to_end",
}
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*allow\(([a-zA-Z0-9_,\s-]+)\)")


@dataclass(frozen=True)
class LintViolation:
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def code(self) -> str:
        return RULES[self.rule][0]

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "code": self.code,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code}({self.rule}) {self.message}"


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names suppressed on that line."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return out


class _Analyzer(ast.NodeVisitor):
    """Single-pass collector for all four rules over one module."""

    def __init__(self, rel: str, suppressed: dict[int, set[str]]):
        self.rel = rel
        self.suppressed = suppressed
        self.violations: list[LintViolation] = []
        #: stack of (FunctionDef node, set of contiguity markers seen)
        self._func_stack: list[ast.AST] = []
        self._class_stack: list[str] = []
        #: lock nesting depth (``with self._lock`` scopes)
        self._lock_depth = 0
        #: For/While nesting depth within the current function body
        self._loop_depth = 0
        #: name of the class currently known to own a ``self._lock``
        self._lock_classes: set[str] = set()
        self.rel_posix = rel.replace("\\", "/")
        self.in_hot_module = self.rel_posix in HOT_DIVMOD_MODULES
        self.in_exec_module = self.rel_posix in PLAN_EXECUTION_MODULES
        self.in_lock_module = self.rel_posix.startswith(LOCK_MODULE_PREFIX)
        self.in_swallow_module = self.rel_posix.startswith(
            EXCEPTION_SWALLOW_PREFIXES
        )
        #: qualname -> FunctionDef for entry-guard lookups
        self.functions: dict[str, ast.AST] = {}

    # -- bookkeeping ---------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        # A multi-line expression accepts the suppression on any of its lines.
        end = getattr(node, "end_lineno", None) or line
        lines = set(range(line, end + 1))
        for fn in self._func_stack:
            lines.add(fn.lineno)
        for ln in lines:
            if rule in self.suppressed.get(ln, ()):
                return
        self.violations.append(LintViolation(self.rel_posix, line, rule, message))

    def _qualname(self, name: str) -> str:
        return ".".join([*self._class_stack, name])

    # -- structure visitors ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Pre-scan __init__ for a self._lock assignment so methods defined
        # before/after are treated uniformly.
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                for sub in ast.walk(item):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr == "_lock"
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and isinstance(sub.ctx, ast.Store)
                    ):
                        self._lock_classes.add(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        self.functions[self._qualname(node.name)] = node
        self._func_stack.append(node)
        # A nested def runs on its own schedule (e.g. a worker closure runs
        # once per chunk), so loop depth does not carry across it.
        saved_depth = self._loop_depth
        self._loop_depth = 0
        self.generic_visit(node)
        self._loop_depth = saved_depth
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_loop(self, node) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_With(self, node: ast.With) -> None:
        is_lock = any(
            isinstance(item.context_expr, ast.Attribute)
            and item.context_expr.attr == "_lock"
            and isinstance(item.context_expr.value, ast.Name)
            and item.context_expr.value.id == "self"
            for item in node.items
        )
        if is_lock:
            self._lock_depth += 1
            self.generic_visit(node)
            self._lock_depth -= 1
        else:
            self.generic_visit(node)

    # -- rule: raw-divmod ------------------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.in_hot_module and isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            op = "//" if isinstance(node.op, ast.FloorDiv) else "%"
            self._emit(
                "raw-divmod", node,
                f"raw {op!r} in a hot-path module; route through repro.strength",
            )
        self.generic_visit(node)

    # -- rule: implicit-copy and lock-discipline (assignment side) -------------

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.in_hot_module and isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            self._emit("raw-divmod", node, "raw augmented //=/%= in a hot-path module")
        self._check_lock_mutation(node.target, node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_lock_mutation(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # whole-file-memmap: np.memmap (or a bare memmap import) anywhere
        # but stream/ maps a file with no residency bound.
        is_memmap = (
            isinstance(func, ast.Attribute) and func.attr == "memmap"
        ) or (isinstance(func, ast.Name) and func.id == "memmap")
        if is_memmap and not self.rel_posix.startswith(MEMMAP_EXEMPT_PREFIX):
            self._emit(
                "whole-file-memmap", node,
                "np.memmap outside stream/ has an unbounded resident set; "
                "route file-backed matrices through repro.stream",
            )
        if isinstance(func, ast.Attribute):
            # trace-granularity: recording from a doubly-nested loop means
            # per-element (or per-tile-element) spans/metrics — the record
            # volume scales with the data, not with the pass count.
            if func.attr in _RECORDING_METHODS and self._loop_depth >= 2:
                self._emit(
                    "trace-granularity", node,
                    f".{func.attr}() at loop depth {self._loop_depth}; "
                    "record once per pass, not per element",
                )
            # event-trace-id: an event-log emission that omits trace_id=
            # produces an orphaned event no trace can claim.
            if func.attr == "emit" and self._is_event_log_receiver(func.value):
                if not any(kw.arg == "trace_id" for kw in node.keywords):
                    self._emit(
                        "event-trace-id", node,
                        ".emit() without trace_id=; stamp every structured "
                        "event with the active trace id "
                        "(tracer.current_trace_id() when idle)",
                    )
            if self.in_exec_module and func.attr == "ravel":
                self._emit(
                    "implicit-copy", node,
                    ".ravel() may silently copy a strided view; "
                    "guard contiguity and use .reshape(-1)",
                )
            if self.in_exec_module and func.attr == "reshape":
                if not self._enclosing_function_checks_contiguity():
                    self._emit(
                        "implicit-copy", node,
                        ".reshape() in a plan-execution function with no "
                        "contiguity guard (a strided view would be copied, "
                        "not permuted)",
                    )
            # lock-discipline: self._x.mutator(...) outside the lock
            if (
                func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                self._check_lock_mutation(func.value, node, is_call=True)
        self.generic_visit(node)

    # -- rule: event-trace-id ----------------------------------------------------

    @staticmethod
    def _is_event_log_receiver(expr: ast.AST) -> bool:
        """True for ``event_log`` / ``ev`` names and ``_event_log()`` calls."""
        if isinstance(expr, ast.Name):
            return expr.id in _EVENT_LOG_NAMES
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in _EVENT_LOG_NAMES
        if isinstance(expr, ast.Attribute):
            return expr.attr in _EVENT_LOG_NAMES
        return False

    # -- rule: exception-swallow -----------------------------------------------

    @staticmethod
    def _is_broad_handler(node: ast.ExceptHandler) -> bool:
        t = node.type
        if t is None:  # bare except
            return True
        if isinstance(t, ast.Name):
            return t.id in _BROAD_EXCEPTIONS
        if isinstance(t, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in _BROAD_EXCEPTIONS
                for el in t.elts
            )
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if (
            self.in_swallow_module
            and self._is_broad_handler(node)
            and node.name is None
            and not any(isinstance(sub, ast.Raise) for sub in ast.walk(node))
        ):
            caught = "bare except" if node.type is None else "except Exception"
            self._emit(
                "exception-swallow", node,
                f"{caught} without 'as exc' or re-raise drops the failure "
                "reason; bind it and record why the fallback happened",
            )
        self.generic_visit(node)

    def _enclosing_function_checks_contiguity(self) -> bool:
        for fn in reversed(self._func_stack):
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Constant) and sub.value in _CONTIGUITY_MARKERS:
                    return True
        return False

    # -- rule: lock-discipline -------------------------------------------------

    def _current_method_context(self) -> tuple[str, str] | None:
        """(class name, method name) when directly inside a method body."""
        if not self._class_stack or not self._func_stack:
            return None
        return self._class_stack[-1], self._func_stack[0].name

    def _check_lock_mutation(self, target: ast.AST, node: ast.AST, *, is_call=False) -> None:
        if not self.in_lock_module or self._lock_depth > 0:
            return
        ctx = self._current_method_context()
        if ctx is None:
            return
        cls, method = ctx
        if cls not in self._lock_classes or method == "__init__":
            return
        # Mutations of interest: self.<attr> (stores), self.<attr>[...] = ...,
        # and mutating container-method calls on self.<attr>.
        attr = None
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            attr = target.attr
        elif isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Attribute) and isinstance(inner.value, ast.Name) \
                    and inner.value.id == "self":
                attr = inner.attr
        if attr is None or attr == "_lock":
            return
        kind = "mutating call on" if is_call else "assignment to"
        self._emit(
            "lock-discipline", node,
            f"{kind} self.{attr} in {cls}.{method} outside 'with self._lock'",
        )


def check_source(source: str, rel: str) -> list[LintViolation]:
    """Lint one module's source; ``rel`` is its path relative to the root."""
    rel_posix = rel.replace("\\", "/")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation(rel_posix, exc.lineno or 0, "entry-guard",
                          f"unparseable module: {exc.msg}")
        ]
    analyzer = _Analyzer(rel, _suppressions(source))
    analyzer.visit(tree)
    violations = analyzer.violations

    # entry-guard: configured entry points must exist and contain a guard.
    for module, qualname in ENTRY_POINT_GUARDS:
        if module != rel_posix:
            continue
        fn = analyzer.functions.get(qualname)
        if fn is None:
            violations.append(
                LintViolation(rel_posix, 1, "entry-guard",
                              f"configured entry point {qualname} not found "
                              "(update analysis.lint.ENTRY_POINT_GUARDS)")
            )
            continue
        has_guard = any(
            isinstance(sub, ast.Constant) and sub.value in _CONTIGUITY_MARKERS
            for sub in ast.walk(fn)
        )
        if not has_guard and "entry-guard" not in analyzer.suppressed.get(fn.lineno, ()):
            violations.append(
                LintViolation(rel_posix, fn.lineno, "entry-guard",
                              f"{qualname} has no contiguity guard")
            )
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def check_file(path: Path, root: Path) -> list[LintViolation]:
    rel = path.relative_to(root).as_posix()
    return check_source(path.read_text(encoding="utf-8"), rel)


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parents[1]


def run_lint(root: Path | None = None) -> list[LintViolation]:
    """Lint every module under ``root`` (default: the repro package)."""
    base = Path(root) if root is not None else default_root()
    violations: list[LintViolation] = []
    for path in sorted(base.rglob("*.py")):
        violations.extend(check_file(path, base))
    return violations
