"""Static verifier for the generated native kernels.

PR 2's algebra module proves the *Python* plan machinery implements the
paper's equations; the native backend then re-implements those passes as
generated C that none of that analysis sees.  This module closes the gap:
it takes the exact translation unit ``native.codegen`` emits for a
concrete ``(algorithm, m, n, itemsize)`` plan and proves, by abstract
interpretation (:mod:`repro.analysis.cinterp` — no compiler involved),
that the C does what the algebra says:

``parse`` / ``symbols`` / ``layout``
    The unit fits the checked C subset and exports every entry point the
    runtime binds (``repro_run``, ``repro_run_batch``, per-pass symbols
    and their ``_batch`` wrappers).
``plan-constants``
    The inlined ``M/N/A/B/C`` and ``NPASSES`` literals match the
    decomposition.
``fastdiv-*``
    Each ``DIV_X``/``MOD_X`` macro is the canonical fixed-point-reciprocal
    form, its divisor literal matches the decomposition constant, and the
    inlined ``(multiplier, shift)`` pair computes exact ``//`` and ``%``
    over the full operand range the shape can generate — exhaustively (in
    the wrapping uint64 domain, exactly as compiled code evaluates it) up
    to 2**22 operands, above that by recomputation against
    ``compute_magic`` plus boundary probes near ``2**31 - 1``.  A handful
    of probes are additionally evaluated *through the interpreter* so the
    macro text that the pass bodies expand agrees with the extraction.
``pass*-exec`` / ``pass*-semantics``
    Running each pass over its full extent on an identity-initialised
    buffer faults nowhere (bounds, liveness, definedness, leaks — see
    ``cinterp``) and lands exactly the permutation the corresponding
    Eq. 23-36 plan step derives.
``pass*-chunks-t<k>``
    Re-running the pass chunk-by-chunk over the ``balanced_chunks``
    schedule (the geometry ``ParallelTranspose`` dispatches) writes
    pairwise-disjoint element sets whose union equals the full-range
    write set, reads only inside each chunk's own rectangle, and composes
    to the same permutation — the property that lets a compiled kernel
    inherit the PR-2 racecheck guarantee.
``pass*-banded``
    For the column-facing passes, re-running the pass through its
    band-rebased entry point (``repro_pass_<k>_banded``) against buffers
    holding *only* each band's columns — chunked within each band, exactly
    the geometry the out-of-core ``BandedExecutor`` drives — composes to
    the same permutation.  The band buffers are allocated at exactly the
    band's size, so any addressing that escapes the rebased stride faults
    as an out-of-bounds access rather than silently landing elsewhere.
``plan-composition`` / ``algebra-equivalence``
    ``repro_run`` equals the composition of the verified passes, and that
    composition equals the closed-form transposition map
    (``transposition_source_map`` for C2R, its inverse for R2C — the R2C
    kernel runs on the swapped view, so composing it with the
    transposition of that view is the identity).
``batch-run``
    ``repro_run_batch`` applies the same permutation independently to
    each of ``k`` consecutive tiles.

Element values are provenance tokens, so "the buffer after the run" *is*
the gather map the C computed; every comparison above is exact, not
sampled.  The only sampled ingredient is the fastdiv probe set for shapes
whose operand range exceeds the exhaustive cap, as documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..core.indexing import Decomposition
from ..core.plan import TransposePlan
from ..native.codegen import (
    banded_pass_symbol,
    generate_source,
    ineligible_reason,
    pass_symbol,
)
from ..parallel.partition import balanced_chunks
from ..strength.magic import compute_magic
from .algebra import Check, transposition_source_map
from .cinterp import CInterp, CInterpError

__all__ = [
    "KernelReport",
    "NativeReport",
    "DEFAULT_CONFIGS",
    "verify_kernel",
    "verify_native",
]

#: curated CI verification set: the bench-smoke shapes (incl. F-order and
#: the non-square 500x1000), odd/prime and degenerate shapes, and small
#: shapes covering every element width the codegen supports.
DEFAULT_CONFIGS: tuple[tuple[int, int, str, int], ...] = (
    (256, 384, "C", 8),
    (256, 384, "F", 8),
    (384, 256, "C", 8),
    (512, 512, "C", 8),
    (500, 1000, "C", 8),
    (7, 13, "C", 8),
    (13, 7, "C", 8),
    (1, 17, "C", 8),
    (17, 1, "C", 8),
    (12, 18, "C", 1),
    (12, 18, "F", 2),
    (12, 96, "C", 16),
    (6, 4, "C", 4),
)

#: largest operand range checked exhaustively for fastdiv exactness;
#: larger shapes fall back to recomputation + boundary probes.
FASTDIV_EXHAUSTIVE_CAP = 1 << 22

#: batch verification is skipped above this element count per tile (the
#: batch driver is a loop over verified single-tile runs; re-proving it on
#: the biggest shapes buys nothing for the wall-clock it costs).
BATCH_ELEMS_CAP = 256 * 384


@dataclass
class KernelReport:
    """Every certificate for one generated kernel."""

    m: int
    n: int
    order: str
    algorithm: str
    itemsize: int
    passes: tuple[str, ...] = ()
    seconds: float = 0.0
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [c for c in self.checks if not c.ok]

    def as_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "order": self.order,
            "algorithm": self.algorithm,
            "itemsize": self.itemsize,
            "passes": list(self.passes),
            "ok": self.ok,
            "checks": len(self.checks),
            "seconds": round(self.seconds, 3),
            "failures": [c.as_dict() for c in self.failures],
        }


@dataclass
class NativeReport:
    """Aggregate of a kernel-verification sweep."""

    kernels: list[KernelReport] = field(default_factory=list)
    skipped: list[dict] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(k.ok for k in self.kernels)

    @property
    def checks(self) -> int:
        return sum(len(k.checks) for k in self.kernels)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "kernels": len(self.kernels),
            "checks": self.checks,
            "seconds": round(self.seconds, 3),
            "skipped": self.skipped,
            "reports": [k.as_dict() for k in self.kernels],
        }


# --------------------------------------------------------------------------
# fastdiv macro verification

_DIV_RE = re.compile(
    r"^#\s*define\s+DIV_([MNABC])\(x\)\s*"
    r"\(\(int64_t\)\(\(\(uint64_t\)\(x\)\s*\*\s*"
    r"UINT64_C\((\d+)\)\)\s*>>\s*(\d+)\)\)\s*$"
)
_MOD_RE = re.compile(
    r"^#\s*define\s+MOD_([MNABC])\(x\)\s*"
    r"\(\(int64_t\)\(x\)\s*-\s*DIV_([MNABC])\(x\)\s*\*\s*"
    r"INT64_C\((\d+)\)\)\s*$"
)
_CONST_RE = re.compile(r"^#\s*define\s+([MNABC])\s+INT64_C\((\d+)\)\s*$")


def _fastdiv_probes(d: int, hi: int) -> np.ndarray:
    """Deterministic operands stressing quotient boundaries of ``d``."""
    pts = {0, 1, 2, d - 1, d, d + 1, 2 * d - 1, 2 * d, hi - 1, hi // 2}
    for mult in (hi // d if d else 0, (1 << 31) // max(d, 1)):
        for delta in (-1, 0, 1):
            pts.add(mult * d + delta)
    pts.update(range((1 << 31) - 8, 1 << 31))
    arr = np.array(sorted(p for p in pts if 0 <= p < (1 << 31)), dtype=np.int64)
    return arr


def _check_fastdiv(
    checks: list[Check],
    macros,
    dec: Decomposition,
    probe_interp: CInterp | None,
) -> None:
    hi = dec.m * dec.n + dec.m + dec.n
    for name, d in (
        ("M", dec.m), ("N", dec.n), ("A", dec.a), ("B", dec.b), ("C", dec.c)
    ):
        label = f"fastdiv-{name}"
        div = macros.get(f"DIV_{name}")
        mod = macros.get(f"MOD_{name}")
        if div is None or mod is None:
            checks.append(Check(label, False, "DIV/MOD macro missing"))
            continue
        dmo = _DIV_RE.match(div.raw)
        mmo = _MOD_RE.match(mod.raw)
        if dmo is None or mmo is None:
            bad = div.raw if dmo is None else mod.raw
            checks.append(
                Check(label, False, f"non-canonical macro form: {bad!r}")
            )
            continue
        mult, shift = int(dmo.group(2)), int(dmo.group(3))
        if mmo.group(2) != name:
            checks.append(
                Check(label, False, f"MOD_{name} built on DIV_{mmo.group(2)}")
            )
            continue
        if int(mmo.group(3)) != d:
            checks.append(
                Check(
                    label, False,
                    f"MOD_{name} divisor literal {mmo.group(3)} != {d}",
                )
            )
            continue
        # exact //-agreement in the wrapping uint64 domain compiled code
        # evaluates the macro in
        if hi <= FASTDIV_EXHAUSTIVE_CAP:
            x = np.arange(hi, dtype=np.uint64)
            mode = f"exhaustive over [0, {hi})"
        else:
            mg = compute_magic(d, nbits=31)
            if (mg.multiplier, mg.shift) != (mult, shift):
                checks.append(
                    Check(
                        label, False,
                        f"literals ({mult}, {shift}) != compute_magic "
                        f"({mg.multiplier}, {mg.shift})",
                    )
                )
                continue
            x = _fastdiv_probes(d, hi).astype(np.uint64)
            mode = f"recomputed + {x.size} boundary probes"
        with np.errstate(over="ignore"):
            q = ((x * np.uint64(mult)) >> np.uint64(shift)).astype(np.int64)
        exact = (x.astype(np.int64) // d).astype(np.int64)
        bad = np.nonzero(q != exact)[0]
        if bad.size:
            i = int(bad[0])
            checks.append(
                Check(
                    label, False,
                    f"x={int(x[i])}: magic gives {int(q[i])}, exact //{d} "
                    f"is {int(exact[i])} ({mode})",
                )
            )
            continue
        # and through the interpreter, so the macro the pass bodies expand
        # agrees with what the regex extracted
        detail = mode
        if probe_interp is not None:
            probes = [p for p in (0, 1, d - 1, d, d + 1, hi - 1) if p >= 0]
            ok = True
            for p in probes:
                try:
                    got_q = probe_interp.call(f"__probe_div_{name}", p)
                    got_r = probe_interp.call(f"__probe_mod_{name}", p)
                except CInterpError as exc:
                    checks.append(Check(label, False, f"probe fault: {exc}"))
                    ok = False
                    break
                if got_q != p // d or got_r != p % d:
                    checks.append(
                        Check(
                            label, False,
                            f"interpreted macro at x={p}: ({got_q}, {got_r})"
                            f" != ({p // d}, {p % d})",
                        )
                    )
                    ok = False
                    break
            if not ok:
                continue
            detail += ", interpreter probes agree"
        checks.append(Check(label, True, detail))


def _probe_suffix() -> str:
    lines = []
    for name in "MNABC":
        lines.append(
            f"int64_t __probe_div_{name}(int64_t x) {{ return DIV_{name}(x); }}"
        )
        lines.append(
            f"int64_t __probe_mod_{name}(int64_t x) {{ return MOD_{name}(x); }}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# pass / schedule verification


def _axis_cols(axis: str, lo: int, hi: int, dec: Decomposition):
    """Column interval a chunk of the given parallel axis may touch, or
    ``None`` when the chunk owns whole rows."""
    if axis == "groups":
        return lo * dec.b, hi * dec.b
    if axis == "cols":
        return lo, hi
    return None  # rows: element interval [lo*n, hi*n)


def _contained(elems: set[int], axis: str, lo: int, hi: int,
               dec: Decomposition) -> str | None:
    """``None`` if every element index lies in the chunk's rectangle, else
    a description of the first escape."""
    if not elems:
        return None
    arr = np.fromiter(elems, dtype=np.int64, count=len(elems))
    mn = dec.m * dec.n
    oob = arr[(arr < 0) | (arr >= mn)]
    if oob.size:
        return f"element {int(oob[0])} outside the {dec.m}x{dec.n} matrix"
    span = _axis_cols(axis, lo, hi, dec)
    if span is None:
        bad = arr[(arr < lo * dec.n) | (arr >= hi * dec.n)]
        if bad.size:
            e = int(bad[0])
            return (
                f"element {e} (row {e // dec.n}) outside row chunk "
                f"[{lo}, {hi})"
            )
        return None
    c0, c1 = span
    cols = arr % dec.n
    bad = arr[(cols < c0) | (cols >= c1)]
    if bad.size:
        e = int(bad[0])
        return (
            f"element {e} (col {e % dec.n}) outside column span "
            f"[{c0}, {c1}) of {axis} chunk [{lo}, {hi})"
        )
    return None


def _seeded_buffer(interp: CInterp, state: np.ndarray):
    buf = interp.new_buffer(state.size, init="undef")
    buf.obj.cells = dict(enumerate(state.tolist()))
    return buf


def verify_kernel(
    m: int,
    n: int,
    *,
    order: str = "C",
    algorithm: str = "auto",
    itemsize: int = 8,
    source: str | None = None,
    thread_counts: tuple[int, ...] = (2, 4),
    batch_tiles: int = 2,
    check_batch: bool | None = None,
) -> KernelReport:
    """Verify one generated kernel end to end.

    ``source`` overrides the translation unit (the mutation harness passes
    a deliberately corrupted one); by default the kernel is generated
    fresh from the plan's decomposition, exactly as the runtime would.
    """
    start = perf_counter()
    plan = TransposePlan(m, n, order=order, algorithm=algorithm)
    dec = plan.dec
    report = KernelReport(
        m=m, n=n, order=order, algorithm=plan.algorithm, itemsize=itemsize
    )
    checks = report.checks
    try:
        reason = ineligible_reason(dec, itemsize)
        if reason is not None:
            checks.append(Check("eligible", False, reason))
            return report
        spec = generate_source(dec, plan.algorithm, itemsize)
        if source is None:
            source = spec.source
        report.passes = tuple(p.parallel_name for p in spec.passes)
        mn = dec.m * dec.n
        budget = 1_000_000 + 48 * mn

        try:
            interp = CInterp(source, itemsize=itemsize, budget=budget)
        except CInterpError as exc:
            checks.append(Check("parse", False, str(exc)))
            return report
        checks.append(Check("parse", True))

        needed = {"repro_run", "repro_run_batch"}
        for p in spec.passes:
            needed.add(pass_symbol(p.kind))
            needed.add(pass_symbol(p.kind) + "_batch")
            bsym = banded_pass_symbol(p.kind)
            if bsym is not None:
                needed.add(bsym)
        missing = sorted(needed - interp.functions.keys())
        checks.append(
            Check(
                "symbols",
                not missing,
                f"missing: {', '.join(missing)}" if missing else "",
            )
        )
        if missing:
            return report

        if len(spec.passes) != len(plan._steps) or any(
            p.kind != kind for p, (kind, _) in zip(spec.passes, plan._steps)
        ):
            checks.append(
                Check(
                    "layout", False,
                    f"codegen passes {[p.kind for p in spec.passes]} != "
                    f"plan steps {[k for k, _ in plan._steps]}",
                )
            )
            return report
        checks.append(Check("layout", True))

        # inlined decomposition constants
        const_fail = None
        for cname, want in (
            ("M", dec.m), ("N", dec.n), ("A", dec.a), ("B", dec.b),
            ("C", dec.c),
        ):
            mac = interp.macros.get(cname)
            mo = _CONST_RE.match(mac.raw) if mac is not None else None
            if mo is None or int(mo.group(2)) != want:
                const_fail = f"#define {cname} != {want}"
                break
        npasses = interp.macros.get("NPASSES")
        if const_fail is None and (
            npasses is None or npasses.body != [str(len(spec.passes))]
        ):
            const_fail = f"NPASSES != {len(spec.passes)}"
        checks.append(Check("plan-constants", const_fail is None,
                            const_fail or ""))

        try:
            probe_interp = CInterp(
                source + "\n" + _probe_suffix(), itemsize=itemsize
            )
        except CInterpError:
            probe_interp = None
        _check_fastdiv(checks, interp.macros, dec, probe_interp)

        # -- per-pass execution, semantics, and chunk schedule ------------
        state = np.arange(mn, dtype=np.int64)
        for i, (pinfo, (kind, payload)) in enumerate(
            zip(spec.passes, plan._steps)
        ):
            tag = f"pass{i}-{pinfo.parallel_name}"
            sym = pass_symbol(pinfo.kind)
            expected = state.copy()
            TransposePlan._apply_step(
                expected.reshape(dec.m, dec.n), kind, payload
            )

            buf = _seeded_buffer(interp, state)
            try:
                rc = interp.call(sym, buf, 0, pinfo.extent)
            except CInterpError as exc:
                checks.append(Check(f"{tag}-exec", False, str(exc)))
                return report
            if rc != 0:
                checks.append(Check(f"{tag}-exec", False, f"returned {rc}"))
                return report
            full_writes = set(interp.writes)
            escape = _contained(
                full_writes | interp.reads, pinfo.axis, 0, pinfo.extent, dec
            )
            checks.append(Check(f"{tag}-exec", escape is None, escape or ""))
            got = np.asarray(buf.values(), dtype=np.int64)
            bad = np.nonzero(got != expected)[0]
            checks.append(
                Check(
                    f"{tag}-semantics",
                    bad.size == 0,
                    ""
                    if bad.size == 0
                    else (
                        f"element {int(bad[0])}: kernel gathered "
                        f"{int(got[bad[0]])}, Eq. step says "
                        f"{int(expected[bad[0]])} ({bad.size} mismatches)"
                    ),
                )
            )
            if bad.size:
                return report

            for t in thread_counts:
                fail = None
                buf = _seeded_buffer(interp, state)
                seen: set[int] = set()
                union: set[int] = set()
                for ch in balanced_chunks(pinfo.extent, t):
                    try:
                        rc = interp.call(sym, buf, ch.start, ch.stop)
                    except CInterpError as exc:
                        fail = f"chunk [{ch.start}, {ch.stop}): {exc}"
                        break
                    if rc != 0:
                        fail = f"chunk [{ch.start}, {ch.stop}) returned {rc}"
                        break
                    w = interp.writes
                    clash = seen & w
                    if clash:
                        fail = (
                            f"chunk [{ch.start}, {ch.stop}) rewrites element "
                            f"{min(clash)} already written by an earlier chunk"
                        )
                        break
                    escape = _contained(
                        w | interp.reads, pinfo.axis, ch.start, ch.stop, dec
                    )
                    if escape is not None:
                        fail = f"chunk [{ch.start}, {ch.stop}): {escape}"
                        break
                    seen |= w
                    union |= w
                if fail is None and union != full_writes:
                    d = len(full_writes - union) or len(union - full_writes)
                    fail = (
                        f"chunk union misses {d} elements of the full-range "
                        "write set"
                    )
                if fail is None:
                    got = np.asarray(buf.values(), dtype=np.int64)
                    bad = np.nonzero(got != expected)[0]
                    if bad.size:
                        fail = (
                            f"chunked result diverges at element "
                            f"{int(bad[0])}"
                        )
                checks.append(
                    Check(f"{tag}-chunks-t{t}", fail is None, fail or "")
                )
                if fail is not None:
                    return report

            # banded entry point: the pass applied band-by-band to buffers
            # holding only each band's columns (the BandedExecutor geometry);
            # buffers are sized to the band, so a rebase bug faults oob.
            bsym = banded_pass_symbol(pinfo.kind)
            if bsym is not None:
                unit = dec.b if pinfo.axis == "groups" else 1
                fail = None
                work = state.copy().reshape(dec.m, dec.n)
                for bnd in balanced_chunks(
                    pinfo.extent, min(3, pinfo.extent)
                ):
                    width = (bnd.stop - bnd.start) * unit
                    c0 = bnd.start * unit
                    band_state = work[:, c0:c0 + width].ravel()  # repro-lint: allow(implicit-copy) band seed for the interpreter, not a hot path
                    buf = _seeded_buffer(interp, band_state)
                    for ch in balanced_chunks(bnd.stop - bnd.start, 2):
                        try:
                            rc = interp.call(
                                bsym, buf,
                                bnd.start + ch.start, bnd.start + ch.stop,
                                width, bnd.start,
                            )
                        except CInterpError as exc:
                            fail = (
                                f"band [{bnd.start}, {bnd.stop}) chunk "
                                f"[{ch.start}, {ch.stop}): {exc}"
                            )
                            break
                        if rc != 0:
                            fail = (
                                f"band [{bnd.start}, {bnd.stop}) "
                                f"returned {rc}"
                            )
                            break
                    if fail is not None:
                        break
                    got = np.asarray(buf.values(), dtype=np.int64)
                    work[:, c0:c0 + width] = got.reshape(dec.m, width)
                if fail is None:
                    bad = np.nonzero(work.ravel() != expected)[0]
                    if bad.size:
                        e = int(bad[0])
                        fail = (
                            f"banded composition diverges at element {e}: "
                            f"{int(work.ravel()[e])} != {int(expected[e])}"
                        )
                checks.append(Check(f"{tag}-banded", fail is None, fail or ""))
                if fail is not None:
                    return report
            state = expected

        # -- whole-plan drivers -------------------------------------------
        buf = interp.new_buffer(mn)
        try:
            rc = interp.call("repro_run", buf)
        except CInterpError as exc:
            checks.append(Check("plan-composition", False, str(exc)))
            return report
        got = np.asarray(buf.values(), dtype=np.int64)
        ok = rc == 0 and np.array_equal(got, state)
        checks.append(
            Check(
                "plan-composition",
                ok,
                "" if ok else f"repro_run rc={rc} or != composed passes",
            )
        )
        if not ok:
            return report

        tsm = transposition_source_map(dec.m, dec.n)
        if plan.algorithm == "c2r":
            algebra_map = tsm
            rel = "transposition_source_map(dec.m, dec.n)"
        else:
            algebra_map = np.empty_like(tsm)
            algebra_map[tsm] = np.arange(mn, dtype=tsm.dtype)
            rel = "inverse of transposition_source_map(dec.m, dec.n)"
        bad = np.nonzero(got != algebra_map)[0]
        checks.append(
            Check(
                "algebra-equivalence",
                bad.size == 0,
                f"matches {rel}"
                if bad.size == 0
                else (
                    f"element {int(bad[0])}: kernel {int(got[bad[0]])} != "
                    f"algebra {int(algebra_map[bad[0]])} ({rel})"
                ),
            )
        )
        if bad.size:
            return report

        # -- batched driver -----------------------------------------------
        if check_batch is None:
            check_batch = mn <= BATCH_ELEMS_CAP
        if check_batch and batch_tiles > 1:
            buf = interp.new_buffer(batch_tiles * mn)
            fail = None
            try:
                rc = interp.call(
                    "repro_run_batch", buf, batch_tiles,
                    budget=budget * batch_tiles,
                )
            except CInterpError as exc:
                fail = str(exc)
            if fail is None and rc != 0:
                fail = f"returned {rc}"
            if fail is None:
                got = np.asarray(buf.values(), dtype=np.int64)
                want = np.concatenate(
                    [state + t * mn for t in range(batch_tiles)]
                )
                bad = np.nonzero(got != want)[0]
                if bad.size:
                    e = int(bad[0])
                    fail = (
                        f"tile {e // mn} element {e % mn}: "
                        f"{int(got[e])} != {int(want[e])}"
                    )
            checks.append(
                Check(
                    "batch-run", fail is None,
                    fail or f"{batch_tiles} tiles, per-tile map verified",
                )
            )
    finally:
        report.seconds = perf_counter() - start
    return report


def verify_native(
    configs=None,
    *,
    thread_counts: tuple[int, ...] = (2, 4),
    batch_tiles: int = 2,
    algorithms: tuple[str, ...] = ("c2r", "r2c"),
    progress=None,
) -> NativeReport:
    """Verify every kernel in a ``(m, n, order, itemsize)`` config sweep,
    for each algorithm, and aggregate the certificates."""
    start = perf_counter()
    if configs is None:
        configs = DEFAULT_CONFIGS
    out = NativeReport()
    for cfg in configs:
        m, n, order, itemsize = cfg
        for algorithm in algorithms:
            dec = (
                Decomposition.of(m, n)
                if (algorithm == "c2r") == (order == "C")
                else Decomposition.of(n, m)
            )
            reason = ineligible_reason(dec, itemsize)
            if reason is not None:
                out.skipped.append(
                    {
                        "m": m, "n": n, "order": order,
                        "itemsize": itemsize, "algorithm": algorithm,
                        "reason": reason,
                    }
                )
                continue
            rep = verify_kernel(
                m, n, order=order, algorithm=algorithm, itemsize=itemsize,
                thread_counts=thread_counts, batch_tiles=batch_tiles,
            )
            out.kernels.append(rep)
            if progress is not None:
                status = "ok" if rep.ok else "FAIL"
                progress(
                    f"kernelcheck {m}x{n} {order} {algorithm} "
                    f"itemsize={itemsize}: {len(rep.checks)} checks "
                    f"{status} ({rep.seconds:.1f}s)"
                )
    out.seconds = perf_counter() - start
    return out
