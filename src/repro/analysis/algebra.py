"""Symbolic permutation verifier for the decomposition's index algebra.

The decomposition's correctness is *statically decidable*: every pass is a
closed-form modular map over ``(m, n)`` (Eq. 23-26, 31-36), so bijectivity,
gather/scatter inversion, the Eq. 32-33 rotation/static-permutation split,
and the composed-plan-equals-transposition identity can all be proven from
the shape alone — no matrix data is ever touched.  This module turns each of
the paper's theorems into an executable certificate:

=========================  =====================================================
check                      what it proves
=========================  =====================================================
``decomposition``          ``m = a*c``, ``n = b*c``, ``gcd(a, b) == 1``
``mmi-certificates``       ``a * mmi(a,b) ≡ 1 (mod b)`` and symmetrically
``prerotate-bijective``    each column rotation (Eq. 23) permutes ``[0, m)``
``rowshuffle-bijective``   Theorem 3: ``d'_i`` permutes ``[0, n)`` per row
``colshuffle-bijective``   Theorem 5: ``s'_j`` permutes ``[0, m)`` per column
``permute-q-bijective``    Eq. 33's static row permutation is a bijection
``rotation-split``         Eq. 32-33: ``s'_j(i) == q(p_j(i))`` (gather form)
``dprime-inversion``       Eq. 31 gather exactly inverts the Eq. 24 scatter
``q-inversion``            Eq. 34 gather exactly inverts Eq. 33
``prerotate-inversion``    Eq. 36 inverts Eq. 23
``sprime-inversion``       the fused inverse column shuffle inverts Eq. 26
``composition-c2r/r2c``    the composed passes equal the transposition
``plan-object-*``          a built :class:`TransposePlan` realizes the same map
``fastdiv-*``              magic-number div/mod agrees with ``//``/``%`` over
                           the full operand range the shape can generate
=========================  =====================================================

Each verification runs in ``O(m*n)`` index arithmetic (the bijectivity and
inversion certificates are per-row/per-column sorts and compositions of the
vectorized equation forms), which for the CI shape lattice is a few
microseconds per shape.  A failure pinpoints the check name and the first
offending indices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..core import equations as eq
from ..core.indexing import Decomposition
from ..core.numbertheory import mmi
from ..strength.magic import compute_magic
from ..strength.reduced import ReducedEquations

__all__ = [
    "Check",
    "ShapeReport",
    "LatticeReport",
    "transposition_source_map",
    "composed_source_map",
    "verify_shape",
    "verify_lattice",
]


@dataclass
class Check:
    """One named certificate: what was proven, whether it held, and detail."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        d: dict = {"name": self.name, "ok": self.ok}
        if self.detail:
            d["detail"] = self.detail
        return d


@dataclass
class ShapeReport:
    """Every certificate for one ``(m, n)`` shape."""

    m: int
    n: int
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [c for c in self.checks if not c.ok]

    def as_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "ok": self.ok,
            "checks": len(self.checks),
            "failures": [c.as_dict() for c in self.failures],
        }


@dataclass
class LatticeReport:
    """Aggregate of a full shape-lattice sweep."""

    m_max: int
    n_max: int
    shapes: int = 0
    checks: int = 0
    seconds: float = 0.0
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "m_max": self.m_max,
            "n_max": self.n_max,
            "shapes": self.shapes,
            "checks": self.checks,
            "seconds": self.seconds,
            "ok": self.ok,
            "failures": self.failures,
        }


# ---------------------------------------------------------------------------
# Reference permutations
# ---------------------------------------------------------------------------

def transposition_source_map(m: int, n: int) -> np.ndarray:
    """The flat gather map of transposition on a row-major ``m x n`` buffer.

    ``final[l'] = initial[sigma(l')]`` with ``sigma(l') = (l' mod m) * n +
    l' div m`` — exactly the C2R source pair of Eq. 7-8 linearized row-major
    into the transposed ``n x m`` frame.
    """
    l = np.arange(m * n, dtype=np.int64)
    return (l % m) * n + l // m


def composed_source_map(m: int, n: int, algorithm: str) -> np.ndarray:
    """Compose the plan's passes symbolically into one flat gather map.

    The composition runs on an identity index array, so the result *is* the
    algebraic product of the pass permutations — no matrix data involved.
    Both algorithms must yield :func:`transposition_source_map`.
    """
    if algorithm == "c2r":
        dec = Decomposition.of(m, n)
        V = np.arange(m * n, dtype=np.int64).reshape(m, n)
        if dec.c > 1:
            for g in range(dec.c):
                k = g % dec.m
                if k:
                    cols = slice(g * dec.b, (g + 1) * dec.b)
                    V[:, cols] = np.roll(V[:, cols], -k, axis=0)
        V = np.take_along_axis(V, eq.dprime_inverse_matrix(dec), axis=1)
        V = np.take_along_axis(V, eq.sprime_matrix(dec), axis=0)
    elif algorithm == "r2c":
        # Theorem 2: R2C transposes a row-major buffer viewed with swapped
        # dimensions, i.e. the passes run on the (n, m) view.
        dec = Decomposition.of(n, m)
        V = np.arange(m * n, dtype=np.int64).reshape(n, m)
        V = np.take_along_axis(V, eq.sprime_inverse_matrix(dec), axis=0)
        V = np.take_along_axis(V, eq.dprime_matrix(dec), axis=1)
        if dec.c > 1:
            for g in range(dec.c):
                k = g % dec.m
                if k:
                    cols = slice(g * dec.b, (g + 1) * dec.b)
                    V[:, cols] = np.roll(V[:, cols], k, axis=0)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return V.ravel()


# ---------------------------------------------------------------------------
# Individual certificates
# ---------------------------------------------------------------------------

def _first_bad(mask: np.ndarray) -> str:
    """Human-readable location of the first failing entry of a bool mask."""
    idx = np.argwhere(~mask)
    return f"first failure at index {tuple(int(v) for v in idx[0])}" if idx.size else ""


def _perm_rows(mat: np.ndarray, hi: int) -> np.ndarray:
    """Per-row permutation mask: row ``i`` is a permutation of ``[0, hi)``."""
    return (np.sort(mat, axis=1) == np.arange(hi, dtype=np.int64)).all(axis=1)


def _perm_cols(mat: np.ndarray, hi: int) -> np.ndarray:
    """Per-column permutation mask: col ``j`` permutes ``[0, hi)``."""
    return (np.sort(mat, axis=0) == np.arange(hi, dtype=np.int64)[:, None]).all(axis=0)


def _check_decomposition(dec: Decomposition) -> list[Check]:
    ok = (
        dec.c == math.gcd(dec.m, dec.n)
        and dec.m == dec.a * dec.c
        and dec.n == dec.b * dec.c
        and math.gcd(dec.a, dec.b) == 1
    )
    checks = [
        Check(
            "decomposition",
            ok,
            "" if ok else f"c={dec.c}, a={dec.a}, b={dec.b} inconsistent",
        )
    ]
    a_inv = mmi(dec.a, dec.b)
    b_inv = mmi(dec.b, dec.a)
    checks.append(
        Check(
            "mmi-certificates",
            (dec.a * a_inv) % dec.b == 1 % dec.b
            and (dec.b * b_inv) % dec.a == 1 % dec.a,
            f"mmi(a,b)={a_inv}, mmi(b,a)={b_inv}",
        )
    )
    return checks


def _check_bijectivity(dec: Decomposition, grids: dict[str, np.ndarray]) -> list[Check]:
    m, n = dec.m, dec.n
    checks = []

    # Pre-rotation (Eq. 23): each column group rotates by a constant; verify
    # every distinct shift is a permutation of [0, m).  O(m) per shift.
    shifts = {g % m for g in range(dec.c)}
    rot_ok = all(
        np.array_equal(
            np.sort((np.arange(m, dtype=np.int64) + k) % m), np.arange(m)
        )
        for k in shifts
    )
    checks.append(Check("prerotate-bijective", rot_ok, f"{len(shifts)} distinct shifts"))

    row_mask = _perm_rows(grids["dprime"], n)
    checks.append(
        Check("rowshuffle-bijective", bool(row_mask.all()),
              "" if row_mask.all() else f"row {int(np.argmin(row_mask))} not a permutation")
    )

    col_mask = _perm_cols(grids["sprime"], m)
    checks.append(
        Check("colshuffle-bijective", bool(col_mask.all()),
              "" if col_mask.all() else f"column {int(np.argmin(col_mask))} not a permutation")
    )

    q = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
    checks.append(
        Check("permute-q-bijective", bool(np.array_equal(np.sort(q), np.arange(m))))
    )

    # Eq. 32-33 split: the column shuffle factors into the static
    # permutation q followed by the rotation p_j: s'_j(i) == p_j(q(i))
    # (as scatter maps; the gather composition order reverses).
    i, j = grids["i"], grids["j"]
    split = eq.rotate_p_v(dec, eq.permute_q_v(dec, i), j)
    split_ok = np.array_equal(split, grids["sprime"])
    checks.append(
        Check("rotation-split", split_ok,
              "" if split_ok else _first_bad(split == grids["sprime"]))
    )
    return checks


def _check_inversion(dec: Decomposition, grids: dict[str, np.ndarray]) -> list[Check]:
    m, n = dec.m, dec.n
    i, j = grids["i"], grids["j"]
    checks = []

    # Eq. 24 composed with Eq. 31 == identity, per row.  Theorem 3 plus a
    # one-sided identity proves full two-sided inversion.
    comp = eq.dprime_v(dec, i, grids["dprime_inv"])
    ok = np.array_equal(comp, np.broadcast_to(j, comp.shape))
    checks.append(
        Check("dprime-inversion", ok, "" if ok else _first_bad(comp == j))
    )

    iv = np.arange(m, dtype=np.int64)
    q_comp = eq.permute_q_v(dec, eq.permute_q_inverse_v(dec, iv))
    checks.append(Check("q-inversion", bool(np.array_equal(q_comp, iv))))

    rot = eq.rotate_r_inverse_v(dec, eq.rotate_r_v(dec, i, j), j)
    checks.append(
        Check("prerotate-inversion", bool(np.array_equal(rot, np.broadcast_to(i, rot.shape))))
    )

    # Fused inverse column shuffle (R2C pass 1): s'_j(s'^{-1}_j(i)) == i.
    sinv = eq.sprime_inverse_v(dec, i, j)
    s_comp = eq.sprime_v(dec, sinv, j)
    ok = np.array_equal(s_comp, np.broadcast_to(i, s_comp.shape))
    checks.append(
        Check("sprime-inversion", ok, "" if ok else _first_bad(s_comp == i))
    )
    return checks


def _check_composition(dec: Decomposition) -> list[Check]:
    m, n = dec.m, dec.n
    expected = transposition_source_map(m, n)
    checks = []
    for algorithm in ("c2r", "r2c"):
        got = composed_source_map(m, n, algorithm)
        ok = np.array_equal(got, expected)
        detail = ""
        if not ok:
            bad = int(np.argmin(got == expected))
            detail = f"flat index {bad}: got source {int(got[bad])}, want {int(expected[bad])}"
        checks.append(Check(f"composition-{algorithm}", ok, detail))
    return checks


def _check_plan_objects(m: int, n: int) -> list[Check]:
    """Cross-check that built :class:`TransposePlan` objects realize the
    verified permutation (catches plan-construction drift, not just equation
    drift)."""
    from ..core.plan import TransposePlan

    checks = []
    l = np.arange(m * n, dtype=np.int64)
    expected = {
        "C": transposition_source_map(m, n),
        # Column-major m x n is byte-identical to row-major n x m.
        "F": (l // n) + (l % n) * m,
    }
    for order in ("C", "F"):
        for algorithm in ("c2r", "r2c"):
            buf = np.arange(m * n, dtype=np.int64)
            TransposePlan(m, n, order, algorithm).execute(buf)
            ok = np.array_equal(buf, expected[order])
            checks.append(
                Check(
                    f"plan-object-{order}-{algorithm}",
                    ok,
                    "" if ok else "executed plan deviates from verified permutation",
                )
            )
    return checks


def _check_fastdiv(dec: Decomposition) -> list[Check]:
    """Magic-number division agrees with exact ``//``/``%`` everywhere the
    plan's equations can reach, and at the 31-bit exactness boundary."""
    m, n = dec.m, dec.n
    checks = []
    try:
        red = ReducedEquations(dec)
    except ValueError as exc:
        return [Check("fastdiv-range", True, f"skipped: {exc}")]

    # Exact agreement of the reduced evaluators with the reference equations
    # over the whole index grid.
    i = np.arange(m, dtype=np.int64)[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    pairs = [
        ("fastdiv-dprime-inverse", red.dprime_inverse(i, j), eq.dprime_inverse_v(dec, i, j)),
        ("fastdiv-sprime", red.sprime(i, j), eq.sprime_v(dec, i, j)),
        ("fastdiv-dprime", red.dprime(i, j), eq.dprime_v(dec, i, j)),
        ("fastdiv-rotate-r", red.rotate_r(i, j), eq.rotate_r_v(dec, i, j)),
        ("fastdiv-permute-q", red.permute_q(i[:, 0]), eq.permute_q_v(dec, i[:, 0])),
    ]
    for name, got, want in pairs:
        ok = np.array_equal(got, want)
        checks.append(Check(name, ok, "" if ok else _first_bad(got == want)))

    # Exhaustive operand-range check: every div/mod operand the reduced
    # equations generate for this shape lies in [0, m*n + m), so checking
    # each divider over that full range covers every reachable input.
    hi = m * n + m
    x = np.arange(hi, dtype=np.int64)
    dividers = {"m": red._dm, "n": red._dn, "a": red._da, "b": red._db, "c": red._dc}
    for label, fd in dividers.items():
        d = fd.divisor
        ok = bool(
            np.array_equal(fd.div(x), x // d) and np.array_equal(fd.mod(x), x % d)
        )
        checks.append(
            Check(f"fastdiv-exhaustive-{label}", ok,
                  "" if ok else f"divisor {d} disagrees with exact //,% below {hi}")
        )

    # Boundary probe at the top of the 31-bit guarantee: adversarial points
    # (multiples of d and their neighbours near 2**31 - 1) through the scalar
    # magic-number path.
    xmax = 2**31 - 1
    bad = []
    for d in sorted({m, n, dec.a, dec.b, dec.c}):
        magic = compute_magic(d)
        qtop = xmax // d
        probes = {0, 1, d - 1, d, d + 1, xmax, xmax - 1,
                  qtop * d, qtop * d - 1, min(qtop * d + d - 1, xmax)}
        for xv in probes:
            if 0 <= xv <= xmax and magic.divide(xv) != xv // d:
                bad.append((d, xv))
    checks.append(
        Check("fastdiv-boundary", not bad,
              "" if not bad else f"divisor/operand failures: {bad[:3]}")
    )
    return checks


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def verify_shape(m: int, n: int, *, fastdiv: bool = True, plan_objects: bool = True) -> ShapeReport:
    """Run every certificate for one shape.  Pure index arithmetic."""
    dec = Decomposition.of(m, n)
    i = np.arange(m, dtype=np.int64)[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    grids = {
        "i": i,
        "j": j,
        "dprime": eq.dprime_v(dec, i, j),
        "dprime_inv": eq.dprime_inverse_v(dec, i, j),
        "sprime": eq.sprime_v(dec, i, j),
    }
    report = ShapeReport(m=m, n=n)
    report.checks += _check_decomposition(dec)
    report.checks += _check_bijectivity(dec, grids)
    report.checks += _check_inversion(dec, grids)
    report.checks += _check_composition(dec)
    if plan_objects:
        report.checks += _check_plan_objects(m, n)
    if fastdiv:
        report.checks += _check_fastdiv(dec)
    return report


def verify_lattice(
    m_max: int,
    n_max: int,
    *,
    fastdiv: bool = True,
    plan_objects: bool = False,
    progress=None,
    max_failures: int = 25,
) -> LatticeReport:
    """Sweep every shape in ``[1, m_max] x [1, n_max]`` through the verifier.

    ``plan_objects`` is off by default for the sweep (it builds four plans
    per shape; the raw-equation composition check proves the same identity).
    ``progress`` is an optional callable taking ``(done, total)``.
    """
    t0 = perf_counter()
    report = LatticeReport(m_max=m_max, n_max=n_max)
    total = m_max * n_max
    for m in range(1, m_max + 1):
        for n in range(1, n_max + 1):
            shape = verify_shape(m, n, fastdiv=fastdiv, plan_objects=plan_objects)
            report.shapes += 1
            report.checks += len(shape.checks)
            if not shape.ok and len(report.failures) < max_failures:
                report.failures.append(shape.as_dict())
        if progress is not None:
            progress(report.shapes, total)
    report.seconds = perf_counter() - t0
    return report
