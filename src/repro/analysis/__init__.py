"""Static analysis for the decomposition: prove plans before they run.

The paper's index maps are closed-form modular arithmetic, which makes
correctness *statically decidable* — this package exploits that three ways:

``repro.analysis.algebra``
    A symbolic permutation verifier: bijectivity of every pass, exact
    gather/scatter inversion (Eq. 31/34 against Eq. 24/33), the Eq. 32-33
    rotation/static-permutation split, whole-plan composition against the
    transposition permutation, and magic-number division cross-checked
    against exact ``//``/``%`` over the full reachable operand range.

``repro.analysis.racecheck``
    A static race detector proving per-chunk write footprints of the
    parallel schedules are pairwise disjoint and cover the matrix, plus an
    opt-in shadow-memory sanitizer (``REPRO_SANITIZE=1``) that tracks
    writes-per-element-per-pass and read-after-clobber hazards during real
    plan execution.

``repro.analysis.lint``
    An AST lint pass enforcing repo invariants: strength-reduced hot paths,
    no implicit-copy reshape/ravel in execution paths, contiguity guards at
    public entry points, and lock discipline in ``repro.runtime``.

``repro.analysis.driver``
    ``repro analyze`` — the lattice sweep + lint, emitted as a JSON report
    and gated in CI.

See ``docs/ANALYSIS.md`` for the guarantees and the suppression syntax.
"""

from .algebra import (
    Check,
    LatticeReport,
    ShapeReport,
    composed_source_map,
    transposition_source_map,
    verify_lattice,
    verify_shape,
)
from .driver import analyze
from .lint import LintViolation, run_lint
from .racecheck import (
    RaceReport,
    Sanitizer,
    SanitizerError,
    check_partition,
    check_schedule,
    sanitizer,
    schedule_footprints,
)

__all__ = [
    "Check",
    "ShapeReport",
    "LatticeReport",
    "transposition_source_map",
    "composed_source_map",
    "verify_shape",
    "verify_lattice",
    "RaceReport",
    "check_partition",
    "check_schedule",
    "schedule_footprints",
    "Sanitizer",
    "SanitizerError",
    "sanitizer",
    "LintViolation",
    "run_lint",
    "analyze",
]
