"""The ``repro analyze`` driver: shape-lattice verification + lint, as JSON.

Assembles the analysis layers into one machine-readable report:

* :mod:`repro.analysis.algebra` over every shape in the lattice
  (bijectivity, inversion, composition, fastdiv agreement),
* :mod:`repro.analysis.racecheck` static schedules for each shape at a
  sweep of thread counts (partition tiling, write disjointness, coverage),
  including the multiprocess shared-memory and banded sub-range schedules,
* :mod:`repro.analysis.lint` over the package source,
* optionally :mod:`repro.analysis.kernelcheck` — abstract interpretation of
  the generated native kernels (``native=True``) — and the codegen
  mutation-testing harness (``mutation=True``).

The report's top-level ``ok`` is the CI gate: any verifier failure or lint
violation flips it to ``false``.
"""

from __future__ import annotations

from time import perf_counter

from . import algebra, lint, racecheck

__all__ = ["DEFAULT_THREAD_COUNTS", "DEFAULT_BAND_COUNTS", "analyze"]

DEFAULT_THREAD_COUNTS = (1, 2, 4, 8)

#: band counts for the banded-schedule leg of the race sweep (the
#: out-of-core resident-window shapes worth proving per shape)
DEFAULT_BAND_COUNTS = (2, 3)


def _racecheck_sweep(
    m_max: int,
    n_max: int,
    thread_counts,
    band_counts=DEFAULT_BAND_COUNTS,
    max_failures: int = 25,
) -> dict:
    t0 = perf_counter()
    schedules = 0
    failures: list[dict] = []

    def _tally(report) -> None:
        nonlocal schedules
        schedules += 1
        if not report.ok and len(failures) < max_failures:
            failures.append(report.as_dict())

    for m in range(1, m_max + 1):
        for n in range(1, n_max + 1):
            for threads in thread_counts:
                # Both pass structures run for every shape regardless of the
                # dispatch heuristic, so both must be race-free everywhere.
                for algorithm in ("c2r", "r2c"):
                    _tally(racecheck.check_schedule(m, n, threads, algorithm))
                    _tally(racecheck.check_mp_schedule(m, n, threads, algorithm))
                    for bands in band_counts:
                        _tally(
                            racecheck.check_banded_schedule(
                                m, n, bands, threads, algorithm
                            )
                        )
    return {
        "m_max": m_max,
        "n_max": n_max,
        "thread_counts": list(thread_counts),
        "band_counts": list(band_counts),
        "schedules": schedules,
        "seconds": perf_counter() - t0,
        "ok": not failures,
        "failures": failures,
    }


def analyze(
    m_max: int = 64,
    n_max: int = 64,
    *,
    thread_counts=DEFAULT_THREAD_COUNTS,
    band_counts=DEFAULT_BAND_COUNTS,
    run_lint: bool = True,
    lint_root=None,
    fastdiv: bool = True,
    plan_objects: bool = False,
    native: bool = False,
    native_configs=None,
    mutation: bool = False,
    progress=None,
    message=None,
) -> dict:
    """Run the full static-analysis suite; returns a JSON-able report.

    ``m_max=0`` (with ``n_max=0``) skips the lattice and race sweep
    entirely — the kernelcheck-only invocation the native CI legs use.
    ``native=True`` abstractly interprets the generated C kernels for the
    CI config sweep (source-level: no compiler needed); ``mutation=True``
    additionally runs the codegen mutation-testing harness.  ``message``
    is an optional ``str -> None`` progress sink for the native sections.
    """
    t0 = perf_counter()
    lattice = algebra.verify_lattice(
        m_max, n_max, fastdiv=fastdiv, plan_objects=plan_objects, progress=progress
    )
    races = _racecheck_sweep(m_max, n_max, thread_counts, band_counts)
    report = {
        "lattice": lattice.as_dict(),
        "racecheck": races,
    }
    if run_lint:
        violations = lint.run_lint(lint_root)
        report["lint"] = {
            "violations": [v.as_dict() for v in violations],
            "ok": not violations,
        }
    if native:
        from . import kernelcheck

        report["kernelcheck"] = kernelcheck.verify_native(
            native_configs, progress=message
        ).as_dict()
    if mutation:
        from . import mutate

        report["mutation"] = mutate.run_mutation_harness(
            progress=message
        ).as_dict()
    report["sanitizer"] = racecheck.sanitizer.stats()
    report["seconds"] = perf_counter() - t0
    report["ok"] = all(
        section.get("ok", True)
        for section in (
            report["lattice"],
            report["racecheck"],
            report.get("lint", {}),
            report.get("kernelcheck", {}),
            report.get("mutation", {}),
        )
    )
    return report
