"""A checking interpreter for the C subset emitted by ``native.codegen``.

The native backend compiles generated C with a real toolchain and runs it
at memory speed — which is precisely when a bounds or fastdiv bug would
corrupt user data with no shadow-memory hook in the way.  This module
closes that gap *statically*: it parses the generated translation unit and
executes it abstractly, with every load and store routed through a checked
memory model.  No compiler is involved, so the same analysis runs on the
no-toolchain CI leg.

What the model checks on every memory operation:

- **Bounds**: each access must fall inside its backing allocation.
- **Liveness**: access after ``free`` and double ``free`` are faults.
- **Definedness**: reading a slot never written (or copied from one) is a
  fault — this is what catches "skipped a stripe" scheduling bugs.
- **Granularity**: each allocation is accessed at one element size, and
  accesses must be aligned to it; a mutated base offset that shears an
  element boundary faults instead of silently reinterpreting bytes.
- **Overlap**: ``memcpy`` with overlapping ranges is a fault (``memmove``
  is exempt, matching C).
- **Leaks**: scratch allocated during a call must be freed before it
  returns.
- **Termination**: a per-call step budget bounds loop iterations, so a
  mutant that turns a loop infinite is reported instead of hanging the
  analyzer.

Integer semantics are C-faithful where it matters: values cast to
``uint64_t``/``size_t`` live in a 64-bit wrapping domain (so a wrong magic
multiplier fails through genuine modular arithmetic, exactly as compiled
code would), signed casts wrap to their width, and ``/`` and ``%``
truncate toward zero.  Uncast signed arithmetic is exact — sound, because
the generated kernels keep signed intermediates below 2**63 by
construction and the 64-bit paths are all behind explicit casts.

Element *values* are opaque: buffers store provenance tokens (ints), and
the interpreter never does arithmetic on them.  Initialising a buffer with
the identity permutation therefore makes the final buffer contents *be*
the gather map the kernel computed — which is how
:mod:`repro.analysis.kernelcheck` compares compiled-C behaviour against
the Eq. 23-36 algebra.

Per-call element read/write footprints are recorded for buffers created
with ``track=True``; the kernel checker uses them to prove ``run_pass``
chunk rectangles disjoint.
"""

from __future__ import annotations

import re

__all__ = [
    "CInterp",
    "CBuffer",
    "MacroDef",
    "CInterpError",
    "CParseError",
    "CMemoryFault",
    "CBudgetExceeded",
    "DEFAULT_BUDGET",
]

#: default per-call step budget (loop iterations); generous for real
#: kernels over CI-sized shapes, small enough that a mutant-induced
#: infinite loop is reported in seconds.
DEFAULT_BUDGET = 100_000_000

_M64 = (1 << 64) - 1


class CInterpError(Exception):
    """Base class for every fault the interpreter can raise."""

    kind = "generic"

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.detail = message


class CParseError(CInterpError):
    """The source does not fit the supported C subset."""

    def __init__(self, message: str):
        super().__init__("parse", message)


class CMemoryFault(CInterpError):
    """A checked memory operation failed (oob, undef read, uaf, ...)."""


class CBudgetExceeded(CInterpError):
    """The per-call step budget ran out (non-terminating loop)."""

    def __init__(self, message: str):
        super().__init__("budget", message)


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Continue(Exception):
    pass


class _Break(Exception):
    pass


_UNINIT = object()
_UNDEF = object()


class UInt:
    """A value in the wrapping 64-bit unsigned domain."""

    __slots__ = ("v",)

    def __init__(self, v: int):
        self.v = v & _M64

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"UInt({self.v})"


def _uval(x) -> int:
    if x.__class__ is UInt:
        return x.v
    if x.__class__ is int:
        return x & _M64
    raise CInterpError("type", f"cannot convert {x!r} to unsigned")


def _ival(x) -> int:
    """Plain integer value of an arithmetic operand."""
    if x.__class__ is int:
        return x
    if x.__class__ is UInt:
        return x.v
    raise CInterpError("type", f"expected integer, got {x!r}")


class MemObject:
    """One allocation: a run of bytes accessed at a fixed granularity."""

    __slots__ = ("tag", "nbytes", "slot_size", "cells", "freed", "track")

    def __init__(self, tag: str, nbytes: int, *, slot_size=None, track=False):
        self.tag = tag
        self.nbytes = nbytes
        self.slot_size = slot_size
        self.cells: dict[int, object] = {}
        self.freed = False
        self.track = track


class Pointer:
    """A typed pointer: allocation + byte offset + element size."""

    __slots__ = ("obj", "off", "esize")

    def __init__(self, obj: MemObject, off: int, esize: int):
        self.obj = obj
        self.off = off
        self.esize = esize

    def shift(self, k: int) -> "Pointer":
        return Pointer(self.obj, self.off + k * self.esize, self.esize)

    def retag(self, esize: int) -> "Pointer":
        return Pointer(self.obj, self.off, esize)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{self.obj.tag}+{self.off} /{self.esize}>"


class CBuffer:
    """User-facing handle on an interpreter buffer."""

    def __init__(self, obj: MemObject, esize: int):
        self.obj = obj
        self.esize = esize

    @property
    def n_elems(self) -> int:
        return self.obj.nbytes // self.esize

    def ptr(self) -> Pointer:
        """A ``char *`` to the start (what the kernel entry points take)."""
        return Pointer(self.obj, 0, 1)

    def values(self) -> list:
        """Element values in order; ``None`` where never written."""
        cells = self.obj.cells
        return [
            None if (v := cells.get(i, _UNDEF)) is _UNDEF else v
            for i in range(self.n_elems)
        ]

    def fill_identity(self) -> None:
        self.obj.cells = {i: i for i in range(self.n_elems)}


class MacroDef:
    """A ``#define``: object-like (``params is None``) or function-like."""

    __slots__ = ("name", "params", "body", "raw")

    def __init__(self, name, params, body, raw):
        self.name = name
        self.params = params
        self.body = body
        self.raw = raw


# --------------------------------------------------------------------------
# lexing + preprocessing


_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|0[xX][0-9a-fA-F]+|\d+"
    r"|<<=|>>=|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|"
    r"|\+=|-=|\*=|/=|%=|&=|\|=|\^=|->"
    r"|[-+*/%(){}\[\];,?:<>=!&|^~.]"
    r"|\S"
)

_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)


def _tokenize(text: str) -> list[str]:
    toks = []
    pos = 0
    for mo in _TOKEN_RE.finditer(text):
        gap = text[pos : mo.start()]
        if gap.strip():
            raise CParseError(f"unexpected character(s) {gap.strip()!r}")
        pos = mo.end()
        toks.append(mo.group(0))
    # filter whitespace survivors (the regex only yields non-space)
    bad = [t for t in toks if not t.strip()]
    if bad:
        raise CParseError(f"bad tokens {bad!r}")
    return toks


def preprocess(source: str) -> tuple[list[str], dict[str, MacroDef]]:
    """Strip comments, collect ``#define`` macros, expand them, and return
    the expanded token stream plus the (unexpanded) macro table."""
    text = _COMMENT_RE.sub(" ", source)
    macros: dict[str, MacroDef] = {
        "NULL": MacroDef("NULL", None, ["0"], "#define NULL 0"),
        "INT64_C": MacroDef(
            "INT64_C", ["x"],
            ["(", "(", "int64_t", ")", "(", "x", ")", ")"],
            "#define INT64_C(x) ((int64_t)(x))",
        ),
        "UINT64_C": MacroDef(
            "UINT64_C", ["x"],
            ["(", "(", "uint64_t", ")", "(", "x", ")", ")"],
            "#define UINT64_C(x) ((uint64_t)(x))",
        ),
    }
    code_lines = []
    for line in text.splitlines():
        stripped = line.lstrip()
        if not stripped.startswith("#"):
            code_lines.append(line)
            continue
        body = stripped[1:].lstrip()
        if body.startswith("include"):
            continue
        if not body.startswith("define"):
            raise CParseError(f"unsupported directive {stripped.split()[0]!r}")
        rest = body[len("define"):].lstrip()
        mo = re.match(r"[A-Za-z_]\w*", rest)
        if mo is None:
            raise CParseError(f"malformed #define: {line!r}")
        name = mo.group(0)
        after = rest[mo.end():]
        if after.startswith("("):
            close = after.index(")")
            params = [p.strip() for p in after[1:close].split(",") if p.strip()]
            body_toks = _tokenize(after[close + 1:])
        else:
            params = None
            body_toks = _tokenize(after)
        macros[name] = MacroDef(name, params, body_toks, stripped)
    tokens = _tokenize("\n".join(code_lines))
    return _expand(tokens, macros, 0), macros


def _collect_args(tokens: list[str], i: int) -> tuple[list[list[str]], int]:
    """Parse macro-call arguments starting just past ``(``; returns the
    argument token lists and the index past the closing ``)``."""
    args: list[list[str]] = []
    cur: list[str] = []
    depth = 0
    while i < len(tokens):
        t = tokens[i]
        if t == "(":
            depth += 1
            cur.append(t)
        elif t == ")":
            if depth == 0:
                if cur or args:
                    args.append(cur)
                return args, i + 1
            depth -= 1
            cur.append(t)
        elif t == "," and depth == 0:
            args.append(cur)
            cur = []
        else:
            cur.append(t)
        i += 1
    raise CParseError("unterminated macro argument list")


def _expand(tokens: list[str], macros: dict[str, MacroDef], depth: int) -> list[str]:
    if depth > 40:
        raise CParseError("macro recursion too deep")
    out: list[str] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        m = macros.get(t)
        if m is None:
            out.append(t)
            i += 1
            continue
        if m.params is None:
            out.extend(_expand(m.body, macros, depth + 1))
            i += 1
            continue
        if i + 1 >= n or tokens[i + 1] != "(":
            out.append(t)
            i += 1
            continue
        args, j = _collect_args(tokens, i + 2)
        if len(args) != len(m.params):
            raise CParseError(
                f"macro {t} expects {len(m.params)} args, got {len(args)}"
            )
        sub_map = dict(zip(m.params, args))
        sub: list[str] = []
        for bt in m.body:
            arg = sub_map.get(bt)
            if arg is None:
                sub.append(bt)
            else:
                sub.extend(arg)
        out.extend(_expand(sub, macros, depth + 1))
        i = j
    return out


# --------------------------------------------------------------------------
# types

_BASE_SIZES = {
    "char": 1,
    "int8_t": 1,
    "uint8_t": 1,
    "int16_t": 2,
    "uint16_t": 2,
    "int": 4,
    "int32_t": 4,
    "uint32_t": 4,
    "int64_t": 8,
    "uint64_t": 8,
    "size_t": 8,
    "void": 1,
}

_UNSIGNED_TYPES = {"uint8_t", "uint16_t", "uint32_t", "uint64_t", "size_t"}
_QUALIFIERS = {"const", "static", "signed", "unsigned", "volatile", "register"}


def _wrap_signed(v: int, bits: int) -> int:
    mask = (1 << bits) - 1
    v &= mask
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


def _cdiv(a: int, b: int) -> int:
    if b == 0:
        raise CInterpError("div-by-zero", "integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _cmod(a: int, b: int) -> int:
    return a - _cdiv(a, b) * b


# --------------------------------------------------------------------------
# the interpreter


class _CFunc:
    __slots__ = ("name", "params", "body", "returns_value")

    def __init__(self, name, params, body, returns_value):
        self.name = name
        self.params = params
        self.body = body
        self.returns_value = returns_value


class CInterp:
    """Parse a generated translation unit and execute it abstractly.

    Parameters
    ----------
    source:
        The C text (e.g. ``KernelSpec.source``).
    itemsize:
        ``sizeof(elem_t)`` — the typedef the generated kernels key element
        motion on.
    budget:
        Default per-call loop-iteration budget; individual ``call``\\ s may
        override it.
    """

    def __init__(self, source: str, *, itemsize: int = 8,
                 budget: int = DEFAULT_BUDGET):
        self.sizes = dict(_BASE_SIZES)
        self.sizes["elem_t"] = itemsize
        self.sizes["repro_elem16_t"] = 16
        self.itemsize = itemsize
        self.default_budget = budget
        self.functions: dict[str, _CFunc] = {}
        self._steps = 0
        self._budget = budget
        self._live_allocs: dict[int, MemObject] = {}
        self._alloc_seq = 0
        self.reads: set[int] = set()
        self.writes: set[int] = set()
        tokens, self.macros = preprocess(source)
        _Parser(self, tokens).parse_translation_unit()

    # -- memory ------------------------------------------------------------

    def _fault(self, kind: str, message: str):
        raise CMemoryFault(kind, message)

    def new_buffer(self, n_elems: int, *, esize: int | None = None,
                   init: str = "identity", track: bool = True,
                   tag: str = "buffer") -> CBuffer:
        if esize is None:
            esize = self.itemsize
        obj = MemObject(tag, n_elems * esize, slot_size=esize, track=track)
        buf = CBuffer(obj, esize)
        if init == "identity":
            buf.fill_identity()
        elif init != "undef":
            raise ValueError(f"unknown init {init!r}")
        return buf

    def _malloc(self, size) -> Pointer:
        nbytes = _ival(size)
        if nbytes < 0:
            self._fault("oob", f"malloc of negative size {nbytes}")
        self._alloc_seq += 1
        obj = MemObject(f"malloc#{self._alloc_seq}", nbytes)
        self._live_allocs[id(obj)] = obj
        return Pointer(obj, 0, 1)

    def _free(self, ptr) -> None:
        if ptr.__class__ is not Pointer:
            if ptr == 0:  # free(NULL) is a no-op in C
                return
            self._fault("type", f"free of non-pointer {ptr!r}")
        if ptr.off != 0:
            self._fault("bad-free", f"free of interior pointer {ptr!r}")
        obj = ptr.obj
        if obj.freed:
            self._fault("double-free", f"double free of {obj.tag}")
        if id(obj) not in self._live_allocs:
            self._fault("bad-free", f"free of non-malloc object {obj.tag}")
        obj.freed = True
        del self._live_allocs[id(obj)]

    def _read_elem(self, ptr, idx):
        if ptr.__class__ is not Pointer:
            self._fault("type", f"load through non-pointer {ptr!r}")
        if idx.__class__ is not int:
            idx = _ival(idx)
        obj = ptr.obj
        esize = ptr.esize
        off = ptr.off + idx * esize
        if obj.freed:
            self._fault("use-after-free", f"load from freed {obj.tag}")
        if off < 0 or off + esize > obj.nbytes:
            self._fault(
                "oob",
                f"load at byte {off} (size {esize}) outside {obj.tag} "
                f"[0, {obj.nbytes})",
            )
        ss = obj.slot_size
        if ss is None or ss != esize or off % ss:
            if ss is None:
                self._fault("undef-read", f"load from unwritten {obj.tag}")
            self._fault(
                "misaligned",
                f"load of {esize}B at byte {off} from {obj.tag} written "
                f"at {ss}B granularity",
            )
        slot = off // ss
        v = obj.cells.get(slot, _UNDEF)
        if v is _UNDEF:
            self._fault(
                "undef-read",
                f"load of uninitialised element {slot} of {obj.tag}",
            )
        if obj.track:
            self.reads.add(slot)
        return v

    def _write_elem(self, ptr, idx, value):
        if ptr.__class__ is not Pointer:
            self._fault("type", f"store through non-pointer {ptr!r}")
        if idx.__class__ is not int:
            idx = _ival(idx)
        obj = ptr.obj
        esize = ptr.esize
        off = ptr.off + idx * esize
        if obj.freed:
            self._fault("use-after-free", f"store to freed {obj.tag}")
        if off < 0 or off + esize > obj.nbytes:
            self._fault(
                "oob",
                f"store at byte {off} (size {esize}) outside {obj.tag} "
                f"[0, {obj.nbytes})",
            )
        ss = obj.slot_size
        if ss is None:
            ss = obj.slot_size = esize
        if ss != esize or off % ss:
            self._fault(
                "misaligned",
                f"store of {esize}B at byte {off} to {obj.tag} accessed "
                f"at {ss}B granularity",
            )
        slot = off // ss
        obj.cells[slot] = value
        if obj.track:
            self.writes.add(slot)

    def _copy(self, dst, src, nbytes, *, allow_overlap: bool, what: str):
        if dst.__class__ is not Pointer or src.__class__ is not Pointer:
            self._fault("type", f"{what} with non-pointer argument")
        n = _ival(nbytes)
        if n < 0:
            self._fault("oob", f"{what} of negative size {n}")
        if n == 0:
            return
        sobj, soff = src.obj, src.off
        dobj, doff = dst.obj, dst.off
        for obj, off, mode in ((sobj, soff, "source"), (dobj, doff, "dest")):
            if obj.freed:
                self._fault("use-after-free", f"{what} {mode} {obj.tag} freed")
            if off < 0 or off + n > obj.nbytes:
                self._fault(
                    "oob",
                    f"{what} {mode} range [{off}, {off + n}) outside "
                    f"{obj.tag} [0, {obj.nbytes})",
                )
        ss = sobj.slot_size
        if ss is None:
            self._fault("undef-read", f"{what} from unwritten {sobj.tag}")
        if soff % ss or n % ss:
            self._fault(
                "misaligned",
                f"{what} of {n}B at byte {soff} shears {sobj.tag}'s "
                f"{ss}B elements",
            )
        if dobj.slot_size is None:
            dobj.slot_size = ss
        if dobj.slot_size != ss or doff % ss:
            self._fault(
                "misaligned",
                f"{what} of {ss}B elements at byte {doff} into {dobj.tag} "
                f"accessed at {dobj.slot_size}B granularity",
            )
        if (
            not allow_overlap
            and dobj is sobj
            and soff < doff + n
            and doff < soff + n
        ):
            self._fault(
                "overlap",
                f"memcpy ranges [{soff}, {soff + n}) and [{doff}, "
                f"{doff + n}) of {sobj.tag} overlap",
            )
        count = n // ss
        si = soff // ss
        di = doff // ss
        scells = sobj.cells
        vals = []
        for k in range(count):
            v = scells.get(si + k, _UNDEF)
            if v is _UNDEF:
                self._fault(
                    "undef-read",
                    f"{what} reads uninitialised element {si + k} of "
                    f"{sobj.tag}",
                )
            vals.append(v)
        dcells = dobj.cells
        for k in range(count):
            dcells[di + k] = vals[k]
        if sobj.track:
            self.reads.update(range(si, si + count))
        if dobj.track:
            self.writes.update(range(di, di + count))

    # -- execution ---------------------------------------------------------

    def _tick(self):
        self._steps += 1
        if self._steps > self._budget:
            raise CBudgetExceeded(
                f"step budget of {self._budget} loop iterations exceeded "
                "(non-terminating loop?)"
            )

    def call(self, name: str, *args, budget: int | None = None):
        """Run exported function ``name``; returns its value (or ``None``).

        Resets the step counter and footprint sets, and checks that every
        allocation made during the call was freed before it returned.
        ``CBuffer`` arguments are passed as ``char *`` to the buffer start.
        """
        fn = self.functions.get(name)
        if fn is None:
            raise CInterpError("link", f"no function named {name!r}")
        if len(args) != len(fn.params):
            raise CInterpError(
                "link",
                f"{name} takes {len(fn.params)} args, got {len(args)}",
            )
        self._steps = 0
        self._budget = self.default_budget if budget is None else budget
        self.reads = set()
        self.writes = set()
        before = dict(self._live_allocs)
        cargs = [a.ptr() if isinstance(a, CBuffer) else a for a in args]
        value = self._invoke(fn, cargs)
        leaked = [o for i, o in self._live_allocs.items() if i not in before]
        if leaked:
            tags = ", ".join(o.tag for o in leaked)
            self._fault("leak", f"{name} returned without freeing {tags}")
        return value

    def _invoke(self, fn: _CFunc, args):
        env = dict(zip(fn.params, args))
        try:
            fn.body(env)
        except _Return as r:
            return r.value
        if fn.returns_value:
            raise CInterpError(
                "type", f"{fn.name} fell off the end without returning"
            )
        return None


# --------------------------------------------------------------------------
# parsing straight to closures


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class _Parser:
    def __init__(self, interp: CInterp, tokens: list[str]):
        self.it = interp
        self.toks = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, ahead: int = 0):
        i = self.pos + ahead
        return self.toks[i] if i < len(self.toks) else None

    def next(self):
        t = self.peek()
        if t is None:
            raise CParseError("unexpected end of input")
        self.pos += 1
        return t

    def expect(self, tok: str):
        t = self.next()
        if t != tok:
            ctx = " ".join(self.toks[max(0, self.pos - 6): self.pos + 4])
            raise CParseError(f"expected {tok!r}, got {t!r} near ...{ctx}...")
        return t

    def _is_type_token(self, t) -> bool:
        return t is not None and (t in self.it.sizes or t in _QUALIFIERS)

    # -- top level ---------------------------------------------------------

    def parse_translation_unit(self):
        while self.peek() is not None:
            t = self.peek()
            if t == ";":
                self.next()
                continue
            if t == "typedef":
                self._skip_typedef()
                continue
            self._parse_function()

    def _skip_typedef(self):
        # ``typedef <anything, possibly with braces> name ;`` — the name is
        # registered so later declarations recognise it; struct bodies are
        # skipped wholesale and sized by the declared typedef target if
        # known, else conservatively by the last base type seen.
        self.expect("typedef")
        depth = 0
        toks = []
        while True:
            t = self.next()
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
            elif t == ";" and depth == 0:
                break
            toks.append(t)
        if not toks:
            raise CParseError("empty typedef")
        name = toks[-1]
        if name not in self.it.sizes:
            base = next((t for t in toks if t in self.it.sizes), None)
            if "{" in toks:
                # struct typedef: size = sum of member base sizes (fields
                # in the generated code are scalar members)
                size = sum(self.it.sizes[t] for t in toks if t in self.it.sizes)
                self.it.sizes[name] = max(1, size)
            elif base is not None:
                self.it.sizes[name] = self.it.sizes[base]
            else:
                raise CParseError(f"cannot size typedef {name!r}")

    def _parse_function(self):
        while self.peek() in _QUALIFIERS:
            self.next()
        ret = self.next()
        if ret not in self.it.sizes:
            raise CParseError(f"unknown return type {ret!r}")
        while self.peek() == "*":
            self.next()
        name = self.next()
        if not name[0].isalpha() and name[0] != "_":
            raise CParseError(f"bad function name {name!r}")
        self.expect("(")
        params = []
        if self.peek() == "void" and self.peek(1) == ")":
            self.next()
        while self.peek() != ")":
            while self.peek() in _QUALIFIERS:
                self.next()
            ptype = self.next()
            if ptype not in self.it.sizes:
                raise CParseError(f"unknown parameter type {ptype!r}")
            while self.peek() in _QUALIFIERS:
                self.next()
            while self.peek() == "*":
                self.next()
            params.append(self.next())
            if self.peek() == ",":
                self.next()
        self.expect(")")
        body = self._parse_block()
        self.it.functions[name] = _CFunc(name, params, body, ret != "void")

    # -- statements --------------------------------------------------------

    def _parse_block(self):
        self.expect("{")
        stmts = []
        while self.peek() != "}":
            stmts.append(self._parse_statement())
        self.expect("}")

        def run(env, _stmts=stmts):
            for s in _stmts:
                s(env)

        return run

    def _parse_statement(self):
        t = self.peek()
        if t == "{":
            return self._parse_block()
        if t == ";":
            self.next()
            return lambda env: None
        if t == "if":
            return self._parse_if()
        if t == "for":
            return self._parse_for()
        if t == "while":
            return self._parse_while()
        if t == "return":
            self.next()
            if self.peek() == ";":
                self.next()

                def ret_void(env):
                    raise _Return(None)

                return ret_void
            get, _ = self._parse_assign()
            self.expect(";")

            def ret(env, _g=get):
                raise _Return(_g(env))

            return ret
        if t == "continue":
            self.next()
            self.expect(";")

            def cont(env):
                raise _Continue

            return cont
        if t == "break":
            self.next()
            self.expect(";")

            def brk(env):
                raise _Break

            return brk
        if self._is_type_token(t) and not (
            t in self.it.sizes and self.peek(1) == "("
        ):
            return self._parse_declaration()
        get, _ = self._parse_assign()
        self.expect(";")

        def expr_stmt(env, _g=get):
            _g(env)

        return expr_stmt

    def _parse_declaration(self):
        while self.peek() in _QUALIFIERS:
            self.next()
        base = self.next()
        if base not in self.it.sizes:
            raise CParseError(f"unknown type {base!r} in declaration")
        setters = []
        while True:
            while self.peek() in _QUALIFIERS:
                self.next()
            while self.peek() == "*":
                self.next()
            name = self.next()
            if self.peek() == "=":
                self.next()
                init, _ = self._parse_assign()
                setters.append((name, init))
            else:
                setters.append((name, None))
            if self.peek() == ",":
                self.next()
                continue
            break
        self.expect(";")

        def run(env, _s=setters):
            for name, init in _s:
                env[name] = _UNINIT if init is None else init(env)

        return run

    def _parse_if(self):
        self.expect("if")
        self.expect("(")
        cond, _ = self._parse_assign()
        self.expect(")")
        then = self._parse_statement()
        if self.peek() == "else":
            self.next()
            other = self._parse_statement()
        else:
            other = None

        def run(env, _c=cond, _t=then, _e=other):
            if _truth(_c(env)):
                _t(env)
            elif _e is not None:
                _e(env)

        return run

    def _parse_for(self):
        self.expect("for")
        self.expect("(")
        if self.peek() == ";":
            init = None
            self.next()
        elif self._is_type_token(self.peek()):
            init = self._parse_declaration()  # consumes ';'
        else:
            init, _ = self._parse_assign()
            self.expect(";")
            init = (lambda env, _g=init: _g(env))
        if self.peek() == ";":
            cond = None
        else:
            cond, _ = self._parse_assign()
        self.expect(";")
        if self.peek() == ")":
            update = None
        else:
            update, _ = self._parse_assign()
        self.expect(")")
        body = self._parse_statement()
        tick = self.it._tick

        def run(env, _i=init, _c=cond, _u=update, _b=body, _t=tick):
            if _i is not None:
                _i(env)
            while _c is None or _truth(_c(env)):
                _t()
                try:
                    _b(env)
                except _Continue:
                    pass
                except _Break:
                    return
                if _u is not None:
                    _u(env)

        return run

    def _parse_while(self):
        self.expect("while")
        self.expect("(")
        cond, _ = self._parse_assign()
        self.expect(")")
        body = self._parse_statement()
        tick = self.it._tick

        def run(env, _c=cond, _b=body, _t=tick):
            while _truth(_c(env)):
                _t()
                try:
                    _b(env)
                except _Continue:
                    pass
                except _Break:
                    return

        return run

    # -- expressions -------------------------------------------------------
    # Each parse method returns ``(getter, setter-or-None)``.

    def _parse_assign(self):
        get, set_ = self._parse_ternary()
        t = self.peek()
        if t in _ASSIGN_OPS:
            if set_ is None:
                raise CParseError(f"left side of {t!r} is not assignable")
            self.next()
            rget, _ = self._parse_assign()
            if t == "=":

                def run(env, _s=set_, _r=rget):
                    v = _r(env)
                    _s(env, v)
                    return v

            else:
                op = _BINOPS[t[0]]

                def run(env, _g=get, _s=set_, _r=rget, _op=op):
                    v = _op(_g(env), _r(env))
                    _s(env, v)
                    return v

            return run, None
        return get, set_

    def _parse_ternary(self):
        cond, set_ = self._parse_binary(1)
        if self.peek() != "?":
            return cond, set_
        self.next()
        a, _ = self._parse_assign()
        self.expect(":")
        b, _ = self._parse_ternary()

        def run(env, _c=cond, _a=a, _b=b):
            return _a(env) if _truth(_c(env)) else _b(env)

        return run, None

    def _parse_binary(self, min_prec: int):
        get, set_ = self._parse_unary()
        while True:
            t = self.peek()
            prec = _PRECEDENCE.get(t, 0)
            if prec < min_prec:
                return get, set_
            self.next()
            if t == "&&":
                rhs, _ = self._parse_binary(prec + 1)

                def run(env, _l=get, _r=rhs):
                    return 1 if _truth(_l(env)) and _truth(_r(env)) else 0

            elif t == "||":
                rhs, _ = self._parse_binary(prec + 1)

                def run(env, _l=get, _r=rhs):
                    return 1 if _truth(_l(env)) or _truth(_r(env)) else 0

            else:
                rhs, _ = self._parse_binary(prec + 1)
                op = _BINOPS[t]

                def run(env, _l=get, _r=rhs, _op=op):
                    return _op(_l(env), _r(env))

            get, set_ = run, None

    def _parse_unary(self):
        t = self.peek()
        if t == "-":
            self.next()
            get, _ = self._parse_unary()

            def neg(env, _g=get):
                v = _g(env)
                if v.__class__ is UInt:
                    return UInt(-v.v)
                return -v

            return neg, None
        if t == "!":
            self.next()
            get, _ = self._parse_unary()
            return (lambda env, _g=get: 0 if _truth(_g(env)) else 1), None
        if t == "~":
            self.next()
            get, _ = self._parse_unary()

            def inv(env, _g=get):
                v = _g(env)
                if v.__class__ is UInt:
                    return UInt(~v.v)
                return ~v

            return inv, None
        if t == "*":
            self.next()
            get, _ = self._parse_unary()
            read = self.it._read_elem
            write = self.it._write_elem
            return (
                lambda env, _g=get, _r=read: _r(_g(env), 0),
                lambda env, val, _g=get, _w=write: _w(_g(env), 0, val),
            )
        if t in ("++", "--"):
            self.next()
            get, set_ = self._parse_unary()
            if set_ is None:
                raise CParseError(f"operand of {t} is not assignable")
            delta = 1 if t == "++" else -1

            def run(env, _g=get, _s=set_, _d=delta):
                v = _BINOPS["+"](_g(env), _d)
                _s(env, v)
                return v

            return run, None
        if t == "sizeof":
            self.next()
            self.expect("(")
            while self.peek() in _QUALIFIERS:
                self.next()
            tname = self.next()
            size = self.it.sizes.get(tname)
            if size is None:
                raise CParseError(f"sizeof of unknown type {tname!r}")
            while self.peek() == "*":
                self.next()
                size = 8
            self.expect(")")
            const = UInt(size)
            return (lambda env, _c=const: _c), None
        if t == "(" and self._is_type_token(self.peek(1)):
            return self._parse_cast()
        return self._parse_postfix()

    def _parse_cast(self):
        self.expect("(")
        while self.peek() in _QUALIFIERS:
            self.next()
        tname = self.next()
        if tname not in self.it.sizes:
            raise CParseError(f"cast to unknown type {tname!r}")
        stars = 0
        while self.peek() == "*":
            self.next()
            stars += 1
        self.expect(")")
        get, _ = self._parse_unary()
        if stars:
            esize = self.it.sizes[tname] if stars == 1 else 8

            def run(env, _g=get, _e=esize):
                v = _g(env)
                if v.__class__ is Pointer:
                    return v.retag(_e)
                if v == 0:
                    return 0  # null pointer constant
                raise CInterpError(
                    "type", f"cast of integer {v!r} to pointer"
                )

            return run, None
        size = self.it.sizes[tname]
        if tname in _UNSIGNED_TYPES:
            if size == 8:

                def run(env, _g=get):
                    return UInt(_uval(_g(env)))

            else:
                mask = (1 << (8 * size)) - 1

                def run(env, _g=get, _m=mask):
                    return _uval(_g(env)) & _m

        else:
            bits = 8 * size

            def run(env, _g=get, _b=bits):
                v = _g(env)
                if v.__class__ is UInt:
                    v = v.v
                elif v.__class__ is not int:
                    raise CInterpError(
                        "type", f"cast of {v!r} to integer"
                    )
                return _wrap_signed(v, _b)

        return run, None

    def _parse_postfix(self):
        get, set_ = self._parse_primary()
        while True:
            t = self.peek()
            if t == "[":
                self.next()
                idx, _ = self._parse_assign()
                self.expect("]")
                read = self.it._read_elem
                write = self.it._write_elem
                get, set_ = (
                    lambda env, _g=get, _i=idx, _r=read: _r(_g(env), _i(env)),
                    lambda env, val, _g=get, _i=idx, _w=write: _w(
                        _g(env), _i(env), val
                    ),
                )
            elif t in ("++", "--"):
                self.next()
                if set_ is None:
                    raise CParseError(f"operand of postfix {t} not assignable")
                delta = 1 if t == "++" else -1

                def run(env, _g=get, _s=set_, _d=delta):
                    v = _g(env)
                    _s(env, _BINOPS["+"](v, _d))
                    return v

                get, set_ = run, None
            else:
                return get, set_

    def _parse_primary(self):
        t = self.next()
        if t == "(":
            get, set_ = self._parse_assign()
            self.expect(")")
            return get, set_
        if t[0].isdigit():
            value = int(t, 0)
            return (lambda env, _v=value: _v), None
        if not (t[0].isalpha() or t[0] == "_"):
            raise CParseError(f"unexpected token {t!r}")
        if self.peek() == "(":
            return self._parse_call(t)
        name = t

        def get(env, _n=name):
            try:
                v = env[_n]
            except KeyError:
                raise CInterpError(
                    "unknown-identifier", f"use of undeclared {_n!r}"
                ) from None
            if v is _UNINIT:
                raise CInterpError(
                    "uninitialized", f"read of uninitialised {_n!r}"
                )
            return v

        def set_(env, val, _n=name):
            if _n not in env:
                raise CInterpError(
                    "unknown-identifier", f"assignment to undeclared {_n!r}"
                )
            env[_n] = val

        return get, set_

    def _parse_call(self, name: str):
        self.expect("(")
        args = []
        while self.peek() != ")":
            a, _ = self._parse_assign()
            args.append(a)
            if self.peek() == ",":
                self.next()
        self.expect(")")
        it = self.it
        if name == "malloc":
            if len(args) != 1:
                raise CParseError("malloc takes one argument")
            return (lambda env, _a=args[0]: it._malloc(_a(env))), None
        if name == "free":
            if len(args) != 1:
                raise CParseError("free takes one argument")

            def run_free(env, _a=args[0]):
                it._free(_a(env))
                return None

            return run_free, None
        if name in ("memcpy", "memmove"):
            if len(args) != 3:
                raise CParseError(f"{name} takes three arguments")
            overlap_ok = name == "memmove"

            def run_copy(env, _a=args, _o=overlap_ok, _n=name):
                dst = _a[0](env)
                it._copy(dst, _a[1](env), _a[2](env),
                         allow_overlap=_o, what=_n)
                return dst

            return run_copy, None

        def run_call(env, _n=name, _a=args):
            fn = it.functions.get(_n)
            if fn is None:
                raise CInterpError("link", f"call to undefined {_n!r}")
            if len(_a) != len(fn.params):
                raise CInterpError(
                    "link",
                    f"{_n} takes {len(fn.params)} args, got {len(_a)}",
                )
            return it._invoke(fn, [g(env) for g in _a])

        return run_call, None


# --------------------------------------------------------------------------
# operator semantics


def _truth(v) -> bool:
    cls = v.__class__
    if cls is int:
        return v != 0
    if cls is UInt:
        return v.v != 0
    if cls is Pointer:
        return True
    raise CInterpError("type", f"{v!r} used in boolean context")


def _op_add(a, b):
    ca, cb = a.__class__, b.__class__
    if ca is int and cb is int:
        return a + b
    if ca is Pointer:
        return a.shift(_ival(b))
    if cb is Pointer:
        return b.shift(_ival(a))
    return UInt(_uval(a) + _uval(b))


def _op_sub(a, b):
    ca, cb = a.__class__, b.__class__
    if ca is int and cb is int:
        return a - b
    if ca is Pointer:
        if cb is Pointer:
            if a.obj is not b.obj or a.esize != b.esize:
                raise CInterpError(
                    "type", "difference of unrelated pointers"
                )
            return (a.off - b.off) // a.esize
        return a.shift(-_ival(b))
    return UInt(_uval(a) - _uval(b))


def _op_mul(a, b):
    if a.__class__ is int and b.__class__ is int:
        return a * b
    return UInt(_uval(a) * _uval(b))


def _op_div(a, b):
    if a.__class__ is int and b.__class__ is int:
        return _cdiv(a, b)
    bb = _uval(b)
    if bb == 0:
        raise CInterpError("div-by-zero", "unsigned division by zero")
    return UInt(_uval(a) // bb)


def _op_mod(a, b):
    if a.__class__ is int and b.__class__ is int:
        if b == 0:
            raise CInterpError("div-by-zero", "modulo by zero")
        return _cmod(a, b)
    bb = _uval(b)
    if bb == 0:
        raise CInterpError("div-by-zero", "unsigned modulo by zero")
    return UInt(_uval(a) % bb)


def _op_shl(a, b):
    sh = _ival(b)
    if sh < 0 or sh > 63:
        raise CInterpError("shift", f"shift amount {sh} out of range")
    if a.__class__ is UInt:
        return UInt(a.v << sh)
    return a << sh


def _op_shr(a, b):
    sh = _ival(b)
    if sh < 0 or sh > 63:
        raise CInterpError("shift", f"shift amount {sh} out of range")
    if a.__class__ is UInt:
        return UInt(a.v >> sh)
    return a >> sh


def _cmp(a, b):
    """Three-way compare under C's usual arithmetic conversions."""
    ca, cb = a.__class__, b.__class__
    if ca is Pointer or cb is Pointer:
        # only pointer-vs-null and same-object comparisons occur
        if ca is Pointer and cb is Pointer:
            if a.obj is not b.obj:
                raise CInterpError("type", "comparison of unrelated pointers")
            return (a.off > b.off) - (a.off < b.off)
        ptr, other = (a, b) if ca is Pointer else (b, a)
        if _ival(other) != 0:
            raise CInterpError("type", "pointer compared to non-null int")
        return 1 if ca is Pointer else -1  # a live pointer is never NULL
    if ca is UInt or cb is UInt:
        av, bv = _uval(a), _uval(b)
    else:
        av, bv = a, b
    return (av > bv) - (av < bv)


def _op_eq(a, b):
    return 1 if _cmp(a, b) == 0 else 0


def _op_ne(a, b):
    return 1 if _cmp(a, b) != 0 else 0


def _op_lt(a, b):
    return 1 if _cmp(a, b) < 0 else 0


def _op_gt(a, b):
    return 1 if _cmp(a, b) > 0 else 0


def _op_le(a, b):
    return 1 if _cmp(a, b) <= 0 else 0


def _op_ge(a, b):
    return 1 if _cmp(a, b) >= 0 else 0


def _op_band(a, b):
    if a.__class__ is int and b.__class__ is int:
        return a & b
    return UInt(_uval(a) & _uval(b))


def _op_bor(a, b):
    if a.__class__ is int and b.__class__ is int:
        return a | b
    return UInt(_uval(a) | _uval(b))


def _op_bxor(a, b):
    if a.__class__ is int and b.__class__ is int:
        return a ^ b
    return UInt(_uval(a) ^ _uval(b))


_BINOPS = {
    "+": _op_add,
    "-": _op_sub,
    "*": _op_mul,
    "/": _op_div,
    "%": _op_mod,
    "<<": _op_shl,
    ">>": _op_shr,
    "==": _op_eq,
    "!=": _op_ne,
    "<": _op_lt,
    ">": _op_gt,
    "<=": _op_le,
    ">=": _op_ge,
    "&": _op_band,
    "|": _op_bor,
    "^": _op_bxor,
}

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
