"""Mutation-testing harness for the kernel verifier.

A verifier that never fails proves nothing.  This module demonstrates
that :mod:`repro.analysis.kernelcheck` has teeth: it takes the clean
translation units ``native.codegen`` emits, injects one deliberate fault
at a time — the fault classes below are the bug taxonomy of hand-written
index kernels (off-by-one loop bounds, wrong strength-reduction
constants, swapped bounds, undersized scratch, short copies, wrong pass
order) — and asserts the verifier flags **every** applied mutant while
the clean kernels pass.

Each fault class is a textual transform over the generated C.  A class
that finds no anchor in a particular kernel variant (e.g. the wide-rotate
copy fault in a narrow-rotate kernel) is *skipped* for that config, but
the harness fails unless at least :data:`MIN_CLASSES` distinct classes
were actually applied somewhere and every applied mutant was killed.

Fault constants are chosen to be genuinely wrong, not merely different:
a magic multiplier off by one can still lie inside the valid
Hacker's Delight multiplier window (the window width for ``nbits=31``
round-up constants is 1-2), which would make the mutant a correct
program no verifier should flag — so the multiplier fault doubles the
literal and the shift fault halves the effective denominator instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from time import perf_counter

from ..core.plan import TransposePlan
from ..native.codegen import generate_source
from .kernelcheck import verify_kernel

__all__ = [
    "FaultClass",
    "MutantResult",
    "MutationReport",
    "FAULT_CLASSES",
    "MUTATION_CONFIGS",
    "MIN_CLASSES",
    "run_mutation_harness",
]

#: the harness fails unless at least this many distinct fault classes
#: were applied (the acceptance bar for "the verifier has teeth")
MIN_CLASSES = 8

#: (m, n, order, algorithm, itemsize) kernel variants to mutate: both
#: algorithms, and both rotate code paths (narrow-group staged gather at
#: b*itemsize < 64, wide-group memcpy/memmove rotation at >= 64).
MUTATION_CONFIGS: tuple[tuple[int, int, str, str, int], ...] = (
    (12, 18, "C", "c2r", 8),
    (12, 18, "C", "r2c", 8),
    (12, 96, "C", "c2r", 8),
    (12, 96, "C", "r2c", 8),
)


def _sub_first(pattern: str, repl, source: str) -> str | None:
    """Apply ``pattern`` once; ``None`` when it finds no anchor."""
    out, count = re.subn(pattern, repl, source, count=1)
    if count == 0 or out == source:
        return None
    return out


def _bump(group: int, delta: int):
    def repl(mo: re.Match) -> str:
        parts = list(mo.groups())
        parts[group - 1] = str(int(parts[group - 1]) + delta)
        return "".join(parts)

    return repl


def _scale(group: int, factor: int, offset: int):
    def repl(mo: re.Match) -> str:
        parts = list(mo.groups())
        parts[group - 1] = str(int(parts[group - 1]) * factor + offset)
        return "".join(parts)

    return repl


def _swap_pass_order(source: str) -> str | None:
    """Swap the first two pass invocations inside ``repro_run``."""
    lines = source.split("\n")
    idx = [
        i for i, line in enumerate(lines)
        if line.startswith("  if (repro_pass_")
    ]
    if len(idx) < 2:
        return None
    a, b = idx[0], idx[1]
    lines[a], lines[b] = lines[b], lines[a]
    return "\n".join(lines)


def _shorten_driver_extent(source: str) -> str | None:
    """``repro_run``'s first pass call loses the last unit of its extent."""
    return _sub_first(
        r"(\(bufc, 0, INT64_C\()(\d+)(\)\)\) return 1;)",
        _bump(2, -1),
        source,
    )


@dataclass(frozen=True)
class FaultClass:
    """One injectable fault: a name, what it models, and the transform."""

    name: str
    description: str
    apply: object  # Callable[[str], str | None]


FAULT_CLASSES: tuple[FaultClass, ...] = (
    FaultClass(
        "loop-bound-off-by-one",
        "row loop runs one row past its upper bound (< becomes <=)",
        lambda src: _sub_first(
            r"for \(i = lo; i < hi; \+\+i\)",
            "for (i = lo; i <= hi; ++i)",
            src,
        ),
    ),
    FaultClass(
        "loop-start-off-by-one",
        "row loop skips its first row (lo becomes lo + 1)",
        lambda src: _sub_first(
            r"for \(i = lo; i < hi; \+\+i\)",
            "for (i = lo + 1; i < hi; ++i)",
            src,
        ),
    ),
    FaultClass(
        "wrong-magic-multiplier",
        "DIV_M's inlined reciprocal multiplier is a wrong literal",
        lambda src: _sub_first(
            r"(#define DIV_M\(x\) \(\(int64_t\)\(\(\(uint64_t\)\(x\) \* "
            r"UINT64_C\()(\d+)(\)\))",
            _scale(2, 2, 1),
            src,
        ),
    ),
    FaultClass(
        "wrong-magic-shift",
        "DIV_N's inlined reciprocal shift is one too small",
        lambda src: _sub_first(
            r"(#define DIV_N\(x\).*>> )(\d+)",
            _bump(2, -1),
            src,
        ),
    ),
    FaultClass(
        "wrong-mod-divisor",
        "MOD_C multiplies the quotient by the wrong divisor literal",
        lambda src: _sub_first(
            r"(#define MOD_C\(x\).*INT64_C\()(\d+)(\)\))",
            _bump(2, 1),
            src,
        ),
    ),
    FaultClass(
        "wrong-plan-constant",
        "the inlined B (group width) constant is off by one",
        lambda src: _sub_first(
            r"(#define B INT64_C\()(\d+)(\))",
            _bump(2, 1),
            src,
        ),
    ),
    FaultClass(
        "swapped-loop-bounds",
        "rotation group loop bounds swapped (runs zero iterations)",
        lambda src: (
            _sub_first(
                r"\(g = glo; g < ghi; \+\+g\)",
                "(g = ghi; g < glo; ++g)",
                src,
            )
            or _sub_first(
                r"\(g0 = glo; g0 < ghi; g0 \+= GBLK\)",
                "(g0 = ghi; g0 < glo; g0 += GBLK)",
                src,
            )
        ),
    ),
    FaultClass(
        "base-offset-off-by-one",
        "row base pointer shifted by one element",
        lambda src: _sub_first(
            r"elem_t \*row = V \+ i \* N;",
            "elem_t *row = V + i * N + 1;",
            src,
        ),
    ),
    FaultClass(
        "scratch-undersize",
        "row-shuffle scratch allocated one element short",
        lambda src: _sub_first(
            r"tmp = \(elem_t \*\) malloc\(\(size_t\)N \* sizeof\(elem_t\)\);",
            "tmp = (elem_t *) malloc((size_t)(N - 1) * sizeof(elem_t));",
            src,
        ),
    ),
    FaultClass(
        "gather-stride-off-by-one",
        "diagonal gather stride drops its +1 (reads a constant row)",
        lambda src: (
            _sub_first(r"p \+= w \+ 1;", "p += w;", src)
            or _sub_first(r"p \+= A \* w \+ 1;", "p += A * w;", src)
        ),
    ),
    FaultClass(
        "table-entry-off-by-one",
        "gather lookup table entries shifted by one",
        lambda src: (
            _sub_first(
                r"T\[r\] = \(int32_t\)\(u \+ rb\);",
                "T[r] = (int32_t)(u + rb + 1);",
                src,
            )
            or _sub_first(
                r"T\[j\] = \(int32_t\) t;",
                "T[j] = (int32_t) (t + 1);",
                src,
            )
        ),
    ),
    FaultClass(
        "short-copy",
        "wide-rotate staging copies B bytes instead of B elements",
        lambda src: _sub_first(
            r"memcpy\(tmp \+ i \* B, g0 \+ i \* rs, "
            r"\(size_t\)B \* sizeof\(elem_t\)\);",
            "memcpy(tmp + i * B, g0 + i * rs, (size_t)B * sizeof(char));",
            src,
        ),
    ),
    FaultClass(
        "band-origin-ignored",
        "banded addressing drops the band-origin rebase (the full-width "
        "wrappers pass origin 0, so only the banded certificate sees it)",
        lambda src: (
            _sub_first(
                r"elem_t \*dst = V \+ i \* rs \+ \(j0 - c0\);",
                "elem_t *dst = V + i * rs + j0;",
                src,
            )
            or _sub_first(
                r"elem_t \*dst = V \+ i \* rs \+ \(g0 - gband\) \* B;",
                "elem_t *dst = V + i * rs + g0 * B;",
                src,
            )
            or _sub_first(
                r"rotate_group\(V \+ \(g - gband\) \* B",
                "rotate_group(V + g * B",
                src,
            )
        ),
    ),
    FaultClass(
        "driver-extent-short",
        "repro_run drives its first pass one unit short",
        _shorten_driver_extent,
    ),
    FaultClass(
        "swapped-pass-order",
        "repro_run executes the first two passes in the wrong order",
        _swap_pass_order,
    ),
)


@dataclass
class MutantResult:
    """Outcome of one (fault class, kernel config) injection."""

    fault: str
    m: int
    n: int
    order: str
    algorithm: str
    itemsize: int
    killed: bool
    failed_checks: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "fault": self.fault,
            "m": self.m,
            "n": self.n,
            "order": self.order,
            "algorithm": self.algorithm,
            "itemsize": self.itemsize,
            "killed": self.killed,
            "failed_checks": self.failed_checks,
        }


@dataclass
class MutationReport:
    """Aggregate of a full harness run."""

    mutants: list[MutantResult] = field(default_factory=list)
    clean_failures: list[dict] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def applied(self) -> int:
        return len(self.mutants)

    @property
    def killed(self) -> int:
        return sum(1 for r in self.mutants if r.killed)

    @property
    def survivors(self) -> list[MutantResult]:
        return [r for r in self.mutants if not r.killed]

    @property
    def classes_applied(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.mutants:
            seen.setdefault(r.fault)
        return list(seen)

    @property
    def ok(self) -> bool:
        return (
            not self.clean_failures
            and not self.survivors
            and len(self.classes_applied) >= MIN_CLASSES
        )

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "applied": self.applied,
            "killed": self.killed,
            "classes_applied": self.classes_applied,
            "min_classes": MIN_CLASSES,
            "clean_failures": self.clean_failures,
            "survivors": [r.as_dict() for r in self.survivors],
            "seconds": round(self.seconds, 3),
        }


def run_mutation_harness(
    configs=None,
    *,
    fault_classes: tuple[FaultClass, ...] = FAULT_CLASSES,
    thread_counts: tuple[int, ...] = (2,),
    progress=None,
) -> MutationReport:
    """Inject every applicable fault into every config's kernel and check
    the verifier kills each mutant (and passes each clean kernel)."""
    start = perf_counter()
    if configs is None:
        configs = MUTATION_CONFIGS
    out = MutationReport()
    for m, n, order, algorithm, itemsize in configs:
        plan = TransposePlan(m, n, order=order, algorithm=algorithm)
        spec = generate_source(plan.dec, plan.algorithm, itemsize)
        clean = verify_kernel(
            m, n, order=order, algorithm=algorithm, itemsize=itemsize,
            source=spec.source, thread_counts=thread_counts,
        )
        if not clean.ok:
            out.clean_failures.append(
                {
                    "m": m, "n": n, "order": order,
                    "algorithm": algorithm, "itemsize": itemsize,
                    "failures": [c.as_dict() for c in clean.failures],
                }
            )
            continue
        for fc in fault_classes:
            mutated = fc.apply(spec.source)
            if mutated is None:
                continue
            rep = verify_kernel(
                m, n, order=order, algorithm=algorithm, itemsize=itemsize,
                source=mutated, thread_counts=thread_counts,
            )
            res = MutantResult(
                fault=fc.name,
                m=m, n=n, order=order, algorithm=plan.algorithm,
                itemsize=itemsize,
                killed=not rep.ok,
                failed_checks=[c.name for c in rep.failures],
            )
            out.mutants.append(res)
            if progress is not None:
                verdict = "killed" if res.killed else "SURVIVED"
                progress(
                    f"mutant {fc.name} on {m}x{n} {plan.algorithm}: {verdict}"
                    + (
                        f" by {', '.join(res.failed_checks)}"
                        if res.failed_checks
                        else ""
                    )
                )
    out.seconds = perf_counter() - start
    return out
