"""A thread-pool parallel-for — the OpenMP analogue for the CPU kernels.

Workers receive contiguous chunks (static schedule); a pass completes when
every chunk has (a barrier, like OpenMP's implicit barrier at the end of a
``parallel for``).

Failure semantics: the first chunk exception cancels every not-yet-started
sibling, waits for the in-flight ones to finish (so no worker is still
mutating the buffer when the caller sees the error), and surfaces as a
:class:`PassExecutionError` carrying the pass name and the failed chunk.
The buffer is half-permuted at that point — callers must not run any
subsequent pass over it.

numpy's copy/gather kernels release the GIL for non-trivially-sized
operations, so chunked passes overlap on real cores.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, CancelledError, ThreadPoolExecutor, wait
from typing import Callable

from .partition import balanced_chunks

__all__ = ["ParallelExecutor", "PassExecutionError", "default_worker_count"]

#: default cap on CLI-chosen worker counts — beyond this the passes are
#: memory-bound and extra workers only add scheduling noise
DEFAULT_WORKER_CAP = 8


def default_worker_count(cap: int = DEFAULT_WORKER_CAP) -> int:
    """``os.cpu_count()`` capped — the CLI-facing default parallelism."""
    return max(1, min(os.cpu_count() or 1, cap))


class PassExecutionError(RuntimeError):
    """One chunk of a parallel pass failed.

    By the time this propagates, no sibling chunk is still running — but
    the pass stopped mid-flight, so the buffer may be **half-permuted**.
    Callers must treat it as corrupt and not run subsequent passes.
    ``pass_name`` and ``chunk`` identify the failure; the original
    exception rides along as ``__cause__``.
    """

    def __init__(self, pass_name: str, chunk: slice, cause: BaseException):
        self.pass_name = pass_name
        self.chunk = chunk
        super().__init__(
            f"pass {pass_name!r} failed on chunk "
            f"[{chunk.start}:{chunk.stop}): {cause}"
        )


class ParallelExecutor:
    """A reusable pool executing chunked parallel-for loops.

    Use as a context manager (the pool shuts down on exit) or standalone;
    ``n_threads=1`` short-circuits to sequential execution with zero
    threading overhead, making single-thread baselines honest.
    """

    def __init__(self, n_threads: int):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self.n_threads = n_threads
        # The prefix names worker threads (repro-worker_0, ...), which the
        # structured tracer exports as Chrome-trace lane labels.
        self._pool = (
            ThreadPoolExecutor(
                max_workers=n_threads, thread_name_prefix="repro-worker"
            )
            if n_threads > 1
            else None
        )

    def parallel_for(
        self,
        total: int,
        body: Callable[[slice], None],
        *,
        name: str = "parallel_for",
    ) -> None:
        """Run ``body(chunk)`` over a balanced static partition of
        ``range(total)`` and wait for all chunks (barrier semantics).

        On failure: outstanding chunks are cancelled, in-flight ones run to
        completion, and the first failure (in chunk order) is raised as a
        :class:`PassExecutionError` tagged with ``name``.
        """
        chunks = balanced_chunks(total, self.n_threads)
        if self._pool is None or len(chunks) <= 1:
            for ch in chunks:
                try:
                    body(ch)
                except Exception as exc:
                    raise PassExecutionError(name, ch, exc) from exc
            return
        futures = [(self._pool.submit(body, ch), ch) for ch in chunks]
        done, not_done = wait(
            [f for f, _ in futures], return_when=FIRST_EXCEPTION
        )
        if not_done:
            # A chunk failed early: stop what has not started and let the
            # in-flight chunks finish so nothing mutates the buffer after
            # the error surfaces.
            for f in not_done:
                f.cancel()
            wait(not_done)
        first: tuple[slice, BaseException] | None = None
        for f, ch in futures:
            if f.cancelled():
                continue
            try:
                exc = f.exception()
            except CancelledError:  # cancelled between checks
                continue
            if exc is not None:
                first = (ch, exc)
                break
        if first is not None:
            ch, exc = first
            raise PassExecutionError(name, ch, exc) from exc

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
