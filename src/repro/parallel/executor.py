"""A thread-pool parallel-for — the OpenMP analogue for the CPU kernels.

Workers receive contiguous chunks (static schedule); a pass completes when
every chunk has (a barrier, like OpenMP's implicit barrier at the end of a
``parallel for``).  Exceptions raised in workers propagate to the caller.

numpy's copy/gather kernels release the GIL for non-trivially-sized
operations, so chunked passes overlap on real cores.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from .partition import balanced_chunks

__all__ = ["ParallelExecutor"]


class ParallelExecutor:
    """A reusable pool executing chunked parallel-for loops.

    Use as a context manager (the pool shuts down on exit) or standalone;
    ``n_threads=1`` short-circuits to sequential execution with zero
    threading overhead, making single-thread baselines honest.
    """

    def __init__(self, n_threads: int):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self.n_threads = n_threads
        # The prefix names worker threads (repro-worker_0, ...), which the
        # structured tracer exports as Chrome-trace lane labels.
        self._pool = (
            ThreadPoolExecutor(
                max_workers=n_threads, thread_name_prefix="repro-worker"
            )
            if n_threads > 1
            else None
        )

    def parallel_for(self, total: int, body: Callable[[slice], None]) -> None:
        """Run ``body(chunk)`` over a balanced static partition of
        ``range(total)`` and wait for all chunks (barrier semantics)."""
        chunks = balanced_chunks(total, self.n_threads)
        if self._pool is None or len(chunks) <= 1:
            for ch in chunks:
                body(ch)
            return
        futures = [self._pool.submit(body, ch) for ch in chunks]
        for fut in futures:
            fut.result()  # re-raises worker exceptions

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
