"""Static partitioning for the parallel passes.

Because every row/column permutation costs exactly the same, static
partitioning gives perfect load balance ("perfect load balancing due to the
regular structure of the decomposition", Section 1).  The chunker hands out
contiguous ranges whose sizes differ by at most one.
"""

from __future__ import annotations

__all__ = ["balanced_chunks"]


def balanced_chunks(total: int, parts: int) -> list[slice]:
    """Split ``range(total)`` into at most ``parts`` contiguous slices.

    Sizes differ by at most one; empty slices are never returned.

    >>> balanced_chunks(10, 3)
    [slice(0, 4, None), slice(4, 7, None), slice(7, 10, None)]
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if parts <= 0:
        raise ValueError("parts must be positive")
    parts = min(parts, total)
    if parts == 0:
        return []
    base, extra = divmod(total, parts)
    out: list[slice] = []
    start = 0
    for k in range(parts):
        size = base + (1 if k < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out
