"""Parallel CPU transposition (Section 5.1).

The decomposition's passes are embarrassingly parallel: every row (or
column) permutes independently, so a pass is a parallel-for over rows or
columns with *perfect static load balance* — the property the paper
contrasts with cycle-following algorithms, whose poorly distributed cycle
lengths thwart parallelization.

* :mod:`~repro.parallel.partition` — balanced static chunking.
* :mod:`~repro.parallel.executor` — the OpenMP-analogue thread-pool
  parallel-for (numpy releases the GIL on array copies, so threads overlap).
* :mod:`~repro.parallel.cpu` — the parallel in-place transpose used by the
  Table 1 / Fig. 3 benchmarks; ``backend="mp"`` selects the process pool.
* :mod:`~repro.parallel.mp` / :mod:`~repro.parallel.shm` — the multiprocess
  shared-memory backend: true parallel-for over pass chunks, descriptors
  (not closures) across the process boundary (docs/PARALLEL.md).
"""

from .cache_aware import CacheAwareParallelTranspose
from .cpu import ParallelTranspose, parallel_transpose_inplace
from .executor import ParallelExecutor, PassExecutionError, default_worker_count
from .partition import balanced_chunks

__all__ = [
    "ParallelExecutor",
    "ParallelTranspose",
    "PassExecutionError",
    "CacheAwareParallelTranspose",
    "balanced_chunks",
    "default_worker_count",
    "parallel_transpose_inplace",
]
