"""Parallel in-place CPU transpose (Section 5.1).

A direct parallelization of Algorithm 1, with the paper's two CPU
optimizations: a completely gather-based formulation (rows gather with
``d'^{-1}``, Eq. 31) and strength-reduced index arithmetic (Section 4.4,
via :class:`~repro.strength.reduced.ReducedEquations`).

Each pass is a chunked parallel-for over rows or columns; chunks touch
disjoint data, so passes need no locking — only the inter-pass barrier the
executor provides.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter

import numpy as np

from ..core import equations as eq
from ..core.indexing import Decomposition
from ..core.transpose import choose_algorithm
from ..strength.reduced import ReducedEquations
from .executor import ParallelExecutor

__all__ = [
    "ParallelTranspose",
    "parallel_transpose_inplace",
    "rotate_chunk",
    "row_gather_chunk",
    "col_gather_chunk",
    "pass_index_map",
]

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()

_metrics = None
_racecheck = None
_trace = None
_native_mod = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


def _tracer():
    """Lazily bind the process-wide structured tracer (repro.trace.spans)."""
    global _trace
    if _trace is None:
        from ..trace import spans

        _trace = spans
    return _trace.tracer


def _sanitizer():
    """Lazily bind the shadow-memory sanitizer (repro.analysis.racecheck)."""
    global _racecheck
    if _racecheck is None:
        from ..analysis import racecheck

        _racecheck = racecheck
    return _racecheck.sanitizer


def _native():
    """Lazily bind the compiled-kernel backend (repro.native)."""
    global _native_mod
    if _native_mod is None:
        from .. import native

        _native_mod = native
    return _native_mod


# -- chunk kernels -------------------------------------------------------------
#
# Module-level so both backends share one implementation: the thread backend
# calls them through closures over the live view, the process backend calls
# them from worker processes against a shared-memory attachment (functions at
# module scope are picklable by reference — descriptors, not closures, cross
# the process boundary).


def rotate_chunk(V: np.ndarray, dec: Decomposition, sign: int, groups: slice) -> None:
    """Rotate the column groups in ``groups`` by ``sign * (g mod m)``
    (Lemma 1: each group of b columns shares one rotation amount)."""
    m = dec.m
    for g in range(groups.start, groups.stop):
        k = g % m  # repro-lint: allow(raw-divmod) O(c) per-group setup, not per-element
        if k == 0:
            continue
        cols = slice(g * dec.b, (g + 1) * dec.b)
        V[:, cols] = np.roll(V[:, cols], sign * k, axis=0)


def row_gather_chunk(V: np.ndarray, dec: Decomposition, index_map, rows: slice) -> None:
    """Gather the rows in ``rows`` along axis 1 with ``index_map(i, cols)``."""
    i = np.arange(rows.start, rows.stop, dtype=np.int64)[:, None]
    cols = np.arange(dec.n, dtype=np.int64)[None, :]
    idx = index_map(i, cols)
    V[rows] = np.take_along_axis(V[rows], idx, axis=1)


def col_gather_chunk(V: np.ndarray, dec: Decomposition, index_map, cols: slice) -> None:
    """Gather the columns in ``cols`` along axis 0 with ``index_map(rows, j)``."""
    rows = np.arange(dec.m, dtype=np.int64)[:, None]
    j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
    idx = index_map(rows, j)
    V[:, cols] = np.take_along_axis(V[:, cols], idx, axis=0)


def pass_index_map(name: str, dec: Decomposition, red: ReducedEquations | None):
    """Resolve the gather index map for a named pass (Eqs. 26/31).

    Keyed by pass *name* so a worker process can rebuild the map from a
    descriptor instead of unpickling a closure over live numpy state.
    """
    if name == "row_shuffle":
        if red is not None:
            return red.dprime_inverse
        return lambda i, j: eq.dprime_inverse_v(dec, i, j)
    if name == "row_shuffle_r2c":
        if red is not None:
            return red.dprime
        return lambda i, j: eq.dprime_v(dec, i, j)
    if name == "column_shuffle":
        if red is not None:
            return red.sprime
        return lambda i, j: eq.sprime_v(dec, i, j)
    if name == "inverse_column_shuffle":
        return lambda i, j: eq.sprime_inverse_v(dec, i, j)
    raise ValueError(f"no index map for pass {name!r}")


class ParallelTranspose:
    """A reusable parallel transposer bound to a worker count.

    Parameters
    ----------
    n_threads:
        Worker count (1 = the sequential baseline of Table 1).
    strength_reduced:
        Use fixed-point-reciprocal index math (on by default, as in the
        paper's CPU implementation); falls back to plain ``//``/``%`` for
        shapes outside the reduced range.
    backend:
        ``"threads"`` (default) runs chunks on a thread pool — real overlap
        only while numpy's gather kernels release the GIL.  ``"mp"`` runs
        chunks in a persistent process pool against a shared-memory copy of
        the buffer (see :mod:`repro.parallel.mp`): true parallel-for, at
        the cost of one staging copy in and one out.
    start_method:
        mp backend only — multiprocessing start method override (defaults
        to forkserver where available; see ``REPRO_MP_START``).
    native:
        ``"auto"`` (default) runs each chunk through the compiled per-plan
        kernel of :mod:`repro.native` when one is available — the ctypes
        calls release the GIL for their whole duration, so the thread
        backend gets true pass-level parallelism instead of relying on
        numpy's partial GIL releases.  ``"off"`` keeps every chunk on the
        numpy gathers.  The mp backend and the sanitizer always use numpy
        (worker processes rebuild plans themselves; the sanitizer must see
        every index).
    """

    def __init__(
        self,
        n_threads: int = 1,
        *,
        strength_reduced: bool = True,
        backend: str = "threads",
        start_method: str | None = None,
        native: str = "auto",
    ):
        if backend not in ("threads", "mp"):
            raise ValueError(f"unknown backend {backend!r}; use 'threads' or 'mp'")
        if native not in ("auto", "off"):
            raise ValueError(f"unknown native mode {native!r}; use 'auto' or 'off'")
        self.n_threads = int(n_threads)
        self.backend = backend
        self.strength_reduced = strength_reduced
        self.native = native
        if backend == "mp":
            from .mp import MpTranspose

            self._mp: "MpTranspose | None" = MpTranspose(
                n_threads,
                strength_reduced=strength_reduced,
                start_method=start_method,
            )
            self.executor = None
        else:
            self._mp = None
            self.executor = ParallelExecutor(n_threads)

    # -- index-map helpers ---------------------------------------------------

    def _reduced(self, dec: Decomposition) -> ReducedEquations | None:
        if not self.strength_reduced:
            return None
        try:
            return ReducedEquations(dec)
        except ValueError:
            return None

    def _native_chunks(self, buf: np.ndarray, m: int, n: int, algorithm: str):
        """Per-pass native chunk runners for this shape, or ``None``.

        Resolves the compiled kernel through the plan cache entry of the
        *single-matrix* plan equivalent to this parallel call (same folding:
        ``c2r(buf, m, n)`` matches plan ``(m, n, "C", "c2r")``;
        ``r2c(buf, m, n)`` matches plan ``(n, m, "C", "r2c")``), so the
        artifact and its byte accounting are shared with the serial path.
        Returns ``{parallel_pass_name: callable(lo, hi)}`` covering the same
        chunk axes the numpy bodies use.
        """
        if self.native == "off" or self._mp is not None:
            return None
        if _sanitizer().enabled:
            return None
        native = _native()
        if not native.enabled():
            return None
        if buf.shape[0] < native.min_elems():
            return None
        from ..runtime import plan_cache

        if algorithm == "c2r":
            plan = plan_cache.get_single_plan(m, n, "C", "c2r", buf.dtype)
        else:
            plan = plan_cache.get_single_plan(n, m, "C", "r2c", buf.dtype)
        kernel = native.kernel_for_plan(plan, buf.dtype.itemsize)
        if kernel is None:
            return None
        addr = buf.ctypes.data

        def runner(idx):
            return lambda lo, hi: kernel.run_pass(idx, addr, lo, hi)

        return {p.parallel_name: runner(i) for i, p in enumerate(kernel.passes)}

    # -- passes ----------------------------------------------------------------

    def _run_pass(
        self, name: str, dec: Decomposition, total: int, body, *,
        full_coverage: bool = True,
    ) -> None:
        """Run one chunked pass, inside a shadow-memory scope when the
        sanitizer is enabled (the disabled path costs one attribute read)."""
        san = _sanitizer()
        if san.enabled:
            with san.pass_scope(
                f"parallel.{name}", dec.m * dec.n, full_coverage=full_coverage
            ):
                self.executor.parallel_for(total, body, name=name)
        else:
            self.executor.parallel_for(total, body, name=name)

    @staticmethod
    def _chunk_runner(name: str, nk, work):
        """Compose the chunk body: native runner when available, with the
        numpy chunk as the per-chunk fallback (a failing native chunk moved
        nothing, so numpy redoes exactly that range)."""
        if nk is None:
            return work

        def run(sl: slice) -> None:
            try:
                nk(sl.start, sl.stop)
            except MemoryError:
                _native().record_fallback(
                    f"scratch allocation failed in parallel pass {name}"
                )
                work(sl)

        return run

    def _rotate_pass(
        self, name: str, V: np.ndarray, dec: Decomposition, sign: int, nk=None
    ) -> None:
        """Columns rotate by ``sign * (j // b)``; parallel over the c groups
        of b columns (each group shares one rotation amount, Lemma 1)."""
        m = dec.m
        san = _sanitizer()
        tr = _tracer()
        itemsize = V.itemsize

        def work(groups: slice) -> None:
            if not san.enabled:
                rotate_chunk(V, dec, sign, groups)
                return
            for g in range(groups.start, groups.stop):
                k = g % m  # repro-lint: allow(raw-divmod) O(c) per-group setup, not per-element
                if k == 0:
                    continue
                cols = slice(g * dec.b, (g + 1) * dec.b)
                flat = (
                    np.arange(m, dtype=np.int64)[:, None] * dec.n
                    + np.arange(cols.start, cols.stop, dtype=np.int64)
                ).ravel()  # repro-lint: allow(implicit-copy) flat index array, not a view
                san.record(reads=flat, writes=flat, where=f"group[{g}]")
                V[:, cols] = np.roll(V[:, cols], sign * k, axis=0)

        run = self._chunk_runner(name, nk, work)

        def body(groups: slice) -> None:
            # One worker.chunk span per chunk, carrying the rectangle the
            # chunk owns — the Chrome-trace lane layout shows these spans
            # overlapping across worker threads.
            if tr.enabled:
                c0, c1 = groups.start * dec.b, groups.stop * dec.b
                with tr.span(
                    "worker.chunk", stage=name, r0=0, r1=m, c0=c0, c1=c1,
                    bytes=2 * m * (c1 - c0) * itemsize,
                ):
                    run(groups)
            else:
                run(groups)

        # Zero-shift groups are skipped, so coverage is at-most-once.
        self._run_pass(name, dec, dec.c, body, full_coverage=False)

    def _pre_rotate(self, V: np.ndarray, dec: Decomposition, nk=None) -> None:
        self._rotate_pass("pre_rotate", V, dec, -1, nk)

    def _gathered_row_pass(
        self, name: str, V: np.ndarray, dec: Decomposition, index_map, nk=None
    ) -> None:
        """Rows gather along axis 1 with ``index_map(i, cols)``; parallel
        over row chunks."""
        cols = np.arange(dec.n, dtype=np.int64)[None, :]
        san = _sanitizer()
        tr = _tracer()
        itemsize = V.itemsize

        def work(rows: slice) -> None:
            if not san.enabled:
                row_gather_chunk(V, dec, index_map, rows)
                return
            i = np.arange(rows.start, rows.stop, dtype=np.int64)[:, None]
            idx = index_map(i, cols)
            san.record(
                reads=i * dec.n + idx,
                writes=i * dec.n + cols,
                where=f"rows[{rows.start}:{rows.stop}]",
            )
            V[rows] = np.take_along_axis(V[rows], idx, axis=1)

        run = self._chunk_runner(name, nk, work)

        def body(rows: slice) -> None:
            if tr.enabled:
                with tr.span(
                    "worker.chunk", stage=name,
                    r0=rows.start, r1=rows.stop, c0=0, c1=dec.n,
                    bytes=2 * (rows.stop - rows.start) * dec.n * itemsize,
                ):
                    run(rows)
            else:
                run(rows)

        self._run_pass(name, dec, dec.m, body)

    def _gathered_column_pass(
        self, name: str, V: np.ndarray, dec: Decomposition, index_map, nk=None
    ) -> None:
        """Columns gather along axis 0 with ``index_map(rows, j)``; parallel
        over column chunks."""
        rows = np.arange(dec.m, dtype=np.int64)[:, None]
        san = _sanitizer()
        tr = _tracer()
        itemsize = V.itemsize

        def work(cols: slice) -> None:
            if not san.enabled:
                col_gather_chunk(V, dec, index_map, cols)
                return
            j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
            idx = index_map(rows, j)
            san.record(
                reads=idx * dec.n + j,
                writes=rows * dec.n + j,
                where=f"cols[{cols.start}:{cols.stop}]",
            )
            V[:, cols] = np.take_along_axis(V[:, cols], idx, axis=0)

        run = self._chunk_runner(name, nk, work)

        def body(cols: slice) -> None:
            if tr.enabled:
                with tr.span(
                    "worker.chunk", stage=name,
                    r0=0, r1=dec.m, c0=cols.start, c1=cols.stop,
                    bytes=2 * dec.m * (cols.stop - cols.start) * itemsize,
                ):
                    run(cols)
            else:
                run(cols)

        self._run_pass(name, dec, dec.n, body)

    def _row_shuffle(
        self, V: np.ndarray, dec: Decomposition, red: ReducedEquations | None,
        nk=None,
    ) -> None:
        """Rows gather with d'^{-1} (Eq. 31); parallel over row chunks."""
        self._gathered_row_pass(
            "row_shuffle", V, dec, pass_index_map("row_shuffle", dec, red), nk
        )

    def _column_shuffle(
        self, V: np.ndarray, dec: Decomposition, red: ReducedEquations | None,
        nk=None,
    ) -> None:
        """Columns gather with s' (Eq. 26); parallel over column chunks."""
        self._gathered_column_pass(
            "column_shuffle", V, dec,
            pass_index_map("column_shuffle", dec, red), nk,
        )

    def _inverse_column_shuffle(
        self, V: np.ndarray, dec: Decomposition, nk=None
    ) -> None:
        self._gathered_column_pass(
            "inverse_column_shuffle", V, dec,
            pass_index_map("inverse_column_shuffle", dec, None), nk,
        )

    def _row_shuffle_r2c(
        self, V: np.ndarray, dec: Decomposition, red: ReducedEquations | None,
        nk=None,
    ) -> None:
        self._gathered_row_pass(
            "row_shuffle_r2c", V, dec,
            pass_index_map("row_shuffle_r2c", dec, red), nk,
        )

    def _post_rotate(self, V: np.ndarray, dec: Decomposition, nk=None) -> None:
        self._rotate_pass("post_rotate", V, dec, 1, nk)

    # -- entry points ------------------------------------------------------------

    @staticmethod
    def _timed(name: str, fn, *args, backend: str | None = None) -> None:
        """Run one pass, recording it as ``parallel.pass.<name>`` when the
        metrics registry is enabled and as a ``pass.<name>`` span when the
        tracer is enabled (a bool check each otherwise)."""
        rt = _runtime_metrics()
        tr = _tracer()
        if tr.enabled:
            V, dec = args[0], args[1]
            extra = {} if backend is None else {"backend": backend}
            with tr.span(
                f"pass.{name}", m=dec.m, n=dec.n, bytes=2 * V.nbytes, **extra
            ) as sp:
                fn(*args)
            if rt.registry.enabled:
                rt.registry.observe(f"parallel.pass.{name}", sp.duration_s)
        elif rt.registry.enabled:
            t0 = perf_counter()
            fn(*args)
            rt.registry.observe(f"parallel.pass.{name}", perf_counter() - t0)
        else:
            fn(*args)

    def c2r(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Parallel C2R transposition of a flat buffer."""
        if self._mp is not None:
            return self._mp.c2r(buf, m, n)
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        if buf.ndim != 1 or buf.shape[0] != m * n:
            raise ValueError(f"buffer must be flat with {m * n} elements")
        dec = Decomposition.of(m, n)
        red = self._reduced(dec)
        V = buf.reshape(m, n)
        nks = self._native_chunks(buf, m, n, "c2r") or {}
        rt = _runtime_metrics()
        tr = _tracer()
        t0 = perf_counter() if rt.registry.enabled else 0.0
        passes = 3 if dec.c > 1 else 2
        with tr.span(
            "op.parallel.c2r", m=m, n=n,
            threads=self.n_threads, dtype=str(buf.dtype),
        ) if tr.enabled else _NULL_CM:
            bk = "native" if nks else None
            if dec.c > 1:
                self._timed(
                    "pre_rotate", self._pre_rotate, V, dec,
                    nks.get("pre_rotate"), backend=bk,
                )
            self._timed(
                "row_shuffle", self._row_shuffle, V, dec, red,
                nks.get("row_shuffle"), backend=bk,
            )
            self._timed(
                "column_shuffle", self._column_shuffle, V, dec, red,
                nks.get("column_shuffle"), backend=bk,
            )
        if rt.registry.enabled:
            rt.registry.record_call(
                "parallel.c2r",
                perf_counter() - t0,
                nbytes=2 * passes * buf.nbytes,
                elements=passes * buf.shape[0],
            )
        return buf

    def r2c(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Parallel R2C transposition of a flat buffer."""
        if self._mp is not None:
            return self._mp.r2c(buf, m, n)
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        if buf.ndim != 1 or buf.shape[0] != m * n:
            raise ValueError(f"buffer must be flat with {m * n} elements")
        dec = Decomposition.of(m, n)
        red = self._reduced(dec)
        V = buf.reshape(m, n)
        nks = self._native_chunks(buf, m, n, "r2c") or {}
        rt = _runtime_metrics()
        tr = _tracer()
        t0 = perf_counter() if rt.registry.enabled else 0.0
        passes = 3 if dec.c > 1 else 2
        with tr.span(
            "op.parallel.r2c", m=m, n=n,
            threads=self.n_threads, dtype=str(buf.dtype),
        ) if tr.enabled else _NULL_CM:
            bk = "native" if nks else None
            self._timed(
                "inverse_column_shuffle", self._inverse_column_shuffle, V, dec,
                nks.get("inverse_column_shuffle"), backend=bk,
            )
            self._timed(
                "row_shuffle_r2c", self._row_shuffle_r2c, V, dec, red,
                nks.get("row_shuffle_r2c"), backend=bk,
            )
            if dec.c > 1:
                self._timed(
                    "post_rotate", self._post_rotate, V, dec,
                    nks.get("post_rotate"), backend=bk,
                )
        if rt.registry.enabled:
            rt.registry.record_call(
                "parallel.r2c",
                perf_counter() - t0,
                nbytes=2 * passes * buf.nbytes,
                elements=passes * buf.shape[0],
            )
        return buf

    def transpose_inplace(
        self, buf: np.ndarray, m: int, n: int, order: str = "C"
    ) -> np.ndarray:
        """Order-aware entry point with the paper's C2R/R2C heuristic."""
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        vm, vn = (m, n) if order == "C" else (n, m)
        if choose_algorithm(m, n) == "c2r":
            return self.c2r(buf, vm, vn)
        return self.r2c(buf, vn, vm)

    def close(self) -> None:
        if self._mp is not None:
            self._mp.close()
        if self.executor is not None:
            self.executor.shutdown()

    def __enter__(self) -> "ParallelTranspose":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_transpose_inplace(
    buf: np.ndarray,
    m: int,
    n: int,
    order: str = "C",
    *,
    n_threads: int = 1,
    backend: str = "threads",
    start_method: str | None = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ParallelTranspose`."""
    with ParallelTranspose(
        n_threads, backend=backend, start_method=start_method
    ) as pt:
        return pt.transpose_inplace(buf, m, n, order)
