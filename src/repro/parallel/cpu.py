"""Parallel in-place CPU transpose (Section 5.1).

A direct parallelization of Algorithm 1, with the paper's two CPU
optimizations: a completely gather-based formulation (rows gather with
``d'^{-1}``, Eq. 31) and strength-reduced index arithmetic (Section 4.4,
via :class:`~repro.strength.reduced.ReducedEquations`).

Each pass is a chunked parallel-for over rows or columns; chunks touch
disjoint data, so passes need no locking — only the inter-pass barrier the
executor provides.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..core import equations as eq
from ..core.indexing import Decomposition
from ..core.transpose import choose_algorithm
from ..strength.reduced import ReducedEquations
from .executor import ParallelExecutor

__all__ = ["ParallelTranspose", "parallel_transpose_inplace"]

_metrics = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


class ParallelTranspose:
    """A reusable parallel transposer bound to a thread count.

    Parameters
    ----------
    n_threads:
        Worker count (1 = the sequential baseline of Table 1).
    strength_reduced:
        Use fixed-point-reciprocal index math (on by default, as in the
        paper's CPU implementation); falls back to plain ``//``/``%`` for
        shapes outside the reduced range.
    """

    def __init__(self, n_threads: int = 1, *, strength_reduced: bool = True):
        self.executor = ParallelExecutor(n_threads)
        self.strength_reduced = strength_reduced

    # -- index-map helpers ---------------------------------------------------

    def _reduced(self, dec: Decomposition) -> ReducedEquations | None:
        if not self.strength_reduced:
            return None
        try:
            return ReducedEquations(dec)
        except ValueError:
            return None

    # -- passes ----------------------------------------------------------------

    def _pre_rotate(self, V: np.ndarray, dec: Decomposition) -> None:
        """Columns rotate by j // b; parallel over the c groups of b columns
        (each group shares one rotation amount, Lemma 1)."""
        m = dec.m

        def body(groups: slice) -> None:
            for g in range(groups.start, groups.stop):
                k = g % m
                if k == 0:
                    continue
                cols = slice(g * dec.b, (g + 1) * dec.b)
                V[:, cols] = np.roll(V[:, cols], -k, axis=0)

        self.executor.parallel_for(dec.c, body)

    def _row_shuffle(
        self, V: np.ndarray, dec: Decomposition, red: ReducedEquations | None
    ) -> None:
        """Rows gather with d'^{-1}; parallel over row chunks."""
        cols = np.arange(dec.n, dtype=np.int64)[None, :]

        def body(rows: slice) -> None:
            i = np.arange(rows.start, rows.stop, dtype=np.int64)[:, None]
            idx = (
                red.dprime_inverse(i, cols)
                if red is not None
                else eq.dprime_inverse_v(dec, i, cols)
            )
            V[rows] = np.take_along_axis(V[rows], idx, axis=1)

        self.executor.parallel_for(dec.m, body)

    def _column_shuffle(
        self, V: np.ndarray, dec: Decomposition, red: ReducedEquations | None
    ) -> None:
        """Columns gather with s'; parallel over column chunks."""
        rows = np.arange(dec.m, dtype=np.int64)[:, None]

        def body(cols: slice) -> None:
            j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
            idx = (
                red.sprime(rows, j)
                if red is not None
                else eq.sprime_v(dec, rows, j)
            )
            V[:, cols] = np.take_along_axis(V[:, cols], idx, axis=0)

        self.executor.parallel_for(dec.n, body)

    def _inverse_column_shuffle(
        self, V: np.ndarray, dec: Decomposition
    ) -> None:
        rows = np.arange(dec.m, dtype=np.int64)[:, None]

        def body(cols: slice) -> None:
            j = np.arange(cols.start, cols.stop, dtype=np.int64)[None, :]
            idx = eq.sprime_inverse_v(dec, rows, j)
            V[:, cols] = np.take_along_axis(V[:, cols], idx, axis=0)

        self.executor.parallel_for(dec.n, body)

    def _row_shuffle_r2c(
        self, V: np.ndarray, dec: Decomposition, red: ReducedEquations | None
    ) -> None:
        cols = np.arange(dec.n, dtype=np.int64)[None, :]

        def body(rows: slice) -> None:
            i = np.arange(rows.start, rows.stop, dtype=np.int64)[:, None]
            idx = (
                red.dprime(i, cols) if red is not None else eq.dprime_v(dec, i, cols)
            )
            V[rows] = np.take_along_axis(V[rows], idx, axis=1)

        self.executor.parallel_for(dec.m, body)

    def _post_rotate(self, V: np.ndarray, dec: Decomposition) -> None:
        m = dec.m

        def body(groups: slice) -> None:
            for g in range(groups.start, groups.stop):
                k = g % m
                if k == 0:
                    continue
                cols = slice(g * dec.b, (g + 1) * dec.b)
                V[:, cols] = np.roll(V[:, cols], k, axis=0)

        self.executor.parallel_for(dec.c, body)

    # -- entry points ------------------------------------------------------------

    @staticmethod
    def _timed(name: str, fn, *args) -> None:
        """Run one pass, recording it as ``parallel.pass.<name>`` when the
        metrics registry is enabled (a bool check otherwise)."""
        rt = _runtime_metrics()
        if rt.registry.enabled:
            t0 = perf_counter()
            fn(*args)
            rt.registry.observe(f"parallel.pass.{name}", perf_counter() - t0)
        else:
            fn(*args)

    def c2r(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Parallel C2R transposition of a flat buffer."""
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        if buf.ndim != 1 or buf.shape[0] != m * n:
            raise ValueError(f"buffer must be flat with {m * n} elements")
        dec = Decomposition.of(m, n)
        red = self._reduced(dec)
        V = buf.reshape(m, n)
        rt = _runtime_metrics()
        t0 = perf_counter() if rt.registry.enabled else 0.0
        passes = 3 if dec.c > 1 else 2
        if dec.c > 1:
            self._timed("pre_rotate", self._pre_rotate, V, dec)
        self._timed("row_shuffle", self._row_shuffle, V, dec, red)
        self._timed("column_shuffle", self._column_shuffle, V, dec, red)
        if rt.registry.enabled:
            rt.registry.record_call(
                "parallel.c2r",
                perf_counter() - t0,
                nbytes=2 * passes * buf.nbytes,
                elements=passes * buf.shape[0],
            )
        return buf

    def r2c(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Parallel R2C transposition of a flat buffer."""
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        if buf.ndim != 1 or buf.shape[0] != m * n:
            raise ValueError(f"buffer must be flat with {m * n} elements")
        dec = Decomposition.of(m, n)
        red = self._reduced(dec)
        V = buf.reshape(m, n)
        rt = _runtime_metrics()
        t0 = perf_counter() if rt.registry.enabled else 0.0
        passes = 3 if dec.c > 1 else 2
        self._timed("inverse_column_shuffle", self._inverse_column_shuffle, V, dec)
        self._timed("row_shuffle_r2c", self._row_shuffle_r2c, V, dec, red)
        if dec.c > 1:
            self._timed("post_rotate", self._post_rotate, V, dec)
        if rt.registry.enabled:
            rt.registry.record_call(
                "parallel.r2c",
                perf_counter() - t0,
                nbytes=2 * passes * buf.nbytes,
                elements=passes * buf.shape[0],
            )
        return buf

    def transpose_inplace(
        self, buf: np.ndarray, m: int, n: int, order: str = "C"
    ) -> np.ndarray:
        """Order-aware entry point with the paper's C2R/R2C heuristic."""
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        vm, vn = (m, n) if order == "C" else (n, m)
        if choose_algorithm(m, n) == "c2r":
            return self.c2r(buf, vm, vn)
        return self.r2c(buf, vn, vm)

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "ParallelTranspose":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_transpose_inplace(
    buf: np.ndarray, m: int, n: int, order: str = "C", *, n_threads: int = 1
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ParallelTranspose`."""
    with ParallelTranspose(n_threads) as pt:
        return pt.transpose_inplace(buf, m, n, order)
