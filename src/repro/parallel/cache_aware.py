"""Cache-aware parallel CPU transpose — the paper's stated future work.

Section 5.1: "We leave cache-aware optimizations for this implementation to
future work."  This module is that work: the thread-parallel C2R with the
Section 4.6-4.7 column kernels substituted for the naive ones.

Parallel structure per pass:

* **pre-rotation / column-shuffle rotation** — column *groups* (one cache
  line wide) are independent: parallel-for over groups, each thread running
  the coarse + fine sub-row rotation on its groups;
* **row shuffle** — unchanged (rows are contiguous; the gather-based numpy
  pass is already line-friendly), parallel over row chunks;
* **static row permutation** — cycles are sequential chains, but the
  *column groups* are independent: parallel-for over groups, each thread
  cycle-following all cycles within its sub-columns.

Every thread touches disjoint cache lines, so there is no false sharing —
the property that makes this the natural CPU parallelization.
"""

from __future__ import annotations

import numpy as np

from ..cache.cycles import permutation_cycles
from ..cache.model import CacheModel
from ..cache.rotate import _coarse_rotate_group
from ..core import equations as eq
from ..core.indexing import Decomposition
from .executor import ParallelExecutor

__all__ = ["CacheAwareParallelTranspose"]


class CacheAwareParallelTranspose:
    """Thread-parallel in-place transpose built on the cache-aware kernels.

    Parameters
    ----------
    n_threads:
        Worker count.
    line_bytes:
        Cache-line width used for sub-row grouping (64 for typical CPUs).
    """

    def __init__(self, n_threads: int = 1, line_bytes: int = 64):
        self.executor = ParallelExecutor(n_threads)
        self.line_bytes = line_bytes

    def _model(self, dtype) -> CacheModel:
        return CacheModel(line_bytes=self.line_bytes, itemsize=dtype.itemsize)

    def _parallel_rotate(
        self, V: np.ndarray, amounts: np.ndarray, model: CacheModel
    ) -> None:
        m, n = V.shape
        n_groups = model.n_groups(n)

        def body(groups: slice) -> None:
            rows = np.arange(m, dtype=np.int64)[:, None]
            for g in range(groups.start, groups.stop):
                sl = model.group_slice(g, n)
                block = V[:, sl]
                base = int(amounts[sl.start])
                _coarse_rotate_group(block, base, None)
                residual = (amounts[sl] - base) % m
                if residual.any():
                    idx = (rows + residual[None, :]) % m
                    block[:] = np.take_along_axis(block, idx, axis=0)

        self.executor.parallel_for(n_groups, body)

    def _parallel_row_shuffle(self, V: np.ndarray, dec: Decomposition) -> None:
        cols = np.arange(dec.n, dtype=np.int64)[None, :]

        def body(rows: slice) -> None:
            i = np.arange(rows.start, rows.stop, dtype=np.int64)[:, None]
            V[rows] = np.take_along_axis(
                V[rows], eq.dprime_inverse_v(dec, i, cols), axis=1
            )

        self.executor.parallel_for(dec.m, body)

    def _parallel_row_permute(
        self, V: np.ndarray, gather: np.ndarray, model: CacheModel
    ) -> None:
        n = V.shape[1]
        cycles = permutation_cycles(gather)
        n_groups = model.n_groups(n)

        def body(groups: slice) -> None:
            for g in range(groups.start, groups.stop):
                sl = model.group_slice(g, n)
                block = V[:, sl]
                for leader, length in zip(cycles.leaders, cycles.lengths):
                    tmp = block[int(leader)].copy()
                    i = int(leader)
                    for _ in range(int(length) - 1):
                        src = int(gather[i])
                        block[i] = block[src]
                        i = src
                    block[i] = tmp

        self.executor.parallel_for(n_groups, body)

    def c2r(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Cache-aware parallel C2R on the row-major ``(m, n)`` view."""
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        if buf.ndim != 1 or buf.shape[0] != m * n:
            raise ValueError(f"buffer must be flat with {m * n} elements")
        dec = Decomposition.of(m, n)
        model = self._model(buf.dtype)
        V = buf.reshape(m, n)
        cols = np.arange(n, dtype=np.int64)
        if dec.c > 1:
            self._parallel_rotate(V, (cols // dec.b) % m, model)
        self._parallel_row_shuffle(V, dec)
        if m > 1:
            self._parallel_rotate(V, cols % m, model)
            q = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
            self._parallel_row_permute(V, q, model)
        return buf

    def transpose_inplace(
        self, buf: np.ndarray, m: int, n: int, order: str = "C"
    ) -> np.ndarray:
        """Order-aware entry point.

        Only the C2R pass skeleton is implemented cache-aware; it is
        correct for every shape (the R2C-side skeleton would merely shift
        which dimension enjoys the short-row benefits).
        """
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        vm, vn = (m, n) if order == "C" else (n, m)
        return self.c2r(buf, vm, vn)

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "CacheAwareParallelTranspose":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
