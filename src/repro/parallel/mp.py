"""Multiprocess shared-memory execution backend (Section 5.1, real cores).

The thread backend overlaps only while numpy's gather kernels hold the GIL
released; the Python-side index arithmetic and pass orchestration
serialize.  This backend runs each pass's disjoint row/column chunks as a
true parallel-for on a persistent process pool:

* the matrix lives in a :class:`~repro.parallel.shm.SharedArray` segment
  every worker maps;
* only ``(name, shape, dtype, pass, chunk)`` descriptors cross the process
  boundary — workers rebuild decompositions and reduced equations from the
  descriptor and cache them per shape, so no live numpy closure is ever
  pickled;
* the inter-pass barrier is :meth:`MpExecutor.run_chunks`, with the same
  failure contract as the thread executor: first failure cancels what has
  not started, waits for in-flight chunks, and raises
  :class:`~repro.parallel.executor.PassExecutionError` — the chunk
  rectangles are the ones the PR-2 racecheck proves disjoint, so the
  static race-freedom proof carries over unchanged.

Start method: ``forkserver`` by default (where available).  The parent is
routinely multi-threaded by the time a pool spins up (serving workers, the
metrics lock), and ``fork`` from a threaded process can inherit a lock
mid-acquisition and deadlock the child; ``forkserver`` forks from a clean
single-threaded template instead.  Override with ``REPRO_MP_START``
(``fork``/``spawn``/``forkserver``).

Serving integration: :class:`ProcessWorkerHost` executes one batched group
per task against shared-memory staging.  Each worker process owns its own
plan cache (plans rebuild from their cache key on first use), records into
its own metrics registry around the task, and returns the snapshot delta;
the parent merges it into the process-wide registry so ``GET /metrics``
and ``repro stats`` stay truthful.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    FIRST_EXCEPTION,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from time import perf_counter

import numpy as np

from ..core.indexing import Decomposition
from ..core.transpose import choose_algorithm
from . import shm as shm_mod
from .executor import PassExecutionError
from .partition import balanced_chunks

__all__ = [
    "MpExecutor",
    "MpTranspose",
    "ProcessWorkerHost",
    "WorkerCrashedError",
    "default_start_method",
]

#: reusable stateless no-op context manager for untraced paths
_NULL_CM = nullcontext()

_metrics = None
_trace = None


def _runtime_metrics():
    """Lazily bind repro.runtime.metrics (kept acyclic w.r.t. package init)."""
    global _metrics
    if _metrics is None:
        from ..runtime import metrics

        _metrics = metrics
    return _metrics


def _tracer():
    """Lazily bind the process-wide structured tracer (repro.trace.spans)."""
    global _trace
    if _trace is None:
        from ..trace import spans

        _trace = spans
    return _trace.tracer


class WorkerCrashedError(RuntimeError):
    """A worker process died mid-task (segfault, ``os._exit``, OOM-kill).

    The pool has been rebuilt by the time this propagates; nothing was
    fulfilled and shared-memory inputs were only read, so retrying the
    task is safe — the serving layer's retry-once absorbs exactly this.
    """


def default_start_method() -> str:
    """Pick the multiprocessing start method (``REPRO_MP_START`` overrides).

    ``forkserver`` where available: forking from a multi-threaded parent
    (serving workers, metrics lock holders) can deadlock the child on an
    inherited lock, and ``spawn`` pays a full interpreter + numpy import
    per worker.
    """
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def _worker_init() -> None:
    """Process-pool initializer: start each worker with a quiet registry.

    Pass/plan instrumentation in a child is invisible to the parent unless
    explicitly shipped back; tasks that want metrics (the serving batch
    task) enable the registry around their run and return the snapshot.
    """
    _runtime_metrics().registry.enabled = False


#: child-side cache: (vm, vn, strength_reduced) -> (Decomposition, red|None)
_shape_state: dict = {}
_SHAPE_STATE_MAX = 16


def _shape_setup(vm: int, vn: int, strength_reduced: bool):
    key = (vm, vn, bool(strength_reduced))
    hit = _shape_state.get(key)
    if hit is None:
        from ..strength.reduced import ReducedEquations

        dec = Decomposition.of(vm, vn)
        red = None
        if strength_reduced:
            try:
                red = ReducedEquations(dec)
            except ValueError:
                red = None
        if len(_shape_state) >= _SHAPE_STATE_MAX:
            _shape_state.pop(next(iter(_shape_state)))
        hit = _shape_state[key] = (dec, red)
    return hit


def _run_chunk(V, dec, red, pass_name: str, chunk: slice) -> None:
    """Dispatch one pass chunk to the matching gather/rotate kernel."""
    from . import cpu

    if pass_name in ("pre_rotate", "post_rotate"):
        cpu.rotate_chunk(V, dec, -1 if pass_name == "pre_rotate" else 1, chunk)
    elif pass_name in ("row_shuffle", "row_shuffle_r2c"):
        cpu.row_gather_chunk(V, dec, cpu.pass_index_map(pass_name, dec, red), chunk)
    elif pass_name in ("column_shuffle", "inverse_column_shuffle"):
        cpu.col_gather_chunk(V, dec, cpu.pass_index_map(pass_name, dec, red), chunk)
    else:
        raise ValueError(f"unknown pass {pass_name!r}")


def _capture_worker_spans(trace, run) -> dict:
    """Run ``run()`` under a worker-side tracer bound to ``trace`` (a
    ``(trace_id, parent_span_id)`` descriptor) and return the recorded
    spans as wire dicts plus this worker's pid.

    The child's ring is drained first (discarding leftovers from earlier
    tasks, whose parent already collected or abandoned them), so the
    returned spans belong to exactly this task.  Timestamps stay on the
    shared CLOCK_MONOTONIC ``perf_counter`` base, directly comparable to
    the parent's.
    """
    tr = _tracer()
    was_enabled = tr.enabled
    tr.drain()
    tr.enabled = True
    try:
        with tr.activate(_trace.TraceContext(str(trace[0]), int(trace[1]))):
            result = run()
        return {
            "spans": _trace.spans_to_wire(tr.drain()),
            "pid": os.getpid(),
            "result": result,
        }
    finally:
        tr.enabled = was_enabled


def _pass_chunk_task(
    shm_name: str,
    vm: int,
    vn: int,
    dtype_str: str,
    pass_name: str,
    start: int,
    stop: int,
    strength_reduced: bool,
    trace: tuple | None = None,
) -> dict | None:
    """Run one chunk of one pass against the shared segment (child side).

    With a ``trace`` descriptor, the chunk runs inside a ``worker.chunk``
    span and the worker's span ring ships back for the parent to splice;
    without one the task stays result-free (nothing crosses back).
    """
    V = shm_mod.attach_array(shm_name, (vm, vn), dtype_str)
    dec, red = _shape_setup(vm, vn, strength_reduced)
    chunk = slice(int(start), int(stop))
    if trace is None:
        _run_chunk(V, dec, red, pass_name, chunk)
        return None

    def run():
        tr = _tracer()
        with tr.span(
            "worker.chunk", stage=pass_name, start=chunk.start,
            stop=chunk.stop, backend="mp",
        ):
            _run_chunk(V, dec, red, pass_name, chunk)

    out = _capture_worker_spans(trace, run)
    out.pop("result", None)
    return out


def _serve_batch_task(
    shm_name: str,
    m: int,
    n: int,
    order: str,
    dtype_str: str,
    tiles: int,
    fault_flag: str | None = None,
    trace: tuple | None = None,
) -> dict:
    """Execute one batched group in place in the shared staging segment.

    The worker's own plan cache supplies the
    :class:`~repro.core.batched.BatchedTransposePlan` (rebuilt from its
    cache key on first use).  Returns the worker-side metrics snapshot
    delta for the parent to merge; with a ``trace`` descriptor the run is
    additionally wrapped in a ``worker.group`` span and the snapshot
    carries the worker's span ring under ``"spans"`` (plus ``"pid"``) —
    keys the parent pops before :meth:`MetricsRegistry.merge_snapshot`.

    ``fault_flag`` is the crash-injection seam for the kill-a-worker
    tests: ``"always"`` dies on every call; a path dies once, consuming
    the flag file so the retry survives.
    """
    if fault_flag:
        if fault_flag == "always":
            os._exit(17)
        elif os.path.exists(fault_flag):
            os.unlink(fault_flag)
            os._exit(17)
    from ..core.batched import batched_transpose_inplace

    reg = _runtime_metrics().registry
    V = shm_mod.attach_array(shm_name, (int(tiles), int(m) * int(n)), dtype_str)
    was_enabled = reg.enabled
    reg.enabled = True
    reg.reset()
    try:
        if trace is None:
            batched_transpose_inplace(V, m, n, order)
            return reg.snapshot()

        def run():
            tr = _tracer()
            with tr.span(
                "worker.group", m=m, n=n, batch=tiles, backend="mp",
            ):
                batched_transpose_inplace(V, m, n, order)
            return reg.snapshot()

        captured = _capture_worker_spans(trace, run)
        snap = captured.pop("result")
        snap["spans"] = captured["spans"]
        snap["pid"] = captured["pid"]
        return snap
    finally:
        reg.enabled = was_enabled


class MpExecutor:
    """A persistent process pool running descriptor-addressed tasks.

    Mirrors :class:`~repro.parallel.executor.ParallelExecutor`'s barrier
    and failure semantics across a process boundary, and additionally
    survives worker death: a :class:`BrokenProcessPool` rebuilds the pool
    and surfaces as :class:`WorkerCrashedError` (transient — retryable).
    """

    def __init__(self, n_workers: int, start_method: str | None = None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.start_method = start_method or default_start_method()
        self._pool: ProcessPoolExecutor | None = None
        self._make_pool()

    def _make_pool(self) -> None:
        ctx = multiprocessing.get_context(self.start_method)
        if self.start_method == "forkserver":
            try:
                # Import the heavy modules once in the fork template, not
                # once per worker.
                ctx.set_forkserver_preload(["repro.parallel.mp"])
            except Exception:  # noqa: BLE001 — preload is best-effort
                pass
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers, mp_context=ctx, initializer=_worker_init
        )

    def _rebuild(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._make_pool()

    def run_one(self, fn, *args):
        """Run one task to completion; worker death becomes a transient
        :class:`WorkerCrashedError` with the pool already rebuilt."""
        try:
            fut = self._pool.submit(fn, *args)
            return fut.result()
        except BrokenProcessPool as exc:
            self._rebuild()
            raise WorkerCrashedError(
                "worker process died mid-task; pool rebuilt"
            ) from exc

    def run_chunks(self, pass_name: str, fn, tasks: list[tuple[slice, tuple]]) -> list:
        """Barrier-run ``fn(*args)`` for each ``(chunk, args)`` task.

        On success, returns each task's result in submission order (the
        traced chunk task ships its worker-side span ring back this way;
        untraced tasks return ``None``).  On failure: cancel
        not-yet-started chunks, wait for in-flight ones, raise
        :class:`PassExecutionError` for the first failed chunk (worker
        death is wrapped as :class:`WorkerCrashedError` first).
        """
        futures: list[tuple] = []
        submit_exc: BaseException | None = None
        for chunk, args in tasks:
            try:
                futures.append((self._pool.submit(fn, *args), chunk))
            except BrokenProcessPool as exc:
                submit_exc = exc
                break
        done, not_done = wait(
            [f for f, _ in futures], return_when=FIRST_EXCEPTION
        )
        if not_done:
            for f in not_done:
                f.cancel()
            wait(not_done)
        first: tuple[slice, BaseException] | None = None
        for f, chunk in futures:
            if f.cancelled():
                continue
            try:
                exc = f.exception()
            except CancelledError:
                continue
            if exc is not None:
                first = (chunk, exc)
                break
        if first is None and submit_exc is not None:
            first = (tasks[len(futures)][0], submit_exc)
        if first is not None:
            chunk, exc = first
            if isinstance(exc, BrokenProcessPool):
                self._rebuild()
                exc = WorkerCrashedError(
                    "worker process died mid-pass; pool rebuilt"
                )
            raise PassExecutionError(pass_name, chunk, exc) from exc
        return [f.result() for f, _ in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "MpExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class MpTranspose:
    """Process-backed twin of :class:`~repro.parallel.cpu.ParallelTranspose`.

    The flat buffer is copied into a shared segment, the passes run as
    chunked parallel-fors on the process pool with an inter-pass barrier,
    and the result is copied back out — two extra buffer traversals, which
    is why mp wins only once the per-pass compute dwarfs them (narrow
    dtypes, multiple real cores; docs/PARALLEL.md quantifies).
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        strength_reduced: bool = True,
        start_method: str | None = None,
    ):
        self.n_workers = int(n_workers)
        self.strength_reduced = strength_reduced
        self.executor = MpExecutor(n_workers, start_method)

    # -- pass plumbing ---------------------------------------------------------

    def _run_pass(
        self, seg: shm_mod.SharedArray, dec, name: str, total: int,
        parent_span_id: int = 0,
    ) -> None:
        vm, vn = seg.shape
        dtype_str = seg.dtype.str
        tr = _tracer()
        # Ship a (trace_id, parent span id) descriptor with each chunk so
        # worker-side ``worker.chunk`` spans parent under this pass's span;
        # each worker's ring comes back in the task result and splices here.
        trace_desc = None
        if tr.enabled and parent_span_id:
            trace_desc = (tr.current_trace_id(), parent_span_id)
        tasks = [
            (ch, (seg.name, vm, vn, dtype_str, name, ch.start, ch.stop,
                  self.strength_reduced, trace_desc))
            for ch in balanced_chunks(total, self.n_workers)
        ]
        results = self.executor.run_chunks(name, _pass_chunk_task, tasks)
        if trace_desc is not None:
            for res in results:
                if res and res.get("spans"):
                    tr.splice(
                        res["spans"], parent_id=parent_span_id,
                        trace_id=trace_desc[0],
                    )

    def _timed(self, seg: shm_mod.SharedArray, dec, name: str, total: int) -> None:
        """Barrier-run one pass, recording ``parallel.pass.<name>`` and a
        ``pass.<name>`` span exactly like the thread backend."""
        rt = _runtime_metrics()
        tr = _tracer()
        if tr.enabled:
            with tr.span(
                f"pass.{name}", m=dec.m, n=dec.n,
                bytes=2 * seg.array.nbytes,
            ) as sp:
                self._run_pass(seg, dec, name, total,
                               parent_span_id=sp.span_id)
            if rt.registry.enabled:
                rt.registry.observe(f"parallel.pass.{name}", sp.duration_s)
        elif rt.registry.enabled:
            t0 = perf_counter()
            self._run_pass(seg, dec, name, total)
            rt.registry.observe(f"parallel.pass.{name}", perf_counter() - t0)
        else:
            self._run_pass(seg, dec, name, total)

    @staticmethod
    def _validate(buf: np.ndarray, m: int, n: int) -> None:
        if not buf.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "in-place transposition requires a contiguous buffer "
                "(a non-contiguous view would be silently copied, not permuted)"
            )
        if buf.ndim != 1 or buf.shape[0] != m * n:
            raise ValueError(f"buffer must be flat with {m * n} elements")

    def _run(self, buf: np.ndarray, m: int, n: int, kind: str) -> np.ndarray:
        """Stage into shared memory, run the pass schedule, copy back."""
        self._validate(buf, m, n)
        dec = Decomposition.of(m, n)
        rt = _runtime_metrics()
        tr = _tracer()
        t0 = perf_counter() if rt.registry.enabled else 0.0
        passes = 3 if dec.c > 1 else 2
        with tr.span(
            f"op.parallel.{kind}", m=m, n=n, threads=self.n_workers,
            backend="mp", dtype=str(buf.dtype),
        ) if tr.enabled else _NULL_CM:
            seg = shm_mod.SharedArray((m, n), buf.dtype)
            try:
                np.copyto(seg.array, buf.reshape(m, n))
                if kind == "c2r":
                    if dec.c > 1:
                        self._timed(seg, dec, "pre_rotate", dec.c)
                    self._timed(seg, dec, "row_shuffle", dec.m)
                    self._timed(seg, dec, "column_shuffle", dec.n)
                else:
                    self._timed(seg, dec, "inverse_column_shuffle", dec.n)
                    self._timed(seg, dec, "row_shuffle_r2c", dec.m)
                    if dec.c > 1:
                        self._timed(seg, dec, "post_rotate", dec.c)
                np.copyto(buf.reshape(m, n), seg.array)
            finally:
                seg.destroy()
        if rt.registry.enabled:
            # Theorem 6 accounting, same as the thread backend: the
            # staging copies are scratch traffic and do not count.
            rt.registry.record_call(
                f"parallel.{kind}",
                perf_counter() - t0,
                nbytes=2 * passes * buf.nbytes,
                elements=passes * buf.shape[0],
            )
        return buf

    # -- entry points ----------------------------------------------------------

    def c2r(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Process-parallel C2R transposition of a flat buffer."""
        return self._run(buf, m, n, "c2r")

    def r2c(self, buf: np.ndarray, m: int, n: int) -> np.ndarray:
        """Process-parallel R2C transposition of a flat buffer."""
        return self._run(buf, m, n, "r2c")

    def transpose_inplace(
        self, buf: np.ndarray, m: int, n: int, order: str = "C"
    ) -> np.ndarray:
        """Order-aware entry point with the paper's C2R/R2C heuristic."""
        if order not in ("C", "F"):
            raise ValueError(f"unknown order {order!r}")
        vm, vn = (m, n) if order == "C" else (n, m)
        if choose_algorithm(m, n) == "c2r":
            return self.c2r(buf, vm, vn)
        return self.r2c(buf, vn, vm)

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "MpTranspose":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessWorkerHost:
    """Executes serving batch groups on the process pool.

    One task per group: the parent stages the group into shared memory,
    the worker transposes it in place through its own plan cache, and the
    returned metrics snapshot is handed back for the parent registry to
    merge.  Worker death surfaces as the transient
    :class:`WorkerCrashedError` (pool already rebuilt), which the serving
    retry-once contract absorbs.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str | None = None,
        fault_flag: str | None = None,
    ):
        self.executor = MpExecutor(n_workers, start_method)
        self.fault_flag = fault_flag

    @property
    def n_workers(self) -> int:
        return self.executor.n_workers

    def execute(
        self, shm_name: str, m: int, n: int, order: str, dtype_str: str,
        tiles: int, trace: tuple | None = None,
    ) -> dict:
        """Run one staged group; returns the worker's metrics snapshot.

        ``trace`` is a ``(trace_id, parent span id)`` descriptor; when
        given, the snapshot additionally carries the worker's spans (see
        :func:`_serve_batch_task`)."""
        return self.executor.run_one(
            _serve_batch_task, shm_name, m, n, order, dtype_str, tiles,
            self.fault_flag, trace,
        )

    def shutdown(self) -> None:
        self.executor.shutdown()
