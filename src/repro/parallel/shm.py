"""Shared-memory segments for the multiprocess execution backend.

The mp backend ships only ``(name, shape, dtype, chunk)`` descriptors to
worker processes; the matrix itself lives in a named
:class:`multiprocessing.shared_memory.SharedMemory` segment that every
process maps.  This module owns the two lifecycle problems that come with
that:

* **Parent-side ownership.**  :class:`SharedArray` creates a segment,
  registers it in a process-local table, and ``destroy()`` (close + unlink)
  is idempotent.  ``owned_segments()`` lists what is still live — the
  serving layer reports it as ``shm_leaked`` in the shutdown summary and CI
  asserts it is zero after a SIGTERM drain.  An ``atexit`` hook unlinks
  anything left behind by an abnormal exit so ``/dev/shm`` never
  accumulates ``repro_*`` segments.
* **Child-side attachment.**  :func:`attach_array` maps a segment by name
  with a small LRU of open handles (worker processes see the same few
  staging segments repeatedly) and detaches the attachment from the
  child's ``resource_tracker`` — without that, every child that merely
  *attached* a segment would try to unlink it at exit and spam
  "leaked shared_memory" warnings (bpo-38119).
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SharedArray",
    "attach_array",
    "detach_all",
    "owned_segments",
    "cleanup_owned",
]

_lock = threading.Lock()
#: name -> SharedArray, for segments *created* by this process
_owned: dict[str, "SharedArray"] = {}

#: child-side attachment cache: name -> open SharedMemory handle
_attached: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_ATTACH_CACHE_MAX = 8


def _unique_name() -> str:
    """A segment name unique across processes and collision-safe within one."""
    return f"repro_{os.getpid():x}_{secrets.token_hex(4)}"


class SharedArray:
    """A numpy array backed by a named shared-memory segment this process owns.

    ``seg.array`` is the live ndarray view; ``seg.name`` is the descriptor
    other processes attach by.  ``destroy()`` closes and unlinks — callers
    must copy results out first, since the mapping dies with the segment.
    """

    def __init__(self, shape, dtype) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = self.dtype.itemsize
        for s in self.shape:
            nbytes *= s
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes), name=_unique_name()
        )
        self._name = self._shm.name
        self._owner_pid = os.getpid()
        self._destroyed = False
        self.array: np.ndarray | None = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf
        )
        with _lock:
            _owned[self._name] = self

    @property
    def name(self) -> str:
        return self._name

    def destroy(self) -> None:
        """Close the mapping and unlink the segment (idempotent).

        Only the creating process unlinks: a forked child inheriting this
        object must not tear the parent's segment down.
        """
        with _lock:
            if self._destroyed:
                return
            self._destroyed = True
            _owned.pop(self._name, None)
        self.array = None
        try:
            self._shm.close()
        except BufferError:
            # A view outlived us; the mapping is reclaimed when it dies.
            # Unlinking below still frees the name and backing file.
            pass
        if self._owner_pid == os.getpid():
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


def owned_segments() -> list[str]:
    """Names of segments created by this process and not yet destroyed."""
    with _lock:
        return sorted(name for name, seg in _owned.items()
                      if seg._owner_pid == os.getpid())


def cleanup_owned() -> int:
    """Destroy every still-live owned segment; returns how many there were.

    Runs at interpreter exit as a last-resort leak stop; orderly code paths
    destroy their segments in ``finally`` blocks long before this fires.
    """
    with _lock:
        leaked = [seg for seg in _owned.values()
                  if seg._owner_pid == os.getpid()]
    for seg in leaked:
        seg.destroy()
    return len(leaked)


atexit.register(cleanup_owned)


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without enrolling it in the resource tracker.

    Before 3.13 (``track=False``) the only seam is the module-level
    ``register`` hook; suppressing it during the attach is safe here
    because callers hold :data:`_lock` (and pool workers are
    single-threaded anyway).  Without this, every attaching process would
    believe it owns the segment and try to unlink it at exit.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def attach_array(name: str, shape, dtype) -> np.ndarray:
    """Map an existing segment as an ndarray (child-side descriptor resolve).

    Handles are cached (LRU of :data:`_ATTACH_CACHE_MAX`) because a worker
    process sees the same staging segment once per pass; evicted handles
    close lazily.
    """
    with _lock:
        shm = _attached.get(name)
        if shm is not None:
            _attached.move_to_end(name)
        else:
            shm = _open_untracked(name)
            _attached[name] = shm
            while len(_attached) > _ATTACH_CACHE_MAX:
                _, old = _attached.popitem(last=False)
                try:
                    old.close()
                except BufferError:
                    pass  # a task-local view is still alive; freed with it
    return np.ndarray(tuple(int(s) for s in shape),
                      dtype=np.dtype(dtype), buffer=shm.buf)


def detach_all() -> None:
    """Close every cached attachment (worker shutdown hygiene)."""
    with _lock:
        handles = list(_attached.values())
        _attached.clear()
    for shm in handles:
        try:
            shm.close()
        except BufferError:
            pass
