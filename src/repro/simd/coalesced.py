"""``coalesced_ptr<T>`` (Fig. 10): AoS access through in-register transposes.

An Array of Structures of ``S`` structs x ``m`` words is a row-major
``S x m`` array in memory.  When each lane of a warp wants one whole struct,
the naive ("direct") access pattern issues ``m`` strided loads — the
bandwidth disaster of Section 6.  The coalesced path instead:

* **load**: the warp reads 32 consecutive structs with ``m`` perfectly
  coalesced passes (register row ``r``, lane ``l`` gets word ``r*32 + l`` of
  the batch — a row-major ``m x 32`` register array), then performs an
  in-register **R2C** transpose, leaving lane ``l`` holding struct ``l``.
* **store**: the exact inverse — **C2R** transpose, then ``m`` coalesced
  writes.

Random (gather/scatter) access works the same way per 32-struct batch,
except addresses come from a per-lane index vector: lanes are partitioned
into groups of ``m``, each group cooperatively reading one struct's
contiguous words per round, with a ``shfl`` broadcasting the owning lane's
index.  When ``m`` divides the warp width the loaded rounds again form the
row-major register array and the same R2C finishes the job; otherwise a
generic select-based redistribution runs (costlier in instructions, same
memory behaviour).

Every method also exists in "direct" and "vector" (128-bit) flavours so the
Fig. 8/9 benchmarks can compare all three on identical traffic.
"""

from __future__ import annotations

import numpy as np

from .compiled import CompiledRegisterTranspose
from .machine import SimdMachine
from .memory import AccessRecord, SimulatedMemory
from .transpose import register_c2r, register_r2c

__all__ = ["CoalescedArray"]


class CoalescedArray:
    """Warp-level accessor for an Array of Structures in simulated memory.

    Parameters
    ----------
    memory:
        The backing :class:`SimulatedMemory` (element width = one AoS word).
    struct_words:
        Words per structure (``m``).
    machine:
        The executing warp; its width is the batch size of every operation.
    """

    def __init__(
        self,
        memory: SimulatedMemory,
        struct_words: int,
        machine: SimdMachine | None = None,
        *,
        compiled: bool = True,
    ):
        if struct_words <= 0:
            raise ValueError("struct_words must be positive")
        self.memory = memory
        self.m = struct_words
        self.machine = machine or SimdMachine(32)
        if memory.n_words % struct_words:
            raise ValueError("memory capacity must be a whole number of structs")
        self.n_structs = memory.n_words // struct_words
        # Section 6.2.4: n is fixed by the architecture and m by the struct
        # type, so production kernels precompute every index table.  The
        # dynamic path remains available for comparison (compiled=False).
        self._compiled = (
            CompiledRegisterTranspose(self.m, self.machine.n_lanes)
            if compiled
            else None
        )

    def _r2c(self, rows):
        if self._compiled is not None:
            return self._compiled.r2c(self.machine, rows)
        return register_r2c(self.machine, rows)

    def _c2r(self, regs):
        if self._compiled is not None:
            return self._compiled.c2r(self.machine, regs)
        return register_c2r(self.machine, regs)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def n_lanes(self) -> int:
        return self.machine.n_lanes

    def _check_base(self, base_struct: int) -> None:
        if base_struct < 0 or base_struct + self.n_lanes > self.n_structs:
            raise IndexError("warp batch out of range")

    def _check_idx(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if idx.shape != (self.n_lanes,):
            raise ValueError("one struct index per lane required")
        if (idx < 0).any() or (idx >= self.n_structs).any():
            raise IndexError("struct index out of range")
        return idx

    # ------------------------------------------------------------------
    # Coalesced (C2R/R2C) unit-stride access
    # ------------------------------------------------------------------

    def warp_load(self, base_struct: int) -> list[np.ndarray]:
        """Load structs ``base .. base+n_lanes`` cooperatively.

        Returns ``m`` register rows with ``regs[k][l]`` = field ``k`` of
        struct ``base + l`` — i.e. lane ``l`` owns its struct, at full
        coalescing: every pass reads ``n_lanes`` consecutive words.
        """
        self._check_base(base_struct)
        mach = self.machine
        base_word = base_struct * self.m
        lane = mach.lane_id()
        rows = []
        for r in range(self.m):
            addr = mach.alu(base_word + r * self.n_lanes + lane)
            rows.append(self.memory.load(addr))
            mach.counts.load += 1
        return self._r2c(rows)

    def warp_store(self, base_struct: int, regs: list[np.ndarray]) -> None:
        """Store lane-owned structs cooperatively (C2R, then coalesced
        passes)."""
        self._check_base(base_struct)
        if len(regs) != self.m:
            raise ValueError("register rows must match struct size")
        mach = self.machine
        rows = self._c2r(regs)
        base_word = base_struct * self.m
        lane = mach.lane_id()
        for r in range(self.m):
            addr = mach.alu(base_word + r * self.n_lanes + lane)
            self.memory.store(addr, rows[r])
            mach.counts.store += 1

    # ------------------------------------------------------------------
    # Coalesced random access (gather / scatter)
    # ------------------------------------------------------------------

    def _group_geometry(self) -> tuple[int, int]:
        if self.m > self.n_lanes:
            raise ValueError(
                "random access supports structs up to one warp-width of words"
            )
        groups = self.n_lanes // self.m
        rounds = -(-self.n_lanes // groups)
        return groups, rounds

    def _cooperative_rounds_load(self, idx: np.ndarray) -> list[np.ndarray]:
        """Load one struct per lane-group per round; returns per-round rows."""
        mach = self.machine
        lane = mach.lane_id()
        groups, rounds = self._group_geometry()
        field = lane % self.m
        group = lane // self.m
        active = lane < groups * self.m
        held = []
        for t in range(rounds):
            owner = np.minimum(t * groups + group, self.n_lanes - 1)
            valid = active & (t * groups + group < self.n_lanes)
            owner_idx = mach.shfl(idx, mach.alu(owner))
            addr = mach.alu(owner_idx * self.m + field, ops=2)
            vals = np.zeros(self.n_lanes, dtype=self.memory.data.dtype)
            vals[valid] = self.memory.load(addr[valid])
            mach.counts.load += 1
            held.append(vals)
        return held

    def warp_gather(self, idx: np.ndarray) -> list[np.ndarray]:
        """Random AoS gather: lane ``l`` receives struct ``idx[l]``.

        Per round, each group of ``m`` lanes reads the ``m`` contiguous
        words of one struct — the coalescing win over the direct pattern,
        whose every word is its own scattered access.
        """
        idx = self._check_idx(idx)
        mach = self.machine
        held = self._cooperative_rounds_load(idx)
        groups, rounds = self._group_geometry()

        if self.n_lanes % self.m == 0:
            # held rows are exactly the row-major m x n_lanes register array
            # (round t, lane l holds batch word t*n_lanes + l): finish with
            # the same in-register R2C as the unit-stride path.
            return self._r2c(held)

        # Generic redistribution: destination register k of lane s comes from
        # round s // groups, provider lane (s mod groups) * m + k.
        lane = mach.lane_id()
        src_lane = mach.alu((lane % groups) * self.m, ops=2)
        regs = []
        for k in range(self.m):
            acc = None
            provider = np.minimum(src_lane + k, self.n_lanes - 1)
            for t in range(rounds):
                data = mach.shfl(held[t], provider)
                if acc is None:
                    acc = data
                else:
                    cond = mach.alu(lane // groups == t)
                    acc = mach.select(cond, data, acc)
            regs.append(acc)
        return regs

    def warp_scatter(self, idx: np.ndarray, regs: list[np.ndarray]) -> None:
        """Random AoS scatter: struct in lane ``l`` is written to slot
        ``idx[l]`` — the inverse of :meth:`warp_gather`."""
        idx = self._check_idx(idx)
        if len(regs) != self.m:
            raise ValueError("register rows must match struct size")
        mach = self.machine
        lane = mach.lane_id()
        groups, rounds = self._group_geometry()
        field = lane % self.m
        group = lane // self.m
        active = lane < groups * self.m

        if self.n_lanes % self.m == 0:
            held = self._c2r(regs)
        else:
            # Generic redistribution into round-major rows: round t, provider
            # lane g*m + k must hold field k of struct t*groups + g.
            held = []
            for t in range(rounds):
                owner = np.minimum(t * groups + group, self.n_lanes - 1)
                row = None
                for k in range(self.m):
                    data = mach.shfl(regs[k], mach.alu(owner))
                    if row is None:
                        row = data
                    else:
                        row = mach.select(mach.alu(field == k), data, row)
                held.append(row)

        for t in range(rounds):
            owner = np.minimum(t * groups + group, self.n_lanes - 1)
            valid = active & (t * groups + group < self.n_lanes)
            owner_idx = mach.shfl(idx, mach.alu(owner))
            addr = mach.alu(owner_idx * self.m + field, ops=2)
            self.memory.store(addr[valid], held[t][valid])
            mach.counts.store += 1

    # ------------------------------------------------------------------
    # Baseline access methods (Fig. 8/9 comparison lines)
    # ------------------------------------------------------------------

    def direct_load(self, idx: np.ndarray) -> list[np.ndarray]:
        """Compiler-generated element-wise AoS load: ``m`` strided passes."""
        idx = self._check_idx(idx)
        mach = self.machine
        regs = []
        for k in range(self.m):
            addr = mach.alu(idx * self.m + k, ops=2)
            regs.append(self.memory.load(addr))
            mach.counts.load += 1
        return regs

    def direct_store(self, idx: np.ndarray, regs: list[np.ndarray]) -> None:
        """Compiler-generated element-wise AoS store."""
        idx = self._check_idx(idx)
        if len(regs) != self.m:
            raise ValueError("register rows must match struct size")
        mach = self.machine
        for k in range(self.m):
            addr = mach.alu(idx * self.m + k, ops=2)
            self.memory.store(addr, regs[k])
            mach.counts.store += 1

    def vector_load(
        self, idx: np.ndarray, vector_bytes: int = 16
    ) -> list[np.ndarray]:
        """Native fixed-width vector loads (the K20c's 128-bit accesses).

        Each lane issues ``ceil(struct_bytes / vector_bytes)`` vector loads;
        the trace records the full vector footprint per lane, which is what
        the memory system sees.
        """
        idx = self._check_idx(idx)
        mach = self.machine
        words_per_vec = max(1, vector_bytes // self.memory.itemsize)
        regs: list[np.ndarray] = [None] * self.m  # type: ignore[list-item]
        for v in range(0, self.m, words_per_vec):
            hi = min(v + words_per_vec, self.m)
            addr0 = mach.alu(idx * self.m + v, ops=2)
            # one vector access per lane: record the vector footprint
            self.memory.trace.append(
                AccessRecord(
                    "load",
                    np.asarray(addr0) * self.memory.itemsize,
                    (hi - v) * self.memory.itemsize,
                )
            )
            mach.counts.load += 1
            for k in range(v, hi):
                regs[k] = self.memory.load(idx * self.m + k, record=False)
        return regs

    def vector_store(
        self, idx: np.ndarray, regs: list[np.ndarray], vector_bytes: int = 16
    ) -> None:
        """Native fixed-width vector stores."""
        idx = self._check_idx(idx)
        if len(regs) != self.m:
            raise ValueError("register rows must match struct size")
        mach = self.machine
        words_per_vec = max(1, vector_bytes // self.memory.itemsize)
        for v in range(0, self.m, words_per_vec):
            hi = min(v + words_per_vec, self.m)
            addr0 = mach.alu(idx * self.m + v, ops=2)
            self.memory.trace.append(
                AccessRecord(
                    "store",
                    np.asarray(addr0) * self.memory.itemsize,
                    (hi - v) * self.memory.itemsize,
                )
            )
            mach.counts.store += 1
            for k in range(v, hi):
                self.memory.store(idx * self.m + k, regs[k], record=False)
