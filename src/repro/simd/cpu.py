"""CPU-SIMD instantiation: the in-register transpose at vector width.

The paper (abstract, Section 1) claims the algorithm "can be instantiated
efficiently for solving various transpose problems on both CPUs and GPUs".
A CPU SIMD unit is a very narrow warp — 8 float32 lanes for AVX, 4 float64
lanes for AVX/NEON — whose ``shfl`` is a permute/shuffle instruction and
whose conditional moves are blends.

:class:`WideSimdMachine` executes the identical algorithm *simultaneously
for many independent lane-groups*: every register row is a ``(groups,
n_lanes)`` matrix and each warp-instruction becomes one numpy operation
over all groups — the software analogue of running the unrolled SIMD
kernel over a long array.  On top of it, :func:`deinterleave` /
:func:`interleave` convert an AoS of small structs to/from SoA entirely
through the register algorithm (rotations + shuffles + renaming), which is
how the CPU kernels in the authors' ``trove``-style libraries operate.
"""

from __future__ import annotations

import numpy as np

from .machine import SimdMachine
from .transpose import register_c2r, register_r2c

__all__ = ["WideSimdMachine", "deinterleave", "interleave"]


class WideSimdMachine(SimdMachine):
    """A batch of ``groups`` independent SIMD groups of ``n_lanes`` lanes.

    All warp-wide primitives act on ``(groups, n_lanes)`` value matrices;
    instruction counts tally *vector* instructions (one per row operation,
    covering every group), matching how an unrolled CPU loop issues one
    shuffle/blend per iteration.
    """

    def __init__(self, groups: int, n_lanes: int = 8):
        super().__init__(n_lanes)
        if groups <= 0:
            raise ValueError("groups must be positive")
        self.groups = groups

    @property
    def value_shape(self) -> tuple[int, ...]:
        return (self.groups, self.n_lanes)


def deinterleave(buf: np.ndarray, struct_size: int, n_lanes: int = 8) -> np.ndarray:
    """AoS -> SoA through the in-register algorithm (out-of-place view).

    ``buf`` holds ``k * n_lanes`` structs of ``struct_size`` elements; the
    result is the ``(struct_size, k * n_lanes)`` SoA matrix.  Each group of
    ``n_lanes`` structs is processed exactly like a SIMD register block:
    ``struct_size`` vector loads, an in-register R2C, ``struct_size``
    stores.  The group dimension is fully vectorized.
    """
    buf = np.ascontiguousarray(buf)
    m = struct_size
    if m <= 0:
        raise ValueError("struct_size must be positive")
    if buf.ndim != 1 or buf.shape[0] % (m * n_lanes):
        raise ValueError(
            f"buffer length must be a multiple of struct_size*n_lanes "
            f"= {m * n_lanes}"
        )
    groups = buf.shape[0] // (m * n_lanes)
    mach = WideSimdMachine(groups, n_lanes)
    # vector loads: register row r of group g = words [g*m*n + r*n, +n)
    tile = buf.reshape(groups, m, n_lanes)
    regs = [tile[:, r, :] for r in range(m)]
    out_rows = register_r2c(mach, regs)
    # row k now holds field k of each group's n_lanes structs
    out = np.empty((m, groups * n_lanes), dtype=buf.dtype)
    for k in range(m):
        out[k] = out_rows[k].reshape(-1)
    return out


def interleave(soa: np.ndarray, n_lanes: int = 8) -> np.ndarray:
    """SoA -> AoS through the in-register algorithm; inverse of
    :func:`deinterleave`.

    ``soa`` is the ``(struct_size, count)`` field-major matrix with
    ``count`` a multiple of ``n_lanes``; returns the flat AoS buffer.
    """
    soa = np.ascontiguousarray(soa)
    if soa.ndim != 2:
        raise ValueError("expected a (struct_size, count) matrix")
    m, count = soa.shape
    if count % n_lanes:
        raise ValueError(f"count must be a multiple of n_lanes = {n_lanes}")
    groups = count // n_lanes
    mach = WideSimdMachine(groups, n_lanes)
    regs = [soa[k].reshape(groups, n_lanes) for k in range(m)]
    rows = register_c2r(mach, regs)
    out = np.empty(m * count, dtype=soa.dtype)
    tile = out.reshape(groups, m, n_lanes)
    for r in range(m):
        tile[:, r, :] = rows[r]
    return out
