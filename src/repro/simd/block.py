"""A multi-warp thread block and the on-chip row shuffle (Section 4.5).

"Implementing arbitrary row shuffle operations requires two passes over
each row along with the use of temporary storage ...  If on-chip storage is
sufficient, whether in caches or in register files, we can perform row
shuffle operations in a single pass, without writing the intermediate
result to temporary storage in memory."

:class:`ThreadBlock` groups several :class:`~repro.simd.machine.SimdMachine`
warps around a banked :class:`~repro.simd.sharedmem.SharedMemory` with
barrier accounting.  Two executable row-shuffle kernels are built on it:

* :func:`onchip_row_shuffle` — the single-pass §4.5 kernel: coalesced loads
  of the whole row on chip, the ``d'^{-1}`` gather resolved against shared
  memory, coalesced stores.  Global traffic: one read + one write per
  element.
* :func:`twopass_row_shuffle` — the fallback when the row does not fit:
  gather-read → global scratch → copy back.  Global traffic: two reads +
  two writes per element, with the gather read scattered.

The ablation benchmark prices both against the memory model, reproducing
why the paper spends register file on rows of up to 29440 doubles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import equations as eq
from ..core.indexing import Decomposition
from .machine import SimdMachine
from .memory import SimulatedMemory
from .sharedmem import SharedMemory

__all__ = ["ThreadBlock", "BlockStats", "onchip_row_shuffle", "twopass_row_shuffle"]


@dataclass
class BlockStats:
    """Accounting for one block-level kernel execution."""

    barriers: int = 0
    global_loads: int = 0
    global_stores: int = 0
    smem_cycles: int = 0


class ThreadBlock:
    """``n_warps`` warps sharing one on-chip scratchpad.

    ``capacity_words`` is the shared allocation (the §4.5 on-chip budget —
    register file in the paper's kernel, shared memory here; the traffic
    consequences are identical).
    """

    def __init__(
        self,
        n_warps: int = 8,
        warp_size: int = 32,
        capacity_words: int = 29440,
        dtype=np.float64,
    ):
        if n_warps <= 0:
            raise ValueError("n_warps must be positive")
        self.warps = [SimdMachine(warp_size) for _ in range(n_warps)]
        self.warp_size = warp_size
        self.smem = SharedMemory(capacity_words, dtype=dtype)
        self.stats = BlockStats()

    @property
    def n_threads(self) -> int:
        return len(self.warps) * self.warp_size

    @property
    def capacity_words(self) -> int:
        return self.smem.n_words

    def barrier(self) -> None:
        """__syncthreads(): all warps rendezvous."""
        self.stats.barriers += 1


def _for_each_warp_chunk(block: ThreadBlock, n: int):
    """Yield (warp, chunk-of-columns) assignments striding the row across
    the block's warps, warp_size columns at a time."""
    w = block.warp_size
    chunk = 0
    while chunk * w < n:
        warp = block.warps[chunk % len(block.warps)]
        lo = chunk * w
        yield warp, np.arange(lo, min(lo + w, n), dtype=np.int64)
        chunk += 1


def onchip_row_shuffle(
    memory: SimulatedMemory,
    row: int,
    dec: Decomposition,
    block: ThreadBlock,
) -> BlockStats:
    """Shuffle row ``row`` by ``d'^{-1}`` in a single global pass (§4.5).

    Raises :class:`ValueError` when the row exceeds the block's on-chip
    capacity — the condition that forces :func:`twopass_row_shuffle`.
    """
    n = dec.n
    if n > block.capacity_words:
        raise ValueError(
            f"row of {n} elements exceeds on-chip capacity "
            f"({block.capacity_words}); use the two-pass shuffle"
        )
    base = row * n
    # phase 1: coalesced global loads, linear smem fill
    for warp, cols in _for_each_warp_chunk(block, n):
        vals = memory.load(base + cols)
        warp.counts.load += 1
        block.stats.global_loads += 1
        block.smem.store(cols, vals)
    block.barrier()
    # phase 2: on-chip gather by d'^{-1}, coalesced global stores
    for warp, cols in _for_each_warp_chunk(block, n):
        src = eq.dprime_inverse_v(dec, np.int64(row), cols)
        vals = block.smem.load(src)
        memory.store(base + cols, vals)
        warp.counts.store += 1
        block.stats.global_stores += 1
    block.barrier()
    block.stats.smem_cycles = block.smem.stats.cycles
    return block.stats


def twopass_row_shuffle(
    memory: SimulatedMemory,
    scratch: SimulatedMemory,
    row: int,
    dec: Decomposition,
    block: ThreadBlock,
) -> BlockStats:
    """The fallback: gather-read to a *global* scratch row, copy back.

    Global traffic per element: one scattered read + one scratch write +
    one scratch read + one write — double the single-pass kernel's.
    """
    n = dec.n
    if scratch.n_words < n:
        raise ValueError("scratch must hold one full row")
    base = row * n
    for warp, cols in _for_each_warp_chunk(block, n):
        src = eq.dprime_inverse_v(dec, np.int64(row), cols)
        vals = memory.load(base + src)  # scattered gather
        warp.counts.load += 1
        block.stats.global_loads += 1
        scratch.store(cols, vals)
        block.stats.global_stores += 1
    block.barrier()
    for warp, cols in _for_each_warp_chunk(block, n):
        vals = scratch.load(cols)
        block.stats.global_loads += 1
        memory.store(base + cols, vals)
        warp.counts.store += 1
        block.stats.global_stores += 1
    block.barrier()
    return block.stats
