"""Static row permutation by register renaming (Section 6.2.3).

The column-shuffle factor ``q`` permutes all lanes' registers *identically*
and the permutation is known once the struct size is known — so a real
implementation performs it in the compiler by renaming registers, at zero
runtime cost.  The simulator mirrors that: it reorders the register-row
list without issuing any instructions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["static_row_permute"]


def static_row_permute(
    regs: list[np.ndarray], gather: np.ndarray
) -> list[np.ndarray]:
    """Rename registers: new register ``i`` is old register ``gather[i]``.

    Zero instructions — this is the compile-time renaming the paper relies
    on ("in many cases this permutation can be implemented statically
    without any hardware instructions").
    """
    gather = np.asarray(gather, dtype=np.int64)
    m = len(regs)
    if gather.shape != (m,):
        raise ValueError("gather must name one source per register row")
    if sorted(gather.tolist()) != list(range(m)):
        raise ValueError("gather must be a permutation of the register rows")
    return [regs[int(g)] for g in gather]
