"""Statically compiled in-register transposes (Section 6.2.4).

"Since n is constant for a given architecture, and m, the size of the
structure in registers, is static, the task of computing indices can be
simplified through careful strength reduction and static precomputation."

:class:`CompiledRegisterTranspose` does exactly that: for a fixed
``(m, n_lanes)`` it precomputes, once,

* the per-row shuffle source-lane vectors (``d'^{-1}_i`` / ``d'_i``),
* the per-lane rotation amounts and their bit decompositions, and
* the static renaming permutations (``q`` / ``q^{-1}``),

so executing a transpose issues *only* data-movement instructions: the ALU
counter stays at zero, matching a fully unrolled CUDA kernel whose index
math was folded at compile time.  Results are bit-identical to the dynamic
:func:`~repro.simd.transpose.register_c2r` path (tested).
"""

from __future__ import annotations

import numpy as np

from ..core import equations as eq
from ..core.indexing import Decomposition
from .machine import SimdMachine

__all__ = ["CompiledRegisterTranspose"]


class CompiledRegisterTranspose:
    """Precompiled C2R/R2C for one ``(m, n_lanes)`` register geometry."""

    def __init__(self, m: int, n_lanes: int):
        if m <= 0:
            raise ValueError("m must be positive")
        if n_lanes <= 0:
            raise ValueError("n_lanes must be positive")
        self.m = m
        self.n_lanes = n_lanes
        dec = Decomposition.of(m, n_lanes)
        self.dec = dec
        lane = np.arange(n_lanes, dtype=np.int64)
        rows = np.arange(m, dtype=np.int64)

        # --- static tables (the "compile time" work) ----------------------
        self._shfl_c2r = [
            eq.dprime_inverse_v(dec, np.int64(i), lane) for i in range(m)
        ]
        self._shfl_r2c = [eq.dprime_v(dec, np.int64(i), lane) for i in range(m)]
        self._q = eq.permute_q_v(dec, rows)
        self._q_inv = eq.permute_q_inverse_v(dec, rows)
        self._n_stages = int(np.ceil(np.log2(m))) if m > 1 else 0
        self._rot_bits = {
            name: [((amounts % m) >> k) & 1 for k in range(self._n_stages)]
            for name, amounts in {
                "pre": lane // dec.b,
                "pre_inv": (-(lane // dec.b)) % m,
                "p": lane % m,
                "p_inv": (-lane) % m,
            }.items()
        }

    # --- execution: pure data movement, zero runtime index math ----------

    def _rotate(self, machine: SimdMachine, regs, which: str):
        m = self.m
        if m == 1:
            return list(regs)
        regs = list(regs)
        for k in range(self._n_stages):
            d = 1 << k
            bit = self._rot_bits[which][k]
            rotated = [regs[(i + d) % m] for i in range(m)]
            regs = [machine.select(bit, rotated[i], regs[i]) for i in range(m)]
        return regs

    def _check(self, machine: SimdMachine, regs) -> None:
        if machine.n_lanes != self.n_lanes:
            raise ValueError("machine width does not match the compiled geometry")
        if len(regs) != self.m:
            raise ValueError("register count does not match the compiled geometry")

    def c2r(self, machine: SimdMachine, regs) -> list[np.ndarray]:
        """Compiled C2R: identical result to ``register_c2r`` with zero ALU
        instructions issued."""
        self._check(machine, regs)
        if self.dec.c > 1:
            regs = self._rotate(machine, regs, "pre")
        regs = [machine.shfl(regs[i], self._shfl_c2r[i]) for i in range(self.m)]
        regs = self._rotate(machine, regs, "p")
        return [regs[int(g)] for g in self._q]

    def r2c(self, machine: SimdMachine, regs) -> list[np.ndarray]:
        """Compiled R2C (the AoS load direction of Fig. 10)."""
        self._check(machine, regs)
        regs = [regs[int(g)] for g in self._q_inv]
        regs = self._rotate(machine, regs, "p_inv")
        regs = [machine.shfl(regs[i], self._shfl_r2c[i]) for i in range(self.m)]
        if self.dec.c > 1:
            regs = self._rotate(machine, regs, "pre_inv")
        return regs
