"""Executable SIMD-machine substrate for the in-register transpose (Section 6).

The paper's final contribution maps the decomposition onto a SIMD register
file: a warp of ``n`` lanes, each holding ``m`` registers, forms an ``m x n``
array on which

* row shuffles are lane ``shfl`` instructions (Section 6.2.1),
* dynamic per-lane column rotations are branch-free barrel rotations of
  statically-indexed registers (``ceil(log2 m)`` stages of conditional
  moves, Section 6.2.2), and
* the static row permutation is free — compiler register renaming
  (Section 6.2.3).

Since no GPU is available here, :class:`~repro.simd.machine.SimdMachine`
*executes* these primitives (with instruction counting) over numpy arrays,
and :mod:`~repro.simd.transpose` builds the full in-register C2R/R2C on it.
:mod:`~repro.simd.coalesced` implements the ``coalesced_ptr<T>`` interface
of Fig. 10 against a simulated memory, producing the address traces the
Fig. 8/9 benchmarks analyze.
"""

from .machine import InstructionCounts, SimdMachine
from .sharedmem import SharedMemory, SmemStagedAccessor
from .smem import SmemSimdMachine
from .memory import SimulatedMemory
from .rotate import dynamic_column_rotate
from .rowperm import static_row_permute
from .transpose import register_c2r, register_r2c
from .coalesced import CoalescedArray
from .block import BlockStats, ThreadBlock, onchip_row_shuffle, twopass_row_shuffle
from .compiled import CompiledRegisterTranspose
from .cpu import WideSimdMachine, deinterleave, interleave

__all__ = [
    "SimdMachine",
    "SmemSimdMachine",
    "SharedMemory",
    "SmemStagedAccessor",
    "InstructionCounts",
    "SimulatedMemory",
    "dynamic_column_rotate",
    "static_row_permute",
    "register_c2r",
    "register_r2c",
    "CoalescedArray",
    "WideSimdMachine",
    "CompiledRegisterTranspose",
    "ThreadBlock",
    "BlockStats",
    "onchip_row_shuffle",
    "twopass_row_shuffle",
    "deinterleave",
    "interleave",
]
