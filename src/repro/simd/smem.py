"""Shared-memory shuffle fallback (Section 6.2.1).

"For SIMD processors that do not provide a shuffle instruction, the shuffle
can be simulated using a very small amount of on-chip memory that can hold
one register for each SIMD lane."

:class:`SmemSimdMachine` overrides ``shfl`` with exactly that: every lane
stores its value into a lane-indexed scratchpad slot, synchronizes, and
loads from the source lane's slot.  Everything built on the machine — the
in-register transposes, the coalesced accessor — runs unchanged, with the
cost model reflecting the extra traffic (one store + one load + a barrier
per emulated shuffle instead of one ``shfl``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import InstructionCounts, SimdMachine

__all__ = ["SmemCounts", "SmemSimdMachine"]


@dataclass
class SmemCounts(InstructionCounts):
    """Instruction tally extended with scratchpad traffic."""

    smem_store: int = 0
    smem_load: int = 0
    barrier: int = 0

    @property
    def total(self) -> int:  # type: ignore[override]
        return (
            super().total + self.smem_store + self.smem_load + self.barrier
        )

    def reset(self) -> None:  # type: ignore[override]
        super().reset()
        self.smem_store = self.smem_load = self.barrier = 0


class SmemSimdMachine(SimdMachine):
    """A SIMD machine without a shuffle unit: shuffles go through a
    lane-wide on-chip scratchpad.

    The scratchpad holds exactly ``n_lanes`` values — "a very small amount
    of on-chip memory that can hold one register for each SIMD lane".
    """

    def __init__(self, n_lanes: int = 32):
        super().__init__(n_lanes)
        self.counts = SmemCounts()
        self._scratch = np.zeros(n_lanes)

    def shfl(self, values: np.ndarray, src_lane: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        src = np.asarray(src_lane, dtype=np.int64)
        if values.shape != (self.n_lanes,) or src.shape != (self.n_lanes,):
            raise ValueError("shfl operands must be one value per lane")
        if (src < 0).any() or (src >= self.n_lanes).any():
            raise ValueError("shfl source lane out of range")
        # store phase: every lane writes its slot
        scratch = values.copy()
        self.counts.smem_store += 1
        # synchronize so loads observe all stores
        self.counts.barrier += 1
        # load phase: every lane reads its source's slot
        self.counts.smem_load += 1
        return scratch[src]
