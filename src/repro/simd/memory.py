"""Simulated global memory with warp-access tracing.

Every warp-wide load/store records the byte addresses it touched; the
:mod:`repro.gpusim.memory` transaction analyzer later converts traces into
128-byte-transaction counts.  Data movement is real (loads return the stored
values), so correctness of the coalesced access path is testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulatedMemory", "AccessRecord"]


@dataclass(frozen=True)
class AccessRecord:
    """One warp-wide memory operation: kind + byte addresses touched."""

    kind: str  # "load" | "store"
    byte_addresses: np.ndarray  # per-lane starting byte address
    access_bytes: int  # bytes touched per lane


class SimulatedMemory:
    """A flat word-addressed memory of fixed element width.

    Parameters
    ----------
    n_words:
        Capacity in elements.
    itemsize:
        Element width in bytes (4 for the paper's Fig. 8/9 "32-bit words").
    dtype:
        Storage dtype (must match ``itemsize``).
    """

    def __init__(self, n_words: int, itemsize: int = 4, dtype=np.int64):
        if n_words <= 0:
            raise ValueError("memory must have positive capacity")
        if itemsize <= 0:
            raise ValueError("itemsize must be positive")
        self.itemsize = itemsize
        self.data = np.zeros(n_words, dtype=dtype)
        self.trace: list[AccessRecord] = []

    @property
    def n_words(self) -> int:
        return int(self.data.shape[0])

    def _check(self, word_addrs: np.ndarray) -> np.ndarray:
        a = np.asarray(word_addrs, dtype=np.int64)
        if (a < 0).any() or (a >= self.n_words).any():
            raise IndexError("memory access out of bounds")
        return a

    def load(self, word_addrs: np.ndarray, *, record: bool = True) -> np.ndarray:
        """Warp load: one word per lane address.  Returns the values."""
        a = self._check(word_addrs)
        if record:
            self.trace.append(
                AccessRecord("load", a * self.itemsize, self.itemsize)
            )
        return self.data[a].copy()

    def store(
        self, word_addrs: np.ndarray, values: np.ndarray, *, record: bool = True
    ) -> None:
        """Warp store: one word per lane address."""
        a = self._check(word_addrs)
        values = np.asarray(values)
        if values.shape != a.shape:
            raise ValueError("store values must match addresses")
        if record:
            self.trace.append(
                AccessRecord("store", a * self.itemsize, self.itemsize)
            )
        self.data[a] = values

    def clear_trace(self) -> None:
        self.trace.clear()
