"""Dynamic column rotation as a branch-free barrel rotation (Section 6.2.2).

Every lane must rotate its private register column by a *lane-dependent*
amount.  Branching on the amount would serialize the warp; instead the
rotation is performed like a VLSI barrel shifter: ``ceil(log2 m)`` stages,
where stage ``k`` conditionally rotates by ``2**k`` using per-lane selects.
Register indexing stays fully static — stage ``k``'s candidate value for
register ``i`` is register ``(i + 2**k) mod m``, a compile-time constant
offset — so the loop unrolls into straight-line conditional moves.

Cost: exactly ``m * ceil(log2 m)`` select instructions per rotated array
("we must do ceil(log2 m) select instructions per element").
"""

from __future__ import annotations

import numpy as np

from .machine import SimdMachine

__all__ = ["dynamic_column_rotate"]


def dynamic_column_rotate(
    machine: SimdMachine, regs: list[np.ndarray], amounts: np.ndarray
) -> list[np.ndarray]:
    """Rotate each lane's register column upward by a per-lane amount.

    Parameters
    ----------
    machine:
        The warp executing the rotation.
    regs:
        ``m`` register rows, each a ``(n_lanes,)`` vector; ``regs[i][j]`` is
        register ``i`` of lane ``j``.  Not modified; the rotated rows are
        returned.
    amounts:
        Per-lane rotation amounts (normalized mod ``m`` internally; one ALU
        op models the normalization).

    Returns the rotated register rows: lane ``j``'s new register ``i`` holds
    its old register ``(i + amounts[j]) mod m``.
    """
    m = len(regs)
    if m == 0:
        raise ValueError("register array must be non-empty")
    amounts = np.asarray(amounts, dtype=np.int64)
    if amounts.shape != (machine.n_lanes,):
        raise ValueError("one rotation amount per lane required")
    amounts = machine.alu(amounts % m)
    regs = list(regs)
    if m == 1:
        return regs

    n_stages = int(np.ceil(np.log2(m)))
    for k in range(n_stages):
        d = 1 << k
        bit = machine.alu((amounts >> k) & 1)
        # Static indexing: candidate for register i is register (i + d) mod m
        # of the *current* stage input.
        rotated = [regs[(i + d) % m] for i in range(m)]
        regs = [
            machine.select(bit, rotated[i], regs[i]) for i in range(m)
        ]
    return regs
