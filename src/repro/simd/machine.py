"""The simulated SIMD machine: lanes, registers, and warp-wide primitives.

The machine executes the exact primitive set the paper's in-register
transpose needs, nothing more:

``shfl``
    Warp shuffle: every lane reads a register value from another lane
    (CUDA's ``__shfl``).  One instruction per register row moved.
``select``
    Predicated move (conditional select) — the building block of the
    branch-free barrel rotation.  SIMD divergence never occurs because both
    sides of every select are executed unconditionally.
``alu``
    Lane-local integer arithmetic for index computation.

All operations are warp-wide: operands are ``(n_lanes,)`` vectors.  The
instruction counters feed the compute-time side of the Fig. 8/9 model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InstructionCounts", "SimdMachine"]


@dataclass
class InstructionCounts:
    """Warp-wide instruction tally (one unit = one warp instruction)."""

    shfl: int = 0
    select: int = 0
    alu: int = 0
    load: int = 0
    store: int = 0

    @property
    def total(self) -> int:
        return self.shfl + self.select + self.alu + self.load + self.store

    def reset(self) -> None:
        self.shfl = self.select = self.alu = self.load = self.store = 0


class SimdMachine:
    """A warp of ``n_lanes`` SIMD lanes executing warp-wide operations.

    Register state lives in caller-held ``(n_lanes,)`` numpy vectors (one
    per register row); the machine provides the cross-lane and predicated
    primitives and counts instructions.
    """

    def __init__(self, n_lanes: int = 32):
        if n_lanes <= 0:
            raise ValueError("n_lanes must be positive")
        self.n_lanes = n_lanes
        self.counts = InstructionCounts()

    @property
    def value_shape(self) -> tuple[int, ...]:
        """Shape of one register row's value vector (one value per lane).

        Wide machines (many groups in flight) override this; the transpose
        algorithms validate operands against it rather than hard-coding
        ``(n_lanes,)``.
        """
        return (self.n_lanes,)

    # -- lane-local ----------------------------------------------------------

    def lane_id(self) -> np.ndarray:
        """The lane index vector (free — hardware register)."""
        return np.arange(self.n_lanes, dtype=np.int64)

    def alu(self, values: np.ndarray, ops: int = 1) -> np.ndarray:
        """Tag a lane-local computed vector with its ALU instruction cost."""
        self.counts.alu += ops
        return values

    # -- warp-wide ------------------------------------------------------------

    def shfl(self, values: np.ndarray, src_lane: np.ndarray) -> np.ndarray:
        """Warp shuffle: lane ``l`` receives ``values`` from lane
        ``src_lane[l]``.  Out-of-range sources are undefined in hardware;
        here they raise."""
        values = np.asarray(values)
        src = np.asarray(src_lane, dtype=np.int64)
        if values.shape != self.value_shape or src.shape != (self.n_lanes,):
            raise ValueError("shfl operands must be one value per lane")
        if (src < 0).any() or (src >= self.n_lanes).any():
            raise ValueError("shfl source lane out of range")
        self.counts.shfl += 1
        return values[..., src]

    def select(
        self, cond: np.ndarray, if_true: np.ndarray, if_false: np.ndarray
    ) -> np.ndarray:
        """Predicated move: per-lane ``cond ? if_true : if_false``."""
        cond = np.asarray(cond)
        if cond.shape != (self.n_lanes,):
            raise ValueError("select condition must be one value per lane")
        self.counts.select += 1
        return np.where(cond.astype(bool), if_true, if_false)

    def reset_counts(self) -> None:
        self.counts.reset()
