"""Shared memory with bank-conflict accounting — the traditional on-chip
transpose the paper's approach replaces.

Section 1: "programmers access the data in transposed order ... performing
transpositions in on-chip memory to route the data to each SIMD lane.  This
technique is effective, but allocating on-chip memory in order to perform
this transpose out-of-place can be difficult, especially when scarce
on-chip memory resources are occupied with other tasks."

:class:`SharedMemory` models a banked scratchpad (32 banks x 4 bytes on
Kepler): a warp access that maps several lanes to one bank serializes, so
the cost of an access is its maximum bank multiplicity.
:class:`SmemStagedAccessor` then implements the *traditional* AoS access —
stage a tile through shared memory, read it back transposed — so the
benchmarks can weigh it against the in-register path on three axes the
paper argues: shared-memory footprint, bank conflicts, and instruction
count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import SimdMachine
from .memory import SimulatedMemory

__all__ = ["SharedMemory", "SmemStagedAccessor"]


@dataclass
class SmemStats:
    """Traffic/conflict accounting for a shared-memory region."""

    accesses: int = 0
    cycles: int = 0  # bank-serialized cycles consumed

    @property
    def conflict_factor(self) -> float:
        """Average serialization (1.0 = conflict-free)."""
        return self.cycles / self.accesses if self.accesses else 1.0


class SharedMemory:
    """A banked on-chip scratchpad.

    Parameters
    ----------
    n_words:
        Capacity in 4-byte-equivalent words (the allocation the kernel
        requests — the scarce resource).
    n_banks:
        Bank count (32 on Kepler); successive words live in successive
        banks.
    """

    def __init__(self, n_words: int, n_banks: int = 32, dtype=np.int64):
        if n_words <= 0:
            raise ValueError("shared memory must have positive capacity")
        if n_banks <= 0:
            raise ValueError("bank count must be positive")
        self.data = np.zeros(n_words, dtype=dtype)
        self.n_banks = n_banks
        self.stats = SmemStats()

    @property
    def n_words(self) -> int:
        return int(self.data.shape[0])

    def _account(self, addrs: np.ndarray) -> None:
        banks = np.asarray(addrs, dtype=np.int64) % self.n_banks
        _, counts = np.unique(banks, return_counts=True)
        self.stats.accesses += 1
        self.stats.cycles += int(counts.max()) if counts.size else 1

    def _check(self, addrs: np.ndarray) -> np.ndarray:
        a = np.asarray(addrs, dtype=np.int64)
        if (a < 0).any() or (a >= self.n_words).any():
            raise IndexError("shared-memory access out of bounds")
        return a

    def store(self, addrs: np.ndarray, values: np.ndarray) -> None:
        a = self._check(addrs)
        self._account(a)
        self.data[a] = values

    def load(self, addrs: np.ndarray) -> np.ndarray:
        a = self._check(addrs)
        self._account(a)
        return self.data[a].copy()


class SmemStagedAccessor:
    """The traditional AoS vector load/store: stage a warp's structures
    through shared memory instead of transposing in registers.

    Load path: the warp reads ``m`` coalesced rows from global memory and
    *scatters* them into shared memory in struct-major order; each lane
    then reads its own structure back contiguously.  Store is the mirror.
    Costs relative to the register path (Fig. 10's ``coalesced_ptr``):

    * a shared allocation of ``m * n_lanes`` words per warp in flight —
      the occupancy pressure the paper's technique avoids entirely;
    * bank conflicts on the struct-major phase (stride-``m`` bank patterns
      serialize up to ``gcd(m, banks)``-way).
    """

    def __init__(
        self,
        memory: SimulatedMemory,
        struct_words: int,
        machine: SimdMachine | None = None,
    ):
        if struct_words <= 0:
            raise ValueError("struct_words must be positive")
        self.memory = memory
        self.m = struct_words
        self.machine = machine or SimdMachine(32)
        if memory.n_words % struct_words:
            raise ValueError("memory capacity must be a whole number of structs")
        self.n_structs = memory.n_words // struct_words
        self.smem = SharedMemory(
            self.m * self.machine.n_lanes, dtype=memory.data.dtype
        )

    @property
    def smem_words(self) -> int:
        """Shared-memory footprint per warp (the scarce resource)."""
        return self.smem.n_words

    def warp_load(self, base_struct: int) -> list[np.ndarray]:
        """Load structs ``base .. base+n_lanes`` via the smem staging path."""
        mach = self.machine
        n = mach.n_lanes
        if base_struct < 0 or base_struct + n > self.n_structs:
            raise IndexError("warp batch out of range")
        lane = mach.lane_id()
        base_word = base_struct * self.m
        # phase 1: coalesced global reads, struct-major smem writes
        for r in range(self.m):
            vals = self.memory.load(base_word + r * n + lane)
            mach.counts.load += 1
            word = r * n + lane  # batch word index
            self.smem.store((word % self.m) * n + word // self.m, vals)
        # phase 2: each lane reads its own struct contiguously (row f of
        # the smem tile, lane-indexed -> conflict-free broadcast rows)
        regs = []
        for f in range(self.m):
            regs.append(self.smem.load(f * n + lane))
        return regs

    def warp_store(self, base_struct: int, regs: list[np.ndarray]) -> None:
        """Store lane-owned structs via the smem staging path."""
        mach = self.machine
        n = mach.n_lanes
        if base_struct < 0 or base_struct + n > self.n_structs:
            raise IndexError("warp batch out of range")
        if len(regs) != self.m:
            raise ValueError("register rows must match struct size")
        lane = mach.lane_id()
        base_word = base_struct * self.m
        for f in range(self.m):
            self.smem.store(f * n + lane, regs[f])
        for r in range(self.m):
            word = r * n + lane
            vals = self.smem.load((word % self.m) * n + word // self.m)
            self.memory.store(base_word + r * n + lane, vals)
            mach.counts.store += 1
