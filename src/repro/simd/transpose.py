"""The in-register C2R/R2C transpose on the simulated warp (Section 6.2).

A warp of ``n`` lanes holding ``m`` registers each forms an ``m x n`` array
(register row ``i`` x lane ``j``).  The restricted-column-operation form of
the decomposition maps directly onto the machine primitives:

=====================  ============================================  ========
pass                   primitive                                     cost
=====================  ============================================  ========
pre-rotation (c > 1)   dynamic rotate, amounts ``j // b``            m·log m sel
row shuffle            one ``shfl`` per register row (``d'^{-1}``)   m shfl
column rotation        dynamic rotate, amounts ``j``                 m·log m sel
row permutation ``q``  register renaming                             free
=====================  ============================================  ========

R2C is the exact inverse sequence.  Loading an Array of Structures with
coalesced passes leaves the data row-major in the register file; an R2C
transpose then hands each lane its own structure (and C2R undoes it before
a store) — this is why Fig. 10's ``coalesced_ptr`` reads via R2C and writes
via C2R.
"""

from __future__ import annotations

import numpy as np

from ..core import equations as eq
from ..core.indexing import Decomposition
from .machine import SimdMachine
from .rotate import dynamic_column_rotate
from .rowperm import static_row_permute

__all__ = ["register_c2r", "register_r2c"]


def _check(machine: SimdMachine, regs: list[np.ndarray]) -> Decomposition:
    if not regs:
        raise ValueError("register array must be non-empty")
    for r in regs:
        if np.asarray(r).shape != machine.value_shape:
            raise ValueError("each register row must hold one value per lane")
    return Decomposition.of(len(regs), machine.n_lanes)


def register_c2r(
    machine: SimdMachine, regs: list[np.ndarray]
) -> list[np.ndarray]:
    """C2R-transpose the ``m x n_lanes`` register array in registers.

    Returns new register rows; afterwards the register array holds the same
    permutation ``c2r_transpose`` produces on the equivalent row-major
    buffer.  Index vectors are charged to the ALU counter; in a production
    kernel they are strength-reduced and largely precomputed (Section
    6.2.4), so the dominant costs are the shuffles and selects.
    """
    dec = _check(machine, regs)
    m = dec.m
    lane = machine.lane_id()

    if dec.c > 1:
        amounts = machine.alu(lane // dec.b)
        regs = dynamic_column_rotate(machine, regs, amounts)

    # Row shuffle: register row i gathers across lanes with d'^{-1}_i.
    shuffled = []
    for i in range(m):
        src = machine.alu(eq.dprime_inverse_v(dec, np.int64(i), lane), ops=2)
        shuffled.append(machine.shfl(regs[i], src))
    regs = shuffled

    # Column rotation p_j: lane j rotates by j.
    regs = dynamic_column_rotate(machine, regs, lane)

    # Static row permutation q: free renaming.
    q = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
    return static_row_permute(regs, q)


def register_r2c(
    machine: SimdMachine, regs: list[np.ndarray]
) -> list[np.ndarray]:
    """R2C-transpose the register array: the exact inverse of
    :func:`register_c2r` (renaming by ``q^{-1}``, inverse rotation, row
    shuffle by ``d'``, inverse pre-rotation)."""
    dec = _check(machine, regs)
    m = dec.m
    lane = machine.lane_id()

    q_inv = eq.permute_q_inverse_v(dec, np.arange(m, dtype=np.int64))
    regs = static_row_permute(regs, q_inv)

    amounts = machine.alu((-lane) % m)
    regs = dynamic_column_rotate(machine, regs, amounts)

    shuffled = []
    for i in range(m):
        src = machine.alu(eq.dprime_v(dec, np.int64(i), lane), ops=2)
        shuffled.append(machine.shfl(regs[i], src))
    regs = shuffled

    if dec.c > 1:
        amounts = machine.alu((-(lane // dec.b)) % m)
        regs = dynamic_column_rotate(machine, regs, amounts)
    return regs
