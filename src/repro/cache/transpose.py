"""A complete C2R transpose built from the cache-aware primitives.

This assembles Sections 4.6-4.7 into a runnable kernel:

1. pre-rotation (if ``gcd > 1``) via coarse + fine cache-aware rotation with
   per-column amounts ``j // b``;
2. row shuffle (gather by ``d'^{-1}``) — rows are contiguous, so the blocked
   gather is already line-friendly;
3. column-shuffle rotation via cache-aware rotation with amounts ``j``;
4. static row permutation via cycle following on sub-rows.

Produces identical results to ``c2r_transpose`` (pinned by tests) while
reporting a :class:`CacheStats` used by the cache-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import equations as eq
from ..core import steps
from ..core.indexing import Decomposition
from .model import CacheModel
from .rotate import RotateStats, cache_aware_rotate
from .rowpermute import RowPermuteStats, cache_aware_row_permute

__all__ = ["CacheStats", "c2r_cache_aware"]


@dataclass
class CacheStats:
    """Aggregate traffic statistics for a cache-aware C2R transpose."""

    pre_rotate: RotateStats = field(default_factory=RotateStats)
    shuffle_rotate: RotateStats = field(default_factory=RotateStats)
    row_permute: RowPermuteStats = field(default_factory=RowPermuteStats)
    pre_rotation_performed: bool = False


def c2r_cache_aware(
    buf: np.ndarray,
    m: int,
    n: int,
    model: CacheModel | None = None,
) -> CacheStats:
    """C2R-transpose ``buf`` in place using the cache-aware kernels.

    Returns the traffic statistics; the buffer afterwards equals what
    ``c2r_transpose(buf, m, n)`` produces.
    """
    if not buf.flags["C_CONTIGUOUS"]:
        raise ValueError(
            "in-place transposition requires a contiguous buffer "
            "(a non-contiguous view would be silently copied, not permuted)"
        )
    if buf.ndim != 1 or buf.shape[0] != m * n:
        raise ValueError(f"buffer must be flat with {m * n} elements")
    dec = Decomposition.of(m, n)
    model = model or CacheModel(itemsize=buf.dtype.itemsize)
    V = buf.reshape(m, n)
    stats = CacheStats()

    cols = np.arange(n, dtype=np.int64)
    if dec.c > 1:
        stats.pre_rotation_performed = True
        cache_aware_rotate(V, cols // dec.b, model, stats.pre_rotate)

    steps.shuffle_rows_blocked(V, dec, use_dprime=False)

    cache_aware_rotate(V, cols % m, model, stats.shuffle_rotate)
    q_gather = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
    cache_aware_row_permute(V, q_gather, model, stats.row_permute)
    return stats
