"""Cache-line geometry: sub-rows, grouping and alignment (Section 4.6).

A *sub-row* is the segment of one matrix row covered by a group of ``w``
adjacent columns, where ``w = line_bytes / element_size``.  Reading or
writing a sub-row touches one cache line when the segment is aligned, two
when it straddles a boundary.  The paper's guarantee: if the row pitch
``n * element_size`` is a multiple of the line size, every sub-row is
aligned; otherwise a predictable fraction straddle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheModel"]


@dataclass(frozen=True)
class CacheModel:
    """Cache-line geometry for a matrix of ``n`` columns of ``itemsize`` bytes.

    Attributes
    ----------
    line_bytes:
        Cache-line (or memory-transaction) width in bytes.  128 matches the
        K20c's L1 line and DRAM transaction size; 64 matches typical CPUs.
    itemsize:
        Element size in bytes.
    """

    line_bytes: int = 128
    itemsize: int = 8

    def __post_init__(self):
        if self.line_bytes <= 0 or self.itemsize <= 0:
            raise ValueError("line_bytes and itemsize must be positive")
        if self.itemsize > self.line_bytes:
            raise ValueError("elements larger than a cache line are unsupported")

    @property
    def width(self) -> int:
        """Sub-row width ``w``: elements per cache line (floor for odd sizes)."""
        return max(1, self.line_bytes // self.itemsize)

    def n_groups(self, n: int) -> int:
        """Number of column groups covering ``n`` columns (last may be short)."""
        w = self.width
        return (n + w - 1) // w

    def group_slice(self, g: int, n: int) -> slice:
        """Columns covered by group ``g``."""
        w = self.width
        lo = g * w
        if lo >= n:
            raise IndexError(f"group {g} out of range for {n} columns")
        return slice(lo, min(lo + w, n))

    def row_pitch_aligned(self, n: int) -> bool:
        """True when every sub-row of every row is line-aligned.

        Holds iff the row pitch ``n * itemsize`` is a multiple of the line
        size (the paper: "If the size of one row of the array is evenly
        divisible by the cache-line size, we are guaranteed that all
        sub-rows will be aligned").
        """
        return (n * self.itemsize) % self.line_bytes == 0

    def subrow_lines(self, i: int, g: int, n: int) -> int:
        """Cache lines touched by sub-row ``(row i, group g)``: 1 or 2."""
        sl = self.group_slice(g, n)
        start = (i * n + sl.start) * self.itemsize
        stop = (i * n + sl.stop) * self.itemsize
        first_line = start // self.line_bytes
        last_line = (stop - 1) // self.line_bytes
        return int(last_line - first_line + 1)

    def straddle_fraction(self, m: int, n: int) -> float:
        """Fraction of sub-rows spanning two cache lines.

        Computed exactly from the periodic alignment pattern: row ``i``'s
        group offsets repeat with period ``lcm(line, pitch)``, so only one
        row period needs sampling.
        """
        if m == 0 or n == 0:
            return 0.0
        period = int(np.lcm(self.line_bytes, n * self.itemsize) // (n * self.itemsize))
        period = min(period, m)
        total = 0
        straddling = 0
        for i in range(period):
            for g in range(self.n_groups(n)):
                total += 1
                if self.subrow_lines(i, g, n) > 1:
                    straddling += 1
        return straddling / total if total else 0.0
