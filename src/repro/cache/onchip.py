"""On-chip capacity model for single-pass row shuffles (Section 4.5).

A row shuffle normally needs two passes over each row (gather into a scratch
vector, copy back).  When a whole row fits in on-chip storage (register file
or cache), the shuffle completes in a single pass: read the row once,
permute on chip, write once.  The paper reports the Tesla K20c's 256 kB
per-SM register file handles rows of up to 29440 64-bit elements.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OnChipModel"]


@dataclass(frozen=True)
class OnChipModel:
    """Per-processor on-chip storage available for single-pass shuffles.

    ``capacity_bytes`` defaults to the K20c per-SM register file (256 kB),
    derated by ``usable_fraction`` for the live values a real kernel keeps
    (calibrated so that 29440 x 8-byte rows fit, matching Section 4.5).
    """

    capacity_bytes: int = 256 * 1024
    usable_fraction: float = 0.8984375  # 29440 * 8 / (256 * 1024)

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not (0.0 < self.usable_fraction <= 1.0):
            raise ValueError("usable_fraction must be in (0, 1]")

    @property
    def usable_bytes(self) -> int:
        return int(self.capacity_bytes * self.usable_fraction)

    def max_row_elements(self, itemsize: int) -> int:
        """Longest row (in elements) processable in a single pass."""
        return self.usable_bytes // itemsize

    def single_pass(self, row_elements: int, itemsize: int) -> bool:
        """True when a row shuffle of this row length is single-pass."""
        return row_elements <= self.max_row_elements(itemsize)

    def row_shuffle_passes(self, row_elements: int, itemsize: int) -> int:
        """Memory passes over the array needed by the row shuffle: 1 or 2."""
        return 1 if self.single_pass(row_elements, itemsize) else 2
