"""Cache-aware row permutation via cycle following on sub-rows (Section 4.7).

The static row permutation (``q`` for R2C, ``q^{-1}`` for C2R) moves every
row identically, so there is a single cycle structure for the whole array.
The cycles are computed dynamically (no analytic form exists for ``q``) and
stored in the scratch budget — at most ``m / 2`` nontrivial cycles exist, so
leaders and lengths always fit.

The data movement itself walks each cycle once per column group, moving
line-wide sub-rows with a single sub-row temporary, exactly like the coarse
rotation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cycles import CycleSet, permutation_cycles
from .model import CacheModel

__all__ = ["RowPermuteStats", "cache_aware_row_permute"]


@dataclass
class RowPermuteStats:
    """Accounting for a cache-aware row permutation."""

    subrow_moves: int = 0
    cycle_descriptor_slots: int = 0
    n_cycles: int = 0


def cache_aware_row_permute(
    V: np.ndarray,
    gather_rows: np.ndarray,
    model: CacheModel | None = None,
    stats: RowPermuteStats | None = None,
) -> RowPermuteStats:
    """Apply ``V[i, :] = V_old[gather_rows[i], :]`` in place, sub-row-wise.

    Equivalent to :func:`repro.core.steps.permute_rows_strict` but moving
    cache-line-wide sub-rows, so every memory transaction is fully utilized.

    Returns the stats object (descriptor storage validates the ``m/2``
    bound of Section 4.7).
    """
    m, n = V.shape
    g = np.asarray(gather_rows, dtype=np.int64)
    if g.shape != (m,):
        raise ValueError("gather_rows must have one entry per row")
    model = model or CacheModel(itemsize=V.dtype.itemsize)
    stats = stats if stats is not None else RowPermuteStats()

    cycles: CycleSet = permutation_cycles(g)
    stats.n_cycles = int(cycles.leaders.shape[0])
    stats.cycle_descriptor_slots = cycles.storage

    for grp in range(model.n_groups(n)):
        cols = model.group_slice(grp, n)
        block = V[:, cols]
        for leader, length in zip(cycles.leaders, cycles.lengths):
            tmp = block[leader].copy()
            i = int(leader)
            for _ in range(int(length) - 1):
                src = int(g[i])
                block[i] = block[src]
                i = src
                stats.subrow_moves += 1
            block[i] = tmp
            stats.subrow_moves += 1
    return stats
