"""Cache-aware permutation kernels (Sections 4.5-4.7).

The paper improves memory behaviour of the column operations by operating on
*sub-rows*: groups of ``w`` adjacent columns whose row segments are exactly
one cache line wide.  Three pieces implement this:

* :mod:`~repro.cache.model` — cache-line geometry (sub-row width, grouping,
  alignment analysis).
* :mod:`~repro.cache.cycles` — analytic cycles for rotations
  (``gcd(m, r)`` cycles with a closed-form walk, Section 4.6) and dynamic
  cycle computation for row permutations (Section 4.7).
* :mod:`~repro.cache.rotate` / :mod:`~repro.cache.rowpermute` — the
  coarse-plus-fine rotation and the cycle-following row permute, both
  moving whole sub-rows.
* :mod:`~repro.cache.onchip` — the Section 4.5 on-chip capacity model for
  single-pass row shuffles.
* :mod:`~repro.cache.transpose` — a full C2R/R2C built from the
  cache-aware primitives, reporting traffic statistics for the ablation
  benchmarks.
"""

from .cycles import RotationCycles, permutation_cycles
from .model import CacheModel
from .onchip import OnChipModel
from .rotate import cache_aware_rotate
from .rowpermute import cache_aware_row_permute
from .transpose import CacheStats, c2r_cache_aware

__all__ = [
    "CacheModel",
    "OnChipModel",
    "RotationCycles",
    "permutation_cycles",
    "cache_aware_rotate",
    "cache_aware_row_permute",
    "CacheStats",
    "c2r_cache_aware",
]
