"""Cycle machinery for the cache-aware kernels.

Two kinds of cycles appear in Sections 4.6-4.7:

* **Rotation cycles** have a closed form: rotating ``m`` elements by ``r``
  yields ``z = gcd(m, r)`` cycles of length ``m / z``, and the elements of
  cycle ``y`` are ``l_y(x) = (y + x*(m - r)) mod m`` — no cycle descriptors
  need precomputing (:class:`RotationCycles`).
* **Row-permutation cycles** (for ``q`` / ``q^{-1}``) have no analytic form;
  :func:`permutation_cycles` computes them dynamically.  The number of
  cycles of length > 1 is at most ``m / 2``, which bounds the descriptor
  storage by the scratch budget (the paper's Section 4.7 argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RotationCycles", "permutation_cycles", "CycleSet"]


@dataclass(frozen=True)
class RotationCycles:
    """Analytic cycle structure of an upward rotation by ``r`` of ``m`` slots.

    The rotation is the paper's convention ``x'[i] = x[(i + r) mod m]``.
    """

    m: int
    r: int

    def __post_init__(self):
        if self.m <= 0:
            raise ValueError("m must be positive")
        if not (0 <= self.r < self.m):
            raise ValueError("rotation amount must be normalized into [0, m)")

    @property
    def n_cycles(self) -> int:
        """``z = gcd(m, r)`` cycles (``m`` fixed points when ``r == 0``)."""
        return self.m if self.r == 0 else math.gcd(self.m, self.r)

    @property
    def cycle_length(self) -> int:
        return self.m // self.n_cycles

    def element(self, y: int, x: int) -> int:
        """The paper's ``l_y(x) = (y + x*(m - r)) mod m``."""
        return (y + x * (self.m - self.r)) % self.m

    def cycle(self, y: int) -> np.ndarray:
        """All elements of cycle ``y`` as an index vector."""
        x = np.arange(self.cycle_length, dtype=np.int64)
        return (y + x * (self.m - self.r)) % self.m

    def all_cycles(self) -> list[np.ndarray]:
        return [self.cycle(y) for y in range(self.n_cycles)]


@dataclass
class CycleSet:
    """Dynamically computed cycles of an arbitrary permutation.

    ``leaders[k]`` is the smallest element of cycle ``k`` and ``lengths[k]``
    its length; only cycles of length > 1 are stored (fixed points move
    nothing).  ``storage`` counts descriptor slots used, which Section 4.7
    bounds by ``m / 2`` (each nontrivial cycle has >= 2 elements).
    """

    leaders: np.ndarray
    lengths: np.ndarray

    @property
    def storage(self) -> int:
        return int(self.leaders.shape[0] + self.lengths.shape[0])


def permutation_cycles(gather: np.ndarray) -> CycleSet:
    """Compute the nontrivial cycles of a gather permutation.

    Walk order follows the gather map: ``leader -> g[leader] -> ...``.
    """
    g = np.asarray(gather, dtype=np.int64)
    m = g.shape[0]
    visited = np.zeros(m, dtype=bool)
    leaders: list[int] = []
    lengths: list[int] = []
    for start in range(m):
        if visited[start]:
            continue
        visited[start] = True
        if int(g[start]) == start:
            continue
        length = 1
        i = int(g[start])
        while i != start:
            visited[i] = True
            i = int(g[i])
            length += 1
        leaders.append(start)
        lengths.append(length)
    cs = CycleSet(
        leaders=np.asarray(leaders, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int64),
    )
    assert len(leaders) <= m // 2 or m < 2, "cycle-descriptor bound violated"
    return cs
