"""Cache-aware column rotation: coarse cycle-following + fine residual pass.

Section 4.6: a naive per-column rotation streams single elements from
scattered rows — terrible cache-line utilization.  Instead:

1. **Coarse pass** — rotate whole *groups* of ``w`` columns together by the
   group's base amount, in place, via analytic cycle following on sub-rows
   (one temporary sub-row, no scratch buffer traffic).  Each moved unit is a
   line-wide sub-row, so every transaction is fully used.
2. **Fine pass** — the residual rotation left per column is bounded by the
   group width (both ``f(j) = j // b`` and ``f(j) = j mod b`` satisfy
   ``0 <= (f(j + w') - f(j)) mod m < w`` within a group), so a blocked pass
   through on-chip-sized tiles finishes the job.  Groups whose residuals are
   all zero skip the fine pass entirely — common for the C2R pre-rotation,
   whose amount ``j // b`` is slow-changing when ``b > w``.

Both passes are executed for real (numpy), and a :class:`RotateStats`
records sub-row moves and skipped groups for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cycles import RotationCycles
from .model import CacheModel

__all__ = ["RotateStats", "cache_aware_rotate"]


@dataclass
class RotateStats:
    """Traffic accounting for a cache-aware rotation."""

    coarse_subrow_moves: int = 0
    fine_groups_processed: int = 0
    fine_groups_skipped: int = 0
    residual_max: int = 0

    @property
    def fine_skip_fraction(self) -> float:
        total = self.fine_groups_processed + self.fine_groups_skipped
        return self.fine_groups_skipped / total if total else 0.0


def _coarse_rotate_group(
    block: np.ndarray, k: int, stats: RotateStats | None
) -> None:
    """Rotate an ``(m, w)`` column group upward by ``k``, in place, by
    following the analytic rotation cycles with a single sub-row temporary."""
    m = block.shape[0]
    k %= m
    if k == 0:
        return
    rc = RotationCycles(m, k)
    for y in range(rc.n_cycles):
        # Walk the gather chain i -> (i + k) mod m: each sub-row is read
        # immediately before the slot it occupies is overwritten, so a single
        # sub-row temporary suffices per cycle.
        tmp = block[y].copy()
        i = y
        for _ in range(rc.cycle_length - 1):
            src = (i + k) % m
            block[i] = block[src]
            i = src
            if stats is not None:
                stats.coarse_subrow_moves += 1
        block[i] = tmp
        if stats is not None:
            stats.coarse_subrow_moves += 1


def cache_aware_rotate(
    V: np.ndarray,
    amounts: np.ndarray,
    model: CacheModel | None = None,
    stats: RotateStats | None = None,
) -> RotateStats:
    """Rotate every column ``j`` of ``V`` upward by ``amounts[j]``, in place.

    Equivalent to the strict per-column rotation but structured as the
    paper's coarse + fine decomposition over cache-line-wide column groups.

    Parameters
    ----------
    V:
        The ``(m, n)`` array view (modified in place).
    amounts:
        Per-column rotation amounts (any integers; normalized mod ``m``).
    model:
        Cache geometry; defaults to 128-byte lines with ``V``'s itemsize.
    stats:
        Optional pre-existing stats object to accumulate into.

    Returns the stats object.
    """
    m, n = V.shape
    model = model or CacheModel(itemsize=V.dtype.itemsize)
    stats = stats if stats is not None else RotateStats()
    amounts = np.asarray(amounts, dtype=np.int64) % m
    if amounts.shape != (n,):
        raise ValueError("amounts must have one entry per column")

    for g in range(model.n_groups(n)):
        cols = model.group_slice(g, n)
        base = int(amounts[cols.start])
        block = V[:, cols]
        # Coarse: rotate the whole group by the base amount.
        _coarse_rotate_group(block, base, stats)
        # Fine: per-column residuals, bounded by the group width.
        residual = (amounts[cols] - base) % m
        if stats is not None:
            stats.residual_max = max(stats.residual_max, int(residual.max(initial=0)))
        if not residual.any():
            stats.fine_groups_skipped += 1
            continue
        stats.fine_groups_processed += 1
        rows = np.arange(m, dtype=np.int64)[:, None]
        idx = (rows + residual[None, :]) % m
        block[:] = np.take_along_axis(block, idx, axis=0)
    return stats
