"""Section 7 — related-work comparison: full SoA vs ASTA vs Tretyakov.

The paper positions the decomposition against:

* **Sung et al. [7] (ASTA / DL)**: "Because the cost of the full
  transposition using traditional algorithms is too high, the paper
  recommends ... a hybrid Array of Structure of Tiled Array format ...  In
  contrast, with our approach, we can afford to do the full transposition."
  Measured here: conversion cost of AoS->ASTA vs AoS->SoA (both built on
  this repo's kernels), and the coalescing each layout delivers.
* **Tretyakov & Tyrtyshnikov [9]**: optimal work and O(min(m,n)) space but
  up to 48 element accesses vs the decomposition's 6.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aos import aos_to_soa_flat
from repro.aos.asta import aos_to_asta, asta_index
from repro.baselines import tretyakov_access_bound
from repro.gpusim import TransactionAnalyzer

from conftest import time_call, write_report

N_STRUCTS, S, TILE = 2**17, 12, 32


@pytest.mark.benchmark(group="related-work")
def test_aos_to_asta(benchmark):
    benchmark.pedantic(
        lambda: aos_to_asta(
            np.arange(N_STRUCTS * S, dtype=np.float64), N_STRUCTS, S, TILE
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="related-work")
def test_aos_to_soa(benchmark):
    benchmark.pedantic(
        lambda: aos_to_soa_flat(
            np.arange(N_STRUCTS * S, dtype=np.float64), N_STRUCTS, S
        ),
        rounds=3,
        iterations=1,
    )


def test_report_related_work(benchmark, results_dir):
    def build():
        t_asta = min(
            time_call(
                lambda: aos_to_asta(
                    np.arange(N_STRUCTS * S, dtype=np.float64), N_STRUCTS, S, TILE
                )
            )
            for _ in range(3)
        )
        t_soa = min(
            time_call(
                lambda: aos_to_soa_flat(
                    np.arange(N_STRUCTS * S, dtype=np.float64), N_STRUCTS, S
                )
            )
            for _ in range(3)
        )
        # coalescing of "warp reads field f of 32 consecutive structs"
        an = TransactionAnalyzer(128)
        structs = np.arange(32)
        f = S // 2
        tx_aos = an.count_warp((structs * S + f) * 8, 8)
        tx_asta = an.count_warp(asta_index(structs, f, S, TILE) * 8, 8)
        tx_soa = an.count_warp((f * N_STRUCTS + structs) * 8, 8)
        # data-movement locality: how far elements travel during conversion
        probe = np.arange(N_STRUCTS * S, dtype=np.int64)
        aos_to_asta(probe, N_STRUCTS, S, TILE)
        asta_disp = int(np.abs(probe - np.arange(probe.size)).max())
        probe = np.arange(N_STRUCTS * S, dtype=np.int64)
        aos_to_soa_flat(probe, N_STRUCTS, S)
        soa_disp = int(np.abs(probe - np.arange(probe.size)).max())
        return t_asta, t_soa, tx_aos, tx_asta, tx_soa, asta_disp, soa_disp

    (t_asta, t_soa, tx_aos, tx_asta, tx_soa, asta_disp, soa_disp) = (
        benchmark.pedantic(build, rounds=1, iterations=1)
    )

    lines = [
        "Section 7 related-work comparison",
        f"({N_STRUCTS} structs x {S} float64 fields, tile = {TILE})",
        "",
        "conversion cost (in place, measured wall-clock; in numpy both are",
        "vectorized passes — on a GPU the locality gap below is the cost gap):",
        f"  AoS -> ASTA (tile-local):  {t_asta*1e3:8.1f} ms",
        f"  AoS -> SoA  (full):        {t_soa*1e3:8.1f} ms",
        "",
        "data-movement locality (max element displacement):",
        f"  AoS -> ASTA: {asta_disp:>10} elements (< tile block = {TILE*S})",
        f"  AoS -> SoA:  {soa_disp:>10} elements (global)",
        "",
        "warp coalescing — 128B transactions to read one field of 32",
        "consecutive structs (1 = perfect):",
        f"  AoS:  {tx_aos:3d}     ASTA: {tx_asta:3d}     SoA: {tx_soa:3d}",
        "",
        "element-access budgets (per element, worst case):",
        f"  decomposition (Thm 6):      6",
        f"  Tretyakov & Tyrtyshnikov:  {tretyakov_access_bound(1, 1)}",
        "",
        "Reading: ASTA fixes coalescing at lower conversion cost but leaves",
        "two-level addressing; the decomposition makes the *full* SoA",
        "conversion affordable, keeping addressing trivial — the paper's",
        "Section 7 position.",
    ]
    write_report(results_dir, "related_work", "\n".join(lines))

    # both converted layouts coalesce perfectly (ceil(32*8/128) = 2 lines);
    # plain AoS does not
    perfect = -(-32 * 8 // 128)
    assert tx_asta == perfect and tx_soa == perfect and tx_aos > 4 * perfect
    # ASTA's movement is tile-local; the full conversion moves data globally
    assert asta_disp < TILE * S
    assert soa_disp > 100 * asta_disp
    # Tretyakov's access bound is 8x the decomposition's
    assert tretyakov_access_bound(1, 1) == 8 * 6
