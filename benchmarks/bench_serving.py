"""Serving-efficiency benchmark: the HTTP service vs the kernel ceiling.

Spins up an in-process :class:`repro.serve.TransposeServer`, drives it with
the open-loop Poisson load generator, and prints the serving report
(docs/SERVING.md) — achieved matrices/s between the two reference points:

* the **ceiling** (direct ``batched_transpose_inplace`` on a resident
  batch, zero serving overhead), and
* the **naive** one-request-one-plan path the coalescing batcher exists
  to beat.

A tiles sweep shows how client-side micro-batching (``X-Repro-Batch``)
amortizes the fixed per-request HTTP cost — the lever that keeps serving
efficiency above the CI floor on a single shared core.

Usage::

    python benchmarks/bench_serving.py                 # default sweep
    python benchmarks/bench_serving.py --duration 5 --tiles 1,4,8
    python benchmarks/bench_serving.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serve import ServeConfig, TransposeServer  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    ShapeMix,
    format_report,
    run_loadtest,
)

DEFAULT_SHAPE = ShapeMix(256, 384, 1.0)


def run_point(
    *, tiles: int, rate: float, duration: float, dtype: str, workers: int,
    worker_mode: str = "thread",
) -> dict:
    server = TransposeServer(ServeConfig(
        port=0, workers=workers, queue_size=512, max_batch=32, max_wait_ms=0.5,
        worker_mode=worker_mode,
    )).start()
    try:
        report = run_loadtest(
            server.url,
            rate=rate,
            duration_s=duration,
            shapes=[DEFAULT_SHAPE],
            dtype=dtype,
            tiles=tiles,
            connections=16,
            reference=(tiles == 1),  # the references are tiles-independent
        )
    finally:
        summary = server.shutdown()
    return {"report": report, "shutdown": summary}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate", type=float, default=900.0,
                        help="offered matrices/s (open-loop)")
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--dtype", default="uint8")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--worker-mode", choices=["thread", "process"],
                        default="thread",
                        help="process = batch groups execute in worker "
                        "processes over shared-memory staging")
    parser.add_argument("--tiles", default="1,2,4,8",
                        help="comma-separated tiles-per-request sweep")
    parser.add_argument("--json", help="write the sweep as JSON to a file")
    args = parser.parse_args(argv)

    tiles_sweep = [int(t) for t in args.tiles.split(",") if t.strip()]
    points = []
    references: dict = {}
    for tiles in tiles_sweep:
        point = run_point(
            tiles=tiles, rate=args.rate, duration=args.duration,
            dtype=args.dtype, workers=args.workers,
            worker_mode=args.worker_mode,
        )
        report = point["report"]
        # Reuse the tiles=1 reference measurements for the whole sweep so
        # every efficiency is against the same ceiling.
        if report.ceiling_rps:
            references = {
                "ceiling_rps": report.ceiling_rps,
                "coalesced_rps": report.coalesced_rps,
                "naive_rps": report.naive_rps,
            }
        elif references:
            report.ceiling_rps = references["ceiling_rps"]
            report.coalesced_rps = references["coalesced_rps"]
            report.naive_rps = references["naive_rps"]
        points.append(point)
        print(format_report(report))
        print(f"  shutdown  dropped={point['shutdown']['dropped']} "
              f"drained={point['shutdown']['drained']} "
              f"shm_leaked={point['shutdown'].get('shm_leaked', 0)}")
        print()

    print("tiles sweep (achieved matrices/s and efficiency vs ceiling):")
    for tiles, point in zip(tiles_sweep, points):
        r = point["report"]
        print(f"  tiles={tiles:<3} achieved {r.achieved_rps:8.1f}  "
              f"efficiency {r.efficiency:6.1%}  "
              f"p99 {r.latencies_ms.get('p99', 0.0):7.2f} ms")

    if args.json:
        doc = [
            {**p["report"].as_dict(), "shutdown": p["shutdown"]}
            for p in points
        ]
        Path(args.json).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    dropped = sum(p["shutdown"]["dropped"] for p in points)
    if dropped:
        print(f"FAIL: {dropped} accepted requests dropped during shutdown")
        return 1
    leaked = sum(p["shutdown"].get("shm_leaked", 0) for p in points)
    if leaked:
        print(f"FAIL: {leaked} shared-memory segment(s) leaked")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
