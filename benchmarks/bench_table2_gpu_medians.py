"""Table 2 — median in-place transposition throughputs on the Tesla K20c.

Paper (arrays with m, n ~ U[1000, 20000)):

    Sung [6] (float)   5.33 GB/s
    C2R (float)       14.23 GB/s
    C2R (double)      19.53 GB/s

Here: the gpusim cost model over the same population scheme, with Sung's
runs filtered to non-degenerate tile plans (the paper reports 2155/2500
completing).  The ordering and rough factors are the reproduction target.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cost import c2r_cost, sung_cost

from conftest import random_dims, write_report

SEED = 99
N_SAMPLES = 120


@pytest.mark.benchmark(group="table2")
def test_c2r_double_model_cell(benchmark):
    benchmark.pedantic(lambda: c2r_cost(7200, 1800, 8), rounds=3, iterations=1)


@pytest.mark.benchmark(group="table2")
def test_sung_model_cell(benchmark):
    benchmark.pedantic(lambda: sung_cost(7200, 1800, 4), rounds=3, iterations=1)


def test_report_table2(benchmark, results_dir):
    dims = random_dims(np.random.default_rng(SEED), N_SAMPLES, 1000, 20000)

    def build():
        sung, sung_deg = [], 0
        c2r_f, c2r_d = [], []
        for m, n in dims:
            cost, plan = sung_cost(m, n, 4)
            if plan.degenerate:
                sung_deg += 1
            else:
                sung.append(cost.throughput_gbps)
            c2r_f.append(c2r_cost(m, n, 4).throughput_gbps)
            c2r_d.append(c2r_cost(m, n, 8).throughput_gbps)
        return sung, sung_deg, c2r_f, c2r_d

    sung, sung_deg, c2r_f, c2r_d = benchmark.pedantic(build, rounds=1, iterations=1)

    med = lambda v: float(np.median(v))
    rows = [
        ("Sung-class (float)", med(sung), 5.33),
        ("C2R (float)", med(c2r_f), 14.23),
        ("C2R (double)", med(c2r_d), 19.53),
    ]
    lines = [
        f"Table 2: median modeled in-place transposition throughput on Tesla K20c,",
        f"{N_SAMPLES} arrays, m,n ~ U[1000,20000)",
        "",
        f"{'implementation':<22} {'modeled GB/s':>13} {'paper GB/s':>11}",
    ]
    for name, got, paper in rows:
        lines.append(f"{name:<22} {got:>13.2f} {paper:>11}")
    lines.append("")
    lines.append(
        f"Sung degenerate-tile arrays excluded: {sung_deg}/{N_SAMPLES} "
        f"(paper: 345/2500 did not complete)"
    )
    lines.append(
        f"C2R(double)/C2R(float) = {med(c2r_d)/med(c2r_f):.2f}x (paper 1.37x);  "
        f"C2R(float)/Sung = {med(c2r_f)/med(sung):.2f}x (paper 2.67x)"
    )
    write_report(results_dir, "table2_gpu_medians", "\n".join(lines))

    assert med(c2r_d) > med(c2r_f) > med(sung)
