"""Ablation — work complexity: O(mn) versus O(mn log mn).

The paper's central complexity claim (Section 1, Theorem 6): under
sub-O(mn) auxiliary space, cycle following needs O(mn log mn) work (cycle
recomputation), while the decomposition needs O(mn) — each element moved at
most 6 times.

Here: count the actual work units of both algorithm classes across a size
sweep and fit the growth exponents; also include the Tretyakov bound for
the Section 7 three-way comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CycleStats, transpose_cycle_following, tretyakov_access_bound
from repro.core import WorkCounter, c2r_transpose

from conftest import write_report

SIZES = [(31, 37), (61, 67), (89, 97), (127, 131), (179, 181), (251, 257)]


@pytest.mark.benchmark(group="ablation-work")
def test_c2r_strict_work(benchmark):
    benchmark.pedantic(
        lambda: c2r_transpose(np.arange(127 * 131, dtype=np.int64), 127, 131, aux="strict"),
        rounds=3,
        iterations=1,
    )


def test_report_ablation_work(benchmark, results_dir):
    def build():
        rows = []
        for m, n in SIZES:
            mn = m * n
            buf = np.arange(mn, dtype=np.int64)
            cnt = WorkCounter()
            c2r_transpose(buf.copy(), m, n, aux="strict", counter=cnt)
            s_rec = CycleStats()
            transpose_cycle_following(buf.copy(), m, n, aux="recompute", stats=s_rec)
            s_bit = CycleStats()
            transpose_cycle_following(buf.copy(), m, n, aux="bitset", stats=s_bit)
            rows.append(
                (m, n, mn, cnt.total, s_bit.total_work, s_rec.total_work,
                 tretyakov_access_bound(m, n))
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Ablation: work complexity across algorithm classes",
        "(work units: element reads+writes / successor evaluations)",
        "",
        f"{'m x n':>12} {'mn':>8} {'C2R':>10} {'cyc+bits':>10} "
        f"{'cyc O(1)aux':>12} {'Tretyakov':>10}",
    ]
    for m, n, mn, c2r, cbit, crec, tret in rows:
        lines.append(
            f"{f'{m}x{n}':>12} {mn:>8} {c2r:>10} {cbit:>10} {crec:>12} {tret:>10}"
        )
    lines.append("")
    # normalized per element at the largest size
    m, n, mn, c2r, cbit, crec, tret = rows[-1]
    lines.append(
        f"per element at {m}x{n}: C2R {c2r/mn:.2f} (bound 6), "
        f"cycle+bitset {cbit/mn:.2f}, limited-aux {crec/mn:.2f}, "
        f"Tretyakov bound {tret/mn:.0f}"
    )
    # growth exponents via log-log regression
    mns = np.array([r[2] for r in rows], dtype=float)
    w_c2r = np.array([r[3] for r in rows], dtype=float)
    w_rec = np.array([r[5] for r in rows], dtype=float)
    e_c2r = np.polyfit(np.log(mns), np.log(w_c2r), 1)[0]
    e_rec = np.polyfit(np.log(mns), np.log(w_rec), 1)[0]
    lines.append(
        f"growth exponent (work ~ (mn)^e): C2R e = {e_c2r:.3f}, "
        f"limited-aux cycle following e = {e_rec:.3f}"
    )
    write_report(results_dir, "ablation_work", "\n".join(lines))

    # per-element C2R work respects Theorem 6
    for _, _, mn, c2r, *_ in rows:
        assert c2r <= 6 * mn
    # C2R scales linearly; recompute superlinearly.  (The recompute
    # exponent over this size range is ~1 + 1/ln(mn) ~ 1.1, but the cycle
    # structure is factorization-dependent and noisy, hence the margin.)
    assert e_c2r < 1.02
    assert e_rec > e_c2r + 0.04
