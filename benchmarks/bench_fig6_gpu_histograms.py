"""Figure 6 — GPU throughput histograms (3 panels: Sung float, C2R float,
C2R double), medians marked.

Shapes to reproduce: Sung's distribution is wide with a low median and a
heavy slow tail (tile-heuristic failures); the C2R panels are narrow with
the double panel shifted right of the float panel.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.cost import c2r_cost, sung_cost

from conftest import ascii_hist, random_dims, write_report

SEED = 2014
N_SAMPLES = 150


def test_report_fig6(benchmark, results_dir):
    dims = random_dims(np.random.default_rng(SEED), N_SAMPLES, 1000, 20000)

    def build():
        sung = []
        for m, n in dims:
            cost, plan = sung_cost(m, n, 4)
            if not plan.degenerate:
                sung.append(cost.throughput_gbps)
        return {
            "Sung-class (float)": sung,
            "C2R (float)": [c2r_cost(m, n, 4).throughput_gbps for m, n in dims],
            "C2R (double)": [c2r_cost(m, n, 8).throughput_gbps for m, n in dims],
        }

    panels = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Figure 6: modeled GPU throughput histograms, Tesla K20c model,",
        f"{N_SAMPLES} arrays, m,n ~ U[1000,20000)",
    ]
    for name, series in panels.items():
        lines.append(f"\n-- {name} (paper median: "
                     f"{ {'Sung-class (float)': 5.33, 'C2R (float)': 14.23, 'C2R (double)': 19.53}[name] } GB/s) --")
        lines.append(ascii_hist(series, bins=9))
    write_report(results_dir, "fig6_gpu_histograms", "\n".join(lines))

    med = {k: float(np.median(v)) for k, v in panels.items()}
    assert med["C2R (double)"] > med["C2R (float)"] > med["Sung-class (float)"]
    # Sung's spread (IQR relative to median) exceeds C2R's: the tiled
    # method's sensitivity to dimension factorization
    iqr = lambda v: np.subtract(*np.percentile(v, [75, 25]))
    assert iqr(panels["Sung-class (float)"]) / med["Sung-class (float)"] > iqr(
        panels["C2R (double)"]
    ) / med["C2R (double)"]
