"""Table 1 — median in-place transposition throughputs on the CPU.

Paper (Intel Core i7 950, 64-bit elements, 1000 matrices with
m, n ~ U[1000, 10000)):

    Intel MKL                0.067 GB/s
    C2R, 1 Thread            0.336 GB/s
    C2R, 8 Threads           1.26  GB/s
    Gustavson et al.         1.27  GB/s

Here: the same four algorithm classes on a scaled population (dims
U[100, 400), fewer samples — the MKL-class baseline is a pure-Python
cycle follower).  The orderings to reproduce: sequential C2R well above the
limited-aux cycle follower; threads add speedup; Gustavson-class tiling in
the same league as parallel C2R.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.baselines import gustavson_transpose, mkl_like_transpose, outofplace_transpose
from repro.parallel import ParallelTranspose

from conftest import random_dims, throughput_gbps, time_call, write_report

SEED = 1401
N_SAMPLES = 20
DIM_LO, DIM_HI = 100, 400
N_THREADS = 8


def _population():
    return random_dims(np.random.default_rng(SEED), N_SAMPLES, DIM_LO, DIM_HI)


def _median_throughput(run, dims) -> float:
    vals = []
    for m, n in dims:
        buf = np.arange(m * n, dtype=np.float64)
        secs = time_call(run, buf, m, n)
        vals.append(throughput_gbps(m, n, 8, secs))
    return float(np.median(vals))


# -- micro-benchmarks on one representative matrix ---------------------------

REP_M, REP_N = 311, 357  # coprime-ish, mid-population


def _rep_buffer():
    return np.arange(REP_M * REP_N, dtype=np.float64)


@pytest.mark.benchmark(group="table1-cpu")
def test_mkl_like_representative(benchmark):
    benchmark.pedantic(
        lambda: mkl_like_transpose(_rep_buffer(), REP_M, REP_N),
        rounds=2,
        iterations=1,
    )


@pytest.mark.benchmark(group="table1-cpu")
def test_c2r_1thread_representative(benchmark):
    with ParallelTranspose(1) as pt:
        benchmark.pedantic(
            lambda: pt.transpose_inplace(_rep_buffer(), REP_M, REP_N),
            rounds=5,
            iterations=1,
        )


@pytest.mark.benchmark(group="table1-cpu")
def test_c2r_8threads_representative(benchmark):
    with ParallelTranspose(N_THREADS) as pt:
        benchmark.pedantic(
            lambda: pt.transpose_inplace(_rep_buffer(), REP_M, REP_N),
            rounds=5,
            iterations=1,
        )


@pytest.mark.benchmark(group="table1-cpu")
def test_gustavson_representative(benchmark):
    benchmark.pedantic(
        lambda: gustavson_transpose(_rep_buffer(), REP_M, REP_N),
        rounds=5,
        iterations=1,
    )


# -- the full Table 1 reproduction -------------------------------------------

def test_report_table1(benchmark, results_dir):
    dims = _population()

    def build():
        pt1 = ParallelTranspose(1)
        pt8 = ParallelTranspose(N_THREADS)
        rows = {
            "MKL-class (seq. cycle following)": _median_throughput(
                mkl_like_transpose, dims
            ),
            "C2R, 1 thread": _median_throughput(pt1.transpose_inplace, dims),
            f"C2R, {N_THREADS} threads": _median_throughput(
                pt8.transpose_inplace, dims
            ),
            "Gustavson-class (tiled)": _median_throughput(
                gustavson_transpose, dims
            ),
            "out-of-place ideal (ceiling)": _median_throughput(
                lambda b, m, n: outofplace_transpose(b, m, n), dims
            ),
        }
        pt1.close()
        pt8.close()
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    paper = {
        "MKL-class (seq. cycle following)": 0.067,
        "C2R, 1 thread": 0.336,
        f"C2R, {N_THREADS} threads": 1.26,
        "Gustavson-class (tiled)": 1.27,
        "out-of-place ideal (ceiling)": float("nan"),
    }
    lines = [
        f"Table 1: median in-place transposition throughput, float64,",
        f"{N_SAMPLES} matrices with m,n ~ U[{DIM_LO},{DIM_HI})  (paper: U[1000,10000))",
        "",
        f"{'implementation':<36} {'measured GB/s':>14} {'paper GB/s':>12}",
    ]
    for name, val in rows.items():
        lines.append(f"{name:<36} {val:>14.3f} {paper[name]:>12}")
    lines.append("")
    c2r1 = rows["C2R, 1 thread"]
    mkl = rows["MKL-class (seq. cycle following)"]
    c2r8 = rows[f"C2R, {N_THREADS} threads"]
    lines.append(f"C2R-1T / MKL-class speedup: {c2r1 / mkl:8.1f}x   (paper: 5.0x)")
    lines.append(f"{N_THREADS}T / 1T parallel speedup:  {c2r8 / c2r1:8.2f}x   (paper: 3.75x)")
    lines.append(
        f"NOTE: this host exposes {os.cpu_count()} CPU(s); the paper's 3.75x "
        "thread scaling needs 4 real cores.  The decomposition's perfect "
        "load balance is property-tested in tests/parallel."
    )
    write_report(results_dir, "table1_cpu_medians", "\n".join(lines))

    # The robust ordering: decomposed C2R far above the limited-aux cycle
    # follower.  Thread scaling cannot be asserted on a host without real
    # cores (see NOTE above); only guard against pathological collapse.
    assert c2r1 > mkl
    assert c2r8 > 0.25 * c2r1
