"""Figure 5 — R2C performance landscape on the (modeled) Tesla K20c.

The mirror of Figure 4: the high-performing band sits at *small m* (the
R2C pass sequence runs on the dimension-swapped view, so the on-chip /
cache-residency advantage follows the row count of that view).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cost import r2c_cost

from conftest import ascii_heatmap, write_csv, write_report

GRID = [1000, 3000, 5000, 7000, 9000, 12000, 15000, 18000, 21000, 25000]


@pytest.mark.benchmark(group="fig5")
def test_r2c_model_single_cell(benchmark):
    benchmark.pedantic(lambda: r2c_cost(12000, 9000, 8), rounds=3, iterations=1)


def test_report_fig5(benchmark, results_dir):
    def build():
        grid = np.zeros((len(GRID), len(GRID)))
        for i, m in enumerate(GRID):
            for j, n in enumerate(GRID):
                mm, nn = m + (j % 3), n + 1
                grid[i, j] = r2c_cost(mm, nn, 8).throughput_gbps
        return grid

    grid = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Figure 5: modeled R2C throughput landscape (float64), Tesla K20c model",
        "rows = m, cols = n; paper colorbar: 10.0-26.2 GB/s",
        "",
        ascii_heatmap(grid, GRID, GRID),
        "",
        "rows (GB/s):",
    ]
    for m, row in zip(GRID, grid):
        lines.append(f"  m={m:>6}: " + " ".join(f"{v:5.1f}" for v in row))
    band = float(np.median(grid[0, :]))
    bulk = float(np.median(grid[4:, :]))
    lines.append("")
    lines.append(f"small-m band median: {band:.1f} GB/s   bulk median: {bulk:.1f} GB/s")
    write_report(results_dir, "fig5_r2c_landscape", "\n".join(lines))
    write_csv(
        results_dir,
        "fig5_r2c_landscape",
        ["m\\n"] + GRID,
        [[m] + [f"{v:.2f}" for v in row] for m, row in zip(GRID, grid)],
    )

    assert band > bulk
    assert 5 < bulk < 40
