"""Figure 8 — unit-stride Array-of-Structures access bandwidth.

Paper (K20c, 32-bit words, struct sizes 4-64 bytes):
(a) store bandwidth, (b) copy (load+store) bandwidth, three lines each —
C2R (this paper's in-register transpose), Direct (compiler element-wise),
Vector (native 128-bit loads/stores).

Shapes to reproduce: C2R rides the ~180 GB/s plateau across all sizes;
Direct decays like 1/struct-size (down to tens of times slower — the
paper's "up to 45x" store case); Vector sits between, a constant factor
above Direct.  Every data point executes the real access method on the
simulated warp and prices its actual trace.
"""

from __future__ import annotations

import pytest

from repro.gpusim.aos_model import aos_access_throughput

from conftest import write_csv, write_report

STRUCT_WORDS = [1, 2, 3, 4, 6, 8, 12, 16]  # 4..64 bytes of 32-bit words
PATTERNS = ["c2r", "direct", "vector"]


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("pattern", PATTERNS)
def test_store_model_point(benchmark, pattern):
    benchmark.pedantic(
        lambda: aos_access_throughput(8, pattern, "store"), rounds=3, iterations=1
    )


def _series(op):
    table = {}
    for pat in PATTERNS:
        table[pat] = [
            aos_access_throughput(m, pat, op).throughput_gbps
            for m in STRUCT_WORDS
        ]
    return table


def test_report_fig8(benchmark, results_dir):
    store, copy = benchmark.pedantic(
        lambda: (_series("store"), _series("copy")), rounds=1, iterations=1
    )

    def fmt(table, title):
        lines = [f"-- {title} --", f"{'bytes':>6} " + "".join(f"{p:>10}" for p in PATTERNS)]
        for i, m in enumerate(STRUCT_WORDS):
            lines.append(
                f"{m*4:>6} " + "".join(f"{table[p][i]:>10.1f}" for p in PATTERNS)
            )
        return "\n".join(lines)

    lines = [
        "Figure 8: unit-stride AoS access bandwidth (GB/s), K20c model,",
        "32-bit words (paper: C2R ~180 plateau, Direct down to ~45x below)",
        "",
        fmt(store, "(a) store bandwidth"),
        "",
        fmt(copy, "(b) copy bandwidth"),
        "",
        f"max store advantage C2R/Direct: "
        f"{max(c/d for c, d in zip(store['c2r'], store['direct'])):.0f}x "
        "(paper: up to 45x)",
    ]
    write_report(results_dir, "fig8_unit_stride", "\n".join(lines))
    for op_name, table in (("store", store), ("copy", copy)):
        write_csv(
            results_dir,
            f"fig8_{op_name}",
            ["struct_bytes"] + PATTERNS,
            [
                [m * 4] + [f"{table[p][i]:.2f}" for p in PATTERNS]
                for i, m in enumerate(STRUCT_WORDS)
            ],
        )

    # orderings at every struct size above one word
    for i, m in enumerate(STRUCT_WORDS):
        if m == 1:
            continue
        assert store["c2r"][i] >= store["vector"][i] >= store["direct"][i]
        assert copy["c2r"][i] > copy["direct"][i]
        if m * 4 > 16:  # beyond the native vector width all three separate
            assert store["c2r"][i] > store["vector"][i] > store["direct"][i]
    # C2R plateau: stays within 30% of the streaming peak
    assert min(store["c2r"]) > 0.7 * 181
    # direct decays monotonically with struct size
    assert store["direct"][-1] < store["direct"][1] / 4
