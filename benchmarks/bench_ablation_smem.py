"""Ablation — in-register transpose vs the traditional smem-staged path.

The paper's motivating contrast (Sections 1 and 6): routing AoS data
through shared memory works, but costs a per-warp shared allocation
(occupancy pressure) and bank conflicts, while the in-register C2R path
"does not require allocating on-chip memory".  Both paths issue identical
global traffic; this bench quantifies the on-chip side across struct sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.device import TESLA_K20C
from repro.gpusim.occupancy import staged_access_bandwidth
from repro.simd import CoalescedArray, SimdMachine, SimulatedMemory
from repro.simd.sharedmem import SmemStagedAccessor

from conftest import write_report

STRUCT_WORDS = [2, 3, 4, 7, 8, 12, 16]


def _run_pair(m: int):
    mem = SimulatedMemory(128 * m, itemsize=4)
    mem.data[:] = np.arange(128 * m)
    reg_mach = SimdMachine(32)
    register = CoalescedArray(mem, m, reg_mach)
    regs = register.warp_load(0)

    mem2 = SimulatedMemory(128 * m, itemsize=4)
    mem2.data[:] = np.arange(128 * m)
    smem_mach = SimdMachine(32)
    staged = SmemStagedAccessor(mem2, m, smem_mach)
    regs2 = staged.warp_load(0)

    for k in range(m):
        np.testing.assert_array_equal(regs[k], regs2[k])
    return {
        "shfl": reg_mach.counts.shfl,
        "select": reg_mach.counts.select,
        "smem_words": staged.smem_words,
        "smem_cycles": staged.smem.stats.cycles,
        "conflict": staged.smem.stats.conflict_factor,
        "smem_bw": staged_access_bandwidth(m, itemsize=4) / 1e9,
    }


@pytest.mark.benchmark(group="ablation-smem")
def test_register_path(benchmark):
    mem = SimulatedMemory(128 * 8, itemsize=4)
    arr = CoalescedArray(mem, 8, SimdMachine(32))
    benchmark.pedantic(lambda: arr.warp_load(0), rounds=3, iterations=1)


@pytest.mark.benchmark(group="ablation-smem")
def test_smem_path(benchmark):
    mem = SimulatedMemory(128 * 8, itemsize=4)
    arr = SmemStagedAccessor(mem, 8, SimdMachine(32))
    benchmark.pedantic(lambda: arr.warp_load(0), rounds=3, iterations=1)


def test_report_ablation_smem(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: {m: _run_pair(m) for m in STRUCT_WORDS}, rounds=1, iterations=1
    )

    lines = [
        "Ablation: in-register C2R access vs smem-staged access",
        "(one warp loading 32 structures; global traffic identical)",
        "",
        f"{'bytes':>6} {'reg shfl':>9} {'reg sel':>8} "
        f"{'smem words':>11} {'smem cyc':>9} {'conflict':>9} {'smem GB/s':>10}",
    ]
    full = TESLA_K20C.achievable_bandwidth / 1e9
    for m, r in rows.items():
        lines.append(
            f"{m*4:>6} {r['shfl']:>9} {r['select']:>8} "
            f"{r['smem_words']:>11} {r['smem_cycles']:>9} {r['conflict']:>9.2f} "
            f"{r['smem_bw']:>10.1f}"
        )
    lines.append("")
    lines.append(
        f"(register path keeps the full {full:.0f} GB/s at every struct size:"
    )
    lines.append(
        " no shared allocation -> no occupancy loss; smem staging of large")
    lines.append(
        " structs cuts resident warps below the DRAM saturation point.)")
    lines.append("")
    lines.append(
        "register path: zero shared memory, m shuffles + barrel-rotation"
    )
    lines.append(
        "selects; smem path: m*32 words/warp of scarce shared memory and"
    )
    lines.append(
        "bank-conflict serialization on power-of-two struct sizes."
    )
    write_report(results_dir, "ablation_smem", "\n".join(lines))

    for m, r in rows.items():
        assert r["smem_words"] == m * 32  # occupancy cost always paid
        assert r["shfl"] == m  # one shuffle per register row
    # power-of-two structs conflict heavily; the register path cannot
    assert rows[8]["conflict"] > 2.0
    assert rows[7]["conflict"] < rows[8]["conflict"]
    # occupancy loss appears as struct size grows
    assert rows[16]["smem_bw"] <= rows[2]["smem_bw"]
