"""Streaming benchmark: banded in-place file transpose vs the naive copy.

Measures sustained throughput of ``repro.stream.transpose_file_inplace``
on a sparse test file against :func:`repro.stream.naive_transpose_copy`,
the obvious two-file out-of-place transpose (read row blocks, scatter
them as column slabs of a second file).  The naive path moves each
element once but needs a second file's worth of disk and pays a strided
scatter per block; the streamed path runs ``P`` decomposition passes but
stays in place under a bounded resident window.  The honest comparison
is therefore **job throughput** — file bytes retired per wall second —
not device bytes moved (the streamed path moves ``P``x the data by
construction and would be penalised for the very property being sold).

Both series are reported:

* ``job_gbps``       — ``file_bytes / seconds`` (the gated number)
* ``device_gbps``    — bytes actually read+written per second (context:
  how close each path runs to the storage/page-cache ceiling)

``--floor R`` fails the run when ``streamed job_gbps < R * naive
job_gbps`` (CI uses 0.6: in-place banding may cost up to 40% of the
naive bandwidth in exchange for O(1) extra disk, no more).  The test
file is created sparse (``truncate``), so multi-GB runs do not need
multi-GB of backing store up front; every byte is still written by both
paths.  Each run appends one point to the committed streaming trajectory
(``benchmarks/results/BENCH_streaming_trajectory.json``) unless
``--no-trajectory``.

Usage::

    python benchmarks/bench_streaming.py                      # report only
    python benchmarks/bench_streaming.py --bytes 1g --floor 0.6   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.stream import (  # noqa: E402
    naive_transpose_copy,
    transpose_file_inplace,
)
from repro.stream.window import parse_bytes  # noqa: E402

#: fixed column count; rows scale with --bytes (uint32 keeps index math
#: exact at any file size and quarters the RAM of the verify block)
N_COLS = 4096
DTYPE = np.uint32
DEFAULT_BYTES = "256m"
DEFAULT_WINDOW = "64m"
_RESULTS = Path(__file__).resolve().parent / "results"
TRAJECTORY = _RESULTS / "BENCH_streaming_trajectory.json"


def make_sparse_file(path: Path, nbytes: int) -> None:
    """A hole-backed all-zero file: instant to create at any size."""
    with open(path, "wb") as fh:
        fh.truncate(nbytes)


def measure(
    total_bytes: int, window_bytes: int, n_threads: int, tmp: Path
) -> dict:
    m = total_bytes // (N_COLS * np.dtype(DTYPE).itemsize)
    if m < 2:
        raise SystemExit(f"--bytes {total_bytes} too small for {N_COLS} cols")
    file_bytes = m * N_COLS * np.dtype(DTYPE).itemsize

    import os

    src = tmp / "naive_src.bin"
    dst = tmp / "naive_dst.bin"
    make_sparse_file(src, file_bytes)
    os.sync()  # quiesce: no prior run's writeback inside the timed region
    naive = naive_transpose_copy(src, dst, m, N_COLS, DTYPE)
    src.unlink()
    dst.unlink()

    streamed_path = tmp / "streamed.bin"
    make_sparse_file(streamed_path, file_bytes)
    os.sync()
    stats = transpose_file_inplace(
        streamed_path, m, N_COLS, DTYPE,
        window_bytes=window_bytes, n_threads=n_threads,
    )
    streamed_path.unlink()

    streamed_moved = stats["bytes_read"] + stats["bytes_written"]
    return {
        "file_bytes": file_bytes,
        "m": m,
        "n": N_COLS,
        "dtype": str(np.dtype(DTYPE)),
        "window_bytes": window_bytes,
        "threads": n_threads,
        "passes": stats["passes"],
        "bands": stats["bands"],
        "naive_seconds": naive["seconds"],
        "naive_job_gbps": file_bytes / naive["seconds"] / 1e9,
        "naive_device_gbps": naive["bytes"] / naive["seconds"] / 1e9,
        "streamed_seconds": stats["seconds"],
        "streamed_job_gbps": file_bytes / stats["seconds"] / 1e9,
        "streamed_device_gbps": streamed_moved / stats["seconds"] / 1e9,
    }


def append_trajectory(report: dict, path: Path) -> None:
    """One point per run, same shape as the CI-smoke trajectory."""
    import datetime
    import os

    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": os.environ.get("GITHUB_SHA"),
        "file_bytes": report["file_bytes"],
        "window_bytes": report["window_bytes"],
        "naive_job_gbps": report["naive_job_gbps"],
        "streamed_job_gbps": report["streamed_job_gbps"],
        "streamed_device_gbps": report["streamed_device_gbps"],
        "ratio": report["streamed_job_gbps"]
        / max(report["naive_job_gbps"], 1e-12),
    }
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"trajectory file {path} is not a JSON list")
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bytes", default=DEFAULT_BYTES,
                        help="test file size (suffixes k/m/g; default "
                        f"{DEFAULT_BYTES}; CI uses 1g)")
    parser.add_argument("--window-bytes", default=DEFAULT_WINDOW,
                        help=f"resident window budget (default {DEFAULT_WINDOW})")
    parser.add_argument("--threads", type=int, default=1,
                        help="chunk workers within each band")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail when streamed job GB/s < floor * naive "
                        "job GB/s (CI uses 0.6)")
    parser.add_argument("--output", default="BENCH_streaming.json")
    parser.add_argument("--tmpdir", default=None,
                        help="directory for the test files (default: a "
                        "TemporaryDirectory; point at the filesystem you "
                        "mean to measure)")
    parser.add_argument("--trajectory", default=str(TRAJECTORY))
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip the trajectory append (scratch runs)")
    args = parser.parse_args(argv)

    total = parse_bytes(args.bytes)
    window = parse_bytes(args.window_bytes)
    if args.tmpdir is not None:
        tmp_cm = None
        tmp = Path(args.tmpdir)
        tmp.mkdir(parents=True, exist_ok=True)
    else:
        tmp_cm = TemporaryDirectory(prefix="repro-bench-stream-")
        tmp = Path(tmp_cm.name)
    try:
        report = measure(total, window, args.threads, tmp)
    finally:
        if tmp_cm is not None:
            tmp_cm.cleanup()

    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    ratio = report["streamed_job_gbps"] / max(report["naive_job_gbps"], 1e-12)
    print(
        f"file {report['file_bytes'] / 1e9:.2f} GB "
        f"({report['m']}x{report['n']} {report['dtype']}), "
        f"window {report['window_bytes'] / 1e6:.0f} MB, "
        f"{report['passes']} pass(es), {report['bands']} band(s)"
    )
    print(
        f"naive two-file copy: {report['naive_job_gbps']:6.2f} GB/s job "
        f"({report['naive_device_gbps']:.2f} GB/s device, "
        f"{report['naive_seconds']:.2f} s)"
    )
    print(
        f"streamed in-place:   {report['streamed_job_gbps']:6.2f} GB/s job "
        f"({report['streamed_device_gbps']:.2f} GB/s device, "
        f"{report['streamed_seconds']:.2f} s)  ratio {ratio:.2f}x"
    )
    print(f"wrote {args.output}")
    if not args.no_trajectory:
        append_trajectory(report, Path(args.trajectory))
        print(f"trajectory appended: {args.trajectory}")

    if args.floor is not None and ratio < args.floor:
        print(
            f"FAIL: streamed job throughput {ratio:.2f}x naive is below "
            f"the {args.floor:.2f}x floor"
        )
        return 1
    if args.floor is not None:
        print(f"streaming throughput gate: PASS ({ratio:.2f}x >= "
              f"{args.floor:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
