"""Ablation — arithmetic strength reduction (Section 4.4).

The paper: "We found a significant performance improvement by using a
strength reduction technique that involves computing a fixed-point
reciprocal, and then converting integer division into a multiplication by
the reciprocal followed by a shift."

Here: build the hot gather maps (``d'^{-1}`` and ``s'``) with plain
``//``/``%`` versus the :class:`~repro.strength.ReducedEquations` path, and
measure scalar-equivalent div/mod microbenchmarks.  In numpy both paths are
vectorized C loops, so the win is smaller than on a GPU's 32-bit ALUs — the
report records the measured ratio either way, plus the exactness property
that makes the transformation safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import equations as eq
from repro.core.indexing import Decomposition
from repro.strength import FastDivider, ReducedEquations

from conftest import time_call, write_report

M, N = 1200, 1400
DEC = Decomposition.of(M, N)


@pytest.mark.benchmark(group="ablation-strength")
def test_reference_index_build(benchmark):
    benchmark.pedantic(
        lambda: (eq.dprime_inverse_matrix(DEC), eq.sprime_matrix(DEC)),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="ablation-strength")
def test_reduced_index_build(benchmark):
    red = ReducedEquations(DEC)
    benchmark.pedantic(
        lambda: (red.dprime_inverse_matrix(), red.sprime_matrix()),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="ablation-strength")
def test_numpy_divmod(benchmark):
    x = np.arange(2_000_000, dtype=np.int64)
    benchmark.pedantic(lambda: (x // 1237, x % 1237), rounds=5, iterations=1)


@pytest.mark.benchmark(group="ablation-strength")
def test_fastdiv_divmod(benchmark):
    x = np.arange(2_000_000, dtype=np.int64)
    fd = FastDivider(1237)
    benchmark.pedantic(lambda: fd.divmod(x), rounds=5, iterations=1)


def test_report_ablation_strength(benchmark, results_dir):
    def build():
        red = ReducedEquations(DEC)
        t_ref = min(
            time_call(lambda: (eq.dprime_inverse_matrix(DEC), eq.sprime_matrix(DEC)))
            for _ in range(3)
        )
        t_red = min(
            time_call(lambda: (red.dprime_inverse_matrix(), red.sprime_matrix()))
            for _ in range(3)
        )
        x = np.arange(2_000_000, dtype=np.int64)
        fd = FastDivider(1237)
        t_np = min(time_call(lambda: (x // 1237, x % 1237)) for _ in range(3))
        t_fd = min(time_call(lambda: fd.divmod(x)) for _ in range(3))
        exact = bool(
            np.array_equal(red.dprime_inverse_matrix(), eq.dprime_inverse_matrix(DEC))
        )
        return t_ref, t_red, t_np, t_fd, exact

    t_ref, t_red, t_np, t_fd, exact = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Ablation: arithmetic strength reduction (Section 4.4)",
        f"gather-map construction for a {M}x{N} transpose:",
        f"  plain // and %:           {t_ref*1e3:8.2f} ms",
        f"  fixed-point reciprocal:   {t_red*1e3:8.2f} ms   ({t_ref/t_red:.2f}x)",
        f"divmod of 2M int64 by a runtime constant:",
        f"  numpy //, %:              {t_np*1e3:8.2f} ms",
        f"  multiply+shift:           {t_fd*1e3:8.2f} ms   ({t_np/t_fd:.2f}x)",
        f"exactness of the reduced index maps: {exact}",
        "",
        "(The paper's 'significant improvement' is on GPU integer units;",
        " numpy's vectorized // is already one C loop, so the measured",
        " ratio here mainly demonstrates exactness at zero or better cost.)",
    ]
    write_report(results_dir, "ablation_strength", "\n".join(lines))
    assert exact
