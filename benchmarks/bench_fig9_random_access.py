"""Figure 9 — random Array-of-Structures access bandwidth.

Paper (K20c, 32-bit words): (a) scatter, (b) gather, random per-lane struct
indices (indices routed between lanes with shuffles).

Shapes to reproduce: C2R throughput *rises* as the struct size approaches
the cache-line width (each cooperatively-read struct covers more of its
sectors); Direct stays flat and low (every word is its own transaction);
Vector improves on Direct by the vector width.  "Our transpose mechanism
enables higher throughput on all regimes."
"""

from __future__ import annotations

import pytest

from repro.gpusim.aos_model import aos_access_throughput

from conftest import write_csv, write_report

STRUCT_WORDS = [1, 2, 4, 8, 16]  # powers of two: the warp-divisible sizes
PATTERNS = ["c2r", "direct", "vector"]


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("pattern", PATTERNS)
def test_gather_model_point(benchmark, pattern):
    benchmark.pedantic(
        lambda: aos_access_throughput(8, pattern, "gather"), rounds=3, iterations=1
    )


def _series(op):
    return {
        pat: [
            aos_access_throughput(m, pat, op).throughput_gbps
            for m in STRUCT_WORDS
        ]
        for pat in PATTERNS
    }


def test_report_fig9(benchmark, results_dir):
    scatter, gather = benchmark.pedantic(
        lambda: (_series("scatter"), _series("gather")), rounds=1, iterations=1
    )

    def fmt(table, title):
        lines = [f"-- {title} --", f"{'bytes':>6} " + "".join(f"{p:>10}" for p in PATTERNS)]
        for i, m in enumerate(STRUCT_WORDS):
            lines.append(
                f"{m*4:>6} " + "".join(f"{table[p][i]:>10.1f}" for p in PATTERNS)
            )
        return "\n".join(lines)

    lines = [
        "Figure 9: random AoS access bandwidth (GB/s), K20c model, 32-bit words",
        "(paper: C2R rises toward the line width; Direct flat and low)",
        "",
        fmt(scatter, "(a) scatter bandwidth"),
        "",
        fmt(gather, "(b) gather bandwidth"),
    ]
    write_report(results_dir, "fig9_random_access", "\n".join(lines))
    for op_name, table in (("scatter", scatter), ("gather", gather)):
        write_csv(
            results_dir,
            f"fig9_{op_name}",
            ["struct_bytes"] + PATTERNS,
            [
                [m * 4] + [f"{table[p][i]:.2f}" for p in PATTERNS]
                for i, m in enumerate(STRUCT_WORDS)
            ],
        )

    # C2R gather rises with struct size (toward cache-line width)
    assert gather["c2r"][-1] > 2 * gather["c2r"][0]
    # C2R >= the others at every size; strictly better once structs > 1 word
    for i, m in enumerate(STRUCT_WORDS):
        assert gather["c2r"][i] >= gather["direct"][i] - 1e-9
        assert scatter["c2r"][i] >= scatter["direct"][i] - 1e-9
        if m >= 4:
            assert gather["c2r"][i] > gather["direct"][i]
    # direct gather is flat: its best and worst sizes stay within 3x
    dvals = gather["direct"]
    assert max(dvals) < 3 * min(dvals)
