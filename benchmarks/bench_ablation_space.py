"""Ablation — auxiliary space, measured (the paper's headline claim).

"With O(max(m, n)) auxiliary storage, our algorithm requires O(mn) work."

tracemalloc measures the peak *extra* Python-heap allocation of each
execution mode while transposing the same matrix:

* ``aux="strict"`` — the honest Algorithm 1: scratch vector + per-row/column
  index vectors, all Θ(max(m, n));
* ``aux="blocked"`` — the vectorized fast path: whole-array gather maps,
  Θ(mn) by design (the documented space/time trade);
* out-of-place — the full second copy every in-place algorithm exists to
  avoid.

The strict mode's footprint must scale with max(m, n), not with mn: the
bench checks it stays hundreds of times below the matrix size and barely
moves when the matrix quadruples.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.baselines import outofplace_transpose
from repro.core import c2r_transpose

from conftest import write_report


def _peak_extra_bytes(fn) -> int:
    """Peak tracemalloc allocation during fn() (the buffer itself excluded
    because it is allocated before tracing starts)."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


CASES = [(600, 800), (1200, 1600)]  # the second is 4x the elements


@pytest.mark.benchmark(group="ablation-space")
def test_strict_kernel_timing(benchmark):
    buf = np.arange(600 * 800, dtype=np.float64)
    benchmark.pedantic(
        lambda: c2r_transpose(buf, 600, 800, aux="strict"), rounds=1, iterations=1
    )


def test_report_ablation_space(benchmark, results_dir):
    def build():
        rows = []
        for m, n in CASES:
            matrix_bytes = m * n * 8
            buf = np.arange(m * n, dtype=np.float64)
            strict = _peak_extra_bytes(
                lambda: c2r_transpose(buf, m, n, aux="strict")
            )
            buf2 = np.arange(m * n, dtype=np.float64)
            blocked = _peak_extra_bytes(
                lambda: c2r_transpose(buf2, m, n, aux="blocked")
            )
            buf3 = np.arange(m * n, dtype=np.float64)
            oop = _peak_extra_bytes(lambda: outofplace_transpose(buf3, m, n))
            rows.append((m, n, matrix_bytes, strict, blocked, oop))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Ablation: measured peak auxiliary allocation (tracemalloc)",
        "",
        f"{'shape':>12} {'matrix MB':>10} {'strict kB':>10} "
        f"{'blocked MB':>11} {'out-of-place MB':>16}",
    ]
    for m, n, mb, s, b, o in rows:
        lines.append(
            f"{f'{m}x{n}':>12} {mb/1e6:>10.1f} {s/1e3:>10.1f} "
            f"{b/1e6:>11.1f} {o/1e6:>16.1f}"
        )
    (m1, n1, mb1, s1, *_), (m2, n2, mb2, s2, *_) = rows
    lines.append("")
    lines.append(
        f"matrix grew {mb2/mb1:.0f}x; strict scratch grew {s2/s1:.1f}x "
        f"(tracks max(m, n) = {max(m2, n2)}/{max(m1, n1)} "
        f"= {max(m2, n2)/max(m1, n1):.0f}x, not mn)"
    )
    write_report(results_dir, "ablation_space", "\n".join(lines))

    for m, n, matrix_bytes, strict, blocked, oop in rows:
        # strict: a small multiple of max(m,n) elements (scratch + index
        # vectors + interpreter noise), far below the matrix itself
        assert strict < 20 * max(m, n) * 8
        assert strict < matrix_bytes / 50
        # blocked trades Theta(mn) scratch for speed; out-of-place >= 1 copy
        assert blocked > matrix_bytes / 2
        assert oop >= matrix_bytes * 0.9
    # strict scratch scales with max(m, n): doubling dims ~doubles it
    assert s2 < 4 * s1
