"""Ablation — cache-aware column operations (Sections 4.6-4.7).

Quantifies what the coarse+fine sub-row decomposition buys:

* transaction counts: a naive per-element column rotation touches one
  cache line per element; the sub-row formulation touches one line per
  *sub-row* (16 elements for float64 on 128-byte lines);
* the fine-pass skip: for the C2R pre-rotation the residual rotation is
  zero for most groups whenever ``b`` exceeds the line width, eliminating
  an entire pass (the paper: "often the case for the C2R prerotation");
* the Section 4.7 cycle-descriptor bound (storage <= m/2 slots).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheModel, c2r_cache_aware, cache_aware_rotate
from repro.core import c2r_transpose
from repro.core.indexing import Decomposition
from repro.gpusim import TransactionAnalyzer

from conftest import write_report

M, N = 512, 768


@pytest.mark.benchmark(group="ablation-cache")
def test_cache_aware_c2r(benchmark):
    benchmark.pedantic(
        lambda: c2r_cache_aware(np.arange(M * N, dtype=np.float64), M, N),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="ablation-cache")
def test_blocked_c2r(benchmark):
    benchmark.pedantic(
        lambda: c2r_transpose(np.arange(M * N, dtype=np.float64), M, N),
        rounds=3,
        iterations=1,
    )


def _rotation_transactions(m: int, n: int, itemsize: int, subrows: bool) -> int:
    """Exact lines touched by one full column-rotation pass."""
    analyzer = TransactionAnalyzer(128)
    w = 128 // itemsize if subrows else 1
    tx = 0
    for i in range(m):
        row_base = i * n * itemsize
        for g0 in range(0, n, w):
            width = min(w, n - g0)
            addrs = row_base + (g0 + np.arange(width)) * itemsize
            if subrows:
                tx += analyzer.count_warp(addrs[:1], width * itemsize)
            else:
                tx += sum(analyzer.count_warp(addrs[k : k + 1], itemsize) for k in range(width))
    return tx


def test_report_ablation_cache(benchmark, results_dir):
    def build():
        naive_tx = _rotation_transactions(64, 768, 8, subrows=False)
        aware_tx = _rotation_transactions(64, 768, 8, subrows=True)

        # fine-pass skip statistics for the two rotation kinds
        dec = Decomposition.of(512, 25600)  # b = 50 >> w = 16 -> mostly skip
        amounts_prerot = np.arange(dec.n, dtype=np.int64) // dec.b
        stats_pre = cache_aware_rotate(
            np.zeros((64, dec.n)), amounts_prerot % 64, CacheModel(itemsize=8)
        )
        amounts_shuffle = np.arange(dec.n, dtype=np.int64) % 64
        stats_shuf = cache_aware_rotate(
            np.zeros((64, dec.n)), amounts_shuffle, CacheModel(itemsize=8)
        )
        full = c2r_cache_aware(np.arange(M * N, dtype=np.float64), M, N)
        return naive_tx, aware_tx, stats_pre, stats_shuf, full

    naive_tx, aware_tx, stats_pre, stats_shuf, full = benchmark.pedantic(
        build, rounds=1, iterations=1
    )

    lines = [
        "Ablation: cache-aware column operations (Sections 4.6-4.7)",
        "",
        "column-rotation pass over a 64 x 768 float64 array:",
        f"  per-element accesses:  {naive_tx:7d} line transactions",
        f"  sub-row accesses:      {aware_tx:7d} line transactions "
        f"({naive_tx/aware_tx:.1f}x fewer)",
        "",
        "fine-pass skip fraction (512 x 25600, 128B lines):",
        f"  pre-rotation (j // b): {stats_pre.fine_skip_fraction*100:6.1f}% of groups skipped",
        f"  shuffle rotation (j):  {stats_shuf.fine_skip_fraction*100:6.1f}% of groups skipped",
        "",
        f"full cache-aware C2R of {M}x{N}:",
        f"  pre-rotation performed: {full.pre_rotation_performed}",
        f"  row-permute cycle descriptors: {full.row_permute.cycle_descriptor_slots} "
        f"slots (bound: m = {M})",
    ]
    write_report(results_dir, "ablation_cache", "\n".join(lines))

    assert aware_tx * 8 < naive_tx  # ~16x for float64
    assert stats_pre.fine_skip_fraction > 0.5
    assert stats_shuf.fine_skip_fraction == 0.0
    assert full.row_permute.cycle_descriptor_slots <= M
