"""Figure 3 — CPU throughput histograms (4 panels).

Paper: histograms of in-place transpose throughput over 1000 random
matrices (m, n ~ U[1000, 10000), float64) for MKL, C2R sequential, C2R
8-thread, and Gustavson; medians marked.  Shapes to reproduce: the
MKL-class distribution sits an order of magnitude below C2R sequential;
the threaded and Gustavson panels overlap at the top.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import gustavson_transpose, mkl_like_transpose
from repro.parallel import ParallelTranspose

from conftest import ascii_hist, random_dims, throughput_gbps, time_call, write_report

SEED = 333
N_SAMPLES = 18
DIM_LO, DIM_HI = 100, 400
N_THREADS = 8


def _series(run, dims):
    out = []
    for m, n in dims:
        buf = np.arange(m * n, dtype=np.float64)
        out.append(throughput_gbps(m, n, 8, time_call(run, buf, m, n)))
    return out


def test_report_fig3(benchmark, results_dir):
    dims = random_dims(np.random.default_rng(SEED), N_SAMPLES, DIM_LO, DIM_HI)

    def build():
        with ParallelTranspose(1) as pt1, ParallelTranspose(N_THREADS) as pt8:
            return {
                "MKL-class": _series(mkl_like_transpose, dims),
                "C2R, 1 T": _series(pt1.transpose_inplace, dims),
                f"C2R, {N_THREADS} T": _series(pt8.transpose_inplace, dims),
                "Gustavson-class": _series(gustavson_transpose, dims),
            }

    panels = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Figure 3: throughput histograms of in-place CPU transposition,",
        f"float64, {N_SAMPLES} matrices, m,n ~ U[{DIM_LO},{DIM_HI}) "
        "(paper: U[1000,10000), 1000 samples)",
    ]
    for name, series in panels.items():
        lines.append(f"\n-- {name} --")
        lines.append(ascii_hist(series, bins=8))
    write_report(results_dir, "fig3_cpu_histograms", "\n".join(lines))

    med = {k: float(np.median(v)) for k, v in panels.items()}
    assert med["C2R, 1 T"] > med["MKL-class"]
    # thread scaling needs real cores (single-CPU containers cannot show
    # it); guard only against pathological collapse
    assert med[f"C2R, {N_THREADS} T"] > 0.25 * med["C2R, 1 T"]
