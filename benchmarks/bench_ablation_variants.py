"""Ablation — implementation variants of the same decomposition.

Compares the design choices DESIGN.md calls out, on equal inputs:

* gather vs scatter vs restricted formulations (Section 4's observation
  that gather forms are often preferable);
* strict (O(max(m,n)) aux) vs blocked (vectorized) execution;
* amortized plans vs one-shot calls (index-map construction is about half
  the cost of a blocked transpose);
* batched plans vs a Python loop over matrices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchedTransposePlan,
    TransposePlan,
    c2r_transpose,
    transpose_inplace,
)

from conftest import time_call, write_report

M, N = 700, 900


def _buf():
    return np.arange(M * N, dtype=np.float64)


@pytest.mark.benchmark(group="ablation-variants")
@pytest.mark.parametrize("variant", ["gather", "scatter", "restricted"])
def test_variant(benchmark, variant):
    benchmark.pedantic(
        lambda: c2r_transpose(_buf(), M, N, variant=variant),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="ablation-variants")
def test_plan_amortized(benchmark):
    plan = TransposePlan(M, N, algorithm="c2r")
    benchmark.pedantic(lambda: plan.execute(_buf()), rounds=3, iterations=1)


def test_report_ablation_variants(benchmark, results_dir):
    def build():
        rows = {}
        for variant in ("gather", "scatter", "restricted"):
            rows[f"blocked/{variant}"] = min(
                time_call(lambda v=variant: c2r_transpose(_buf(), M, N, variant=v))
                for _ in range(3)
            )
        rows["strict/gather"] = min(
            time_call(lambda: c2r_transpose(_buf(), M, N, aux="strict"))
            for _ in range(2)
        )
        plan = TransposePlan(M, N, algorithm="c2r")
        rows["plan (amortized)"] = min(
            time_call(lambda: plan.execute(_buf())) for _ in range(3)
        )
        # batched: 8 matrices at once vs a loop
        k, bm, bn = 8, 120, 160
        bplan = BatchedTransposePlan(bm, bn)
        batch = np.arange(k * bm * bn, dtype=np.float64)
        rows["batched plan (8 mats)"] = min(
            time_call(lambda: bplan.execute(batch.copy())) for _ in range(3)
        )

        def loop():
            b = batch.copy()
            for i in range(k):
                transpose_inplace(b[i * bm * bn : (i + 1) * bm * bn], bm, bn)

        rows["loop of 8 transposes"] = min(time_call(loop) for _ in range(3))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    gb = 2 * M * N * 8 / 1e9
    lines = [
        f"Ablation: implementation variants, {M}x{N} float64",
        "",
        f"{'configuration':<24} {'ms':>9} {'GB/s':>8}",
    ]
    for name, secs in rows.items():
        vol = gb if "batch" not in name and "loop" not in name else 2 * 8 * 120 * 160 * 8 / 1e9
        lines.append(f"{name:<24} {secs*1e3:>9.2f} {vol/secs:>8.2f}")
    lines.append("")
    lines.append(
        f"plan speedup over one-shot: "
        f"{rows['blocked/gather']/rows['plan (amortized)']:.2f}x "
        "(index-map construction amortized away)"
    )
    lines.append(
        f"batched speedup over loop: "
        f"{rows['loop of 8 transposes']/rows['batched plan (8 mats)']:.2f}x"
    )
    write_report(results_dir, "ablation_variants", "\n".join(lines))

    # the plan must beat rebuilding index maps every call
    assert rows["plan (amortized)"] < rows["blocked/gather"]
    # blocked must beat strict by a wide margin (vectorization)
    assert rows["blocked/gather"] < rows["strict/gather"]
