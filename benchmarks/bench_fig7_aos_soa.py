"""Figure 7 — in-place AoS -> SoA conversion throughput histogram.

Paper: 10000 random AoS (struct size ~ U[2, 32) 64-bit words, count ~
U[1e4, 1e7)); the skinny-specialized transpose reaches a 34.3 GB/s median
and 51 GB/s max on the K20c — well above the general transpose kernel.

Two reproductions here:
* the gpusim skinny cost model over the paper's population (the histogram
  and the skinny > general ordering);
* real wall-clock of the numpy skinny kernel versus the general kernel on
  scaled sizes (the specialization's advantage must also hold in
  measurement).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aos import aos_to_soa_flat
from repro.core import transpose_inplace
from repro.gpusim.cost import auto_cost, skinny_cost

from conftest import ascii_hist, throughput_gbps, time_call, write_report

SEED = 7
N_MODEL = 250
N_MEASURED = 12


@pytest.mark.benchmark(group="fig7")
def test_skinny_numpy_representative(benchmark):
    n, s = 200_000, 8
    benchmark.pedantic(
        lambda: aos_to_soa_flat(np.arange(n * s, dtype=np.float64), n, s),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="fig7")
def test_general_numpy_representative(benchmark):
    n, s = 200_000, 8
    benchmark.pedantic(
        lambda: transpose_inplace(np.arange(n * s, dtype=np.float64), n, s),
        rounds=3,
        iterations=1,
    )


def test_report_fig7(benchmark, results_dir):
    rng = np.random.default_rng(SEED)

    def build():
        model_skinny, model_general = [], []
        for _ in range(N_MODEL):
            S = int(rng.integers(2, 32))
            N = int(rng.integers(10**4, 10**7))
            model_skinny.append(skinny_cost(N, S, 8).throughput_gbps)
            model_general.append(auto_cost(N, S, 8).throughput_gbps)
        measured_skinny, measured_general = [], []
        for _ in range(N_MEASURED):
            S = int(rng.integers(2, 32))
            N = int(rng.integers(10**4, 10**5))
            buf = np.arange(N * S, dtype=np.float64)
            secs = time_call(lambda b: aos_to_soa_flat(b, N, S), buf)
            measured_skinny.append(throughput_gbps(N, S, 8, secs))
            buf = np.arange(N * S, dtype=np.float64)
            secs = time_call(lambda b: transpose_inplace(b, N, S), buf)
            measured_general.append(throughput_gbps(N, S, 8, secs))
        return model_skinny, model_general, measured_skinny, measured_general

    mod_s, mod_g, mea_s, mea_g = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Figure 7: in-place AoS -> SoA conversion throughput",
        f"model population: {N_MODEL} arrays, struct ~ U[2,32) x 64-bit,",
        "count ~ U[1e4,1e7)  (paper: 10000 arrays, median 34.3, max 51 GB/s)",
        "",
        "-- skinny specialization (K20c model) --",
        ascii_hist(mod_s, bins=10),
        "",
        f"model median {np.median(mod_s):.1f} GB/s (paper 34.3), "
        f"max {max(mod_s):.1f} GB/s (paper 51)",
        f"general-kernel model median on the same arrays: {np.median(mod_g):.1f} GB/s",
        "",
        "-- measured (numpy, scaled: count ~ U[1e4,1e5)) --",
        f"skinny median  {np.median(mea_s):.3f} GB/s",
        f"general median {np.median(mea_g):.3f} GB/s",
        f"specialization speedup {np.median(mea_s)/np.median(mea_g):.2f}x",
    ]
    write_report(results_dir, "fig7_aos_soa", "\n".join(lines))

    assert float(np.median(mod_s)) > float(np.median(mod_g))
    assert float(np.median(mea_s)) > float(np.median(mea_g))
    assert 20 < float(np.median(mod_s)) < 60
    assert max(mod_s) < 75
